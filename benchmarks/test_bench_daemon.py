"""Foundry-daemon benchmarks: multi-tenant throughput on one fleet.

The daemon's reason to exist over the per-job service is amortisation:
one persistent worker fleet serves many concurrent jobs, so N serial
1-worker jobs that would each pay their own execution end-to-end
instead overlap on the shared fleet.  The dispatch benchmark times a
quick campaign through the full daemon path (socket, admission, fleet,
wire-encoded events) as the BENCH trajectory for daemon overhead; the
concurrency guard holds the amortisation property — 4 concurrent
1-worker jobs on a 4-worker daemon beat the same 4 jobs run serially
in-process — wherever enough cores exist to demonstrate it.
"""

import os
import tempfile
import time
import uuid

import pytest

from repro.campaigns import CampaignCell, ThreatScenario
from repro.engine import usable_cpus
from repro.service import CampaignJob, DaemonClient, FoundryDaemon, FoundryService

pytestmark = pytest.mark.bench


def oracle_cells(n: int, budget: int, seed0: int = 0) -> tuple:
    base = ThreatScenario(budget=budget, n_fft=1024, seed=5)
    return tuple(
        CampaignCell("brute-force", base.with_(seed=seed0 + s))
        for s in range(n)
    )


def _short_socket() -> str:
    return os.path.join(
        tempfile.gettempdir(), f"repro-b{uuid.uuid4().hex[:10]}.sock"
    )


def test_bench_daemon_dispatch(run_once, tmp_path):
    """Wall time of one quick campaign through the whole daemon path
    (connect, submit, fleet execution, streamed events, result).

    Also the zero-overhead guard for :mod:`repro.faults`: the timed
    path crosses every instrumented site (worker task execution, store
    and journal writes, protocol frames), and with no plan installed
    each site costs one module-flag check — asserted disarmed here so
    a leaked ``REPRO_FAULTS`` can never skew the BENCH trajectory."""
    from repro import faults

    assert not faults.ENABLED, (
        "fault injection is armed (REPRO_FAULTS leaked into the bench "
        "environment?); dispatch timings would measure the chaos plan"
    )
    cells = oracle_cells(4, budget=8)
    daemon = FoundryDaemon(tmp_path / "bench", socket=_short_socket(),
                           n_workers=2)
    daemon.start()
    try:
        client = DaemonClient(socket=daemon.address)
        # Warm the fleet (worker init, first-task imports).
        client.submit(
            CampaignJob(cells=oracle_cells(2, budget=4, seed0=90),
                        n_workers=2)
        ).result(timeout=600)

        def dispatch():
            handle = client.submit(CampaignJob(cells=cells, n_workers=2))
            return handle.result(timeout=600)

        result = run_once(dispatch)
        assert len(result.reports) == 4
    finally:
        daemon.stop()


@pytest.mark.skipif(
    usable_cpus() < 4,
    reason="needs >= 4 usable CPUs to demonstrate multi-job amortisation",
)
def test_daemon_concurrent_jobs_amortise_fleet(benchmark, tmp_path):
    """The amortisation guard: 4 concurrent 1-worker jobs on one
    4-worker daemon finish >= 1.8x faster than the same jobs run
    serially through the in-process service."""
    budget = 48
    jobs = [
        CampaignJob(cells=oracle_cells(2, budget=budget, seed0=10 * k),
                    n_workers=1)
        for k in range(4)
    ]
    service = FoundryService()
    service.submit(jobs[0]).result()  # warm caches before timing
    start = time.perf_counter()
    for job in jobs:
        service.submit(job).result()
    serial = time.perf_counter() - start

    daemon = FoundryDaemon(tmp_path / "conc", socket=_short_socket(),
                           n_workers=4, max_active=4)
    daemon.start()
    try:
        client = DaemonClient(socket=daemon.address)
        # Warm the fleet workers.
        client.submit(
            CampaignJob(cells=oracle_cells(4, budget=4, seed0=80),
                        n_workers=4)
        ).result(timeout=600)
        start = time.perf_counter()
        handles = [client.submit(job) for job in jobs]
        results = [handle.result(timeout=600) for handle in handles]
        concurrent = time.perf_counter() - start
    finally:
        daemon.stop()

    for job, result in zip(jobs, results):
        reference = service.submit(job).result()
        assert result.reports == reference.reports  # amortised, identical

    speedup = serial / concurrent
    benchmark.extra_info["serial_seconds"] = round(serial, 3)
    benchmark.extra_info["concurrent_seconds"] = round(concurrent, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert speedup >= 1.8, (
        f"4 concurrent jobs on a 4-worker daemon only {speedup:.1f}x "
        f"faster than serial in-process execution (< 1.8x)"
    )
