"""Benchmark configuration: each benchmark regenerates one paper
artefact, so a single measured round per benchmark keeps the harness
practical while still timing the real workload.

Every ``-m bench`` session also exports a machine-readable
``BENCH_results.json`` (override the path with ``REPRO_BENCH_JSON``):
one record per benchmark with its wall time, any speedup ratio the
benchmark computed (``benchmark.extra_info["speedup"]``), the engine
backend and the host's CPU count — the across-PR perf trajectory in a
form scripts can diff, not just the pytest-benchmark table.
"""

import json
import os

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run the target exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


def pytest_sessionfinish(session, exitstatus):
    """Write BENCH_results.json from whatever benchmarks actually ran."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not getattr(bench_session, "benchmarks", None):
        return
    from repro.engine import (
        get_default_engine,
        kernel_available,
        kernel_threaded,
        usable_cpus,
    )

    records = []
    for bench in bench_session.benchmarks:
        stats = getattr(bench, "stats", None)
        extra = dict(getattr(bench, "extra_info", {}) or {})
        records.append(
            {
                "name": bench.name,
                "group": getattr(bench, "group", None),
                "wall_seconds": getattr(stats, "min", None),
                "mean_seconds": getattr(stats, "mean", None),
                "rounds": getattr(stats, "rounds", None),
                "speedup": extra.pop("speedup", None),
                "backend": extra.pop("backend", None),
                "extra_info": extra,
            }
        )
    payload = {
        "schema": "repro-bench-results/1",
        "exit_status": int(exitstatus),
        "cpu_count": usable_cpus(),
        "default_backend": get_default_engine().backend,
        "kernel_available": kernel_available(),
        "kernel_threaded": kernel_threaded(),
        "engine_threads_env": os.environ.get("REPRO_ENGINE_THREADS"),
        "benchmarks": records,
    }
    path = os.environ.get("REPRO_BENCH_JSON", "BENCH_results.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
