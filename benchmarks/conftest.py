"""Benchmark configuration: each benchmark regenerates one paper
artefact, so a single measured round per benchmark keeps the harness
practical while still timing the real workload.

Every ``-m bench`` session also exports a machine-readable
``BENCH_results.json`` (override the path with ``REPRO_BENCH_JSON``):
one record per benchmark with its wall time, any speedup ratio the
benchmark computed (``benchmark.extra_info["speedup"]``), the
*resolved* engine backend (what ``auto`` actually ran), its bench
group and the host's CPU count — the across-PR perf trajectory in a
form scripts can diff, not just the pytest-benchmark table.

Guarded speedup benchmarks that a host cannot run (too few CPUs, no
compiler, no SIMD lanes) are exported as explicit ``skipped: <reason>``
records rather than silently vanishing: a 1-CPU CI host must be
distinguishable from a perf regression in the trajectory diff.  Skip
records additionally carry the last recorded figures for that
benchmark (``last_recorded``: speedup, wall time, CPU count), read
from the previous export before it is overwritten — so a multi-core
measurement survives a string of single-core exports and the
trajectory diff always has *something* to compare against.
"""

import json
import os

import pytest

_skipped_benchmarks = []


@pytest.fixture
def run_once(benchmark):
    """Run the target exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


def _bench_group(nodeid: str) -> str | None:
    """Bench group from the module name: ``test_bench_engine.py`` ->
    ``engine`` (mirrors pytest-benchmark's per-file grouping)."""
    module = nodeid.split("::", 1)[0].rsplit("/", 1)[-1]
    if not module.endswith(".py"):
        return None
    stem = module[: -len(".py")]
    for prefix in ("test_bench_", "test_"):
        if stem.startswith(prefix):
            return stem[len(prefix) :]
    return stem or None


def pytest_runtest_logreport(report):
    """Collect skipped benchmark tests for the explicit skip records.

    Only benchmark nodeids count: this conftest is loaded by any
    session that collects the ``benchmarks`` testpath (tier-1 included),
    and a skip in ``tests/`` must never trigger a BENCH export.
    """
    if not report.nodeid.startswith("benchmarks/"):
        return
    if report.skipped and report.when in ("setup", "call"):
        reason = ""
        if isinstance(report.longrepr, tuple):
            reason = report.longrepr[2]
        elif report.longrepr is not None:
            reason = str(report.longrepr)
        if reason.startswith("Skipped: "):
            reason = reason[len("Skipped: ") :]
        _skipped_benchmarks.append((report.nodeid, reason))


def _last_recorded(path: str) -> dict:
    """Measured figures per benchmark name from the previous export.

    A benchmark that *ran* contributes its own figures; a skip record
    passes its ``last_recorded`` through unchanged, so a real
    measurement chains across any number of consecutive skipping hosts
    until the benchmark runs again.
    """
    try:
        with open(path) as fh:
            previous = json.load(fh)
    except (OSError, ValueError):
        return {}
    figures_by_name: dict = {}
    for record in previous.get("benchmarks", []):
        name = record.get("name")
        if not name:
            continue
        if record.get("skipped"):
            figures = record.get("last_recorded")
        else:
            figures = {
                key: record[key]
                for key in ("speedup", "wall_seconds", "cpu_count")
                if record.get(key) is not None
            }
        if figures:
            figures_by_name[name] = figures
    return figures_by_name


def _resolved_backend() -> str:
    """What the default engine's backend actually runs as."""
    from repro.engine import get_default_engine, kernel_available

    backend = get_default_engine().backend
    if backend == "auto":
        return "vectorized" if kernel_available() else "reference"
    return backend


def pytest_sessionfinish(session, exitstatus):
    """Write BENCH_results.json from whatever benchmarks actually ran."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    ran = bench_session is not None and getattr(bench_session, "benchmarks", None)
    if not ran and not _skipped_benchmarks:
        return
    from repro.engine import (
        get_default_engine,
        kernel_available,
        kernel_simd_width,
        kernel_threaded,
        usable_cpus,
    )

    resolved = _resolved_backend()
    cpus = usable_cpus()
    records = []
    for bench in bench_session.benchmarks if ran else []:
        stats = getattr(bench, "stats", None)
        extra = dict(getattr(bench, "extra_info", {}) or {})
        records.append(
            {
                "name": bench.name,
                "group": getattr(bench, "group", None)
                or _bench_group(bench.fullname),
                "wall_seconds": getattr(stats, "min", None),
                "mean_seconds": getattr(stats, "mean", None),
                "rounds": getattr(stats, "rounds", None),
                "speedup": extra.pop("speedup", None),
                # Per-benchmark override first (a benchmark may pin a
                # backend explicitly), resolved session backend else.
                "backend": extra.pop("backend", None) or resolved,
                "cpu_count": cpus,
                "extra_info": extra,
            }
        )
    path = os.environ.get("REPRO_BENCH_JSON", "BENCH_results.json")
    last_recorded = _last_recorded(path) if _skipped_benchmarks else {}
    for nodeid, reason in _skipped_benchmarks:
        name = nodeid.split("::", 1)[-1]
        record = {
            "name": name,
            "group": _bench_group(nodeid),
            "skipped": reason or "skipped",
            "backend": resolved,
            "cpu_count": cpus,
        }
        if name in last_recorded:
            record["last_recorded"] = last_recorded[name]
        records.append(record)
    payload = {
        "schema": "repro-bench-results/1",
        "exit_status": int(exitstatus),
        "cpu_count": cpus,
        "default_backend": get_default_engine().backend,
        "resolved_backend": resolved,
        "kernel_available": kernel_available(),
        "kernel_threaded": kernel_threaded(),
        "kernel_simd_width": kernel_simd_width(),
        "engine_threads_env": os.environ.get("REPRO_ENGINE_THREADS"),
        "engine_simd_env": os.environ.get("REPRO_ENGINE_SIMD"),
        "benchmarks": records,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
