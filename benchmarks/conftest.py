"""Benchmark configuration: each benchmark regenerates one paper
artefact, so a single measured round per benchmark keeps the harness
practical while still timing the real workload."""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run the target exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
