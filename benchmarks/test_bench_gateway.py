"""Gateway benchmarks: the front door must be thin, and two daemons
behind it must beat one.

The dispatch benchmark times a quick campaign through the full gateway
path (client socket, gateway routing, backend fleet, relayed events)
as the BENCH trajectory for proxy cost, and the overhead guard bounds
that cost against the same dispatch on a direct :class:`DaemonClient`
— the gateway adds connection hops, never work.  The scale-out guard
holds the reason the gateway exists: the same job batch through a
gateway over *two* daemons sharing one root finishes >= 1.5x faster
than through one daemon with half the workers, byte-identically,
wherever enough cores exist to demonstrate it.
"""

import os
import tempfile
import time
import uuid

import pytest

from repro.campaigns import CampaignCell, ThreatScenario
from repro.engine import usable_cpus
from repro.service import (
    CampaignJob,
    DaemonClient,
    FoundryDaemon,
    FoundryGateway,
    rendezvous_backend,
)

pytestmark = pytest.mark.bench


def oracle_cells(n: int, budget: int, seed0: int = 0) -> tuple:
    base = ThreatScenario(budget=budget, n_fft=1024, seed=5)
    return tuple(
        CampaignCell("brute-force", base.with_(seed=seed0 + s))
        for s in range(n)
    )


def _short_socket() -> str:
    return os.path.join(
        tempfile.gettempdir(), f"repro-g{uuid.uuid4().hex[:10]}.sock"
    )


def test_bench_gateway_dispatch(run_once, tmp_path):
    """Wall time of one quick campaign through the whole gateway path
    (connect, route, backend fleet, relayed events, result) — the
    BENCH trajectory for what the extra hop costs end-to-end."""
    from repro import faults

    assert not faults.ENABLED, (
        "fault injection is armed (REPRO_FAULTS leaked into the bench "
        "environment?); dispatch timings would measure the chaos plan"
    )
    root = tmp_path / "shared"
    daemon = FoundryDaemon(root, socket=_short_socket(), n_workers=2,
                           name="a")
    daemon.start()
    gateway = FoundryGateway(root, backends=[daemon.address],
                             socket=_short_socket(), health_interval=1.0)
    gateway.start()
    try:
        client = DaemonClient(socket=gateway.address)
        # Warm the fleet (worker init, first-task imports).
        client.submit(
            CampaignJob(cells=oracle_cells(2, budget=4, seed0=90),
                        n_workers=2)
        ).result(timeout=600)
        cells = oracle_cells(4, budget=8)

        def dispatch():
            handle = client.submit(CampaignJob(cells=cells, n_workers=2))
            return handle.result(timeout=600)

        result = run_once(dispatch)
        assert len(result.reports) == 4
    finally:
        gateway.stop()
        daemon.stop()


def test_gateway_proxy_overhead_bounded(benchmark, tmp_path):
    """The thinness guard: the same campaign dispatched through the
    gateway costs at most 2x the direct-daemon dispatch (in practice
    the routing hop is milliseconds against a campaign's seconds)."""
    root = tmp_path / "shared"
    daemon = FoundryDaemon(root, socket=_short_socket(), n_workers=2,
                           name="a")
    daemon.start()
    gateway = FoundryGateway(root, backends=[daemon.address],
                             socket=_short_socket(), health_interval=1.0)
    gateway.start()
    try:
        direct = DaemonClient(socket=daemon.address)
        proxied = DaemonClient(socket=gateway.address)
        # Warm the fleet and both connection paths.
        direct.submit(
            CampaignJob(cells=oracle_cells(2, budget=4, seed0=90),
                        n_workers=2)
        ).result(timeout=600)
        proxied.ping()

        def run(client, seed0):
            handle = client.submit(
                CampaignJob(cells=oracle_cells(2, budget=8, seed0=seed0),
                            n_workers=2)
            )
            return handle.result(timeout=600)

        start = time.perf_counter()
        for k in range(3):
            run(direct, 10 * k)
        direct_seconds = time.perf_counter() - start
        start = time.perf_counter()
        for k in range(3):
            run(proxied, 100 + 10 * k)
        proxied_seconds = time.perf_counter() - start
    finally:
        gateway.stop()
        daemon.stop()

    overhead = proxied_seconds / direct_seconds
    benchmark.extra_info["direct_seconds"] = round(direct_seconds, 3)
    benchmark.extra_info["proxied_seconds"] = round(proxied_seconds, 3)
    benchmark.extra_info["overhead_ratio"] = round(overhead, 3)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert overhead <= 2.0, (
        f"gateway dispatch {overhead:.2f}x the direct-daemon dispatch "
        f"(> 2.0x): the proxy is no longer thin"
    )


@pytest.mark.skipif(
    usable_cpus() < 4,
    reason="needs >= 4 usable CPUs to demonstrate 2-daemon scale-out",
)
def test_gateway_two_daemon_scaleout(benchmark, tmp_path):
    """The scale-out guard: 4 concurrent 1-worker jobs through a
    gateway over two 2-worker daemons sharing one root finish >= 1.5x
    faster than through one 2-worker daemon — byte-identically."""
    budget = 48
    jobs = [
        CampaignJob(cells=oracle_cells(2, budget=budget, seed0=10 * k),
                    n_workers=1)
        for k in range(4)
    ]

    single = FoundryDaemon(tmp_path / "single", socket=_short_socket(),
                           n_workers=2, max_active=4)
    single.start()
    try:
        client = DaemonClient(socket=single.address)
        client.submit(
            CampaignJob(cells=oracle_cells(2, budget=4, seed0=80),
                        n_workers=2)
        ).result(timeout=600)  # warm the fleet before timing
        start = time.perf_counter()
        handles = [client.submit(job) for job in jobs]
        single_results = [h.result(timeout=600) for h in handles]
        single_seconds = time.perf_counter() - start
    finally:
        single.stop()

    root = tmp_path / "shared"
    daemons = [
        FoundryDaemon(root, socket=_short_socket(), n_workers=2,
                      max_active=4, name=tag)
        for tag in ("a", "b")
    ]
    for daemon in daemons:
        daemon.start()
    addrs = [d.address for d in daemons]
    gateway = FoundryGateway(root, backends=addrs, socket=_short_socket(),
                             health_interval=1.0)
    gateway.start()
    try:
        client = DaemonClient(socket=gateway.address)
        client.submit(
            CampaignJob(cells=oracle_cells(4, budget=4, seed0=70),
                        n_workers=2)
        ).result(timeout=600)  # warm (at least one) fleet

        # Job ids that split 2/2 across the backends, so the batch
        # genuinely uses both fleets regardless of hash luck.
        ids, per_backend = [], {addr: 0 for addr in addrs}
        i = 0
        while len(ids) < len(jobs):
            jid = f"scale-{i}"
            addr = rendezvous_backend(jid, addrs)
            if per_backend[addr] < len(jobs) // 2:
                per_backend[addr] += 1
                ids.append(jid)
            i += 1
        start = time.perf_counter()
        handles = [
            client.submit(job, job_id=jid) for job, jid in zip(jobs, ids)
        ]
        scaled_results = [h.result(timeout=600) for h in handles]
        scaled_seconds = time.perf_counter() - start
    finally:
        gateway.stop()
        for daemon in daemons:
            daemon.stop()

    import pickle

    for one, two in zip(single_results, scaled_results):
        assert [pickle.dumps(r) for r in one.reports] == [
            pickle.dumps(r) for r in two.reports
        ]  # scale-out changes where, never what

    speedup = single_seconds / scaled_seconds
    benchmark.extra_info["single_daemon_seconds"] = round(single_seconds, 3)
    benchmark.extra_info["two_daemon_seconds"] = round(scaled_seconds, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert speedup >= 1.5, (
        f"two daemons behind the gateway only {speedup:.1f}x faster than "
        f"one (< 1.5x)"
    )
