"""Benchmarks for the design-choice ablations (DESIGN.md commitments)."""

import pytest

pytestmark = pytest.mark.bench

from repro.experiments import ablations


def test_bench_ablation_substeps(run_once):
    result = run_once(ablations.substeps_convergence, n_fft=4096)
    snr = {row[0]: row[1] for row in result.rows}
    assert abs(snr[4] - snr[8]) < 2.0


def test_bench_ablation_logic_threshold(run_once):
    result = run_once(ablations.logic_threshold_ablation, n_baseband=256)
    by_threshold = {row[0]: row for row in result.rows}
    assert by_threshold[0.0][2] > by_threshold[0.4][2] + 10.0
    correct = [row[1] for row in result.rows]
    assert max(correct) - min(correct) < 1.0


def test_bench_ablation_osr(run_once):
    result = run_once(ablations.osr_scaling, n_fft=8192)
    snrs = [row[2] for row in result.rows]
    assert all(b > a for a, b in zip(snrs, snrs[1:]))
