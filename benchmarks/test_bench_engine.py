"""Oracle-throughput benchmarks for the batched simulation engine.

Measures keys/second through ``SimulationEngine.run`` for both backends
at quick-mode sizes (the fig7 sweep: 16 keys, 2048-sample records), so
the batching speedup is tracked in the BENCH trajectory, plus the
speedup ratios themselves as guarded regression tests: vectorized vs
reference at 16 keys, and — wherever enough cores exist — the kernel's
threaded key axis vs its sequential walk at a 64-key batch.
"""

import time

import numpy as np
import pytest

from repro.engine import (
    ModulatorRequest,
    SimulationEngine,
    kernel_available,
    kernel_threaded,
    usable_cpus,
)
from repro.receiver import Chip, ConfigWord, STANDARDS, ToneStimulus, stimulus_frequency

pytestmark = pytest.mark.bench

STD = STANDARDS[0]
BATCH = 16
N_FFT = 2048


def _requests(batch: int = BATCH):
    stim = ToneStimulus.single(stimulus_frequency(STD, 64, N_FFT), -25.0)
    rng = np.random.default_rng(0)
    return [
        ModulatorRequest(
            config=ConfigWord.random(rng), stimulus=stim, fs=STD.fs,
            n_samples=N_FFT, seed=7,
        )
        for _ in range(batch)
    ]


def _throughput(backend: str, chip: Chip, requests) -> float:
    engine = SimulationEngine(backend=backend)
    engine.run(chip, requests)  # warm caches and (for native) the kernel
    start = time.perf_counter()
    engine.run(chip, requests)
    return len(requests) / (time.perf_counter() - start)


def test_bench_oracle_reference_16keys(benchmark):
    chip = Chip()
    requests = _requests()
    engine = SimulationEngine(backend="reference")
    engine.run(chip, requests)
    benchmark.extra_info["backend"] = "reference"
    result = benchmark(engine.run, chip, requests)
    assert len(result) == BATCH


def test_bench_oracle_vectorized_16keys(benchmark):
    chip = Chip()
    requests = _requests()
    engine = SimulationEngine(backend="vectorized")
    engine.run(chip, requests)
    benchmark.extra_info["backend"] = "vectorized"
    result = benchmark(engine.run, chip, requests)
    assert len(result) == BATCH


@pytest.mark.skipif(
    not kernel_available(),
    reason="no C compiler: vectorized backend falls back to the reference loop",
)
def test_vectorized_speedup_at_quick_mode_batch(benchmark):
    """The acceptance ratio: >= 3x over per-key simulation at 16 keys.

    Both backends integrate the identical batch (and produce identical
    results — see tests/test_engine.py); the best of three rounds guards
    against scheduler noise on loaded machines.
    """
    chip = Chip()
    requests = _requests()
    ref = max(_throughput("reference", chip, requests) for _ in range(3))
    vec = max(_throughput("vectorized", chip, requests) for _ in range(3))
    speedup = vec / ref
    benchmark.extra_info["backend"] = "vectorized"
    benchmark.extra_info["reference_keys_per_s"] = round(ref, 1)
    benchmark.extra_info["vectorized_keys_per_s"] = round(vec, 1)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark(lambda: None)  # ratio computed above; keep the harness happy
    assert speedup >= 3.0, (
        f"vectorized {vec:.0f} keys/s vs reference {ref:.0f} keys/s "
        f"({speedup:.1f}x < 3x)"
    )


@pytest.mark.skipif(
    not kernel_available() or not kernel_threaded(),
    reason="needs the compiled kernel with a threaded key axis",
)
@pytest.mark.skipif(
    usable_cpus() < 4,
    reason="needs >= 4 usable CPUs to demonstrate the key-axis speedup",
)
def test_parallel_kernel_speedup_at_64_keys(benchmark, monkeypatch):
    """The acceptance ratio: >= 2x oracle throughput at a 64-key batch.

    The identical batch is integrated with the key axis pinned to one
    thread and then to one thread per core (REPRO_ENGINE_THREADS is
    read per kernel call, so the pin takes effect immediately).  Thread
    count cannot change results — 1-vs-N bit-identity is guarded in
    tests/test_engine.py — so the ratio is pure throughput.
    """
    chip = Chip()
    requests = _requests(batch=64)

    def throughput(threads: int) -> float:
        monkeypatch.setenv("REPRO_ENGINE_THREADS", str(threads))
        return max(_throughput("vectorized", chip, requests) for _ in range(3))

    sequential = throughput(1)
    threaded = throughput(usable_cpus())
    speedup = threaded / sequential
    benchmark.extra_info["backend"] = "vectorized"
    benchmark.extra_info["threads"] = usable_cpus()
    benchmark.extra_info["sequential_keys_per_s"] = round(sequential, 1)
    benchmark.extra_info["threaded_keys_per_s"] = round(threaded, 1)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark(lambda: None)  # ratio computed above; keep the harness happy
    assert speedup >= 2.0, (
        f"threaded kernel {threaded:.0f} keys/s vs sequential "
        f"{sequential:.0f} keys/s ({speedup:.1f}x < 2x)"
    )
