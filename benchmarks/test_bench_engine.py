"""Oracle-throughput benchmarks for the batched simulation engine.

Measures keys/second through ``SimulationEngine.run`` for both backends
at quick-mode sizes (the fig7 sweep: 16 keys, 2048-sample records), so
the batching speedup is tracked in the BENCH trajectory, plus the
speedup ratios themselves as guarded regression tests: vectorized vs
reference at 16 keys, and — wherever enough cores exist — the kernel's
threaded key axis vs its sequential walk at a 64-key batch, its SIMD
lane axis vs the scalar walk (single-thread, uniform-mode 64-key
batch), and the pinned-order kernel FIR vs the per-row np.convolve
loop it replaced.  Guards a host cannot run are exported as explicit
``skipped`` records (see conftest).
"""

import time

import numpy as np
import pytest

from repro.engine import (
    ModulatorRequest,
    SimulationEngine,
    kernel_available,
    kernel_simd_width,
    kernel_threaded,
    usable_cpus,
)
from repro.receiver import Chip, ConfigWord, STANDARDS, ToneStimulus, stimulus_frequency

pytestmark = pytest.mark.bench

STD = STANDARDS[0]
BATCH = 16
N_FFT = 2048


def _requests(batch: int = BATCH):
    stim = ToneStimulus.single(stimulus_frequency(STD, 64, N_FFT), -25.0)
    rng = np.random.default_rng(0)
    return [
        ModulatorRequest(
            config=ConfigWord.random(rng), stimulus=stim, fs=STD.fs,
            n_samples=N_FFT, seed=7,
        )
        for _ in range(batch)
    ]


def _uniform_requests(batch: int):
    """One loop topology across the batch, per-key data varying — the
    shape the SIMD lane packer fills completely (random configs mix
    modes and fragment packs, which is the scalar path's job)."""
    stim = ToneStimulus.single(stimulus_frequency(STD, 64, N_FFT), -25.0)
    base = ConfigWord(
        lna_gain=7, cc_coarse=10, cf_fine=128, gmq_code=20, gmin_code=24,
        preamp_code=20, comp_code=31, dac_code=32, delay_code=12,
        buffer_code=4,
    )
    return [
        ModulatorRequest(
            config=base.replace(dac_code=16 + k % 32, gmq_code=10 + k % 20),
            stimulus=stim, fs=STD.fs, n_samples=N_FFT, seed=k,
        )
        for k in range(batch)
    ]


def _throughput(backend: str, chip: Chip, requests) -> float:
    engine = SimulationEngine(backend=backend)
    engine.run(chip, requests)  # warm caches and (for native) the kernel
    start = time.perf_counter()
    engine.run(chip, requests)
    return len(requests) / (time.perf_counter() - start)


def test_bench_oracle_reference_16keys(benchmark):
    chip = Chip()
    requests = _requests()
    engine = SimulationEngine(backend="reference")
    engine.run(chip, requests)
    benchmark.extra_info["backend"] = "reference"
    result = benchmark(engine.run, chip, requests)
    assert len(result) == BATCH


def test_bench_oracle_vectorized_16keys(benchmark):
    chip = Chip()
    requests = _requests()
    engine = SimulationEngine(backend="vectorized")
    engine.run(chip, requests)
    benchmark.extra_info["backend"] = "vectorized"
    result = benchmark(engine.run, chip, requests)
    assert len(result) == BATCH


@pytest.mark.skipif(
    not kernel_available(),
    reason="no C compiler: vectorized backend falls back to the reference loop",
)
def test_vectorized_speedup_at_quick_mode_batch(benchmark):
    """The acceptance ratio: >= 3x over per-key simulation at 16 keys.

    Both backends integrate the identical batch (and produce identical
    results — see tests/test_engine.py); the best of three rounds guards
    against scheduler noise on loaded machines.
    """
    chip = Chip()
    requests = _requests()
    ref = max(_throughput("reference", chip, requests) for _ in range(3))
    vec = max(_throughput("vectorized", chip, requests) for _ in range(3))
    speedup = vec / ref
    benchmark.extra_info["backend"] = "vectorized"
    benchmark.extra_info["reference_keys_per_s"] = round(ref, 1)
    benchmark.extra_info["vectorized_keys_per_s"] = round(vec, 1)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark(lambda: None)  # ratio computed above; keep the harness happy
    assert speedup >= 3.0, (
        f"vectorized {vec:.0f} keys/s vs reference {ref:.0f} keys/s "
        f"({speedup:.1f}x < 3x)"
    )


@pytest.mark.skipif(
    not kernel_available() or not kernel_threaded(),
    reason="needs the compiled kernel with a threaded key axis",
)
@pytest.mark.skipif(
    usable_cpus() < 4,
    reason="needs >= 4 usable CPUs to demonstrate the key-axis speedup",
)
def test_parallel_kernel_speedup_at_64_keys(benchmark, monkeypatch):
    """The acceptance ratio: >= 2x oracle throughput at a 64-key batch.

    The identical batch is integrated with the key axis pinned to one
    thread and then to one thread per core (REPRO_ENGINE_THREADS is
    read per kernel call, so the pin takes effect immediately).  Thread
    count cannot change results — 1-vs-N bit-identity is guarded in
    tests/test_engine.py — so the ratio is pure throughput.
    """
    chip = Chip()
    requests = _requests(batch=64)

    def throughput(threads: int) -> float:
        monkeypatch.setenv("REPRO_ENGINE_THREADS", str(threads))
        return max(_throughput("vectorized", chip, requests) for _ in range(3))

    sequential = throughput(1)
    threaded = throughput(usable_cpus())
    speedup = threaded / sequential
    benchmark.extra_info["backend"] = "vectorized"
    benchmark.extra_info["threads"] = usable_cpus()
    benchmark.extra_info["sequential_keys_per_s"] = round(sequential, 1)
    benchmark.extra_info["threaded_keys_per_s"] = round(threaded, 1)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark(lambda: None)  # ratio computed above; keep the harness happy
    assert speedup >= 2.0, (
        f"threaded kernel {threaded:.0f} keys/s vs sequential "
        f"{sequential:.0f} keys/s ({speedup:.1f}x < 2x)"
    )


@pytest.mark.skipif(
    not kernel_available(),
    reason="no C compiler: vectorized backend falls back to the reference loop",
)
@pytest.mark.skipif(
    kernel_available() and kernel_simd_width() < 4,
    reason="host/toolchain supports fewer than 4 SIMD lanes",
)
@pytest.mark.skipif(
    usable_cpus() < 4,
    reason="needs >= 4 usable CPUs for stable single-thread timing",
)
def test_simd_kernel_speedup_at_64_keys(benchmark, monkeypatch):
    """The acceptance ratio: SIMD >= 1.5x the scalar kernel walk.

    A uniform-mode 64-key batch, key axis pinned to ONE thread so the
    ratio isolates the lane axis; REPRO_ENGINE_SIMD=0 forces the scalar
    walk, auto detects the host's lanes.  Lane width cannot change
    results — 0/2/4-lane bit-identity is guarded in
    tests/test_engine.py — so the ratio is pure throughput.  The bound
    sits below the measured ~1.55x: per-lane tanh stays the scalar libm
    call by the exactness contract, which caps the win at the Amdahl
    limit of the non-transcendental work.
    """
    chip = Chip()
    requests = _uniform_requests(64)
    monkeypatch.setenv("REPRO_ENGINE_THREADS", "1")

    def throughput(simd: str) -> float:
        monkeypatch.setenv("REPRO_ENGINE_SIMD", simd)
        return max(_throughput("vectorized", chip, requests) for _ in range(3))

    scalar = throughput("0")
    simd = throughput("auto")
    speedup = simd / scalar
    benchmark.extra_info["backend"] = "vectorized"
    benchmark.extra_info["simd_width"] = kernel_simd_width()
    benchmark.extra_info["scalar_keys_per_s"] = round(scalar, 1)
    benchmark.extra_info["simd_keys_per_s"] = round(simd, 1)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark(lambda: None)  # ratio computed above; keep the harness happy
    assert speedup >= 1.5, (
        f"SIMD kernel {simd:.0f} keys/s vs scalar {scalar:.0f} keys/s "
        f"({speedup:.1f}x < 1.5x)"
    )


@pytest.mark.skipif(
    not kernel_available(),
    reason="no C compiler: FIR stages run the NumPy pinned-order transcription",
)
@pytest.mark.skipif(
    usable_cpus() < 4,
    reason="needs >= 4 usable CPUs for the threaded row axis",
)
def test_kernel_fir_speedup_at_16_key_matrix(benchmark, monkeypatch):
    """The acceptance ratio: kernel FIR >= 2x per-row np.convolve.

    A 16-key receiver-scale matrix through the half-band taps: the
    kernel's threaded pinned-order convolution against the per-row
    Python np.convolve loop the FIR stages used to carry.  The pinned
    path is its own bit-pinned spec (C == NumPy transcription
    everywhere, guarded in tests/test_dsp_filters_decimate.py);
    np.convolve agrees to a few ULPs but not bitwise (BLAS dot order).
    """
    from repro.dsp.filters import design_halfband
    from repro.engine.native import fir_batch_native

    monkeypatch.delenv("REPRO_ENGINE_THREADS", raising=False)
    taps = design_halfband(31)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((16, 64 * 512))

    def best(fn) -> float:
        times = []
        for _ in range(3):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    fir_batch_native(x, taps)  # warm the kernel
    t_convolve = best(
        lambda: np.stack([np.convolve(row, taps, mode="same") for row in x])
    )
    t_kernel = best(lambda: fir_batch_native(x, taps))
    speedup = t_convolve / t_kernel
    benchmark.extra_info["backend"] = "vectorized"
    benchmark.extra_info["convolve_ms"] = round(t_convolve * 1e3, 2)
    benchmark.extra_info["kernel_ms"] = round(t_kernel * 1e3, 2)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark(lambda: None)  # ratio computed above; keep the harness happy
    assert speedup >= 2.0, (
        f"kernel FIR {t_kernel * 1e3:.1f} ms vs np.convolve rows "
        f"{t_convolve * 1e3:.1f} ms ({speedup:.1f}x < 2x)"
    )
