"""Oracle-throughput benchmarks for the batched simulation engine.

Measures keys/second through ``SimulationEngine.run`` for both backends
at quick-mode sizes (the fig7 sweep: 16 keys, 2048-sample records), so
the batching speedup is tracked in the BENCH trajectory, plus the
speedup ratio itself as a guarded regression test.
"""

import time

import numpy as np
import pytest

from repro.engine import ModulatorRequest, SimulationEngine, kernel_available
from repro.receiver import Chip, ConfigWord, STANDARDS, ToneStimulus, stimulus_frequency

pytestmark = pytest.mark.bench

STD = STANDARDS[0]
BATCH = 16
N_FFT = 2048


def _requests():
    stim = ToneStimulus.single(stimulus_frequency(STD, 64, N_FFT), -25.0)
    rng = np.random.default_rng(0)
    return [
        ModulatorRequest(
            config=ConfigWord.random(rng), stimulus=stim, fs=STD.fs,
            n_samples=N_FFT, seed=7,
        )
        for _ in range(BATCH)
    ]


def _throughput(backend: str, chip: Chip, requests) -> float:
    engine = SimulationEngine(backend=backend)
    engine.run(chip, requests)  # warm caches and (for native) the kernel
    start = time.perf_counter()
    engine.run(chip, requests)
    return BATCH / (time.perf_counter() - start)


def test_bench_oracle_reference_16keys(benchmark):
    chip = Chip()
    requests = _requests()
    engine = SimulationEngine(backend="reference")
    engine.run(chip, requests)
    result = benchmark(engine.run, chip, requests)
    assert len(result) == BATCH


def test_bench_oracle_vectorized_16keys(benchmark):
    chip = Chip()
    requests = _requests()
    engine = SimulationEngine(backend="vectorized")
    engine.run(chip, requests)
    result = benchmark(engine.run, chip, requests)
    assert len(result) == BATCH


@pytest.mark.skipif(
    not kernel_available(),
    reason="no C compiler: vectorized backend falls back to the reference loop",
)
def test_vectorized_speedup_at_quick_mode_batch(benchmark):
    """The acceptance ratio: >= 3x over per-key simulation at 16 keys.

    Both backends integrate the identical batch (and produce identical
    results — see tests/test_engine.py); the best of three rounds guards
    against scheduler noise on loaded machines.
    """
    chip = Chip()
    requests = _requests()
    ref = max(_throughput("reference", chip, requests) for _ in range(3))
    vec = max(_throughput("vectorized", chip, requests) for _ in range(3))
    speedup = vec / ref
    benchmark.extra_info["reference_keys_per_s"] = round(ref, 1)
    benchmark.extra_info["vectorized_keys_per_s"] = round(vec, 1)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark(lambda: None)  # ratio computed above; keep the harness happy
    assert speedup >= 3.0, (
        f"vectorized {vec:.0f} keys/s vs reference {ref:.0f} keys/s "
        f"({speedup:.1f}x < 3x)"
    )
