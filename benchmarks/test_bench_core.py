"""Micro-benchmarks of the computational substrates themselves.

These time the hot kernels behind the reproductions: the modulator
transient engine (the paper's "20 minutes per SNR point" equivalent),
the full-receiver measurement, the calibration procedure and the SAT
solver.  They use standard repeated-round benchmarking since each call
is short.
"""

import pytest

pytestmark = pytest.mark.bench

import numpy as np

from repro.calibration import Calibrator
from repro.experiments.common import hero_chip
from repro.logic import lock_netlist, ripple_adder
from repro.attacks import SatAttack
from repro.receiver import (
    STANDARDS,
    ToneStimulus,
    measure_modulator_snr,
    measure_receiver_snr,
    stimulus_frequency,
)

STD = STANDARDS[0]


def test_bench_modulator_transient_8192(benchmark):
    chip = hero_chip()
    from repro.experiments.common import calibrated

    key = calibrated(chip, STD).config
    stim = ToneStimulus.single(stimulus_frequency(STD, 64, 8192), -25.0)

    def run():
        return chip.simulate_modulator(key, stim, STD.fs, n_samples=8192, seed=1)

    result = benchmark(run)
    assert result.is_bitstream


def test_bench_snr_measurement(benchmark):
    chip = hero_chip()
    from repro.experiments.common import calibrated

    key = calibrated(chip, STD).config
    m = benchmark(measure_modulator_snr, chip, key, STD, n_fft=4096, seed=1)
    assert m.snr_db > 38.0


def test_bench_receiver_measurement(run_once):
    chip = hero_chip()
    from repro.experiments.common import calibrated

    key = calibrated(chip, STD).config
    m = run_once(measure_receiver_snr, chip, key, STD, n_baseband=512, seed=1)
    assert m.snr_db > 35.0


def test_bench_full_calibration(run_once):
    chip = hero_chip()
    calibrator = Calibrator(n_fft=2048, optimizer_passes=1, sfdr_weight=0.0)
    result = run_once(calibrator.calibrate, chip, STD)
    assert abs(result.achieved_frequency - STD.f_center) < 0.004 * STD.f_center


def test_bench_sat_attack_adder(run_once):
    rng = np.random.default_rng(5)
    original = ripple_adder(4)
    locked = lock_netlist(original, 7, rng)
    attack = SatAttack(locked=locked, oracle=locked.oracle(original))
    result = run_once(attack.run)
    assert result.n_oracle_queries >= 1
