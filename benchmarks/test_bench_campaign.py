"""Campaign throughput benchmarks: fleet scheduling across workers.

A campaign over a fleet of distinct dies is embarrassingly parallel —
every cell rebuilds its own chip and seeds its own RNGs — so pulling
cells through the service's work-stealing scheduler should scale with
cores.  The sequential fleet benchmark feeds the BENCH trajectory on
any machine; the speedup ratios (>= 2x with 4 workers on a balanced
4-chip fleet; work-stealing >= 1.5x static sharding on an imbalanced
fleet with one dominant cell) are guarded wherever enough cores exist
to demonstrate parallelism at all.
"""

import time

import pytest

from repro.campaigns import CampaignCell, ChipSpec, ThreatScenario, run_campaign
from repro.engine import CalibrationStore, usable_cpus

pytestmark = pytest.mark.bench

N_CHIPS = 4


def fleet_cells(budget: int, n_fft: int = 2048) -> list[CampaignCell]:
    """One brute-force cell per die of a 4-chip fleet (no calibration
    in the loop — pure oracle work, the sharding-relevant load)."""
    base = ThreatScenario(budget=budget, n_fft=n_fft, seed=11)
    return [
        CampaignCell("brute-force", base.with_(chip=ChipSpec(chip_id=chip_id)))
        for chip_id in range(N_CHIPS)
    ]


def test_bench_campaign_sequential_fleet(run_once):
    """Cells/second of an in-process 4-chip fleet campaign."""
    cells = fleet_cells(budget=32)
    run_campaign(cells)  # warm the kernel
    result = run_once(run_campaign, cells)
    assert len(result.reports) == N_CHIPS
    assert all(r.n_queries == 32 for r in result.reports)


def test_fleet_provisions_each_die_once(benchmark, tmp_path):
    """The acceptance property: no fleet recalibration across workers.

    A sharded campaign whose cells all target calibration-provisioned
    fabric locks used to recalibrate each die in every worker process
    that touched it.  With the shared calibration store and the
    provisioning phase, the store's compute audit must show exactly one
    calibration per (lot, die, standard) — however many workers ran —
    and the wall time is tracked as the fleet-provisioning benchmark.
    """
    n_chips = 2
    base = ThreatScenario(budget=4, n_fft=1024, seed=11)
    cells = [
        CampaignCell(
            "removal",  # removal adjudication provisions its die's key
            base.with_(chip=ChipSpec(chip_id=chip_id), seed=seed),
        )
        for chip_id in range(n_chips)
        for seed in (11, 12)  # two cells per die: sharing must kick in
    ]
    store = str(tmp_path / "calstore")
    start = time.perf_counter()
    result = run_campaign(cells, n_workers=2, calibration_store=store)
    elapsed = time.perf_counter() - start
    assert len(result.reports) == len(cells)
    events = CalibrationStore(store).compute_events()
    assert len(events) == n_chips, (
        f"fleet of {n_chips} dies was calibrated {len(events)} times "
        f"across workers: {events}"
    )
    benchmark.extra_info["fleet_seconds"] = round(elapsed, 3)
    benchmark.extra_info["calibrations"] = len(events)
    benchmark(lambda: None)  # property asserted above; keep the harness happy


@pytest.mark.skipif(
    usable_cpus() < 4,
    reason="needs >= 4 usable CPUs to demonstrate the sharding speedup",
)
def test_campaign_sharding_speedup(benchmark):
    """The acceptance ratio: >= 2x throughput, 4 workers, 4-chip fleet.

    Sequential and sharded runs execute the identical cell list (and
    return identical reports — tests/test_campaigns.py holds that
    property); per-cell work is sized so worker startup is amortised,
    and best-of-three rounds guard against scheduler noise on shared
    runners.
    """
    cells = fleet_cells(budget=192, n_fft=4096)
    run_campaign(cells)  # warm the kernel before timing anything

    def throughput(n_workers: int) -> float:
        start = time.perf_counter()
        result = run_campaign(cells, n_workers=n_workers)
        assert len(result.reports) == N_CHIPS
        return len(cells) / (time.perf_counter() - start)

    seq = max(throughput(1) for _ in range(3))
    par = max(throughput(4) for _ in range(3))
    speedup = par / seq
    benchmark.extra_info["sequential_cells_per_s"] = round(seq, 3)
    benchmark.extra_info["sharded_cells_per_s"] = round(par, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark(lambda: None)  # ratio computed above; keep the harness happy
    assert speedup >= 2.0, (
        f"4-worker campaign {par:.2f} cells/s vs sequential {seq:.2f} "
        f"cells/s ({speedup:.1f}x < 2x)"
    )


@pytest.mark.skipif(
    usable_cpus() < 4,
    reason="needs >= 4 usable CPUs to demonstrate the scheduling speedup",
)
def test_imbalanced_fleet_work_stealing_beats_static_sharding(benchmark):
    """The scheduler acceptance ratio: work-stealing >= 1.5x static
    sharding on an imbalanced fleet with one dominant cell.

    The cell list is 13 oracle cells: one dominant cell whose budget is
    several times everyone else's, then 12 small cells.  Static
    contiguous sharding over 4 workers pins 3 small cells behind the
    dominant one in its shard (T ~ dominant + 3 small) while the other
    shards go idle; the work-stealing queue gives the dominant cell a
    worker of its own and lets the rest drain the small cells
    (T ~ max(dominant, 4 small)).  Reports are asserted identical
    between the modes, so the ratio compares bit-equal work.
    """
    base = ThreatScenario(budget=24, n_fft=4096, seed=11)
    dominant = CampaignCell(
        "brute-force", base.with_(chip=ChipSpec(chip_id=0), budget=96)
    )
    small = [
        CampaignCell(
            "brute-force", base.with_(chip=ChipSpec(chip_id=1 + i % 3), seed=i)
        )
        for i in range(12)
    ]
    cells = [dominant] + small
    reference = run_campaign(cells).reports  # also warms the kernel

    def wall(scheduler: str) -> float:
        start = time.perf_counter()
        result = run_campaign(cells, n_workers=4, scheduler=scheduler)
        elapsed = time.perf_counter() - start
        assert result.reports == reference
        return elapsed

    static = min(wall("static") for _ in range(3))
    stealing = min(wall("stealing") for _ in range(3))
    speedup = static / stealing
    benchmark.extra_info["static_seconds"] = round(static, 3)
    benchmark.extra_info["stealing_seconds"] = round(stealing, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark(lambda: None)  # ratio computed above; keep the harness happy
    assert speedup >= 1.5, (
        f"work-stealing {stealing:.2f} s vs static sharding {static:.2f} s "
        f"on the imbalanced fleet ({speedup:.2f}x < 1.5x)"
    )


@pytest.mark.skipif(
    usable_cpus() < 4,
    reason="needs >= 4 usable CPUs to demonstrate the sub-task speedup",
)
def test_dominant_cell_subtask_speedup(benchmark):
    """The sub-task acceptance ratio: shattering one dominant cell into
    key-range sub-tasks >= 1.8x over scalar scheduling, 4 workers.

    A single dominant brute-force cell is the worst case for cell-level
    scheduling — one worker owns it, the rest idle (the scalar run
    therefore executes in-process, which IS the honest baseline: without
    partitioning there is nothing to parallelise).  With
    ``subtask_keys`` the cell's key space fans out as speculative
    chunk-score sub-tasks across all four workers, and the sequential
    replay reassembles a byte-identical report — asserted against the
    scalar reports, so the ratio compares bit-equal work.
    """
    base = ThreatScenario(budget=256, n_fft=4096, seed=11)
    scalar = [CampaignCell("brute-force", base)]
    partitioned = [
        CampaignCell(
            "brute-force", base, attack_params=(("subtask_keys", 16),)
        )
    ]
    reference = run_campaign(scalar).reports  # also warms the kernel

    def wall(cells) -> float:
        start = time.perf_counter()
        result = run_campaign(cells, n_workers=4)
        elapsed = time.perf_counter() - start
        assert result.reports == reference
        return elapsed

    scalar_seconds = min(wall(scalar) for _ in range(3))
    subtask_seconds = min(wall(partitioned) for _ in range(3))
    speedup = scalar_seconds / subtask_seconds
    benchmark.extra_info["scalar_seconds"] = round(scalar_seconds, 3)
    benchmark.extra_info["subtask_seconds"] = round(subtask_seconds, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark(lambda: None)  # ratio computed above; keep the harness happy
    assert speedup >= 1.8, (
        f"partitioned dominant cell {subtask_seconds:.2f} s vs scalar "
        f"{scalar_seconds:.2f} s ({speedup:.2f}x < 1.8x)"
    )
