"""Campaign throughput benchmarks: chip-fleet sharding across workers.

A campaign over a fleet of distinct dies is embarrassingly parallel —
every cell rebuilds its own chip and seeds its own RNGs — so sharding
cells across worker processes should scale with cores.  The sequential
fleet benchmark feeds the BENCH trajectory on any machine; the speedup
ratio (>= 2x with 4 workers on a 4-chip fleet) is guarded wherever
enough cores exist to demonstrate parallelism at all.
"""

import os
import time

import pytest

from repro.campaigns import CampaignCell, ChipSpec, ThreatScenario, run_campaign

pytestmark = pytest.mark.bench

N_CHIPS = 4


def usable_cpus() -> int:
    """CPUs this process may run on (portable: affinity is Linux-only)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def fleet_cells(budget: int, n_fft: int = 2048) -> list[CampaignCell]:
    """One brute-force cell per die of a 4-chip fleet (no calibration
    in the loop — pure oracle work, the sharding-relevant load)."""
    base = ThreatScenario(budget=budget, n_fft=n_fft, seed=11)
    return [
        CampaignCell("brute-force", base.with_(chip=ChipSpec(chip_id=chip_id)))
        for chip_id in range(N_CHIPS)
    ]


def test_bench_campaign_sequential_fleet(run_once):
    """Cells/second of an in-process 4-chip fleet campaign."""
    cells = fleet_cells(budget=32)
    run_campaign(cells)  # warm the kernel
    result = run_once(run_campaign, cells)
    assert len(result.reports) == N_CHIPS
    assert all(r.n_queries == 32 for r in result.reports)


@pytest.mark.skipif(
    usable_cpus() < 4,
    reason="needs >= 4 usable CPUs to demonstrate the sharding speedup",
)
def test_campaign_sharding_speedup(benchmark):
    """The acceptance ratio: >= 2x throughput, 4 workers, 4-chip fleet.

    Sequential and sharded runs execute the identical cell list (and
    return identical reports — tests/test_campaigns.py holds that
    property); per-cell work is sized so worker startup is amortised,
    and best-of-three rounds guard against scheduler noise on shared
    runners.
    """
    cells = fleet_cells(budget=192, n_fft=4096)
    run_campaign(cells)  # warm the kernel before timing anything

    def throughput(n_workers: int) -> float:
        start = time.perf_counter()
        result = run_campaign(cells, n_workers=n_workers)
        assert len(result.reports) == N_CHIPS
        return len(cells) / (time.perf_counter() - start)

    seq = max(throughput(1) for _ in range(3))
    par = max(throughput(4) for _ in range(3))
    speedup = par / seq
    benchmark.extra_info["sequential_cells_per_s"] = round(seq, 3)
    benchmark.extra_info["sharded_cells_per_s"] = round(par, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark(lambda: None)  # ratio computed above; keep the harness happy
    assert speedup >= 2.0, (
        f"4-worker campaign {par:.2f} cells/s vs sequential {seq:.2f} "
        f"cells/s ({speedup:.1f}x < 2x)"
    )
