"""Benchmarks regenerating the paper's six result figures.

Each benchmark runs the corresponding experiment driver at reduced (but
representative) parameters and asserts the paper's qualitative shape,
so the harness doubles as a regression gate on the reproduction.
"""

import pytest

pytestmark = pytest.mark.bench

from repro.experiments import (
    fig07_invalid_keys,
    fig08_transient,
    fig09_receiver_snr,
    fig10_psd,
    fig11_dynamic_range,
    fig12_sfdr,
)


def _row(result, label):
    for row in result.rows:
        if row[0] == label:
            return row
    raise AssertionError(f"missing row {label!r}")


def test_bench_fig07_invalid_keys(run_once):
    result = run_once(fig07_invalid_keys.run, n_keys=40, n_fft=4096)
    correct = _row(result, "correct")[1]
    invalid = [r[1] for r in result.rows if r[2] != "correct"]
    assert correct > 40.0, "paper: correct key above 40 dB"
    assert max(invalid) < 35.0, "paper: every invalid key below ~30 dB"
    assert sum(1 for s in invalid if s < 0) > len(invalid) / 2


def test_bench_fig08_transient(run_once):
    result = run_once(fig08_transient.run, n_samples=512)
    assert _row(result, "correct")[1] == "bitstream"
    assert _row(result, "deceptive")[1] == "analog"


def test_bench_fig09_receiver_snr(run_once):
    result = run_once(fig09_receiver_snr.run, n_keys=25, n_baseband=512)
    correct = _row(result, "correct")[1]
    invalid = [r[1] for r in result.rows if r[0] != "correct"]
    assert correct > 38.0
    assert max(invalid) < 15.0, "paper: all invalid keys below 10 dB"


def test_bench_fig10_psd(run_once):
    result = run_once(fig10_psd.run, n_fft=8192)
    contrast = {row[0]: row[1] for row in result.rows}
    assert contrast["correct"] - contrast["deceptive"] > 10.0


def test_bench_fig11_dynamic_range(run_once):
    result = run_once(fig11_dynamic_range.run, power_step_dbm=5.0, n_fft=2048)
    correct = [r for r in result.rows if r[0] == "correct"]
    deceptive = [r for r in result.rows if r[0] == "deceptive"]
    assert max(r[4] for r in correct) > max(r[4] for r in deceptive)
    # Each segment's SNR rises from its low-power end to its sweet spot.
    for seg in (0, 1, 2):
        seg_rows = [r for r in correct if r[1] == seg]
        assert max(r[4] for r in seg_rows) > seg_rows[0][4]


def test_bench_fig12_sfdr(run_once):
    result = run_once(fig12_sfdr.run, n_fft=8192)
    sfdr = {row[0]: row[1] for row in result.rows}
    assert sfdr["correct"] > sfdr["deceptive"] + 15.0
