"""Calibration-latency benchmarks: batched descent, lockstep fleets.

Fleet provisioning is one full 14-step calibration per (die, standard).
Two layers attack its latency, both bit-exactly: within one die, the
step-14 descent's probes are speculated and measured as engine batches
(``Calibrator(batch_probing=True)``); across a lot, the fleet
calibrator advances every die's procedure in lockstep, fusing each
bisection level / back-off probe / descent round of the whole fleet
into one mixed-chip engine batch (``FleetCalibrator.calibrate_fleet``).
Both are tracked here on every machine and guarded as ratios — >= 3x
on the descent, >= 3x on 8-die fleet provisioning — wherever the
kernel's threaded key axis has >= 4 cores to absorb the batches.
"""

import time

import pytest

from repro.calibration import Calibrator, FleetCalibrator
from repro.engine import kernel_available, kernel_threaded, usable_cpus
from repro.process import ChipFactory
from repro.receiver import Chip, STANDARDS

pytestmark = pytest.mark.bench

STD = STANDARDS[0]

#: Fleet-benchmark lot size (the acceptance ratio's 8 dies).
N_FLEET = 8


def _hero_chip() -> Chip:
    return Chip(variations=ChipFactory(lot_seed=2020).draw(0))


def _fleet(n_dies: int = N_FLEET) -> list[Chip]:
    fab = ChipFactory(lot_seed=2020)
    return [Chip(variations=fab.draw(die)) for die in range(n_dies)]


def test_bench_calibrate_batched(run_once):
    """Wall time of one full 14-step calibration, batched probing."""
    chip = _hero_chip()
    Calibrator(batch_probing=True).calibrate(chip, STD)  # warm the kernel
    result = run_once(Calibrator(batch_probing=True).calibrate, chip, STD)
    assert result.success


def test_bench_fleet_provisioning(run_once):
    """Wall time of an 8-die lockstep fleet provisioning (any machine)."""
    chips = _fleet()
    calibrator = FleetCalibrator(n_fft=2048, optimizer_passes=1, sfdr_weight=0.0)
    calibrator.calibrate_fleet(chips[:2], STD)  # warm the kernel
    results = run_once(calibrator.calibrate_fleet, chips, STD)
    # Process variation must show through: every die gets its own key.
    assert len({result.config.encode() for result in results}) == N_FLEET


@pytest.mark.skipif(
    not kernel_available() or not kernel_threaded(),
    reason="needs the compiled kernel with a threaded key axis",
)
@pytest.mark.skipif(
    usable_cpus() < 4,
    reason="needs >= 4 usable CPUs for the fused fleet batches to parallelise",
)
def test_fleet_provisioning_speedup(benchmark):
    """The acceptance ratio: >= 3x on 8-die fleet provisioning.

    The baseline is the sequential :class:`Calibrator` mapped over the
    lot die by die (``batch_probing=False`` — the scalar procedure the
    differential harness pins the fleet results against); the measured
    side is one lockstep ``calibrate_fleet`` over the identical lot.
    Results are bit-identical (asserted below, held axis-by-axis in
    ``tests/test_fleet_calibration.py``), so the ratio is pure
    throughput: every bisection level, back-off probe and descent round
    runs as one lot-wide batch on the kernel's threaded key axis
    instead of eight scalar engine calls.
    """
    kw = dict(n_fft=2048, optimizer_passes=1, sfdr_weight=0.0)
    chips = _fleet()
    sequential = Calibrator(batch_probing=False, **kw)
    fleet = FleetCalibrator(**kw)
    fleet_results = fleet.calibrate_fleet(chips, STD)  # warm every cache

    def sequential_seconds() -> float:
        start = time.perf_counter()
        for chip in chips:
            sequential.calibrate(chip, STD)
        return time.perf_counter() - start

    def fleet_seconds() -> float:
        start = time.perf_counter()
        fleet.calibrate_fleet(chips, STD)
        return time.perf_counter() - start

    sequential_results = [sequential.calibrate(chip, STD) for chip in chips]
    assert [r.config for r in fleet_results] == [
        r.config for r in sequential_results
    ]
    t_seq = min(sequential_seconds() for _ in range(2))
    t_fleet = min(fleet_seconds() for _ in range(2))
    speedup = t_seq / t_fleet
    benchmark.extra_info["n_dies"] = N_FLEET
    benchmark.extra_info["sequential_seconds"] = round(t_seq, 3)
    benchmark.extra_info["fleet_seconds"] = round(t_fleet, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark(lambda: None)  # ratio computed above; keep the harness happy
    assert speedup >= 3.0, (
        f"fleet provisioning {t_fleet:.2f}s vs sequential {t_seq:.2f}s "
        f"({speedup:.1f}x < 3x)"
    )


@pytest.mark.skipif(
    not kernel_available() or not kernel_threaded(),
    reason="needs the compiled kernel with a threaded key axis",
)
@pytest.mark.skipif(
    usable_cpus() < 4,
    reason="needs >= 4 usable CPUs for the batched probes to parallelise",
)
def test_batched_descent_speedup(benchmark):
    """The acceptance ratio: >= 3x on the step-14 descent latency.

    Both calibrators run the identical procedure and produce the
    identical key (guarded in tests/test_calibration.py); only the
    probing strategy differs, so the ratio isolates the speculative
    batched descent.  Steps 1-13 are shared, sequential-by-nature work
    (binary searches on measured oscillation), so the guard times the
    bias optimisation itself.
    """
    chip = _hero_chip()
    std = STANDARDS[0]
    sequential = Calibrator(batch_probing=False)
    batched = Calibrator(batch_probing=True, speculation="deep")

    # Shared steps 1-13 setup, done once outside the timers.
    from repro.calibration.procedure import (
        NOMINAL_BIAS_CODES,
        NOMINAL_BUFFER_CODE,
        NOMINAL_DELAY_CODE,
    )
    from repro.receiver import ConfigWord

    config = ConfigWord(
        buffer_code=NOMINAL_BUFFER_CODE,
        delay_code=NOMINAL_DELAY_CODE,
        **NOMINAL_BIAS_CODES,
    )
    config, _ = sequential.tune_capacitor_arrays(chip, config, std)
    config = sequential.back_off_q_enhancement(chip, config, std)
    config = config.replace(fb_en=1, dac_en=1, comp_clk_en=1, gmin_en=1)

    def descent_seconds(calibrator: Calibrator) -> float:
        start = time.perf_counter()
        calibrator.optimise_biases(chip, config, std)
        return time.perf_counter() - start

    descent_seconds(batched)  # warm every cache the descent touches
    t_seq = min(descent_seconds(sequential) for _ in range(3))
    t_bat = min(descent_seconds(batched) for _ in range(3))
    speedup = t_seq / t_bat
    benchmark.extra_info["sequential_seconds"] = round(t_seq, 3)
    benchmark.extra_info["batched_seconds"] = round(t_bat, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark(lambda: None)  # ratio computed above; keep the harness happy
    assert speedup >= 3.0, (
        f"batched descent {t_bat:.2f}s vs sequential {t_seq:.2f}s "
        f"({speedup:.1f}x < 3x)"
    )
