"""Calibration-latency benchmarks: the speculative batched descent.

Fleet provisioning is one full 14-step calibration per (die, standard),
and step 14 — the bias coordinate descent — dominates its latency.  The
descent's probes are now speculated and measured as engine batches
(``Calibrator(batch_probing=True)``), bit-identically to the sequential
descent, so the latency cut is a pure throughput claim: tracked here on
every machine, and guarded as a ratio (>= 3x on the descent) wherever
the kernel's threaded key axis has >= 4 cores to absorb the batches.
"""

import time

import pytest

from repro.calibration import Calibrator
from repro.engine import kernel_available, kernel_threaded, usable_cpus
from repro.process import ChipFactory
from repro.receiver import Chip, STANDARDS

pytestmark = pytest.mark.bench

STD = STANDARDS[0]


def _hero_chip() -> Chip:
    return Chip(variations=ChipFactory(lot_seed=2020).draw(0))


def test_bench_calibrate_batched(run_once):
    """Wall time of one full 14-step calibration, batched probing."""
    chip = _hero_chip()
    Calibrator(batch_probing=True).calibrate(chip, STD)  # warm the kernel
    result = run_once(Calibrator(batch_probing=True).calibrate, chip, STD)
    assert result.success


@pytest.mark.skipif(
    not kernel_available() or not kernel_threaded(),
    reason="needs the compiled kernel with a threaded key axis",
)
@pytest.mark.skipif(
    usable_cpus() < 4,
    reason="needs >= 4 usable CPUs for the batched probes to parallelise",
)
def test_batched_descent_speedup(benchmark):
    """The acceptance ratio: >= 3x on the step-14 descent latency.

    Both calibrators run the identical procedure and produce the
    identical key (guarded in tests/test_calibration.py); only the
    probing strategy differs, so the ratio isolates the speculative
    batched descent.  Steps 1-13 are shared, sequential-by-nature work
    (binary searches on measured oscillation), so the guard times the
    bias optimisation itself.
    """
    chip = _hero_chip()
    std = STANDARDS[0]
    sequential = Calibrator(batch_probing=False)
    batched = Calibrator(batch_probing=True, speculation="deep")

    # Shared steps 1-13 setup, done once outside the timers.
    from repro.calibration.procedure import (
        NOMINAL_BIAS_CODES,
        NOMINAL_BUFFER_CODE,
        NOMINAL_DELAY_CODE,
    )
    from repro.receiver import ConfigWord

    config = ConfigWord(
        buffer_code=NOMINAL_BUFFER_CODE,
        delay_code=NOMINAL_DELAY_CODE,
        **NOMINAL_BIAS_CODES,
    )
    config, _ = sequential.tune_capacitor_arrays(chip, config, std)
    config = sequential.back_off_q_enhancement(chip, config, std)
    config = config.replace(fb_en=1, dac_en=1, comp_clk_en=1, gmin_en=1)

    def descent_seconds(calibrator: Calibrator) -> float:
        start = time.perf_counter()
        calibrator.optimise_biases(chip, config, std)
        return time.perf_counter() - start

    descent_seconds(batched)  # warm every cache the descent touches
    t_seq = min(descent_seconds(sequential) for _ in range(3))
    t_bat = min(descent_seconds(batched) for _ in range(3))
    speedup = t_seq / t_bat
    benchmark.extra_info["sequential_seconds"] = round(t_seq, 3)
    benchmark.extra_info["batched_seconds"] = round(t_bat, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark(lambda: None)  # ratio computed above; keep the harness happy
    assert speedup >= 3.0, (
        f"batched descent {t_bat:.2f}s vs sequential {t_seq:.2f}s "
        f"({speedup:.1f}x < 3x)"
    )
