"""Benchmarks regenerating the paper's analysis tables."""

import pytest

pytestmark = pytest.mark.bench

from repro.experiments import (
    security_optimization,
    security_sat,
    sweep_standards,
    table_attack_cost,
    table_baselines,
    table_keyspace,
)


def test_bench_attack_cost_table(run_once):
    result = run_once(table_attack_cost.run, n_keys=40, n_fft=2048)
    values = dict((row[0], row[1]) for row in result.rows)
    assert "2^64" in values["key space"]
    assert values["unlocking keys seen in random sample"].startswith("0")


def test_bench_keyspace_table(run_once):
    result = run_once(table_keyspace.run, distances=(1, 4, 16), trials_per_distance=4)
    assert len(result.rows) >= 4


def test_bench_baseline_table(run_once):
    result = run_once(table_baselines.run, n_random_keys=12)
    rows = {row[0]: row for row in result.rows}
    proposed = rows["this work"]
    assert proposed[3] == 0.0 and proposed[4] == 0.0
    assert proposed[6].startswith("n/a")
    # Bias-based prior schemes fall to the removal attack.
    for ref in ("[6]", "[7]", "[8]", "[11]"):
        assert rows[ref][6] == "succeeds"


def test_bench_standards_sweep(run_once):
    result = run_once(sweep_standards.run, standard_indices=(0, 7), n_keys=12, n_fft=2048)
    for row in result.rows:
        assert row[5] == 0, f"{row[0]}: no invalid key may survive adjudication"
        assert row[2] > 38.0, f"{row[0]}: correct key must be functional"


def test_bench_sat_attack(run_once):
    result = run_once(security_sat.run, n_key_bits=7)
    outcomes = [row[1] for row in result.rows]
    assert sum(1 for o in outcomes if "key recovered" in o) == 2
    assert any("not applicable" in o for o in outcomes)


def test_bench_optimization_attacks(run_once):
    result = run_once(security_optimization.run, budget=80, n_fft=2048)
    rows = {row[0]: row for row in result.rows}
    assert rows["legitimate calibration (secret algorithm)"][3]
    assert not rows["brute force"][3]
    assert not rows["simulated annealing"][3]
