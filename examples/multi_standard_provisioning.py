"""Multi-standard provisioning with all three key-management schemes.

Calibrates one chip for three standards (Bluetooth, WiFi-b, GPS) and
walks the configuration words through the paper's Fig. 3 options:

* tamper-proof memory LUT (Fig. 3a),
* PUF + XOR user keys (Fig. 3b) — including the power-cycle behaviour
  that defeats recycled chips, and
* RSA remote activation for untrusted, high-volume test facilities.

Run:  python examples/multi_standard_provisioning.py
"""

from repro.calibration import Calibrator
from repro.keymgmt import ArbiterPuf, PufXorScheme, RemoteActivator, TamperMemoryScheme
from repro.process import ChipFactory
from repro.receiver import Chip, standard_by_name


def main() -> None:
    chip = Chip(variations=ChipFactory(lot_seed=2020).draw(3))
    standards = [standard_by_name(n) for n in ("BLUETOOTH", "WIFI11B", "GPS_L1")]
    calibrator = Calibrator(n_fft=2048, optimizer_passes=1, sfdr_weight=0.0)

    configs = {}
    for std in standards:
        result = calibrator.calibrate(chip, std)
        configs[std.index] = result.config
        print(f"{std.name:10s}: key {result.config.encode():#018x}  "
              f"SNR {result.snr_db:5.1f} dB  f0 {result.achieved_frequency/1e9:.4f} GHz")

    print("\n-- Fig. 3(a): tamper-proof memory --")
    mem_scheme = TamperMemoryScheme(chip_id=chip.chip_id)
    mem_scheme.provision(configs)
    loaded = mem_scheme.configuration_for_mode(standards[0].index)
    print(f"power-on load for {standards[0].name}: {loaded.encode():#018x} "
          f"(matches: {loaded == configs[standards[0].index]})")

    print("\n-- Fig. 3(b): PUF + XOR user keys --")
    puf_scheme = PufXorScheme(ArbiterPuf(chip_id=chip.chip_id))
    user_keys = puf_scheme.enroll(configs)
    print("user keys handed to the customer:",
          {k: hex(v) for k, v in user_keys.items()})
    puf_scheme.power_on(user_keys)
    ok = puf_scheme.configuration_for_mode(standards[1].index)
    print(f"recombined configuration matches: {ok == configs[standards[1].index]}")
    puf_scheme.power_off()
    try:
        puf_scheme.configuration_for_mode(standards[1].index)
    except KeyError as exc:
        print(f"after power cycle without user keys (recycled chip): {exc}")

    print("\n-- remote activation across an untrusted test facility --")
    activator = RemoteActivator(chip_id=chip.chip_id, rsa_bits=128)
    ciphertexts = RemoteActivator.design_house_encrypt(configs, activator.public_key)
    print("facility only ever sees ciphertexts, e.g.",
          hex(ciphertexts[standards[0].index]))
    activator.activate(ciphertexts)
    final = activator.configuration_for_mode(standards[0].index)
    print(f"chip decrypted its configuration internally: "
          f"{final == configs[standards[0].index]}")


if __name__ == "__main__":
    main()
