"""Full attack x defense x standard sweep through the foundry service.

Expands every registered attack against the proposed fabric lock and
three baseline schemes, submits the campaign as one service job
(optionally across worker processes and/or over a fleet of distinct
dies), streams per-cell progress as the work-stealing scheduler
completes tasks, prints the outcome matrix and can write the
machine-readable JSON artefact.  With ``--journal DIR`` the campaign
is resumable: kill it mid-run and re-run the same command — finished
cells replay from the journal instead of re-executing.

Run:  python examples/campaign_matrix.py
      python examples/campaign_matrix.py --workers 4 --chips 0 1 2 3
      python examples/campaign_matrix.py --workers 2 --journal /tmp/camp
      python examples/campaign_matrix.py --json campaign.json
"""

import argparse

from repro.attacks.cost import format_years
from repro.campaigns import ThreatScenario, expand_matrix
from repro.service import CampaignJob, FoundryService

SECONDS_PER_YEAR = 365.25 * 86400

#: Every attack of Sec. IV-B, with the transfer donor named explicitly.
ATTACKS = [
    "brute-force",
    "annealing",
    "genetic",
    ("transfer", {"donor_chip_id": 1}),
    "removal",
    "sat",
]

#: The proposed scheme plus three prior-work baselines.
SCHEMES = [
    "fabric",
    ("mixlock", {"n_key_bits": 8}),
    ("calibration-lock", {"n_key_bits": 8}),
    "memristor",
]


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1, help="worker processes")
    parser.add_argument("--budget", type=int, default=48, help="query budget per cell")
    parser.add_argument(
        "--standards", type=int, nargs="+", default=[0], metavar="IDX",
        help="standard indices to sweep",
    )
    parser.add_argument(
        "--chips", type=int, nargs="+", default=[0], metavar="ID",
        help="die ids of the oracle-chip fleet",
    )
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the JSON campaign artefact here")
    parser.add_argument("--journal", default=None, metavar="DIR",
                        help="resumable job journal (finished cells survive "
                             "a kill; re-run the same command to resume)")
    args = parser.parse_args(argv)

    cells = expand_matrix(
        attacks=ATTACKS,
        schemes=SCHEMES,
        standard_indices=tuple(args.standards),
        chip_ids=tuple(args.chips),
        base=ThreatScenario(budget=args.budget, n_fft=1024, seed=29),
    )
    print(f"campaign: {len(ATTACKS)} attacks x {len(SCHEMES)} schemes x "
          f"{len(args.standards)} standard(s) x {len(args.chips)} chip(s) "
          f"= {len(cells)} cells, {args.workers} worker(s)\n")

    handle = FoundryService().submit(
        CampaignJob(cells=tuple(cells), n_workers=args.workers,
                    journal=args.journal)
    )
    done = 0
    for event in handle.stream():
        if event.kind in ("cell", "replay"):
            done += 1
            tag = " (journal)" if event.kind == "replay" else ""
            print(f"[{done:3d}/{len(cells)}] {event.label}{tag} "
                  f"({event.seconds:.2f} s)")
        else:
            print(f"[provision] {event.label} ({event.seconds:.2f} s)")
    campaign = handle.result()
    print()
    if args.json:
        from repro.campaigns.serialization import (
            campaign_result_to_dict,
            dump_json,
        )

        dump_json(args.json, campaign_result_to_dict(campaign, cells=cells))

    header = f"{'attack':12s} {'target':18s} {'std':>3s} {'chip':>4s}  {'outcome':8s} {'queries':>7s}  {'lab time':>10s}"
    print(header)
    print("-" * len(header))
    for cell, report in zip(cells, campaign.reports):
        if not report.applicable:
            outcome = "n/a"
        elif report.success:
            outcome = "BROKEN"
        else:
            outcome = "holds"
        lab = format_years(report.lab_seconds / SECONDS_PER_YEAR)
        print(f"{cell.attack:12s} {cell.scenario.scheme:18s} "
              f"{cell.scenario.standard_index:3d} {cell.scenario.chip.chip_id:4d}  "
              f"{outcome:8s} {report.n_queries:7d}  {lab:>10s}")

    broken = {r.scenario.scheme for r in campaign.successes()}
    print(f"\n{len(campaign.successes())} of {len(cells)} cells broke their "
          f"target ({campaign.total_queries()} metered queries total)")
    print(f"schemes broken by at least one attack: {sorted(broken) or 'none'}")
    fabric_broken = sorted(
        {r.attack for r in campaign.successes() if r.scenario.scheme == "fabric"}
    )
    if fabric_broken:
        print(f"fabric lock broken by: {', '.join(fabric_broken)} — the "
              "leaked-key avenue is the one the paper concedes (Sec. IV-B.3)")
    else:
        print("the 64-bit fabric lock held against every attack in this "
              "budget while the baselines fell (Sec. VI-B)")
    if args.json:
        print(f"JSON artefact written to {args.json}")


if __name__ == "__main__":
    main()
