"""Prior-work comparison: the Fig. 1 schemes, executed.

Builds all six prior analog locking schemes plus the proposed fabric
lock, runs each against random keys, then the removal attack against
all of them — reproducing Sec. II's argument as running code.

Run:  python examples/baseline_comparison.py
"""

import numpy as np

from repro.attacks import removal_comparison
from repro.experiments import table_baselines


def main() -> None:
    result = table_baselines.run(n_random_keys=12)
    print(result.format_table())

    print("\nremoval-attack narratives:")
    schemes = table_baselines.build_schemes()
    for outcome in removal_comparison(schemes):
        verdict = (
            "SUCCEEDS" if outcome.succeeds
            else ("resisted" if outcome.applicable else "NOT APPLICABLE")
        )
        print(f"  {outcome.reference:10s} {verdict:15s} {outcome.effort}")


if __name__ == "__main__":
    main()
