"""Supply-chain threat scenarios (paper Sec. IV-C), simulated end to end.

A design house orders 8 chips from an untrusted foundry but only
activates the 5 it paid for.  The scenario walks through:

* overproduction: extra dies exist but were never calibrated/activated,
* cloning: a perfect netlist copy without keys is good-for-nothing,
* remarking: a failing die is loaded with a wrong configuration so it
  cannot be resold as a passing part, and
* recycling: with PUF/XOR keys loaded per power-on, a pulled chip dies.

Run:  python examples/supply_chain_scenarios.py
"""

import numpy as np

from repro.calibration import Calibrator
from repro.keymgmt import ArbiterPuf, PufXorScheme
from repro.locking import PerformanceSpec
from repro.process import ChipFactory
from repro.receiver import Chip, ConfigWord, STANDARDS, measure_modulator_snr

LOT_SIZE = 8
PAID_FOR = 5


def main() -> None:
    fab = ChipFactory(lot_seed=2020)
    standard = STANDARDS[0]
    spec = PerformanceSpec.for_standard(standard)
    calibrator = Calibrator(n_fft=4096, optimizer_passes=2, sfdr_weight=0.0)
    rng = np.random.default_rng(9)

    print(f"foundry fabricates {LOT_SIZE} dies; design house activates {PAID_FOR}\n")
    activated = {}
    for chip_id in range(LOT_SIZE):
        chip = Chip(variations=fab.draw(chip_id))
        if chip_id < PAID_FOR:
            result = calibrator.calibrate(chip, standard)
            passes = result.snr_db >= spec.snr_min_db
            if passes:
                activated[chip_id] = (chip, result.config)
                print(f"die {chip_id}: calibrated, SNR {result.snr_db:5.1f} dB -> shipped")
            else:
                # Remarking countermeasure: load a wrong configuration so
                # the failing die is totally malfunctional if remarked.
                poison = result.config.flip_bits(list(rng.choice(64, 12, replace=False)))
                snr = measure_modulator_snr(chip, poison, standard, n_fft=2048).snr_db
                print(f"die {chip_id}: FAILS spec ({result.snr_db:5.1f} dB) -> "
                      f"poisoned config loaded, now {snr:5.1f} dB (remarking-proof)")
        else:
            # Overproduced dies: the foundry has silicon but no keys.
            guess = ConfigWord.random(rng)
            snr = measure_modulator_snr(chip, guess, standard, n_fft=2048).snr_db
            print(f"die {chip_id}: overproduced, foundry's best guess key -> "
                  f"{snr:5.1f} dB (good-for-nothing)")

    if not activated:
        print("\n(no die passed specification in this lot — rerun with a "
              "different lot seed)")
        return
    donor_id, (chip0, cfg0) = next(iter(activated.items()))

    print(f"\ncloning: an attacker reverse-engineers the netlist perfectly, "
          f"fabricates a clone of die {donor_id}...")
    clone = Chip(variations=fab.draw(100))  # new silicon, new variations
    snr = measure_modulator_snr(clone, cfg0, standard, n_fft=2048).snr_db
    print(f"  die-{donor_id}'s stolen key on the clone: {snr:5.1f} dB "
          f"(keys are chip-unique; spec needs {spec.snr_min_db:.0f} dB)")

    print("\nrecycling: a legitimately activated chip is desoldered and resold...")
    scheme = PufXorScheme(ArbiterPuf(chip_id=chip0.chip_id))
    user_keys = scheme.enroll({standard.index: cfg0})
    scheme.power_on(user_keys)
    print(f"  original owner (user keys loaded): config recovered = "
          f"{scheme.configuration_for_mode(standard.index) == cfg0}")
    scheme.power_off()
    try:
        scheme.configuration_for_mode(standard.index)
    except KeyError:
        print("  after resale without the user-key set: chip is dead at power-on")


if __name__ == "__main__":
    main()
