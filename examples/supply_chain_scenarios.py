"""Supply-chain threat scenarios (paper Sec. IV-C), simulated end to end.

A design house orders 8 chips from an untrusted foundry but only
activates the 5 it paid for.  The scenario walks through:

* overproduction: the extra dies exist but were never calibrated — a
  brute-force campaign over that fleet (one cell per die, through the
  unified attack API) shows the foundry's silicon is good-for-nothing,
* cloning: a perfect netlist copy without keys is good-for-nothing,
* remarking: a failing die is loaded with a wrong configuration so it
  cannot be resold as a passing part, and
* recycling: with PUF/XOR keys loaded per power-on, a pulled chip dies.

Run:  python examples/supply_chain_scenarios.py
"""

import numpy as np

from repro.calibration import Calibrator
from repro.campaigns import CampaignCell, ChipSpec, ThreatScenario, run_campaign
from repro.keymgmt import ArbiterPuf, PufXorScheme
from repro.locking import PerformanceSpec
from repro.receiver import STANDARDS, measure_modulator_snr

LOT_SIZE = 8
PAID_FOR = 5
LOT_SEED = 2020


def main() -> None:
    standard = STANDARDS[0]
    spec = PerformanceSpec.for_standard(standard)
    calibrator = Calibrator(n_fft=4096, optimizer_passes=2, sfdr_weight=0.0)
    rng = np.random.default_rng(9)

    print(f"foundry fabricates {LOT_SIZE} dies; design house activates {PAID_FOR}\n")
    activated = {}
    for chip_id in range(PAID_FOR):
        chip = ChipSpec(lot_seed=LOT_SEED, chip_id=chip_id).build()
        result = calibrator.calibrate(chip, standard)
        if result.snr_db >= spec.snr_min_db:
            activated[chip_id] = (chip, result.config)
            print(f"die {chip_id}: calibrated, SNR {result.snr_db:5.1f} dB -> shipped")
        else:
            # Remarking countermeasure: load a wrong configuration so
            # the failing die is totally malfunctional if remarked.
            poison = result.config.flip_bits(list(rng.choice(64, 12, replace=False)))
            snr = measure_modulator_snr(chip, poison, standard, n_fft=2048).snr_db
            print(f"die {chip_id}: FAILS spec ({result.snr_db:5.1f} dB) -> "
                  f"poisoned config loaded, now {snr:5.1f} dB (remarking-proof)")

    # Overproduced dies: the foundry has silicon but no keys.  One
    # brute-force campaign cell per die, sharded like any chip fleet.
    overproduced = [
        CampaignCell(
            "brute-force",
            ThreatScenario(
                chip=ChipSpec(lot_seed=LOT_SEED, chip_id=chip_id),
                standard_index=standard.index,
                budget=1,  # the foundry's one best-guess key per die
                n_fft=2048,
                seed=chip_id,
            ),
        )
        for chip_id in range(PAID_FOR, LOT_SIZE)
    ]
    for cell, report in zip(overproduced, run_campaign(overproduced).reports):
        print(f"die {cell.scenario.chip.chip_id}: overproduced, foundry's best "
              f"guess key -> {report.best_metric_db:5.1f} dB (good-for-nothing)")

    if not activated:
        print("\n(no die passed specification in this lot — rerun with a "
              "different lot seed)")
        return
    donor_id, (chip0, cfg0) = next(iter(activated.items()))

    print(f"\ncloning: an attacker reverse-engineers the netlist perfectly, "
          f"fabricates a clone of die {donor_id}...")
    clone_scenario = ThreatScenario(
        chip=ChipSpec(lot_seed=LOT_SEED, chip_id=100),  # new silicon
        standard_index=standard.index,
        n_fft=2048,
    )
    snr = clone_scenario.oracle().snr(cfg0)
    print(f"  die-{donor_id}'s stolen key on the clone: {snr:5.1f} dB "
          f"(keys are chip-unique; spec needs {spec.snr_min_db:.0f} dB)")

    print("\nrecycling: a legitimately activated chip is desoldered and resold...")
    scheme = PufXorScheme(ArbiterPuf(chip_id=chip0.chip_id))
    user_keys = scheme.enroll({standard.index: cfg0})
    scheme.power_on(user_keys)
    print(f"  original owner (user keys loaded): config recovered = "
          f"{scheme.configuration_for_mode(standard.index) == cfg0}")
    scheme.power_off()
    try:
        scheme.configuration_for_mode(standard.index)
    except KeyError:
        print("  after resale without the user-key set: chip is dead at power-on")


if __name__ == "__main__":
    main()
