"""Quickstart: lock a programmable RF receiver through its own fabric.

Fabricates one chip (with its unique process variations), runs the
paper's 14-step calibration to obtain the secret 64-bit configuration
word, and shows that the chip works with that key and breaks with any
other — no lock circuitry anywhere.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.calibration import Calibrator
from repro.locking import ProgrammabilityLock
from repro.process import ChipFactory
from repro.receiver import Chip, ConfigWord, STANDARDS


def main() -> None:
    standard = STANDARDS[0]  # the paper's 3 GHz demonstration point
    chip = Chip(variations=ChipFactory(lot_seed=2020).draw(0))
    print(f"fabricated chip {chip.chip_id}; target standard {standard.name} "
          f"(F0 = {standard.f_center/1e9:.1f} GHz, Fs = 4*F0)")

    lock = ProgrammabilityLock(
        chip=chip, calibrator=Calibrator(n_fft=4096, optimizer_passes=2)
    )
    calibration = lock.provision(standards=(standard,))[standard.index]
    key = calibration.config
    print(f"calibration: {calibration.n_measurements} measurements, "
          f"centre frequency {calibration.achieved_frequency/1e9:.4f} GHz")
    print(f"secret key (64-bit configuration word): {key.encode():#018x}")

    evaluation = lock.evaluate_key(key, standard, include_sfdr=True)
    print(f"correct key : SNR {evaluation.snr_db:5.1f} dB  "
          f"SFDR {evaluation.sfdr_db:5.1f} dB  unlocked={evaluation.unlocked}")

    rng = np.random.default_rng(7)
    for trial in range(3):
        wrong = ConfigWord.random(rng)
        bad = lock.evaluate_key(wrong, standard, n_fft=4096)
        print(f"random key {trial}: SNR {bad.snr_db:5.1f} dB  "
              f"unlocked={bad.unlocked}")

    # Flip three load-bearing bits: the feedback enable, a mid coarse-cap
    # bit and a Gmin bias bit.  (Flipping only fine-cap LSBs can leave the
    # chip working — the paper notes a small set of near-equivalent keys.)
    fb_bit = ConfigWord.field_bit_range("fb_en")[0]
    cc_bit = ConfigWord.field_bit_range("cc_coarse")[0] + 5
    gm_bit = ConfigWord.field_bit_range("gmin_code")[0] + 4
    near_miss = key.flip_bits([fb_bit, cc_bit, gm_bit])
    nm = lock.evaluate_key(near_miss, standard, n_fft=4096)
    print(f"3-bit flip  : SNR {nm.snr_db:5.1f} dB  unlocked={nm.unlocked}")
    print("overheads:", lock.overhead_summary(), "(nothing was added on-chip)")


if __name__ == "__main__":
    main()
