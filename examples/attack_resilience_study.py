"""Attack-resilience study: every attack of Sec. IV-B against one chip.

Runs brute force, simulated annealing and the leaked-key transfer
attack as one campaign through the unified attack API (every cell
returns the same AttackReport schema), prints the cost accounting of
Sec. VI-B.1, and shows the SAT attack refusing the analog target while
dismantling a logic-locked baseline.

Run:  python examples/attack_resilience_study.py
"""

from repro.attacks import AttackCostModel, format_years
from repro.baselines import MixLock, ProposedFabricLock
from repro.calibration import Calibrator
from repro.campaigns import CampaignCell, ChipSpec, Sat, ThreatScenario, run_campaign
from repro.locking import ProgrammabilityLock
from repro.locking.metrics import structural_unlocking_bound
from repro.receiver import STANDARDS

BUDGET = 80


def main() -> None:
    victim_spec = ChipSpec(chip_id=0)
    victim = victim_spec.build()
    standard = STANDARDS[0]
    calibrator = Calibrator(n_fft=2048, optimizer_passes=1, sfdr_weight=0.0)
    secret = calibrator.calibrate(victim, standard)
    print(f"victim chip calibrated: SNR {secret.snr_db:.1f} dB with "
          f"{secret.n_measurements} guided measurements\n")

    # The attacker's leaked key: the donor die calibrated on the same
    # (attacker-grade) bench flow.
    donor = ChipSpec(chip_id=5).build()
    leaked = calibrator.calibrate(donor, standard).config

    base = ThreatScenario(
        chip=victim_spec, standard_index=standard.index, budget=BUDGET, n_fft=2048
    )
    cells = [
        CampaignCell("brute-force", base.with_(seed=1)),
        CampaignCell("annealing", base.with_(seed=2)),
        CampaignCell(
            "transfer",
            base.with_(seed=3),
            attack_params=(("leaked_key", leaked.encode()),),
        ),
    ]
    brute, sa, transfer = run_campaign(cells).reports

    print(f"brute force     : best {brute.best_metric_db:5.1f} dB after "
          f"{brute.extra('n_trials')} trials -> {brute.summary()}")
    print(f"annealing       : best {sa.best_metric_db:5.1f} dB after "
          f"{sa.n_queries} queries (success={sa.success})")
    print(f"transfer attack : {transfer.extra('start_snr_db'):5.1f} dB verbatim -> "
          f"{transfer.best_metric_db:5.1f} dB after {transfer.n_queries} queries "
          f"(success={transfer.success})  <- the avenue the paper concedes")

    bound = structural_unlocking_bound(victim, secret.config)
    sim = AttackCostModel.simulation()
    print(f"\nstructural unlocking fraction <= {bound:.2e} "
          f"-> expected brute-force time at 20 min/point: "
          f"{format_years((1 / bound) * sim.snr_seconds / (365.25 * 86400))}")

    print("\n-- SAT attack applicability --")
    lock = ProgrammabilityLock(chip=victim)
    lock._lut[standard.index] = secret
    fabric = ProposedFabricLock(lock=lock, standard=standard)
    fabric_report = Sat().adjudicate(fabric)
    print(f"fabric lock: {fabric_report.extra('reason')}")
    mixlock = MixLock(n_key_bits=8)
    sat_report = Sat().adjudicate(mixlock)
    print(f"MixLock baseline: key recovered with {sat_report.n_queries} "
          f"oracle queries (functionally correct: {sat_report.success})")


if __name__ == "__main__":
    main()
