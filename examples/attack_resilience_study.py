"""Attack-resilience study: every attack of Sec. IV-B against one chip.

Runs brute force, simulated annealing, a genetic algorithm and the
leaked-key transfer attack against a measurement oracle, prints the
cost accounting of Sec. VI-B.1, and shows the SAT attack refusing the
analog target while dismantling a logic-locked baseline.

Run:  python examples/attack_resilience_study.py
"""

import numpy as np

from repro.attacks import (
    AttackCostModel,
    BruteForceAttack,
    MeasurementOracle,
    SatAttackNotApplicable,
    SimulatedAnnealingAttack,
    TransferAttack,
    assert_sat_attack_applicable,
    format_years,
)
from repro.baselines import MixLock
from repro.calibration import Calibrator
from repro.locking import ProgrammabilityLock
from repro.locking.metrics import structural_unlocking_bound
from repro.process import ChipFactory
from repro.receiver import Chip, STANDARDS

BUDGET = 80


def main() -> None:
    fab = ChipFactory(lot_seed=2020)
    victim = Chip(variations=fab.draw(0))
    standard = STANDARDS[0]
    calibrator = Calibrator(n_fft=2048, optimizer_passes=1, sfdr_weight=0.0)
    secret = calibrator.calibrate(victim, standard)
    print(f"victim chip calibrated: SNR {secret.snr_db:.1f} dB with "
          f"{secret.n_measurements} guided measurements\n")

    oracle = MeasurementOracle(chip=victim, standard=standard, n_fft=2048)
    brute = BruteForceAttack(oracle, rng=np.random.default_rng(1)).run(BUDGET)
    print(f"brute force     : best {brute.best_snr_db:5.1f} dB after "
          f"{brute.n_trials} trials -> {brute.summary()}")

    oracle = MeasurementOracle(chip=victim, standard=standard, n_fft=2048)
    sa = SimulatedAnnealingAttack(oracle, rng=np.random.default_rng(2)).run(BUDGET)
    print(f"annealing       : best {sa.best_score:5.1f} dB after "
          f"{sa.n_queries} queries (success={sa.success})")

    donor = Chip(variations=fab.draw(5))
    leaked = calibrator.calibrate(donor, standard).config
    oracle = MeasurementOracle(chip=victim, standard=standard, n_fft=2048)
    transfer = TransferAttack(oracle, rng=np.random.default_rng(3)).run(leaked)
    print(f"transfer attack : {transfer.start_snr_db:5.1f} dB verbatim -> "
          f"{transfer.final_snr_db:5.1f} dB after {transfer.n_queries} queries "
          f"(success={transfer.success})  <- the avenue the paper concedes")

    bound = structural_unlocking_bound(victim, secret.config)
    sim = AttackCostModel.simulation()
    print(f"\nstructural unlocking fraction <= {bound:.2e} "
          f"-> expected brute-force time at 20 min/point: "
          f"{format_years((1 / bound) * sim.snr_seconds / (365.25 * 86400))}")

    print("\n-- SAT attack applicability --")
    lock = ProgrammabilityLock(chip=victim)
    try:
        assert_sat_attack_applicable(lock)
    except SatAttackNotApplicable as exc:
        print(f"fabric lock: {exc}")
    mixlock = MixLock(n_key_bits=8)
    sat = mixlock.run_sat_attack()
    print(f"MixLock baseline: key recovered with {sat.n_oracle_queries} "
          f"oracle queries (functionally correct: {mixlock.unlocks(sat.key)})")


if __name__ == "__main__":
    main()
