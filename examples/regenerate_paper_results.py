"""Regenerate every figure/table of the paper in one run.

Thin wrapper over the experiment runner; pass ``--full`` for paper-size
parameters (100-key populations, 8192-point FFTs).

Run:  python examples/regenerate_paper_results.py [--full]
"""

import sys

from repro.experiments.runner import run_all


def main() -> None:
    run_all(full="--full" in sys.argv)


if __name__ == "__main__":
    main()
