"""Modified nodal analysis: DC operating point and small-signal AC.

The solver builds stamp matrices over the unknown vector
``[node voltages | voltage-source branch currents | inductor branch
currents]`` and solves with dense linear algebra — circuits here are a
few dozen nodes at most (bias networks, tanks), so sparsity machinery
would be overhead without benefit.

Nonlinear circuits (MOSFETs) are solved by damped Newton iteration with
each device replaced by its linearised companion model at the current
voltage estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.netlist import (
    GROUND,
    Capacitor,
    Circuit,
    CurrentSource,
    Inductor,
    Memristor,
    Mosfet,
    Resistor,
    Vccs,
    VoltageSource,
)

#: Conductance from every node to ground, guaranteeing non-singularity.
GMIN = 1e-12


class ConvergenceError(RuntimeError):
    """Newton iteration failed to converge to an operating point."""


@dataclass
class DcSolution:
    """DC operating point: node voltages and source branch currents."""

    voltages: dict[str, float]
    branch_currents: dict[str, float]

    def v(self, node: str) -> float:
        """Voltage at ``node`` (ground is 0 by definition)."""
        if node == GROUND:
            return 0.0
        return self.voltages[node]


@dataclass
class AcSolution:
    """Small-signal AC solution at a set of frequencies."""

    freqs: np.ndarray
    voltages: dict[str, np.ndarray]

    def v(self, node: str) -> np.ndarray:
        """Complex node voltage vs frequency (ground is 0)."""
        if node == GROUND:
            return np.zeros_like(self.freqs, dtype=complex)
        return self.voltages[node]


class MnaSolver:
    """Stamp-based MNA solver bound to one circuit."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self._nodes = circuit.nodes()
        self._node_index = {n: i for i, n in enumerate(self._nodes)}
        self._vsources = [e for e in circuit.elements if isinstance(e, VoltageSource)]
        self._inductors = [e for e in circuit.elements if isinstance(e, Inductor)]
        self._n_nodes = len(self._nodes)
        self._size = self._n_nodes + len(self._vsources) + len(self._inductors)

    # -- index helpers ---------------------------------------------------

    def _idx(self, node: str) -> int | None:
        """Matrix index of ``node`` or None for ground."""
        if node == GROUND:
            return None
        return self._node_index[node]

    def _vsource_row(self, k: int) -> int:
        return self._n_nodes + k

    def _inductor_row(self, k: int) -> int:
        return self._n_nodes + len(self._vsources) + k

    @staticmethod
    def _stamp_conductance(matrix: np.ndarray, i: int | None, j: int | None, g: float) -> None:
        """Stamp a two-terminal conductance between rows/cols i and j."""
        if i is not None:
            matrix[i, i] += g
        if j is not None:
            matrix[j, j] += g
        if i is not None and j is not None:
            matrix[i, j] -= g
            matrix[j, i] -= g

    @staticmethod
    def _stamp_current(rhs: np.ndarray, i: int | None, j: int | None, current: float) -> None:
        """Stamp a current flowing from node i into node j."""
        if i is not None:
            rhs[i] -= current
        if j is not None:
            rhs[j] += current

    def _stamp_vccs(
        self, matrix: np.ndarray, out_p: int | None, out_n: int | None,
        ctrl_p: int | None, ctrl_n: int | None, gm: float,
    ) -> None:
        """Stamp gm*(v_cp - v_cn) flowing from out_p to out_n."""
        for row, sign_row in ((out_p, 1.0), (out_n, -1.0)):
            if row is None:
                continue
            if ctrl_p is not None:
                matrix[row, ctrl_p] += sign_row * gm
            if ctrl_n is not None:
                matrix[row, ctrl_n] -= sign_row * gm

    # -- DC analysis -----------------------------------------------------

    def dc_operating_point(
        self,
        max_iterations: int = 200,
        tolerance: float = 1e-9,
        damping_limit: float = 0.5,
    ) -> DcSolution:
        """Solve the DC operating point.

        Linear circuits converge in one Newton step; MOS circuits iterate
        with per-step voltage updates clamped to ``damping_limit`` volts.
        """
        x = np.zeros(self._size)
        mosfets = [e for e in self.circuit.elements if isinstance(e, Mosfet)]
        for _ in range(max_iterations):
            matrix, rhs = self._build_dc_system(x, mosfets)
            x_new = np.linalg.solve(matrix, rhs)
            delta = x_new - x
            max_step = np.max(np.abs(delta)) if delta.size else 0.0
            if max_step > damping_limit:
                delta *= damping_limit / max_step
            x = x + delta
            if max_step < tolerance:
                return self._package_dc(x)
        if not mosfets:
            return self._package_dc(x)
        raise ConvergenceError(
            f"Newton failed after {max_iterations} iterations "
            f"(last step {max_step:.3e} V)"
        )

    def _build_dc_system(
        self, x: np.ndarray, mosfets: list[Mosfet]
    ) -> tuple[np.ndarray, np.ndarray]:
        matrix = np.zeros((self._size, self._size))
        rhs = np.zeros(self._size)
        for i in range(self._n_nodes):
            matrix[i, i] += GMIN
        for e in self.circuit.elements:
            if isinstance(e, (Resistor, Memristor)):
                self._stamp_conductance(
                    matrix, self._idx(e.n1), self._idx(e.n2), 1.0 / e.resistance
                )
            elif isinstance(e, Capacitor):
                continue  # open at DC
            elif isinstance(e, CurrentSource):
                self._stamp_current(rhs, self._idx(e.n1), self._idx(e.n2), e.dc)
            elif isinstance(e, Vccs):
                self._stamp_vccs(
                    matrix, self._idx(e.n1), self._idx(e.n2),
                    self._idx(e.cp), self._idx(e.cn), e.gm,
                )
        for k, src in enumerate(self._vsources):
            row = self._vsource_row(k)
            for node, sign in ((src.n1, 1.0), (src.n2, -1.0)):
                idx = self._idx(node)
                if idx is not None:
                    matrix[idx, row] += sign
                    matrix[row, idx] += sign
            rhs[row] = src.dc
        for k, ind in enumerate(self._inductors):
            row = self._inductor_row(k)
            for node, sign in ((ind.n1, 1.0), (ind.n2, -1.0)):
                idx = self._idx(node)
                if idx is not None:
                    matrix[idx, row] += sign
                    matrix[row, idx] += sign
            # DC short: v(n1) - v(n2) = 0, current is the branch unknown.
        for mos in mosfets:
            self._stamp_mosfet(matrix, rhs, mos, x)
        return matrix, rhs

    def _stamp_mosfet(
        self, matrix: np.ndarray, rhs: np.ndarray, mos: Mosfet, x: np.ndarray
    ) -> None:
        """Stamp the Newton companion model of ``mos`` at estimate ``x``."""
        def volt(node: str) -> float:
            idx = self._idx(node)
            return 0.0 if idx is None else x[idx]

        vg, vd, vs = volt(mos.g), volt(mos.d), volt(mos.s)
        ids, gm, gds = mos.small_signal(vg, vd, vs)
        d, g, s = self._idx(mos.d), self._idx(mos.g), self._idx(mos.s)
        # Companion model.  In either polarity the signed drain current
        # linearises as  I_D = ids + gm*(dvg - dvs) + gds*(dvd - dvs)
        # because the polarity signs of gm/gds and of the controlling
        # voltages cancel.  I_D flows from drain to source.
        self._stamp_conductance(matrix, d, s, gds)
        self._stamp_vccs(matrix, d, s, g, s, gm)
        ieq = ids - gm * (vg - vs) - gds * (vd - vs)
        self._stamp_current(rhs, d, s, ieq)

    def _package_dc(self, x: np.ndarray) -> DcSolution:
        voltages = {n: float(x[i]) for n, i in self._node_index.items()}
        branch: dict[str, float] = {}
        for k, src in enumerate(self._vsources):
            branch[src.name] = float(x[self._vsource_row(k)])
        for k, ind in enumerate(self._inductors):
            branch[ind.name] = float(x[self._inductor_row(k)])
        return DcSolution(voltages=voltages, branch_currents=branch)

    # -- AC analysis -------------------------------------------------------

    def ac_analysis(
        self, freqs: np.ndarray, operating_point: DcSolution | None = None
    ) -> AcSolution:
        """Small-signal analysis across ``freqs`` (Hz).

        MOSFETs are linearised at ``operating_point`` (computed on demand
        for circuits that contain them).
        """
        freqs = np.asarray(freqs, dtype=float)
        mosfets = [e for e in self.circuit.elements if isinstance(e, Mosfet)]
        if mosfets and operating_point is None:
            operating_point = self.dc_operating_point()
        results = {n: np.zeros(freqs.size, dtype=complex) for n in self._nodes}
        for fi, f in enumerate(freqs):
            omega = 2.0 * np.pi * f
            matrix, rhs = self._build_ac_system(omega, mosfets, operating_point)
            x = np.linalg.solve(matrix, rhs)
            for n, i in self._node_index.items():
                results[n][fi] = x[i]
        return AcSolution(freqs=freqs, voltages=results)

    def _build_ac_system(
        self,
        omega: float,
        mosfets: list[Mosfet],
        op: DcSolution | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        matrix = np.zeros((self._size, self._size), dtype=complex)
        rhs = np.zeros(self._size, dtype=complex)
        for i in range(self._n_nodes):
            matrix[i, i] += GMIN
        for e in self.circuit.elements:
            if isinstance(e, (Resistor, Memristor)):
                self._stamp_conductance(
                    matrix, self._idx(e.n1), self._idx(e.n2), 1.0 / e.resistance
                )
            elif isinstance(e, Capacitor):
                self._stamp_conductance(
                    matrix, self._idx(e.n1), self._idx(e.n2), 1j * omega * e.capacitance
                )
            elif isinstance(e, CurrentSource):
                self._stamp_current(rhs, self._idx(e.n1), self._idx(e.n2), e.ac)
            elif isinstance(e, Vccs):
                self._stamp_vccs(
                    matrix, self._idx(e.n1), self._idx(e.n2),
                    self._idx(e.cp), self._idx(e.cn), e.gm,
                )
        for k, src in enumerate(self._vsources):
            row = self._vsource_row(k)
            for node, sign in ((src.n1, 1.0), (src.n2, -1.0)):
                idx = self._idx(node)
                if idx is not None:
                    matrix[idx, row] += sign
                    matrix[row, idx] += sign
            rhs[row] = src.ac
        for k, ind in enumerate(self._inductors):
            row = self._inductor_row(k)
            for node, sign in ((ind.n1, 1.0), (ind.n2, -1.0)):
                idx = self._idx(node)
                if idx is not None:
                    matrix[idx, row] += sign
                    matrix[row, idx] += sign
            matrix[row, row] -= 1j * omega * ind.inductance
        for mos in mosfets:
            __, gm, gds = mos.small_signal(op.v(mos.g), op.v(mos.d), op.v(mos.s))
            self._stamp_conductance(matrix, self._idx(mos.d), self._idx(mos.s), gds)
            self._stamp_vccs(
                matrix, self._idx(mos.d), self._idx(mos.s),
                self._idx(mos.g), self._idx(mos.s), gm,
            )
        return matrix, rhs
