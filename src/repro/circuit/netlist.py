"""Netlist data model for the lightweight analog circuit engine.

A :class:`Circuit` is a bag of two-terminal and controlled elements
connected between named nodes (ground is the node ``"0"``).  The engine
(:mod:`repro.circuit.mna`) performs DC operating-point analysis (with
Newton iteration for MOS devices) and small-signal AC analysis.

This substrate replaces the commercial SPICE flow of the paper for the
element-level pieces of the reproduction: the LC tank cross-validation
and the bias-circuit locking baselines ([7] parallel-transistor
obfuscation, [8] current-mirror locking, [6] memristor crossbars).
"""

from __future__ import annotations

from dataclasses import dataclass, field

GROUND = "0"


@dataclass(frozen=True)
class Resistor:
    """Linear resistor between ``n1`` and ``n2``."""

    name: str
    n1: str
    n2: str
    resistance: float

    def __post_init__(self) -> None:
        if self.resistance <= 0.0:
            raise ValueError(f"{self.name}: resistance must be positive")


@dataclass(frozen=True)
class Capacitor:
    """Linear capacitor; open at DC, admittance jwC at AC."""

    name: str
    n1: str
    n2: str
    capacitance: float

    def __post_init__(self) -> None:
        if self.capacitance <= 0.0:
            raise ValueError(f"{self.name}: capacitance must be positive")


@dataclass(frozen=True)
class Inductor:
    """Linear inductor; short at DC (branch current unknown), jwL at AC."""

    name: str
    n1: str
    n2: str
    inductance: float

    def __post_init__(self) -> None:
        if self.inductance <= 0.0:
            raise ValueError(f"{self.name}: inductance must be positive")


@dataclass(frozen=True)
class VoltageSource:
    """Independent voltage source (DC value plus AC magnitude)."""

    name: str
    n1: str
    n2: str
    dc: float = 0.0
    ac: float = 0.0


@dataclass(frozen=True)
class CurrentSource:
    """Independent current source flowing from ``n1`` to ``n2``."""

    name: str
    n1: str
    n2: str
    dc: float = 0.0
    ac: float = 0.0


@dataclass(frozen=True)
class Vccs:
    """Voltage-controlled current source (transconductor).

    Current ``gm * (v(cp) - v(cn))`` flows from ``n1`` to ``n2``.  A
    negative ``gm`` realises the -Gm Q-enhancement cell of the tank.
    """

    name: str
    n1: str
    n2: str
    cp: str
    cn: str
    gm: float


@dataclass(frozen=True)
class Memristor:
    """Behavioural memristor pinned at a programmed resistance state.

    The crossbar locking baseline [6] programs each device to either its
    low (``r_on``) or high (``r_off``) state; ``state`` in [0, 1]
    interpolates conductance linearly, as in linear dopant-drift models.
    """

    name: str
    n1: str
    n2: str
    r_on: float = 1e3
    r_off: float = 1e6
    state: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.state <= 1.0:
            raise ValueError(f"{self.name}: state must be in [0, 1]")
        if not 0.0 < self.r_on < self.r_off:
            raise ValueError(f"{self.name}: need 0 < r_on < r_off")

    @property
    def resistance(self) -> float:
        """Programmed resistance: conductance-linear mix of on/off states."""
        g = self.state / self.r_on + (1.0 - self.state) / self.r_off
        return 1.0 / g


@dataclass(frozen=True)
class Mosfet:
    """Square-law (level-1) MOSFET.

    Attributes:
        name: Element name.
        d, g, s: Drain, gate and source nodes (bulk tied to source).
        kp: Transconductance factor k' * W / L in A/V^2.
        vth: Threshold voltage (positive for both polarities).
        lam: Channel-length modulation coefficient, 1/V.
        polarity: ``"nmos"`` or ``"pmos"``.
    """

    name: str
    d: str
    g: str
    s: str
    kp: float
    vth: float = 0.5
    lam: float = 0.02
    polarity: str = "nmos"

    def __post_init__(self) -> None:
        if self.kp <= 0.0:
            raise ValueError(f"{self.name}: kp must be positive")
        if self.polarity not in ("nmos", "pmos"):
            raise ValueError(f"{self.name}: polarity must be nmos or pmos")

    def drain_current(self, vg: float, vd: float, vs: float) -> float:
        """Large-signal drain current for terminal voltages."""
        sign = 1.0 if self.polarity == "nmos" else -1.0
        vgs = sign * (vg - vs)
        vds = sign * (vd - vs)
        vov = vgs - self.vth
        if vov <= 0.0:
            return 0.0
        if vds >= vov:
            ids = 0.5 * self.kp * vov**2 * (1.0 + self.lam * vds)
        else:
            ids = self.kp * (vov * vds - 0.5 * vds**2) * (1.0 + self.lam * vds)
        return sign * ids

    def small_signal(self, vg: float, vd: float, vs: float) -> tuple[float, float, float]:
        """Return ``(id, gm, gds)`` at the given operating point.

        ``id`` flows into the drain for NMOS (out for PMOS); ``gm`` and
        ``gds`` are the partial derivatives w.r.t. vgs and vds in the
        device's own polarity frame (always non-negative).
        """
        sign = 1.0 if self.polarity == "nmos" else -1.0
        vgs = sign * (vg - vs)
        vds = sign * (vd - vs)
        vov = vgs - self.vth
        if vov <= 0.0:
            return 0.0, 0.0, 1e-12
        if vds >= vov:
            ids = 0.5 * self.kp * vov**2 * (1.0 + self.lam * vds)
            gm = self.kp * vov * (1.0 + self.lam * vds)
            gds = 0.5 * self.kp * vov**2 * self.lam
        else:
            ids = self.kp * (vov * vds - 0.5 * vds**2) * (1.0 + self.lam * vds)
            gm = self.kp * vds * (1.0 + self.lam * vds)
            gds = self.kp * (vov - vds) * (1.0 + self.lam * vds) + self.kp * (
                vov * vds - 0.5 * vds**2
            ) * self.lam
        return sign * ids, gm, max(gds, 1e-12)


Element = (
    Resistor
    | Capacitor
    | Inductor
    | VoltageSource
    | CurrentSource
    | Vccs
    | Memristor
    | Mosfet
)


@dataclass
class Circuit:
    """A named collection of elements over string-labelled nodes."""

    title: str = "untitled"
    elements: list[Element] = field(default_factory=list)

    def add(self, element: Element) -> Element:
        """Add ``element``, rejecting duplicate names."""
        if any(e.name == element.name for e in self.elements):
            raise ValueError(f"duplicate element name {element.name!r}")
        self.elements.append(element)
        return element

    def nodes(self) -> list[str]:
        """All non-ground nodes, in first-appearance order."""
        seen: dict[str, None] = {}
        for e in self.elements:
            for attr in ("n1", "n2", "d", "g", "s", "cp", "cn"):
                node = getattr(e, attr, None)
                if node is not None and node != GROUND:
                    seen.setdefault(node, None)
        return list(seen)

    def element(self, name: str) -> Element:
        """Look up an element by name."""
        for e in self.elements:
            if e.name == name:
                return e
        raise KeyError(f"no element named {name!r}")

    def replace(self, name: str, new_element: Element) -> None:
        """Swap the element called ``name`` for ``new_element``.

        Used by the removal-attack model: the attacker cuts out a locked
        bias element and drops in a "fresh" unlocked replacement.
        """
        for i, e in enumerate(self.elements):
            if e.name == name:
                self.elements[i] = new_element
                return
        raise KeyError(f"no element named {name!r}")
