"""Lightweight analog circuit engine (netlist + MNA DC/AC solver).

Stands in for the commercial SPICE flow the paper's authors used, for
the element-level pieces of the reproduction: LC-tank cross-validation
and the bias-circuit locking baselines.
"""

from repro.circuit.mna import AcSolution, ConvergenceError, DcSolution, MnaSolver
from repro.circuit.netlist import (
    GROUND,
    Capacitor,
    Circuit,
    CurrentSource,
    Inductor,
    Memristor,
    Mosfet,
    Resistor,
    Vccs,
    VoltageSource,
)

__all__ = [
    "AcSolution",
    "Capacitor",
    "Circuit",
    "ConvergenceError",
    "CurrentSource",
    "DcSolution",
    "GROUND",
    "Inductor",
    "Memristor",
    "MnaSolver",
    "Mosfet",
    "Resistor",
    "Vccs",
    "VoltageSource",
]
