"""Behavioural analog blocks of the programmable RF receiver (Figs. 4-6)."""

from repro.blocks.comparator import Comparator
from repro.blocks.dac import FeedbackDac, LoopDelay, OutputBuffer
from repro.blocks.lc_tank import TunableLcTank
from repro.blocks.preamp import PreAmplifier
from repro.blocks.transconductor import InputTransconductor
from repro.blocks.vglna import Vglna

__all__ = [
    "Comparator",
    "FeedbackDac",
    "InputTransconductor",
    "LoopDelay",
    "OutputBuffer",
    "PreAmplifier",
    "TunableLcTank",
    "Vglna",
]
