"""Input transconductor Gmin (paper Fig. 6).

Converts the VGLNA output voltage into the current injected into the LC
tank.  A 6-bit bias code sets the transconductance; a soft (tanh)
limiting characteristic gives it the finite linearity responsible for
the third-order intermodulation measured in the SFDR test (Fig. 12).
The calibration procedure turns the block off entirely (step 3) while
the tank is tuned in oscillation mode.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.process.variations import ChipVariations
from repro.receiver.design import FrontEndDesign


@dataclass(frozen=True)
class InputTransconductor:
    """A specific chip's Gmin: nominal design + variation draw."""

    design: FrontEndDesign
    variations: ChipVariations

    def gm(self, code: int, bias_scale: float = 1.0) -> float:
        """Transconductance for a 6-bit bias code, siemens."""
        if not 0 <= code < (1 << self.design.gmin_bits):
            raise ValueError(f"gmin code {code} out of range")
        return code * self.design.gmin_lsb * self.variations.gmin_scale * bias_scale

    def output_current(
        self,
        v_in: np.ndarray,
        code: int,
        enabled: bool,
        bias_scale: float = 1.0,
    ) -> np.ndarray:
        """Output current waveform for an input voltage waveform.

        The soft-limited characteristic is
        ``i = gm * vlin * tanh(v / vlin)``; its cubic term sets the
        block's IIP3.
        """
        if not enabled:
            return np.zeros_like(np.asarray(v_in, dtype=float))
        gm = self.gm(code, bias_scale)
        vlin = self.design.gmin_vlin
        return gm * vlin * np.tanh(np.asarray(v_in, dtype=float) / vlin)
