"""Variable-gain low-noise amplifier (paper Fig. 5).

Five cascaded gain stages with resistive feedback; a 4-bit word selects
one of 16 overall gain levels so the receiver's sensitivity and dynamic
range can track the target standard (paper calibration step 12).  Each
stage clips softly, so large inputs at high gain settings compress —
this produces the dynamic-range behaviour of Fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.process.variations import ChipVariations
from repro.receiver.design import VglnaDesign


@dataclass(frozen=True)
class Vglna:
    """A specific chip's VGLNA: nominal design + variation draw."""

    design: VglnaDesign
    variations: ChipVariations

    def gain_db(self, code: int) -> float:
        """Nominal voltage gain in dB for a 4-bit gain code."""
        if not 0 <= code < 16:
            raise ValueError(f"lna gain code {code} out of range")
        return self.design.gain_min_db + code * self.design.gain_step_db

    def stage_gains(self, code: int) -> np.ndarray:
        """Linear per-stage gains, including per-stage process error."""
        d = self.design
        total_db = self.gain_db(code)
        per_stage_db = total_db / d.n_stages + self.variations.lna_stage_gain_err_db
        return 10.0 ** (per_stage_db / 20.0)

    def input_noise_density(self, code: int) -> float:
        """Input-referred noise density at this gain setting, V/sqrt(Hz).

        Lower gain settings are noisier (feedback attenuates the signal
        before the noisy stages), modelled as a per-step noise penalty.
        """
        d = self.design
        steps_below_max = 15 - code
        return (
            d.noise_density
            * d.noise_per_step**steps_below_max
            * self.variations.noise_scale
        )

    def process(
        self,
        samples: np.ndarray,
        code: int,
        bandwidth: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Amplify ``samples`` through the five clipping stages.

        Args:
            samples: Input voltage waveform.
            code: 4-bit gain code.
            bandwidth: Noise integration bandwidth of the sampled
                representation (half the sample rate), Hz.
            rng: Noise generator.

        Returns:
            Output voltage waveform, same shape as ``samples``.
        """
        d = self.design
        sigma = self.input_noise_density(code) * np.sqrt(bandwidth)
        x = samples + rng.normal(0.0, sigma, samples.shape)
        for gain in self.stage_gains(code):
            # Soft clip per stage: linear for small signals, saturating
            # to +/- v_clip — a resistive-feedback inverter's transfer.
            x = d.v_clip * np.tanh(gain * x / d.v_clip)
        return x
