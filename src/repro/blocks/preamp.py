"""Pre-amplifier between the tank and the comparator (paper Fig. 6).

A 5-bit bias code sets the gain; the output clips at the supply-limited
swing.  In the deceptive-key scenario (loop open, comparator clock off)
this block's clipped output *is* the modulator output — an analog
waveform that never gets digitised.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

import numpy as np

from repro.process.variations import ChipVariations
from repro.receiver.design import FrontEndDesign


@dataclass(frozen=True)
class PreAmplifier:
    """A specific chip's pre-amplifier."""

    design: FrontEndDesign
    variations: ChipVariations

    def gain(self, code: int, bias_scale: float = 1.0) -> float:
        """Voltage gain versus the 5-bit bias code.

        The stage is bias-starved at low codes: gain grows roughly with
        the square of the tail current setting, from a leakage-level
        0.05 at code 0 to ``preamp_gain_max`` at full code.  A random
        key with a starved pre-amp therefore kills the signal path.
        """
        d = self.design
        if not 0 <= code < (1 << d.preamp_bits):
            raise ValueError(f"preamp code {code} out of range")
        code_max = (1 << d.preamp_bits) - 1
        return (
            (0.05 + d.preamp_gain_max * (code / code_max) ** 2)
            * self.variations.preamp_scale
            * bias_scale
        )

    def amplify(self, v_in: float, code: int, bias_scale: float = 1.0) -> float:
        """Scalar soft-clipped amplification (used inside the sim loop)."""
        v_clip = self.design.preamp_v_clip
        return v_clip * math.tanh(self.gain(code, bias_scale) * v_in / v_clip)

    def amplify_array(
        self, v_in: np.ndarray, code: int, bias_scale: float = 1.0
    ) -> np.ndarray:
        """Vectorised version of :meth:`amplify`."""
        v_clip = self.design.preamp_v_clip
        return v_clip * np.tanh(self.gain(code, bias_scale) * v_in / v_clip)
