"""Tunable LC band-pass loop filter (paper Fig. 6).

The tank is a parallel RLC with two binary-weighted capacitor arrays —
``Cc`` for coarse and ``Cf`` for fine tuning — and a programmable
negative transconductor (-Gm) that cancels tank losses to enhance the
quality factor.  Setting -Gm beyond the critical value makes the tank
oscillate, which the calibration procedure exploits for centre-frequency
tuning (steps 5-7).
"""

from __future__ import annotations

from dataclasses import dataclass

import math

import numpy as np

from repro.process.variations import ChipVariations
from repro.receiver.design import TankDesign


@dataclass(frozen=True)
class TunableLcTank:
    """A specific chip's LC tank: nominal design + variation draw."""

    design: TankDesign
    variations: ChipVariations

    @property
    def inductance(self) -> float:
        """Actual tank inductance, henry."""
        return self.design.inductance * self.variations.inductor_scale

    def capacitance(self, cc_code: int, cf_code: int) -> float:
        """Total tank capacitance for the given array codes.

        Each array is binary weighted; every bit has its own mismatch
        factor, so the code-to-capacitance map is chip-unique and,
        crucially, *monotonic* and injective (Sec. VI-B.1: a desired
        capacitance has a unique sub-key).
        """
        d = self.design
        if not 0 <= cc_code < (1 << d.c_coarse_bits):
            raise ValueError(f"cc_code {cc_code} out of range")
        if not 0 <= cf_code < (1 << d.c_fine_bits):
            raise ValueError(f"cf_code {cf_code} out of range")
        total = d.c_fixed * self.variations.c_fixed_scale
        for bit in range(d.c_coarse_bits):
            if (cc_code >> bit) & 1:
                total += (
                    d.c_coarse_lsb
                    * (1 << bit)
                    * self.variations.coarse_unit_scales[bit]
                )
        for bit in range(d.c_fine_bits):
            if (cf_code >> bit) & 1:
                total += (
                    d.c_fine_lsb * (1 << bit) * self.variations.fine_unit_scales[bit]
                )
        return float(total)

    def loss_conductance(self, capacitance: float) -> float:
        """Parallel loss conductance at the tank's resonance.

        Modelled through the finite quality factor:
        ``g = sqrt(C/L) / Q0``.
        """
        q0 = self.design.q_factor * self.variations.q_factor_scale
        return math.sqrt(capacitance / self.inductance) / q0

    def gmq(self, code: int) -> float:
        """Q-enhancement transconductance for a 6-bit code, siemens."""
        d = self.design
        if not 0 <= code < (1 << d.gmq_bits):
            raise ValueError(f"gmq code {code} out of range")
        return code * d.gmq_lsb * self.variations.gmq_scale

    def critical_gmq_code(self, cc_code: int, cf_code: int) -> int:
        """Smallest -Gm code at which the tank oscillates."""
        g_loss = self.loss_conductance(self.capacitance(cc_code, cf_code))
        lsb = self.design.gmq_lsb * self.variations.gmq_scale
        code = int(math.ceil(g_loss / lsb))
        return min(code, (1 << self.design.gmq_bits) - 1)

    def resonance_frequency(self, cc_code: int, cf_code: int) -> float:
        """Natural frequency ``1 / (2 pi sqrt(L C))`` in Hz."""
        c = self.capacitance(cc_code, cf_code)
        return 1.0 / (2.0 * math.pi * math.sqrt(self.inductance * c))

    def quality_factor(self, cc_code: int, cf_code: int, gmq_code: int) -> float:
        """Effective Q with the -Gm enhancement engaged.

        Returns ``inf`` when the net conductance is zero or negative
        (oscillation).
        """
        c = self.capacitance(cc_code, cf_code)
        g_eff = self.loss_conductance(c) - self.gmq(gmq_code)
        if g_eff <= 0.0:
            return math.inf
        return math.sqrt(c / self.inductance) / g_eff

    def state_matrices(self, cc_code: int, cf_code: int) -> tuple[np.ndarray, np.ndarray]:
        """Continuous-time state-space of the *lossy* tank (no -Gm).

        States are ``[v_tank, i_L]``; the input is a current injected
        into the tank node.  The -Gm current is nonlinear (tanh-limited)
        and is applied as an explicit input by the simulator.

            C dv/dt = i_in - g_loss v - i_L
            L di/dt = v
        """
        c = self.capacitance(cc_code, cf_code)
        g = self.loss_conductance(c)
        a = np.array(
            [[-g / c, -1.0 / c], [1.0 / self.inductance, 0.0]], dtype=float
        )
        b = np.array([[1.0 / c], [0.0]], dtype=float)
        return a, b

    def gmq_current(self, gmq_code: int, v_tank: float) -> float:
        """Instantaneous -Gm current: ``+gmq * vsat * tanh(v/vsat)``.

        The positive sign implements the *negative* conductance (current
        flows into the tank node in phase with its voltage); the tanh
        models the transconductor's output saturation, which limits the
        oscillation amplitude during calibration.
        """
        vsat = self.design.gmq_vsat
        return self.gmq(gmq_code) * vsat * math.tanh(v_tank / vsat)
