"""Clocked comparator (1-bit quantiser) with buffer mode (paper Fig. 6).

In normal operation the comparator samples the pre-amplifier output at
every clock edge and regenerates to +/-1.  Deactivating its driving
clock turns it into a unity buffer (paper calibration step 1) — the
mechanism behind the deceptive invalid key of Fig. 7: with the clock
bit low, the analog waveform passes to the output without quantisation.

The 5-bit bias code controls decision quality: starving the bias raises
the input-referred decision noise and the effective offset.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.process.variations import ChipVariations
from repro.receiver.design import FrontEndDesign


@dataclass(frozen=True)
class Comparator:
    """A specific chip's clocked comparator."""

    design: FrontEndDesign
    variations: ChipVariations

    def decision_noise(self, code: int) -> float:
        """RMS input-referred decision noise for a 5-bit bias code."""
        d = self.design
        if not 0 <= code < (1 << d.comp_bits):
            raise ValueError(f"comparator code {code} out of range")
        code_max = (1 << d.comp_bits) - 1
        starvation = 1.0 - code / code_max
        return (
            d.comp_noise_floor
            + (d.comp_noise_starved - d.comp_noise_floor) * starvation**2
        ) * self.variations.noise_scale

    def offset(self, code: int) -> float:
        """Effective offset; bias starvation also degrades the offset."""
        d = self.design
        code_max = (1 << d.comp_bits) - 1
        starvation = 1.0 - code / code_max
        return self.variations.comp_offset * (1.0 + 2.0 * starvation)

    def decide(self, v_in: float, code: int, noise_sample: float, previous: float) -> float:
        """One clocked decision: returns +1.0 or -1.0.

        Args:
            v_in: Pre-amplifier output at the sampling instant.
            code: 5-bit bias code.
            noise_sample: Unit-normal draw, scaled by the decision noise.
            previous: Previous decision, for the hysteresis term.
        """
        v_eff = (
            v_in
            + self.offset(code)
            + noise_sample * self.decision_noise(code)
            + self.design.comp_hysteresis * previous
        )
        return 1.0 if v_eff >= 0.0 else -1.0

    #: Gain of the un-clocked regenerative stage used as a buffer.
    BUFFER_GAIN = 2.0
    #: Output clamp of the buffer-mode stage, volts.
    BUFFER_CLAMP = 0.45
    #: Output-referred wideband noise of the un-clocked stage, V rms.
    BUFFER_OUTPUT_NOISE = 15e-3

    def buffer_output(
        self, v_in: float, code: int, noise_in: float, noise_out: float = 0.0
    ) -> float:
        """Output when the driving clock is deactivated (buffer mode).

        Without regeneration the comparator is an open-loop amplifier:
        nonlinear, clipping, and noisy.  Its odd-order distortion of a
        tone near fs/4 aliases straight back into the signal band
        (3*f0 folds to fs - 3*f0 = f0) and its wideband output noise
        has no noise shaping to hide under — together these bound the
        'deceptive' analog-passthrough SNR well below a properly
        modulating loop, the paper's key #7 effect.

        Args:
            v_in: Pre-amplifier output.
            code: 5-bit bias code.
            noise_in: Unit-normal draw for the input-referred noise.
            noise_out: Unit-normal draw for the output-referred noise.
        """
        v_eff = (
            v_in
            + self.offset(code)
            + noise_in * self.decision_noise(code)
        )
        clamp = self.BUFFER_CLAMP
        return (
            clamp * math.tanh(self.BUFFER_GAIN * v_eff / clamp)
            + noise_out * self.BUFFER_OUTPUT_NOISE
        )
