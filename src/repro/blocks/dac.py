"""One-bit feedback DAC (paper Fig. 6).

Converts the comparator decision into the NRZ feedback current pulled
from the tank.  A 6-bit bias code trims the full-scale current, which
sets the loop gain — the calibration optimiser searches this code for
the best SNR.  When the comparator runs in buffer mode the DAC switches
see an analog drive level; the tanh drive model reproduces the resulting
partially-switched feedback current.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from repro.process.variations import ChipVariations
from repro.receiver.design import FrontEndDesign


@dataclass(frozen=True)
class FeedbackDac:
    """A specific chip's feedback DAC."""

    design: FrontEndDesign
    variations: ChipVariations

    def full_scale(self, code: int, bias_scale: float = 1.0) -> float:
        """Full-scale feedback current for a 6-bit code, amperes.

        ``i_fs = i_ref * (0.25 + 1.5 * code / code_max)`` — the nominal
        current sits near mid-code, so the calibrated code is chip- and
        corner-dependent.
        """
        d = self.design
        if not 0 <= code < (1 << d.dac_bits):
            raise ValueError(f"dac code {code} out of range")
        code_max = (1 << d.dac_bits) - 1
        return (
            d.dac_i_ref
            * (0.25 + 1.5 * code / code_max)
            * self.variations.dac_gain_scale
            * bias_scale
        )

    def output_current(
        self, drive: float, code: int, enabled: bool, bias_scale: float = 1.0
    ) -> float:
        """Feedback current for a drive level.

        A digital drive of +/-1 switches the full-scale current; analog
        drive levels (buffer-mode comparator) switch it partially.  The
        current is *subtracted* from the tank by the caller (negative
        feedback).
        """
        if not enabled:
            return 0.0
        i_fs = self.full_scale(code, bias_scale)
        # Fully switched beyond |drive| ~ 0.3 V; linear below.
        return i_fs * math.tanh(drive / 0.3)


@dataclass(frozen=True)
class LoopDelay:
    """Programmable excess loop delay (paper Fig. 6, calibration step 11).

    ``tau = delay_code / 8 * Ts`` plus a per-chip skew, spanning almost
    two clock periods.  The fs/4 band-pass loop is only properly phased
    (discrete loop filter ~ z^-2 * K / (1 + z^-2), poles inside the unit
    circle) for delays around 1.5 periods — nominal code 12, "set
    according to Fs" in calibration step 11.  Codes in the lower half
    put the loop in its regenerative region and destroy the modulation,
    which gives the delay field real locking bite.
    """

    design: FrontEndDesign
    variations: ChipVariations

    def delay_periods(self, code: int) -> float:
        """Loop delay in units of the sampling period, within [0, 1.95]."""
        if not 0 <= code < (1 << self.design.delay_bits):
            raise ValueError(f"delay code {code} out of range")
        half_span = (1 << self.design.delay_bits) // 2
        tau = code / half_span + self.variations.delay_skew
        return min(max(tau, 0.0), 1.95)


@dataclass(frozen=True)
class OutputBuffer:
    """Output buffer adapting the modulator to its off-chip load.

    Present in the signal path only during calibration/measurement
    (paper calibration step 2); a 3-bit code trims its drive.
    """

    design: FrontEndDesign
    variations: ChipVariations

    def gain(self, code: int) -> float:
        """Buffer voltage gain for a 3-bit code."""
        if not 0 <= code < 8:
            raise ValueError(f"buffer code {code} out of range")
        return (
            self.design.buffer_gain_base + self.design.buffer_gain_step * code
        )
