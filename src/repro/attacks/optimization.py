"""Multi-objective optimisation attacks (paper Sec. IV-B.3).

"The multi-objective optimization attack consists in applying an
iterative algorithm that searches for a configuration setting that
simultaneously optimizes the performances..."  The paper argues the
attack is hard because only small bit subsets relate smoothly to any
performance, and only once the rest of the key is already right.

Two standard black-box optimisers are provided — simulated annealing
over the 64-bit string and a genetic algorithm with uniform crossover —
both driven by a blended SNR/SFDR fitness from the oracle.  Their
stagnation against the guided calibration's ~150 measurements *is* the
experimental result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attacks.oracle import MeasurementOracle
from repro.receiver.config import KEY_BITS, ConfigWord


@dataclass
class OptimizationOutcome:
    """Result of an optimisation-attack campaign.

    Attributes:
        success: Whether the spec was reached within budget.
        best_key: Best key found.
        best_score: Its fitness (SNR-dominated).
        n_queries: Oracle measurements spent.
        history: Best-so-far fitness after each evaluation.
    """

    success: bool
    best_key: ConfigWord
    best_score: float
    n_queries: int
    history: list[float] = field(default_factory=list)


def _fitness(oracle: MeasurementOracle, key: ConfigWord, sfdr_weight: float) -> float:
    score = oracle.snr(key)
    if sfdr_weight > 0.0:
        score += sfdr_weight * min(0.0, oracle.sfdr(key) - oracle.spec().sfdr_min_db)
    return score


def blend_fitness(
    snrs, sfdrs, sfdr_weight: float, sfdr_min_db: float
) -> list[float]:
    """The blended SNR/SFDR fitness from raw measurement values —
    shared between the live batched path and the partition plan's
    replay of speculatively measured slices."""
    if sfdr_weight > 0.0:
        return [
            score + sfdr_weight * min(0.0, sfdr - sfdr_min_db)
            for score, sfdr in zip(snrs, sfdrs)
        ]
    return list(snrs)


def _fitness_batch(
    oracle: MeasurementOracle, keys: list[ConfigWord], sfdr_weight: float
) -> list[float]:
    """Population fitness through the oracle's batched measurements."""
    scores = oracle.snr_batch(keys)
    sfdrs = oracle.sfdr_batch(keys) if sfdr_weight > 0.0 else None
    sfdr_min = oracle.spec().sfdr_min_db if sfdr_weight > 0.0 else 0.0
    return blend_fitness(scores, sfdrs, sfdr_weight, sfdr_min)


@dataclass
class SimulatedAnnealingAttack:
    """Bit-flip annealing over the 64-bit key string.

    Inherently sequential: each candidate depends on the accept/reject
    of the previous one, so the chain cannot batch its oracle queries —
    one more practical edge the population-based GA has over it on a
    batched (parallel-bench) oracle.
    """

    oracle: MeasurementOracle
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(17))
    initial_temperature: float = 8.0
    cooling: float = 0.97
    flips_per_move: int = 2
    sfdr_weight: float = 0.0

    def run(self, n_evaluations: int, start: ConfigWord | None = None) -> OptimizationOutcome:
        """Anneal for ``n_evaluations`` oracle queries."""
        spec = self.oracle.spec()
        current = start or ConfigWord.random(self.rng)
        current_score = _fitness(self.oracle, current, self.sfdr_weight)
        best, best_score = current, current_score
        history = [best_score]
        temperature = self.initial_temperature
        for _ in range(n_evaluations - 1):
            n_flips = int(self.rng.integers(1, self.flips_per_move + 1))
            positions = self.rng.choice(KEY_BITS, size=n_flips, replace=False)
            candidate = current.flip_bits(list(positions))
            score = _fitness(self.oracle, candidate, self.sfdr_weight)
            accept = score >= current_score or self.rng.random() < np.exp(
                (score - current_score) / max(temperature, 1e-9)
            )
            if accept:
                current, current_score = candidate, score
            if score > best_score:
                best, best_score = candidate, score
            history.append(best_score)
            temperature *= self.cooling
            if best_score >= spec.snr_min_db and self.oracle.unlocks(best):
                # Confirmed functional key (not a deceptive passthrough).
                return OptimizationOutcome(
                    success=True,
                    best_key=best,
                    best_score=best_score,
                    n_queries=self.oracle.n_queries,
                    history=history,
                )
        return OptimizationOutcome(
            success=False,
            best_key=best,
            best_score=best_score,
            n_queries=self.oracle.n_queries,
            history=history,
        )


@dataclass
class GeneticAttack:
    """Genetic algorithm with uniform crossover and bit mutation.

    Each generation's population is scored through the oracle's batched
    SNR probe — the attack the paper benchmarks (*Attack of the Genes*)
    needs thousands of oracle queries, and population scoring is
    embarrassingly parallel, so it maps straight onto the batched
    engine.
    """

    oracle: MeasurementOracle
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(19))
    population_size: int = 16
    mutation_rate: float = 0.02
    elite: int = 2
    sfdr_weight: float = 0.0

    def _crossover(self, a: ConfigWord, b: ConfigWord) -> ConfigWord:
        wa, wb = a.encode(), b.encode()
        mask = 0
        for _ in range(2):
            mask = (mask << 32) | int(self.rng.integers(0, 1 << 32))
        child = (wa & mask) | (wb & ~mask & ((1 << KEY_BITS) - 1))
        return ConfigWord.decode(child)

    def _mutate(self, key: ConfigWord) -> ConfigWord:
        flips = [
            i for i in range(KEY_BITS) if self.rng.random() < self.mutation_rate
        ]
        return key.flip_bits(flips) if flips else key

    def initial_population(self) -> list[ConfigWord]:
        """Generation 0, drawn from the attack's RNG.  A pure function
        of the RNG state: the partition plan draws the identical
        population the scalar attack's replay will re-draw."""
        return [ConfigWord.random(self.rng) for _ in range(self.population_size)]

    def breed(self, ranked) -> list[ConfigWord]:
        """The next generation from a ``(score, key)`` ranking —
        elitism, tournament-free parent pool, uniform crossover and bit
        mutation, consuming the attack's RNG in a fixed per-child order
        so breeding is replayable from identical rankings."""
        parents = [k for _, k in ranked[: max(self.population_size // 2, 2)]]
        next_pop = [k for _, k in ranked[: self.elite]]
        while len(next_pop) < self.population_size:
            a, b = self.rng.choice(len(parents), size=2, replace=False)
            next_pop.append(self._mutate(self._crossover(parents[a], parents[b])))
        return next_pop

    def run(self, n_generations: int) -> OptimizationOutcome:
        """Evolve for ``n_generations`` generations."""
        spec = self.oracle.spec()
        population = self.initial_population()
        scores = _fitness_batch(self.oracle, population, self.sfdr_weight)
        history = [max(scores)]
        for _ in range(n_generations):
            ranked = sorted(zip(scores, population), key=lambda t: -t[0])
            if ranked[0][0] >= spec.snr_min_db and self.oracle.unlocks(ranked[0][1]):
                break
            population = self.breed(ranked)
            scores = _fitness_batch(self.oracle, population, self.sfdr_weight)
            history.append(max(max(scores), history[-1]))
        best_idx = int(np.argmax(scores))
        best_score = float(scores[best_idx])
        best_key = population[best_idx]
        success = best_score >= spec.snr_min_db and self.oracle.unlocks(best_key)
        return OptimizationOutcome(
            success=success,
            best_key=best_key,
            best_score=best_score,
            n_queries=self.oracle.n_queries,
            history=history,
        )
