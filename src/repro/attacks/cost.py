"""Attack cost accounting (paper Sec. VI-B.1).

The paper quantifies why simulation-based attacks are impractical:
"for a single key and a 8192 point FFT, it takes about 20 minutes to
simulate the SNR at the output of the RF receiver for a given input,
3 hours to simulate the SNR across the input range, and 30 minutes to
simulate the SFDR."  This module turns those per-trial costs plus the
2^64 key space into the attack-time table the security analysis rests
on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.receiver.config import KEY_BITS

#: Seconds per simulated measurement, from the paper.
SIM_SNR_SECONDS = 20.0 * 60.0
SIM_DR_SWEEP_SECONDS = 3.0 * 3600.0
SIM_SFDR_SECONDS = 30.0 * 60.0

#: Seconds per hardware measurement on a re-fabbed chip (optimistic
#: attacker: an automated bench takes ~1 s per SNR point).
HW_SNR_SECONDS = 1.0

SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


@dataclass(frozen=True)
class AttackCostModel:
    """Per-trial costs for one attack setting."""

    snr_seconds: float = SIM_SNR_SECONDS
    dr_sweep_seconds: float = SIM_DR_SWEEP_SECONDS
    sfdr_seconds: float = SIM_SFDR_SECONDS

    @classmethod
    def simulation(cls) -> "AttackCostModel":
        """Transistor-level simulation costs (the paper's numbers)."""
        return cls()

    @classmethod
    def hardware(cls) -> "AttackCostModel":
        """Re-fabbed-chip bench costs (very optimistic for the attacker)."""
        return cls(
            snr_seconds=HW_SNR_SECONDS,
            dr_sweep_seconds=HW_SNR_SECONDS * 18,
            sfdr_seconds=HW_SNR_SECONDS * 2,
        )

    def brute_force_years(self, expected_trials: float | None = None) -> float:
        """Expected brute-force search time in years.

        With a single valid key the expectation is half the key space;
        a caller may pass a smaller ``expected_trials`` when several
        near-optimal keys exist.
        """
        if expected_trials is None:
            expected_trials = 0.5 * 2.0**KEY_BITS
        return expected_trials * self.snr_seconds / SECONDS_PER_YEAR

    def campaign_seconds(self, n_snr: int = 0, n_dr: int = 0, n_sfdr: int = 0) -> float:
        """Total time of a measurement campaign."""
        return (
            n_snr * self.snr_seconds
            + n_dr * self.dr_sweep_seconds
            + n_sfdr * self.sfdr_seconds
        )


def format_years(years: float) -> str:
    """Human-readable attack duration."""
    if years < 1e-3:
        return f"{years * SECONDS_PER_YEAR:.0f} s"
    if years < 1.0:
        return f"{years * 365.25:.1f} days"
    exponent = int(math.floor(math.log10(years)))
    if exponent >= 4:
        return f"{years / 10**exponent:.1f}e{exponent} years"
    return f"{years:.1f} years"
