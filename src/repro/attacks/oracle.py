"""Measurement oracle: the attacker's only view of a working chip.

The threat model (paper Sec. IV-B) grants the attacker the netlist and
"access to working oracle chips".  Every attack in this package goes
through this oracle, which meters the number of measurements and the
accumulated (simulated) lab or CPU time, so attack cost claims are
backed by actual query counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attacks.cost import AttackCostModel
from repro.locking.specs import PerformanceSpec
from repro.receiver.config import ConfigWord
from repro.receiver.performance import (
    measure_modulator_snr,
    measure_receiver_snr,
    measure_sfdr,
)
from repro.receiver.receiver import Chip
from repro.receiver.standards import Standard


class QueryBudgetExceeded(RuntimeError):
    """The attack spent its measurement budget without succeeding."""


@dataclass
class MeasurementOracle:
    """A working chip on the attacker's bench.

    Args:
        chip: The oracle chip (typically re-fabbed to expose the
            programming bits, per the paper's hardware-attack scenario).
        standard: The operation mode under attack.
        cost_model: Per-measurement time accounting.
        n_fft: Measurement record length (attackers may trade accuracy
            for speed).
        max_queries: Hard query budget; None for unlimited.
        seed: Measurement-noise seed.
    """

    chip: Chip
    standard: Standard
    cost_model: AttackCostModel = field(default_factory=AttackCostModel.hardware)
    n_fft: int = 4096
    max_queries: int | None = None
    seed: int = 0
    n_queries: int = field(default=0, init=False)
    elapsed_seconds: float = field(default=0.0, init=False)

    def _charge(self, seconds: float) -> None:
        self.n_queries += 1
        self.elapsed_seconds += seconds
        if self.max_queries is not None and self.n_queries > self.max_queries:
            raise QueryBudgetExceeded(
                f"budget of {self.max_queries} measurements exhausted"
            )

    def snr(self, key: ConfigWord) -> float:
        """Measured modulator-output SNR under ``key``, dB."""
        self._charge(self.cost_model.snr_seconds)
        return measure_modulator_snr(
            self.chip, key, self.standard, n_fft=self.n_fft, seed=self.seed
        ).snr_db

    def sfdr(self, key: ConfigWord) -> float:
        """Measured SFDR under ``key``, dB."""
        self._charge(self.cost_model.sfdr_seconds)
        return measure_sfdr(
            self.chip, key, self.standard, n_fft=self.n_fft, seed=self.seed
        ).sfdr_db

    def receiver_snr(self, key: ConfigWord, n_baseband: int = 512) -> float:
        """Measured SNR at the receiver output (the functional figure).

        This is the paper's 20-minute measurement: SNR at the output of
        the RF receiver for a given input.
        """
        self._charge(self.cost_model.snr_seconds)
        return measure_receiver_snr(
            self.chip, key, self.standard, n_baseband=n_baseband, seed=self.seed
        ).snr_db

    def spec(self) -> PerformanceSpec:
        """The public performance specification (datasheet knowledge)."""
        return PerformanceSpec.for_standard(self.standard)

    def unlocks(self, key: ConfigWord) -> bool:
        """Full adjudication of ``key`` against the specification.

        "Locking succeeds when at least one performance violates its
        specification" (Sec. VI-A) — so an unlock claim must survive
        both the full-resolution modulator measurement *and* the
        receiver-output measurement.  The two-stage check is what
        unmasks 'deceptive' keys: an analog-passthrough key can fake a
        high modulator-output SNR (especially on short records) but
        collapses after the digital section, exactly as in Figs. 7-9.
        """
        self._charge(self.cost_model.snr_seconds)
        snr_mod = measure_modulator_snr(
            self.chip, key, self.standard, n_fft=8192, seed=self.seed
        ).snr_db
        spec = self.spec()
        if snr_mod < spec.snr_min_db:
            return False
        snr_rx = self.receiver_snr(key)
        return spec.meets(snr_db=snr_mod, snr_rx_db=snr_rx)
