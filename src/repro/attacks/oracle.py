"""Measurement oracle: the attacker's only view of a working chip.

The threat model (paper Sec. IV-B) grants the attacker the netlist and
"access to working oracle chips".  Every attack in this package goes
through this oracle, which meters the number of measurements and the
accumulated (simulated) lab or CPU time, so attack cost claims are
backed by actual query counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.attacks.cost import AttackCostModel
from repro.locking.specs import PerformanceSpec
from repro.receiver.config import ConfigWord
from repro.receiver.performance import (
    measure_modulator_snr,
    measure_modulator_snr_batch,
    measure_receiver_snr,
    measure_receiver_snr_batch,
    measure_sfdr,
    measure_sfdr_batch,
)
from repro.receiver.receiver import Chip
from repro.receiver.standards import Standard


class QueryBudgetExceeded(RuntimeError):
    """The attack spent its measurement budget without succeeding."""


#: Process-wide tenant meter every oracle charges through (see
#: :func:`install_tenant_meter`).  None outside a tenanted deployment.
_TENANT_METER = None


def install_tenant_meter(meter) -> None:
    """Install (or, with None, remove) the process-wide tenant meter.

    The foundry daemon's fleet workers install their current job's
    :class:`~repro.service.tenants.TenantMeter` before running a task;
    every oracle charge in the process then writes through both the
    oracle's own budget and the tenant's quota — atomically, so a
    refusal by either leaves *both* un-advanced.  Any object with a
    ``charge_batch(n)`` raising :class:`QueryBudgetExceeded` works.
    """
    global _TENANT_METER
    _TENANT_METER = meter


def current_tenant_meter():
    """The installed process-wide tenant meter, or None."""
    return _TENANT_METER


@dataclass
class MeasurementOracle:
    """A working chip on the attacker's bench.

    Args:
        chip: The oracle chip (typically re-fabbed to expose the
            programming bits, per the paper's hardware-attack scenario).
        standard: The operation mode under attack.
        cost_model: Per-measurement time accounting.
        n_fft: Measurement record length (attackers may trade accuracy
            for speed).
        max_queries: Hard query budget; None for unlimited.
        seed: Measurement-noise seed.
    """

    chip: Chip
    standard: Standard
    cost_model: AttackCostModel = field(default_factory=AttackCostModel.hardware)
    n_fft: int = 4096
    max_queries: int | None = None
    seed: int = 0
    n_queries: int = field(default=0, init=False)
    elapsed_seconds: float = field(default=0.0, init=False)

    def charge_batch(self, n: int, seconds_each: float) -> None:
        """Atomically meter ``n`` measurements of ``seconds_each``.

        The whole chunk is checked against the remaining budget before
        any of it is charged: an over-budget submission raises
        :class:`QueryBudgetExceeded` with ``n_queries`` and
        ``elapsed_seconds`` untouched (a mid-chunk raise used to leave
        them partially advanced), at exactly the query count where the
        sequential oracle refuses its first over-budget measurement.

        When a process-wide tenant meter is installed (a multi-tenant
        daemon deployment, :func:`install_tenant_meter`), the chunk is
        additionally checked against the tenant's quota; a refusal by
        either budget leaves both meters un-advanced.
        """
        if n < 0:
            raise ValueError(f"cannot charge a negative batch, got {n}")
        if self.max_queries is not None and self.n_queries + n > self.max_queries:
            raise QueryBudgetExceeded(
                f"budget of {self.max_queries} measurements exhausted "
                f"({self.n_queries} spent, {n} more requested)"
            )
        if _TENANT_METER is not None:
            _TENANT_METER.charge_batch(n)  # raises with both un-advanced
        self.n_queries += n
        self.elapsed_seconds += n * seconds_each

    def _charge(self, seconds: float) -> None:
        self.charge_batch(1, seconds)

    def remaining_queries(self) -> int | None:
        """Measurements left in the budget (None when unlimited).

        Batch attackers should size their chunks by this: the batched
        probes charge every key of a chunk up front, so submitting a
        chunk larger than the remaining budget raises before any key in
        it is measured.
        """
        if self.max_queries is None:
            return None
        return max(self.max_queries - self.n_queries, 0)

    def snr(self, key: ConfigWord) -> float:
        """Measured modulator-output SNR under ``key``, dB."""
        self._charge(self.cost_model.snr_seconds)
        return measure_modulator_snr(
            self.chip, key, self.standard, n_fft=self.n_fft, seed=self.seed
        ).snr_db

    def snr_batch(self, keys: Sequence[ConfigWord]) -> list[float]:
        """Batched :meth:`snr` — many keys, one engine submission.

        Every key is a metered measurement: the whole chunk is charged
        atomically *before* the batch runs, so a budget overrun raises
        without spending simulation time and without partially
        advancing the meters, at the same query count at which a
        sequential search would be refused.
        """
        self.charge_batch(len(keys), self.cost_model.snr_seconds)
        measurements = measure_modulator_snr_batch(
            self.chip, keys, self.standard, n_fft=self.n_fft, seed=self.seed
        )
        return [m.snr_db for m in measurements]

    def sfdr(self, key: ConfigWord) -> float:
        """Measured SFDR under ``key``, dB."""
        self._charge(self.cost_model.sfdr_seconds)
        return measure_sfdr(
            self.chip, key, self.standard, n_fft=self.n_fft, seed=self.seed
        ).sfdr_db

    def sfdr_batch(self, keys: Sequence[ConfigWord]) -> list[float]:
        """Batched :meth:`sfdr`; metering as in :meth:`snr_batch`."""
        self.charge_batch(len(keys), self.cost_model.sfdr_seconds)
        measurements = measure_sfdr_batch(
            self.chip, keys, self.standard, n_fft=self.n_fft, seed=self.seed
        )
        return [m.sfdr_db for m in measurements]

    def receiver_snr(self, key: ConfigWord, n_baseband: int = 512) -> float:
        """Measured SNR at the receiver output (the functional figure).

        This is the paper's 20-minute measurement: SNR at the output of
        the RF receiver for a given input.
        """
        self._charge(self.cost_model.snr_seconds)
        return measure_receiver_snr(
            self.chip, key, self.standard, n_baseband=n_baseband, seed=self.seed
        ).snr_db

    def receiver_snr_batch(
        self, keys: Sequence[ConfigWord], n_baseband: int = 512
    ) -> list[float]:
        """Batched :meth:`receiver_snr`; metering as in :meth:`snr_batch`."""
        self.charge_batch(len(keys), self.cost_model.snr_seconds)
        measurements = measure_receiver_snr_batch(
            self.chip, keys, self.standard, n_baseband=n_baseband, seed=self.seed
        )
        return [m.snr_db for m in measurements]

    def spec(self) -> PerformanceSpec:
        """The public performance specification (datasheet knowledge)."""
        return PerformanceSpec.for_standard(self.standard)

    def unlocks(self, key: ConfigWord) -> bool:
        """Full adjudication of ``key`` against the specification.

        "Locking succeeds when at least one performance violates its
        specification" (Sec. VI-A) — so an unlock claim must survive
        both the full-resolution modulator measurement *and* the
        receiver-output measurement.  The two-stage check is what
        unmasks 'deceptive' keys: an analog-passthrough key can fake a
        high modulator-output SNR (especially on short records) but
        collapses after the digital section, exactly as in Figs. 7-9.
        """
        self._charge(self.cost_model.snr_seconds)
        snr_mod = measure_modulator_snr(
            self.chip, key, self.standard, n_fft=8192, seed=self.seed
        ).snr_db
        spec = self.spec()
        if snr_mod < spec.snr_min_db:
            return False
        snr_rx = self.receiver_snr(key)
        return spec.meets(snr_db=snr_mod, snr_rx_db=snr_rx)


# ---------------------------------------------------------------------------
# Speculative measurement (partitioned sub-tasks) and scripted replay
# ---------------------------------------------------------------------------


def speculative_snr_batch(oracle, keys: Sequence[ConfigWord]) -> list[float]:
    """The measurement values :meth:`MeasurementOracle.snr_batch` would
    return — *without* charging either the oracle budget or an installed
    tenant meter.  Sub-tasks score their slices with this; every charge
    commits later, in replay order, when the parent's assembly replays
    the scalar attack against the script (see :class:`ScriptedOracle`)."""
    measurements = measure_modulator_snr_batch(
        oracle.chip, keys, oracle.standard, n_fft=oracle.n_fft,
        seed=oracle.seed,
    )
    return [m.snr_db for m in measurements]


def speculative_sfdr_batch(oracle, keys: Sequence[ConfigWord]) -> list[float]:
    """Unmetered :meth:`MeasurementOracle.sfdr_batch` values; see
    :func:`speculative_snr_batch`."""
    measurements = measure_sfdr_batch(
        oracle.chip, keys, oracle.standard, n_fft=oracle.n_fft,
        seed=oracle.seed,
    )
    return [m.sfdr_db for m in measurements]


class ScriptedOracle:
    """A metering oracle whose batched measurements are served from
    pre-computed scripts — the replay half of speculative sub-tasks.

    Charges are *identical* to the wrapped oracle's: every ``snr_batch``
    / ``sfdr_batch`` call charges the oracle budget and any installed
    tenant meter atomically before serving, so ``n_queries``, meter
    totals and the :class:`QueryBudgetExceeded` refusal point land
    exactly where the unscripted attack's would.  Only the measurement
    *computation* is skipped — the values were produced by sub-tasks
    running the same ``measure_*_batch`` calls on identical inputs.

    The scripts are flat value streams consumed by a cursor: the replay
    makes the same calls in the same order the speculation anticipated,
    so positional serving is exact.  If a script runs dry (speculation
    stopped short — e.g. a deceptive key pushed the search past the
    speculated horizon), the remainder is measured live through the
    same engine calls, preserving bit-exactness.  Everything else
    (``unlocks``, ``receiver_snr``, ``spec``, budget state) delegates
    to the wrapped oracle.
    """

    def __init__(self, oracle: MeasurementOracle, snrs=(), sfdrs=()):
        self._oracle = oracle
        self._snrs = list(snrs)
        self._sfdrs = list(sfdrs)
        self._snr_pos = 0
        self._sfdr_pos = 0

    def snr_batch(self, keys: Sequence[ConfigWord]) -> list[float]:
        self._oracle.charge_batch(len(keys), self._oracle.cost_model.snr_seconds)
        return self._serve(
            keys, self._snrs, "_snr_pos",
            lambda rest: speculative_snr_batch(self._oracle, rest),
        )

    def sfdr_batch(self, keys: Sequence[ConfigWord]) -> list[float]:
        self._oracle.charge_batch(len(keys), self._oracle.cost_model.sfdr_seconds)
        return self._serve(
            keys, self._sfdrs, "_sfdr_pos",
            lambda rest: speculative_sfdr_batch(self._oracle, rest),
        )

    def _serve(self, keys, script, pos_attr, measure):
        pos = getattr(self, pos_attr)
        served = list(script[pos:pos + len(keys)])
        setattr(self, pos_attr, pos + len(served))
        if len(served) < len(keys):
            served.extend(measure(keys[len(served):]))
        return served

    def __getattr__(self, name):
        return getattr(self._oracle, name)
