"""Attack suite: brute force, optimisation, transfer, removal, SAT."""

from repro.attacks.brute_force import (
    BruteForceAttack,
    BruteForceOutcome,
    expected_trials,
    success_probability,
)
from repro.attacks.cost import (
    AttackCostModel,
    SECONDS_PER_YEAR,
    SIM_DR_SWEEP_SECONDS,
    SIM_SFDR_SECONDS,
    SIM_SNR_SECONDS,
    format_years,
)
from repro.attacks.optimization import (
    GeneticAttack,
    OptimizationOutcome,
    SimulatedAnnealingAttack,
)
from repro.attacks.oracle import MeasurementOracle, QueryBudgetExceeded
from repro.attacks.removal import (
    RemovalOutcome,
    removal_attack,
    removal_comparison,
)
from repro.attacks.sat_attack import (
    SatAttack,
    SatAttackNotApplicable,
    SatAttackResult,
    assert_sat_attack_applicable,
)
from repro.attacks.transfer import TransferAttack, TransferOutcome

__all__ = [
    "AttackCostModel",
    "BruteForceAttack",
    "BruteForceOutcome",
    "GeneticAttack",
    "MeasurementOracle",
    "OptimizationOutcome",
    "QueryBudgetExceeded",
    "RemovalOutcome",
    "SECONDS_PER_YEAR",
    "SIM_DR_SWEEP_SECONDS",
    "SIM_SFDR_SECONDS",
    "SIM_SNR_SECONDS",
    "SatAttack",
    "SatAttackNotApplicable",
    "SatAttackResult",
    "SimulatedAnnealingAttack",
    "TransferAttack",
    "TransferOutcome",
    "assert_sat_attack_applicable",
    "expected_trials",
    "format_years",
    "removal_attack",
    "removal_comparison",
    "success_probability",
]
