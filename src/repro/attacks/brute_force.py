"""Brute-force key search (paper Sec. IV-B.3 / VI-B.1).

"The most trivial attack is the brute-force attack which consists in
applying random combinations of programming bits until the one that
unlocks the circuit is found."  The empirical campaign runs an actual
random search against the measurement oracle; the analytic side
extrapolates what the measured success density implies for the full
2^64 space at simulation or hardware measurement speeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attacks.cost import AttackCostModel, format_years
from repro.attacks.oracle import MeasurementOracle, speculative_snr_batch
from repro.receiver.config import KEY_BITS, ConfigWord


def draw_random_keys(rng: np.random.Generator, n: int) -> list[ConfigWord]:
    """The next ``n`` keys of the brute-force key stream.  The stream is
    a pure function of the RNG state and is independent of how the
    search chunks its measurements — which is what makes key-range
    sub-tasks replayable: any consumer that skips ``start`` draws sees
    exactly the keys the scalar search would draw at that offset."""
    return [ConfigWord.random(rng) for _ in range(n)]


def score_key_range(oracle, seed: int, start: int, count: int) -> list[float]:
    """Speculatively score keys ``start .. start+count`` of the key
    stream seeded by ``seed`` — *unmetered* (see
    :func:`~repro.attacks.oracle.speculative_snr_batch`); the parent's
    replay commits the charges in sequential order.  A pure function of
    its arguments, so sub-task retries are trivially safe."""
    rng = np.random.default_rng(seed)
    draw_random_keys(rng, start)  # burn to the range's stream offset
    keys = draw_random_keys(rng, count)
    return speculative_snr_batch(oracle, keys)


@dataclass
class BruteForceOutcome:
    """Result of a brute-force campaign.

    Attributes:
        success: Whether an unlocking key was found in budget.
        best_key: Highest-SNR key tried.
        best_snr_db: Its SNR.
        n_trials: Keys tried.
        elapsed_lab_seconds: Modelled lab time for the campaign.
        extrapolated_years_full_space: Expected time to search half the
            2^64 space at the same per-trial cost.
    """

    success: bool
    best_key: ConfigWord
    best_snr_db: float
    n_trials: int
    elapsed_lab_seconds: float
    extrapolated_years_full_space: float

    def summary(self) -> str:
        """One-line human-readable outcome."""
        status = "SUCCEEDED" if self.success else "failed"
        return (
            f"brute force {status} after {self.n_trials} trials "
            f"(best {self.best_snr_db:.1f} dB); full-space expectation "
            f"{format_years(self.extrapolated_years_full_space)}"
        )


@dataclass
class BruteForceAttack:
    """Random-key search against a measurement oracle.

    Keys are measured in chunks of ``batch_size`` through the oracle's
    batched SNR probe — the lab analogue of parallel test benches, and
    the simulation analogue of one amortised engine submission.  The
    key draw order, the best-so-far tracking and the spec adjudication
    are unchanged from the sequential search.
    """

    oracle: MeasurementOracle
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(13))
    batch_size: int = 16

    def run(self, n_trials: int) -> BruteForceOutcome:
        """Try ``n_trials`` uniformly random keys.

        A key whose quick SNR probe crosses the spec is confirmed with
        the oracle's full adjudication (modulator + receiver output),
        which rejects deceptive analog-passthrough keys.  Every key of
        a measured chunk counts as a trial (all of its benches ran),
        and chunks never exceed the oracle's remaining budget, so a
        budget overrun raises at the same query count as a sequential
        search.
        """
        if n_trials < 1:
            raise ValueError(f"n_trials must be positive, got {n_trials}")
        spec = self.oracle.spec()
        best_key: ConfigWord | None = None
        best_snr = -np.inf
        success = False
        trials = 0
        while trials < n_trials and not success:
            chunk_size = min(self.batch_size, n_trials - trials)
            remaining = self.oracle.remaining_queries()
            if remaining is not None:
                # Never pre-charge past the budget; a 1-key chunk lets
                # the oracle raise exactly at the budget boundary.
                chunk_size = max(min(chunk_size, remaining), 1)
            chunk = draw_random_keys(self.rng, chunk_size)
            snrs = self.oracle.snr_batch(chunk)
            trials += len(chunk)
            for key, snr in zip(chunk, snrs):
                if snr > best_snr:
                    best_key, best_snr = key, snr
                if not success and snr >= spec.snr_min_db and self.oracle.unlocks(key):
                    success = True
        assert best_key is not None  # n_trials >= 1 measures a chunk
        return BruteForceOutcome(
            success=success,
            best_key=best_key,
            best_snr_db=best_snr,
            n_trials=trials,
            elapsed_lab_seconds=self.oracle.elapsed_seconds,
            extrapolated_years_full_space=AttackCostModel(
                snr_seconds=self.oracle.cost_model.snr_seconds
            ).brute_force_years(),
        )


def success_probability(n_trials: float, unlocking_fraction: float) -> float:
    """P(at least one success) for a random search."""
    if not 0.0 <= unlocking_fraction <= 1.0:
        raise ValueError(f"fraction must be in [0,1], got {unlocking_fraction}")
    return 1.0 - (1.0 - unlocking_fraction) ** n_trials


def expected_trials(unlocking_fraction: float) -> float:
    """Expected random trials until the first success."""
    if unlocking_fraction <= 0.0:
        return float(1 << KEY_BITS)
    return 1.0 / unlocking_fraction
