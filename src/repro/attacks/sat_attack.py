"""Oracle-guided SAT attack on logic locking (ref [17]) and why it does
not apply to the proposed scheme (paper Sec. IV-B.1).

The classic attack: build a *miter* of two copies of the locked circuit
sharing primary inputs but with independent keys, constrained to
disagree on some output.  Each SAT solution yields a distinguishing
input; querying the oracle on it and constraining both copies to match
the oracle's answer eliminates whole equivalence classes of wrong keys.
When the miter goes UNSAT, any key satisfying the accumulated
constraints is functionally correct.

This breaks the digital-locking baselines ([9], [10]) in a handful of
iterations.  For the paper's analog fabric locking there is *no*
Boolean circuit between key and observable behaviour — the "netlist"
is a transistor-level analog loop and the observable is a measured SNR
— so the attack has no formulation: :func:`assert_sat_attack_applicable`
raises :class:`SatAttackNotApplicable` with the structural reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.logic.cnf import CnfBuilder, encode_netlist
from repro.logic.gates import Netlist
from repro.logic.locking import LockedNetlist
from repro.logic.sat import solve_cnf


class SatAttackNotApplicable(RuntimeError):
    """The target is not a Boolean-locked circuit with an I/O oracle."""


@dataclass
class SatAttackResult:
    """Result of a successful SAT attack.

    Attributes:
        key: A functionally-correct key (equivalence class witness).
        n_oracle_queries: Distinguishing-input queries used.
        n_iterations: Miter iterations until UNSAT.
    """

    key: int
    n_oracle_queries: int
    n_iterations: int


@dataclass
class SatAttack:
    """Decamouflage a :class:`LockedNetlist` with oracle access."""

    locked: LockedNetlist
    oracle: Callable[[dict[str, int]], dict[str, int]]
    max_iterations: int = 64
    _primary_inputs: list[str] = field(init=False)

    def __post_init__(self) -> None:
        self._primary_inputs = [
            net for net in self.locked.netlist.inputs if not net.startswith("key")
        ]

    def run(self) -> SatAttackResult:
        """Execute the attack until the miter is UNSAT."""
        builder = CnfBuilder()
        # Two copies A/B over shared miter inputs but distinct keys.
        map_a = encode_netlist(builder, self.locked.netlist, prefix="A.")
        map_b = encode_netlist(builder, self.locked.netlist, prefix="B.")
        # Share the primary inputs between copies.
        for net in self._primary_inputs:
            va, vb = builder.var("A." + net), builder.var("B." + net)
            builder.add_clause(-va, vb)
            builder.add_clause(va, -vb)
        # Miter: at least one output differs.
        diff_vars = []
        for out in self.locked.netlist.outputs:
            d = builder.new_var()
            builder.encode_xor2(d, builder.var("A." + out), builder.var("B." + out))
            diff_vars.append(d)
        builder.add_clause(*diff_vars)

        n_queries = 0
        iteration = 0
        while True:
            iteration += 1
            if iteration > self.max_iterations:
                raise RuntimeError("SAT attack exceeded its iteration budget")
            result = solve_cnf(builder.n_vars, builder.clauses)
            if not result.satisfiable:
                break
            # Distinguishing input from the model.
            dis = {
                net: int(result.assignment.get(builder.var("A." + net), False))
                for net in self._primary_inputs
            }
            response = self.oracle(dis)
            n_queries += 1
            # Constrain both key copies to reproduce the oracle on `dis`
            # via two fresh circuit copies.
            for key_side in ("A.", "B."):
                prefix = f"io{iteration}{key_side}"
                mapping = encode_netlist(builder, self.locked.netlist, prefix=prefix)
                for net in self._primary_inputs:
                    v = builder.var(prefix + net)
                    builder.add_clause(v if dis[net] else -v)
                for i in range(self.locked.key_bits):
                    shared = builder.var(key_side + f"key{i}")
                    local = builder.var(prefix + f"key{i}")
                    builder.add_clause(-shared, local)
                    builder.add_clause(shared, -local)
                for out, val in response.items():
                    v = builder.var(prefix + out)
                    builder.add_clause(v if val else -v)

        # Any key satisfying the accumulated IO constraints is correct:
        # drop the miter disagreement clause and solve for key A.
        final = CnfBuilder()
        final.clauses = [c for c in builder.clauses]
        final._var_count = builder.n_vars
        final._names = dict(builder._names)
        final.clauses.remove(tuple(diff_vars))
        result = solve_cnf(final.n_vars, final.clauses)
        if not result.satisfiable:
            raise RuntimeError("constraint set unsatisfiable — oracle inconsistent")
        key = 0
        for i in range(self.locked.key_bits):
            if result.assignment.get(builder.var(f"A.key{i}"), False):
                key |= 1 << i
        return SatAttackResult(
            key=key, n_oracle_queries=n_queries, n_iterations=iteration
        )


def assert_sat_attack_applicable(target: object) -> None:
    """Gatekeeper used by attack drivers.

    Raises :class:`SatAttackNotApplicable` for anything that is not a
    Boolean-locked netlist — in particular the analog fabric lock, where
    the key feeds tuning knobs of a continuous-time loop and the only
    observable is a measured performance, not a Boolean output.
    """
    if isinstance(target, LockedNetlist):
        return
    raise SatAttackNotApplicable(
        f"SAT attack needs a Boolean locked netlist with an I/O oracle; "
        f"{type(target).__name__} exposes only analog measurements, so no "
        "miter can be formulated (paper Sec. IV-B.1)"
    )
