"""Key-transfer (gradient) attack across chips (paper Sec. IV-B.3).

"...if the programming bits are unique for each chip, then these
attacks become meaningful only if the resultant key-bit combination can
be used to set a good starting point for launching a gradient search
for quickly calibrating any chip."

This attack assumes the strongest position the paper grants: the
attacker somehow obtained the full correct key of one chip (chip A) and
owns a re-fabbed chip B with direct programming-bit access.  The attack
hill-climbs from A's key on B's oracle.  Because process variations
move mainly the *fine* knobs, the leaked key is indeed a good starting
point — quantifying exactly the residual risk the paper concedes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attacks.oracle import MeasurementOracle
from repro.calibration.optimizer import coordinate_descent
from repro.receiver.config import ConfigWord

#: Field groups the hill-climb sweeps, mirroring what an attacker can
#: guess from the netlist structure (arrays and bias DACs).
TRANSFER_FIELDS: tuple[tuple[str, int], ...] = (
    ("cf_fine", 8),
    ("cc_coarse", 8),
    ("gmq_code", 6),
    ("gmin_code", 6),
    ("dac_code", 6),
    ("preamp_code", 5),
    ("comp_code", 5),
    ("bias_global", 3),
)


@dataclass
class TransferOutcome:
    """Result of a transfer attack.

    Attributes:
        success: Whether chip B reached its spec.
        start_snr_db: SNR of the leaked key applied verbatim to chip B.
        final_snr_db: SNR after the local search.
        final_key: Best key found for chip B.
        n_queries: Oracle measurements spent.
    """

    success: bool
    start_snr_db: float
    final_snr_db: float
    final_key: ConfigWord
    n_queries: int


@dataclass
class TransferAttack:
    """Hill-climb on chip B starting from chip A's leaked key."""

    oracle: MeasurementOracle
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(23))

    def run(self, leaked_key: ConfigWord, passes: int = 1) -> TransferOutcome:
        """Run the local search from ``leaked_key``."""
        start_snr = self.oracle.snr(leaked_key)
        result = coordinate_descent(
            self.oracle.snr,
            leaked_key,
            fields=TRANSFER_FIELDS,
            passes=passes,
            initial_step=4,
        )
        spec = self.oracle.spec()
        success = result.score >= spec.snr_min_db and self.oracle.unlocks(
            result.config
        )
        return TransferOutcome(
            success=success,
            start_snr_db=start_snr,
            final_snr_db=result.score,
            final_key=result.config,
            n_queries=self.oracle.n_queries,
        )
