"""Removal-attack analysis (paper Secs. II and IV-B.2).

"Removal attacks ... are not applicable [to the proposed scheme] as
there is no added circuitry on-chip to facilitate the key insertion."

For the baseline schemes, the attack model follows the paper's
narrative: the attacker owns a working chip, measures the few bias
values the locked block produces, cuts the block out of the netlist and
drops in a 'fresh' replacement producing those biases.  The attack
succeeds when (a) there is something to remove, (b) the values to
re-generate are observable and fixed per design.  Digital-section locks
([9], [10]) require re-synthesising a whole digital block — harder, as
the paper concedes, but still possible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import AnalogLockScheme

#: Narrative effort labels indexed by replacement_difficulty.
EFFORT_LABELS = (
    "trivial: measure bias, replace with plain generator",
    "moderate: re-derive several interacting biases",
    "hard: re-synthesise the locked digital block",
    "not applicable: nothing to remove",
)


@dataclass(frozen=True)
class RemovalOutcome:
    """Adjudicated removal attack against one scheme.

    Attributes:
        scheme_name: Scheme attacked.
        reference: Its literature tag.
        applicable: Whether a removal attack can even be formulated.
        succeeds: Whether the modelled attacker wins.
        measurements_needed: Bias values to recover from the oracle chip.
        effort: Narrative effort description.
    """

    scheme_name: str
    reference: str
    applicable: bool
    succeeds: bool
    measurements_needed: int
    effort: str


def removal_attack(scheme: AnalogLockScheme) -> RemovalOutcome:
    """Run the removal-attack adjudication against ``scheme``."""
    surface = scheme.removal_surface()
    profile = scheme.profile
    if not surface.has_added_circuitry:
        return RemovalOutcome(
            scheme_name=profile.name,
            reference=profile.reference,
            applicable=False,
            succeeds=False,
            measurements_needed=0,
            effort=EFFORT_LABELS[3],
        )
    # Bias-style locks: success iff the values to regenerate are fixed
    # per design and observable (the [6]-[8], [11] weakness).
    succeeds = surface.biases_fixed_per_design or surface.replacement_difficulty <= 2
    return RemovalOutcome(
        scheme_name=profile.name,
        reference=profile.reference,
        applicable=True,
        succeeds=succeeds,
        measurements_needed=max(surface.n_bias_nodes, 1),
        effort=EFFORT_LABELS[min(surface.replacement_difficulty, 2)],
    )


def removal_comparison(schemes: list[AnalogLockScheme]) -> list[RemovalOutcome]:
    """Adjudicate every scheme; the paper's Sec. II comparison, computed."""
    return [removal_attack(s) for s in schemes]
