"""Toy RSA for the remote-activation protocol (paper Sec. IV-B, ref [15]).

The paper adapts "the concept of remotely activating the chips using
asymmetric cryptography" for high-volume products tested at untrusted
facilities.  This module supplies a self-contained textbook RSA
(Miller-Rabin primes, square-and-multiply modexp) sized for the
*protocol demonstration only* — 256-bit moduli are NOT cryptographically
secure and the implementation is deliberately simple.  The deliverable
is the key-exchange data flow, not the cryptography.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97,
)


def is_probable_prime(n: int, rng: np.random.Generator, rounds: int = 24) -> bool:
    """Miller-Rabin primality test."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        # Build an arbitrary-precision witness from 32-bit draws (numpy
        # cannot sample beyond int64 bounds directly).
        raw = 0
        for _ in range(0, n.bit_length() + 32, 32):
            raw = (raw << 32) | int(rng.integers(0, 1 << 32))
        a = 2 + raw % (n - 3)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: np.random.Generator) -> int:
    """Random prime with the top bit set."""
    if bits < 8:
        raise ValueError(f"prime size too small: {bits} bits")
    while True:
        candidate = 0
        for _ in range(0, bits, 32):
            candidate = (candidate << 32) | int(rng.integers(0, 1 << 32))
        candidate &= (1 << bits) - 1
        candidate |= (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class RsaKeypair:
    """RSA keypair: (n, e) public, d private."""

    n: int
    e: int
    d: int

    @property
    def public(self) -> tuple[int, int]:
        """The shareable public key (n, e)."""
        return self.n, self.e


def generate_keypair(bits: int = 256, seed: int | None = None) -> RsaKeypair:
    """Generate a toy RSA keypair with a ``bits``-bit modulus."""
    rng = np.random.default_rng(seed)
    e = 65537
    while True:
        p = generate_prime(bits // 2, rng)
        q = generate_prime(bits // 2, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        d = pow(e, -1, phi)
        return RsaKeypair(n=p * q, e=e, d=d)


def encrypt(message: int, public: tuple[int, int]) -> int:
    """Raw RSA encryption of an integer message (< n)."""
    n, e = public
    if not 0 <= message < n:
        raise ValueError("message must be a non-negative integer below the modulus")
    return pow(message, e, n)


def decrypt(ciphertext: int, keypair: RsaKeypair) -> int:
    """Raw RSA decryption."""
    if not 0 <= ciphertext < keypair.n:
        raise ValueError("ciphertext out of range")
    return pow(ciphertext, keypair.d, keypair.n)
