"""Behavioural arbiter PUF (paper Fig. 3b, ref. [16]).

The additive-delay arbiter model: a challenge of n bits configures n
swap/pass stages; the sign of the accumulated differential delay decides
the response bit.  Stage delays are a per-chip manufacturing fingerprint
(seeded draw), and every evaluation adds a small noise term, so
responses are unique per chip and mostly — not perfectly — stable,
like real silicon.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ArbiterPuf:
    """Arbiter PUF bound to one chip.

    Args:
        chip_id: Die identity; determines the delay fingerprint.
        n_stages: Challenge width (also the response granularity).
        lot_seed: Manufacturing-lot seed.
        noise_sigma: Evaluation noise relative to the stage-delay sigma
            (sets the native bit-error rate).
    """

    chip_id: int
    n_stages: int = 64
    lot_seed: int = 77
    noise_sigma: float = 0.03
    _deltas: np.ndarray = field(init=False, repr=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        fingerprint = np.random.default_rng(
            np.random.SeedSequence(entropy=self.lot_seed, spawn_key=(self.chip_id, 0xB0F))
        )
        self._deltas = fingerprint.normal(0.0, 1.0, self.n_stages + 1)
        self._rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self.lot_seed, spawn_key=(self.chip_id, 0x4015E))
        )

    def _parity_features(self, challenge_bits: np.ndarray) -> np.ndarray:
        """The standard arbiter parity transform of a challenge."""
        # phi_i = product of (1 - 2*c_j) for j >= i, plus a constant 1.
        signs = 1.0 - 2.0 * challenge_bits.astype(float)
        features = np.ones(self.n_stages + 1)
        features[:-1] = np.cumprod(signs[::-1])[::-1]
        return features

    def response_bit(self, challenge_bits: np.ndarray, noisy: bool = True) -> int:
        """One evaluation of the PUF for an ``n_stages``-bit challenge."""
        challenge_bits = np.asarray(challenge_bits)
        if challenge_bits.size != self.n_stages:
            raise ValueError(
                f"challenge must have {self.n_stages} bits, got {challenge_bits.size}"
            )
        delay = float(np.dot(self._deltas, self._parity_features(challenge_bits)))
        if noisy:
            delay += float(self._rng.normal(0.0, self.noise_sigma * np.sqrt(self.n_stages)))
        return 1 if delay >= 0.0 else 0

    def response_bit_voted(self, challenge_bits: np.ndarray, votes: int = 7) -> int:
        """Majority-voted response bit (the standard stabiliser)."""
        total = sum(self.response_bit(challenge_bits) for _ in range(votes))
        return 1 if total * 2 > votes else 0

    def response_word(
        self,
        base_challenge: int,
        n_bits: int = 64,
        votes: int = 7,
        stabilised: bool = True,
    ) -> int:
        """An ``n_bits`` identification key from derived challenges.

        Challenge ``i`` is derived from ``base_challenge`` with a simple
        counter-in-the-low-bits construction — the usual way one PUF
        yields many response bits.

        With ``stabilised`` (the default) the word models the output of
        the helper-data error correction every deployed PUF key store
        uses: bit decisions follow the noise-free delay signs, so the
        same chip always reproduces the same word.  ``stabilised=False``
        exposes the raw majority-voted behaviour for reliability
        studies.
        """
        word = 0
        for i in range(n_bits):
            c = (base_challenge + i * 0x9E3779B97F4A7C15) & ((1 << self.n_stages) - 1)
            bits = np.array([(c >> j) & 1 for j in range(self.n_stages)])
            if stabilised:
                bit = self.response_bit(bits, noisy=False)
            else:
                bit = self.response_bit_voted(bits, votes)
            word |= bit << i
        return word


def inter_chip_uniqueness(pufs: list[ArbiterPuf], base_challenge: int = 0xACE1, n_bits: int = 64) -> float:
    """Average pairwise fractional Hamming distance of identification keys.

    Ideal PUFs sit near 0.5.
    """
    words = [p.response_word(base_challenge, n_bits) for p in pufs]
    if len(words) < 2:
        raise ValueError("need at least two PUFs")
    total = 0.0
    pairs = 0
    for i in range(len(words)):
        for j in range(i + 1, len(words)):
            total += bin(words[i] ^ words[j]).count("1") / n_bits
            pairs += 1
    return total / pairs


def intra_chip_stability(puf: ArbiterPuf, base_challenge: int = 0xACE1, n_bits: int = 64, repeats: int = 5) -> float:
    """Fraction of raw (pre-ECC) voted response bits stable across
    repeated evaluations."""
    reference = puf.response_word(base_challenge, n_bits, stabilised=False)
    stable = 0
    for _ in range(repeats):
        again = puf.response_word(base_challenge, n_bits, stabilised=False)
        stable += n_bits - bin(reference ^ again).count("1")
    return stable / (n_bits * repeats)
