"""Tamper-proof key memory (paper Fig. 3a).

The first key-management option stores the configuration LUT in a
tamper-proof non-volatile memory.  In normal operation the circuit
"commands dynamically the memories to load the corresponding programming
bits"; any attempt to read the raw array from outside trips the tamper
response and zeroises the contents.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.receiver.config import ConfigWord


class TamperError(RuntimeError):
    """Raised when an unauthorised raw read trips the tamper response."""


@dataclass
class TamperProofMemory:
    """Behavioural tamper-proof LUT of configuration settings.

    Attributes:
        chip_id: The die this memory is fused to.
    """

    chip_id: int
    _lut: dict[int, int] = field(default_factory=dict, init=False)
    _zeroised: bool = field(default=False, init=False)

    def store(self, standard_index: int, key: ConfigWord) -> None:
        """Programme one LUT line (trusted provisioning flow only)."""
        if self._zeroised:
            raise TamperError("memory was zeroised by a tamper event")
        if not 0 <= standard_index < 8:
            raise ValueError(f"standard index {standard_index} out of range")
        self._lut[standard_index] = key.encode()

    def load(self, standard_index: int) -> ConfigWord:
        """Normal-operation load of one configuration setting.

        This is the only sanctioned read path: the word goes straight to
        the configuration registers, never off-chip.
        """
        if self._zeroised:
            raise TamperError("memory was zeroised by a tamper event")
        if standard_index not in self._lut:
            raise KeyError(f"no configuration stored for mode {standard_index}")
        return ConfigWord.decode(self._lut[standard_index])

    def stored_modes(self) -> list[int]:
        """Which operation modes have a stored configuration."""
        return sorted(self._lut)

    def raw_read_attempt(self) -> None:
        """Model of a physical probing attempt: zeroises the array."""
        self._lut.clear()
        self._zeroised = True
        raise TamperError("tamper event detected: key memory zeroised")

    @property
    def zeroised(self) -> bool:
        """Whether the tamper response has fired."""
        return self._zeroised
