"""Key-management schemes of paper Fig. 3 (tamper memory, PUF, remote)."""

from repro.keymgmt.crypto import (
    RsaKeypair,
    decrypt,
    encrypt,
    generate_keypair,
    generate_prime,
    is_probable_prime,
)
from repro.keymgmt.provisioning import (
    BASE_CHALLENGE,
    PufXorScheme,
    RemoteActivator,
    TamperMemoryScheme,
)
from repro.keymgmt.puf import ArbiterPuf, inter_chip_uniqueness, intra_chip_stability
from repro.keymgmt.tamper import TamperError, TamperProofMemory

__all__ = [
    "ArbiterPuf",
    "BASE_CHALLENGE",
    "PufXorScheme",
    "RemoteActivator",
    "RsaKeypair",
    "TamperError",
    "TamperMemoryScheme",
    "TamperProofMemory",
    "decrypt",
    "encrypt",
    "generate_keypair",
    "generate_prime",
    "inter_chip_uniqueness",
    "intra_chip_stability",
    "is_probable_prime",
]
