"""Key-provisioning schemes (paper Fig. 3 and Sec. IV-B).

Three flows are modelled:

* :class:`TamperMemoryScheme` — Fig. 3(a): the configuration LUT lives
  in tamper-proof memory, programmed in the trusted domain.
* :class:`PufXorScheme` — Fig. 3(b): the chip's PUF produces one secret
  identification key per configuration setting; the user receives
  user-keys such that ``user_key XOR id_key = configuration``.  Because
  the user keys are loaded at every power-on, a recycled chip without
  its user-key set is dead — the recycling countermeasure of Sec. IV-C.
* :class:`RemoteActivator` — the asymmetric-crypto flow for untrusted,
  high-volume test facilities: configurations travel encrypted under
  the chip's public key and only decrypt inside the chip.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.keymgmt import crypto
from repro.keymgmt.puf import ArbiterPuf
from repro.keymgmt.tamper import TamperProofMemory
from repro.receiver.config import KEY_BITS, ConfigWord

#: Fixed, public base challenge used to derive per-mode id keys.
BASE_CHALLENGE = 0x5EED_CAFE


@dataclass
class TamperMemoryScheme:
    """Fig. 3(a): configurations stored directly in tamper-proof memory."""

    chip_id: int
    memory: TamperProofMemory = field(init=False)

    def __post_init__(self) -> None:
        self.memory = TamperProofMemory(chip_id=self.chip_id)

    def provision(self, configs: dict[int, ConfigWord]) -> None:
        """Trusted-domain programming of the LUT."""
        for index, config in configs.items():
            self.memory.store(index, config)

    def configuration_for_mode(self, standard_index: int) -> ConfigWord:
        """Normal-operation dynamic load (paper: 'commands dynamically
        the memories to load the corresponding programming bits')."""
        return self.memory.load(standard_index)


@dataclass
class PufXorScheme:
    """Fig. 3(b): PUF id-keys XORed with per-user keys.

    The design house enrols the PUF (reads the id keys in the trusted
    domain), then hands the *user* keys to the customer.  The chip never
    stores the configuration: it recombines it at every power-on.
    """

    puf: ArbiterPuf
    _user_keys: dict[int, int] = field(default_factory=dict, init=False)

    def id_key_for_mode(self, standard_index: int) -> int:
        """The chip-secret identification key for one mode."""
        return self.puf.response_word(
            BASE_CHALLENGE + standard_index, n_bits=KEY_BITS
        )

    def enroll(self, configs: dict[int, ConfigWord]) -> dict[int, int]:
        """Design-house enrolment: derive the user keys.

        Returns the user-key set to be given to the legitimate user.
        """
        user_keys = {}
        for index, config in configs.items():
            user_keys[index] = config.encode() ^ self.id_key_for_mode(index)
        return user_keys

    def power_on(self, user_keys: dict[int, int]) -> None:
        """Load the user keys (required at *every* power-on)."""
        self._user_keys = dict(user_keys)

    def power_off(self) -> None:
        """Power cycle: volatile user keys vanish."""
        self._user_keys = {}

    def configuration_for_mode(self, standard_index: int) -> ConfigWord:
        """Recombine ``user_key XOR id_key`` into the configuration."""
        if standard_index not in self._user_keys:
            raise KeyError(
                f"no user key loaded for mode {standard_index} "
                "(recycled or unactivated chip)"
            )
        word = self._user_keys[standard_index] ^ self.id_key_for_mode(standard_index)
        return ConfigWord.decode(word)


@dataclass
class RemoteActivator:
    """Remote activation across an untrusted test facility (Sec. IV-B.4).

    Flow: the chip derives an RSA keypair from a PUF-seeded RNG and
    exports only the public key.  The (remote, trusted) design house
    encrypts each configuration under that public key; the untrusted
    facility relays opaque ciphertexts; the chip decrypts internally
    into its tamper-proof memory.
    """

    chip_id: int
    rsa_bits: int = 256
    keypair: crypto.RsaKeypair = field(init=False)
    memory: TamperProofMemory = field(init=False)

    def __post_init__(self) -> None:
        # The keypair seed would come from the PUF in silicon; the chip
        # id stands in for that entropy here.
        self.keypair = crypto.generate_keypair(self.rsa_bits, seed=self.chip_id + 1)
        self.memory = TamperProofMemory(chip_id=self.chip_id)

    @property
    def public_key(self) -> tuple[int, int]:
        """What the test facility may read out and forward."""
        return self.keypair.public

    @staticmethod
    def design_house_encrypt(
        configs: dict[int, ConfigWord], public_key: tuple[int, int]
    ) -> dict[int, int]:
        """Design-house side: encrypt each configuration word."""
        return {
            index: crypto.encrypt(config.encode(), public_key)
            for index, config in configs.items()
        }

    def activate(self, ciphertexts: dict[int, int]) -> None:
        """On-chip decryption straight into the key memory."""
        for index, ciphertext in ciphertexts.items():
            word = crypto.decrypt(ciphertext, self.keypair)
            self.memory.store(index, ConfigWord.decode(word))

    def configuration_for_mode(self, standard_index: int) -> ConfigWord:
        """Normal-operation load after activation."""
        return self.memory.load(standard_index)
