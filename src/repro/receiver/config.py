"""The 64-bit analog configuration word (= the secret key).

The paper's receiver embeds 64 programming bits in the analog section
(4 for the VGLNA, 60 for the band-pass sigma-delta modulator) and 3 in
the digital section.  The analog word doubles as the locking key; the
digital bits are excluded from the key, as in the paper ("the calibration
of the digital section for a given standard is straightforward").

The register map below allocates the 64 bits across the tuning knobs of
Figs. 5 and 6: VGLNA gain, coarse/fine capacitor arrays (Cc, Cf), the
-Gm Q-enhancement bias, the Gmin/pre-amp/comparator/DAC bias trims, the
loop delay, the output buffer, the loop-topology enables used by the
calibration procedure (feedback, comparator clock, Gmin, DAC), plus
dither/chopping controls and a global bias trim.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

#: (field name, bit width), LSB-first packing order.  Widths sum to 64.
FIELD_SPEC: tuple[tuple[str, int], ...] = (
    ("lna_gain", 4),
    ("cc_coarse", 8),
    ("cf_fine", 8),
    ("gmq_code", 6),
    ("gmin_code", 6),
    ("preamp_code", 5),
    ("comp_code", 5),
    ("dac_code", 6),
    ("delay_code", 4),
    ("buffer_code", 3),
    ("comp_clk_en", 1),
    ("fb_en", 1),
    ("gmin_en", 1),
    ("dac_en", 1),
    ("dither_en", 1),
    ("chop_en", 1),
    ("bias_global", 3),
)

KEY_BITS = sum(width for _, width in FIELD_SPEC)
assert KEY_BITS == 64, f"register map must span 64 bits, got {KEY_BITS}"


@dataclass(frozen=True)
class ConfigWord:
    """Decoded 64-bit analog configuration word.

    Every field is an unsigned integer bounded by its register width.
    Instances are immutable; use :meth:`replace` for modified copies.
    """

    lna_gain: int = 0
    cc_coarse: int = 0
    cf_fine: int = 0
    gmq_code: int = 0
    gmin_code: int = 0
    preamp_code: int = 0
    comp_code: int = 0
    dac_code: int = 0
    delay_code: int = 0
    buffer_code: int = 0
    comp_clk_en: int = 1
    fb_en: int = 1
    gmin_en: int = 1
    dac_en: int = 1
    dither_en: int = 0
    chop_en: int = 0
    bias_global: int = 4

    def __post_init__(self) -> None:
        for name, width in FIELD_SPEC:
            value = getattr(self, name)
            if not isinstance(value, (int, np.integer)):
                raise TypeError(f"{name} must be an integer, got {type(value)!r}")
            if not 0 <= value < (1 << width):
                raise ValueError(
                    f"{name}={value} out of range for a {width}-bit field"
                )

    # -- encoding ---------------------------------------------------------

    def encode(self) -> int:
        """Pack all fields into a 64-bit integer (LSB-first field order)."""
        word = 0
        shift = 0
        for name, width in FIELD_SPEC:
            word |= (int(getattr(self, name)) & ((1 << width) - 1)) << shift
            shift += width
        return word

    @classmethod
    def decode(cls, word: int) -> "ConfigWord":
        """Unpack a 64-bit integer into a :class:`ConfigWord`."""
        if not 0 <= word < (1 << KEY_BITS):
            raise ValueError(f"word must fit in {KEY_BITS} bits, got {word:#x}")
        values = {}
        shift = 0
        for name, width in FIELD_SPEC:
            values[name] = (word >> shift) & ((1 << width) - 1)
            shift += width
        return cls(**values)

    def to_bits(self) -> np.ndarray:
        """LSB-first bit vector of length 64 (dtype uint8)."""
        word = self.encode()
        return np.array([(word >> i) & 1 for i in range(KEY_BITS)], dtype=np.uint8)

    @classmethod
    def from_bits(cls, bits: np.ndarray) -> "ConfigWord":
        """Inverse of :meth:`to_bits`."""
        bits = np.asarray(bits)
        if bits.size != KEY_BITS:
            raise ValueError(f"need {KEY_BITS} bits, got {bits.size}")
        word = 0
        for i in range(KEY_BITS):
            word |= (int(bits[i]) & 1) << i
        return cls.decode(word)

    # -- manipulation -------------------------------------------------------

    def replace(self, **changes: int) -> "ConfigWord":
        """Copy with the given fields replaced."""
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        values.update(changes)
        return ConfigWord(**values)

    def flip_bits(self, positions: list[int]) -> "ConfigWord":
        """Copy with the listed bit positions (0..63) inverted."""
        word = self.encode()
        for p in positions:
            p = int(p)  # accept numpy integers
            if not 0 <= p < KEY_BITS:
                raise ValueError(f"bit position {p} out of range")
            word ^= 1 << p
        return ConfigWord.decode(word)

    def hamming_distance(self, other: "ConfigWord") -> int:
        """Number of differing bits between two configuration words."""
        return int(bin(self.encode() ^ other.encode()).count("1"))

    @classmethod
    def random(cls, rng: np.random.Generator) -> "ConfigWord":
        """Uniformly random 64-bit configuration word (an 'invalid key')."""
        word = int(rng.integers(0, 1 << 32)) | (int(rng.integers(0, 1 << 32)) << 32)
        return cls.decode(word)

    @staticmethod
    def field_bit_range(name: str) -> tuple[int, int]:
        """Bit span ``[lo, hi)`` of field ``name`` within the 64-bit word."""
        shift = 0
        for field_name, width in FIELD_SPEC:
            if field_name == name:
                return shift, shift + width
            shift += width
        raise KeyError(f"no field named {name!r}")


@dataclass(frozen=True)
class DigitalConfig:
    """The 3 digital-section programming bits (not part of the key).

    They select the decimation/band profile for the target standard;
    the paper excludes them from the lock because their setting is
    straightforward to derive.
    """

    standard_select: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.standard_select < 8:
            raise ValueError(
                f"standard_select must fit in 3 bits, got {self.standard_select}"
            )
