"""Performance measurements on configured chips.

These functions are the behavioural equivalent of the paper's bench
measurements: SNR at the modulator output (Fig. 7), SNR at the receiver
output (Fig. 9), PSD (Fig. 10), SNR-vs-input-power dynamic range sweeps
(Fig. 11) and two-tone SFDR (Fig. 12).  They are also the only
interface the calibration procedure and the attacks get to a chip.

Measurement conventions:

* The stimulus tone sits ``TONE_OFFSET_FRACTION`` of the signal band
  above the standard's centre frequency (a tone exactly at F0 would land
  at DC after down-conversion), snapped to an FFT bin.
* The in-band region is ``F0 +/- fs/(4*OSR)`` (bandwidth ``fs/(2*OSR)``),
  and the SNR counts every non-signal in-band component as noise,
  matching the paper's "noise or harmonics within the band-of-interest".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.dsp.metrics import SfdrMeasurement, ToneMeasurement, band_snr, two_tone_sfdr
from repro.dsp.spectrum import Spectrum, periodogram, periodogram_batch
from repro.dsp.tones import coherent_frequency
from repro.receiver.config import ConfigWord
from repro.receiver.receiver import Chip
from repro.receiver.standards import Standard
from repro.receiver.stimulus import ToneStimulus

if TYPE_CHECKING:  # deferred: the engine package imports receiver modules
    from repro.engine.engine import SimulationEngine

#: Stimulus placement within the signal band, as a fraction of the
#: in-band half-width above the centre frequency.
TONE_OFFSET_FRACTION = 0.25

#: Default stimulus power for the SNR experiments (paper: -25 dBm).
DEFAULT_POWER_DBM = -25.0

#: Default per-tone power for the SFDR experiment.
SFDR_POWER_DBM = -31.0

#: Tone spacing of the SFDR two-tone test (paper: 10 MHz).
SFDR_DELTA_HZ = 10e6


def signal_band(standard: Standard, osr: int) -> tuple[float, float]:
    """In-band edges ``[f_lo, f_hi]`` around the standard's centre."""
    half = standard.fs / (4.0 * osr)
    return standard.f_center - half, standard.f_center + half


def stimulus_frequency(standard: Standard, osr: int, n_fft: int) -> float:
    """Coherent single-tone frequency for SNR measurements."""
    half = standard.fs / (4.0 * osr)
    target = standard.f_center + TONE_OFFSET_FRACTION * half
    return coherent_frequency(target, standard.fs, n_fft)


def measure_modulator_snr(
    chip: Chip,
    config: ConfigWord,
    standard: Standard,
    power_dbm: float = DEFAULT_POWER_DBM,
    n_fft: int | None = None,
    seed: int = 0,
    substeps: int = 4,
) -> ToneMeasurement:
    """In-band SNR at the modulator output (paper Fig. 7 measurement)."""
    n = n_fft or chip.design.fft_points
    f_sig = stimulus_frequency(standard, chip.design.osr, n)
    stim = ToneStimulus.single(f_sig, power_dbm)
    result = chip.simulate_modulator(
        config, stim, standard.fs, n_samples=n, seed=seed, substeps=substeps
    )
    spectrum = periodogram(result.output, standard.fs)
    f_lo, f_hi = signal_band(standard, chip.design.osr)
    return band_snr(spectrum, f_sig, f_lo, f_hi)


def modulator_snr_probe(
    chip: Chip,
    configs: Sequence[ConfigWord],
    standard: Standard,
    power_dbm: float = DEFAULT_POWER_DBM,
    n_fft: int | None = None,
    seed: int = 0,
    substeps: int = 4,
):
    """Requests + decoder for a batched modulator-SNR measurement.

    Splits :func:`measure_modulator_snr_batch` into its engine requests
    and the pure post-processing that turns their results into
    :class:`ToneMeasurement`\\ s, so drivers that fuse many measurement
    kinds (the fleet calibrator batches SNR, SFDR and oscillation
    probes of a whole lot into one engine submission) build *exactly*
    the requests and decode *exactly* the arithmetic the batch function
    uses.  Returns ``(requests, decode)``.
    """
    from repro.engine.request import ModulatorRequest

    n = n_fft or chip.design.fft_points
    f_sig = stimulus_frequency(standard, chip.design.osr, n)
    stim = ToneStimulus.single(f_sig, power_dbm)
    requests = [
        ModulatorRequest(
            config=config,
            stimulus=stim,
            fs=standard.fs,
            n_samples=n,
            seed=seed,
            substeps=substeps,
        )
        for config in configs
    ]
    f_lo, f_hi = signal_band(standard, chip.design.osr)

    def decode(results) -> list[ToneMeasurement]:
        if not results:
            return []
        spectra = periodogram_batch(
            np.stack([r.output for r in results]), standard.fs
        )
        return [band_snr(s, f_sig, f_lo, f_hi) for s in spectra]

    return requests, decode


def measure_modulator_snr_batch(
    chip: Chip,
    configs: Sequence[ConfigWord],
    standard: Standard,
    power_dbm: float = DEFAULT_POWER_DBM,
    n_fft: int | None = None,
    seed: int = 0,
    substeps: int = 4,
    engine: SimulationEngine | None = None,
) -> list[ToneMeasurement]:
    """Batched :func:`measure_modulator_snr` over many keys.

    One engine submission covers the whole sweep, so the transient
    integration is amortised across the batch; per-key results are
    identical to the scalar function (the backends are bit-exact).
    """
    from repro.engine.engine import get_default_engine

    engine = engine or get_default_engine()
    requests, decode = modulator_snr_probe(
        chip,
        configs,
        standard,
        power_dbm=power_dbm,
        n_fft=n_fft,
        seed=seed,
        substeps=substeps,
    )
    return decode(engine.run(chip, requests))


def measure_receiver_snr_batch(
    chip: Chip,
    configs: Sequence[ConfigWord],
    standard: Standard,
    power_dbm: float = DEFAULT_POWER_DBM,
    n_baseband: int = 1024,
    seed: int = 0,
    substeps: int = 4,
    engine: SimulationEngine | None = None,
) -> list[ToneMeasurement]:
    """Batched :func:`measure_receiver_snr` over many keys."""
    from repro.engine.engine import get_default_engine
    from repro.engine.request import ReceiverRequest

    engine = engine or get_default_engine()
    osr = chip.design.osr
    n_mod = n_baseband * osr
    f_sig = stimulus_frequency(standard, osr, n_mod)
    stim = ToneStimulus.single(f_sig, power_dbm)
    requests = [
        ReceiverRequest(
            config=config,
            stimulus=stim,
            fs=standard.fs,
            n_baseband=n_baseband,
            seed=seed,
            substeps=substeps,
        )
        for config in configs
    ]
    results = engine.run_receiver(chip, requests)
    half = standard.fs / (4.0 * osr)
    f_tone_bb = f_sig - standard.fs / 4.0
    if not results:
        return []
    spectra = periodogram_batch(
        np.stack([r.baseband for r in results]), results[0].fs_out
    )
    return [band_snr(s, f_tone_bb, -half, half) for s in spectra]


def modulator_sfdr_probe(
    chip: Chip,
    configs: Sequence[ConfigWord],
    standard: Standard,
    power_dbm_each: float = SFDR_POWER_DBM,
    delta_hz: float = SFDR_DELTA_HZ,
    n_fft: int | None = None,
    seed: int = 0,
    substeps: int = 4,
):
    """Requests + decoder for a batched SFDR measurement; the SFDR
    counterpart of :func:`modulator_snr_probe`.  Returns
    ``(requests, decode)``."""
    from repro.engine.request import ModulatorRequest

    n = n_fft or chip.design.fft_points
    osr = chip.design.osr
    half = standard.fs / (4.0 * osr)
    f1 = coherent_frequency(standard.f_center + 0.15 * half, standard.fs, n)
    f2 = coherent_frequency(f1 + delta_hz, standard.fs, n)
    stim = ToneStimulus.two_tone(f1, f2, power_dbm_each)
    requests = [
        ModulatorRequest(
            config=config,
            stimulus=stim,
            fs=standard.fs,
            n_samples=n,
            seed=seed,
            substeps=substeps,
        )
        for config in configs
    ]
    f_lo, f_hi = signal_band(standard, osr)

    def decode(results) -> list[SfdrMeasurement]:
        if not results:
            return []
        spectra = periodogram_batch(
            np.stack([r.output for r in results]), standard.fs
        )
        return [
            two_tone_sfdr(s, f1, f2, f_lo, f_hi, search_bins=1) for s in spectra
        ]

    return requests, decode


def measure_sfdr_batch(
    chip: Chip,
    configs: Sequence[ConfigWord],
    standard: Standard,
    power_dbm_each: float = SFDR_POWER_DBM,
    delta_hz: float = SFDR_DELTA_HZ,
    n_fft: int | None = None,
    seed: int = 0,
    substeps: int = 4,
    engine: SimulationEngine | None = None,
) -> list[SfdrMeasurement]:
    """Batched :func:`measure_sfdr` over many keys."""
    from repro.engine.engine import get_default_engine

    engine = engine or get_default_engine()
    requests, decode = modulator_sfdr_probe(
        chip,
        configs,
        standard,
        power_dbm_each=power_dbm_each,
        delta_hz=delta_hz,
        n_fft=n_fft,
        seed=seed,
        substeps=substeps,
    )
    return decode(engine.run(chip, requests))


def modulator_output_spectrum(
    chip: Chip,
    config: ConfigWord,
    standard: Standard,
    power_dbm: float = DEFAULT_POWER_DBM,
    n_fft: int | None = None,
    seed: int = 0,
    substeps: int = 4,
) -> Spectrum:
    """Calibrated output spectrum of the modulator (paper Fig. 10)."""
    n = n_fft or chip.design.fft_points
    f_sig = stimulus_frequency(standard, chip.design.osr, n)
    stim = ToneStimulus.single(f_sig, power_dbm)
    result = chip.simulate_modulator(
        config, stim, standard.fs, n_samples=n, seed=seed, substeps=substeps
    )
    return periodogram(result.output, standard.fs)


def measure_receiver_snr(
    chip: Chip,
    config: ConfigWord,
    standard: Standard,
    power_dbm: float = DEFAULT_POWER_DBM,
    n_baseband: int = 1024,
    seed: int = 0,
    substeps: int = 4,
) -> ToneMeasurement:
    """In-band SNR at the receiver output (paper Fig. 9 measurement).

    The tone at ``F0 + delta`` appears at ``+delta`` in the complex
    baseband after the fs/4 mixer; the SNR is evaluated over the
    decimated band ``+/- fs/(4*OSR)``.
    """
    osr = chip.design.osr
    n_mod = n_baseband * osr
    f_sig = stimulus_frequency(standard, osr, n_mod)
    stim = ToneStimulus.single(f_sig, power_dbm)
    result = chip.simulate_receiver(
        config, stim, standard.fs, n_baseband=n_baseband, seed=seed, substeps=substeps
    )
    spectrum = periodogram(result.baseband, result.fs_out)
    half = standard.fs / (4.0 * osr)
    # The fs/4 mixer shifts F0 = fs/4 to DC, so the tone lands at
    # f_sig - fs/4 in the complex baseband.
    f_tone_bb = f_sig - standard.fs / 4.0
    return band_snr(spectrum, f_tone_bb, -half, half)


def measure_sfdr(
    chip: Chip,
    config: ConfigWord,
    standard: Standard,
    power_dbm_each: float = SFDR_POWER_DBM,
    delta_hz: float = SFDR_DELTA_HZ,
    n_fft: int | None = None,
    seed: int = 0,
    substeps: int = 4,
) -> SfdrMeasurement:
    """Two-tone SFDR at the modulator output (paper Fig. 12).

    Two equal-power tones ``delta_hz`` apart are centred in the upper
    half of the signal band so their IM3 products stay in band.
    """
    n = n_fft or chip.design.fft_points
    osr = chip.design.osr
    half = standard.fs / (4.0 * osr)
    f1 = coherent_frequency(
        standard.f_center + 0.15 * half, standard.fs, n
    )
    f2 = coherent_frequency(f1 + delta_hz, standard.fs, n)
    stim = ToneStimulus.two_tone(f1, f2, power_dbm_each)
    result = chip.simulate_modulator(
        config, stim, standard.fs, n_samples=n, seed=seed, substeps=substeps
    )
    spectrum = periodogram(result.output, standard.fs)
    f_lo, f_hi = signal_band(standard, osr)
    # The tones are placed coherently on exact bins, so the peak search
    # can be tight — essential at short FFTs where 10 MHz is only a few
    # bins and a wide search would confuse the two fundamentals.
    return two_tone_sfdr(spectrum, f1, f2, f_lo, f_hi, search_bins=1)


@dataclass(frozen=True)
class GainSegment:
    """One VGLNA gain segment of the dynamic-range plan (paper Fig. 11).

    Attributes:
        power_lo_dbm: Lower edge of the input-power segment.
        power_hi_dbm: Upper edge of the input-power segment.
        lna_gain: The calibrated 4-bit VGLNA code for this segment.
    """

    power_lo_dbm: float
    power_hi_dbm: float
    lna_gain: int


#: The paper's three input-range segments: [-85:-45], [-60:-20], [-40:0] dBm.
SEGMENT_RANGES: tuple[tuple[float, float], ...] = (
    (-85.0, -45.0),
    (-60.0, -20.0),
    (-40.0, 0.0),
)


@dataclass(frozen=True)
class DynamicRangePoint:
    """One point of the SNR-versus-input-power sweep."""

    power_dbm: float
    segment_index: int
    lna_gain: int
    snr_db: float


def dynamic_range_sweep(
    chip: Chip,
    config: ConfigWord,
    standard: Standard,
    segments: tuple[GainSegment, ...],
    power_step_dbm: float = 5.0,
    n_fft: int | None = None,
    seed: int = 0,
    substeps: int = 4,
    use_segment_gain: bool = True,
) -> list[DynamicRangePoint]:
    """SNR across the input range with per-segment VGLNA gains.

    For the correct key the VGLNA code follows the calibrated per-segment
    plan (``use_segment_gain=True``); an attacker applying a random key
    has no such plan, so an invalid key is swept with its own embedded
    ``lna_gain`` (``use_segment_gain=False``).
    """
    points = []
    for seg_idx, seg in enumerate(segments):
        power = seg.power_lo_dbm
        while power <= seg.power_hi_dbm + 1e-9:
            cfg = (
                config.replace(lna_gain=seg.lna_gain)
                if use_segment_gain
                else config
            )
            m = measure_modulator_snr(
                chip,
                cfg,
                standard,
                power_dbm=power,
                n_fft=n_fft,
                seed=seed,
                substeps=substeps,
            )
            points.append(
                DynamicRangePoint(
                    power_dbm=power,
                    segment_index=seg_idx,
                    lna_gain=cfg.lna_gain,
                    snr_db=m.snr_db,
                )
            )
            power += power_step_dbm
    return points


def peak_snr(points: list[DynamicRangePoint]) -> float:
    """Best SNR across a dynamic-range sweep."""
    if not points:
        raise ValueError("empty sweep")
    return max(p.snr_db for p in points)


def dynamic_range_db(points: list[DynamicRangePoint], snr_min_db: float = 10.0) -> float:
    """Width (dB) of the input-power range achieving ``snr_min_db``."""
    usable = [p.power_dbm for p in points if p.snr_db >= snr_min_db]
    if not usable:
        return 0.0
    return max(usable) - min(usable)
