"""The fabricated chip: receiver design + per-chip process variations.

:class:`Chip` is the central object of the reproduction.  Calibration,
locking and attacks all operate on chips strictly through simulation of
their configured behaviour — exactly the oracle access the paper's
threat model grants ("the attacker ... has the netlist and access to
working oracle chips").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blocks import (
    Comparator,
    FeedbackDac,
    InputTransconductor,
    LoopDelay,
    OutputBuffer,
    PreAmplifier,
    TunableLcTank,
    Vglna,
)
from repro.process.variations import ChipVariations, typical_chip
from repro.receiver.chain import DigitalChain, ReceiverResult
from repro.receiver.config import ConfigWord, DigitalConfig
from repro.receiver.design import NOMINAL_DESIGN, ReceiverDesign
from repro.receiver.sdm import (
    ModulatorBlocks,
    ModulatorResult,
    oscillation_config,
    simulate_modulator,
)
from repro.receiver.stimulus import ToneStimulus


@dataclass
class Chip:
    """One fabricated instance of the programmable RF receiver."""

    design: ReceiverDesign = field(default_factory=lambda: NOMINAL_DESIGN)
    variations: ChipVariations = field(default_factory=typical_chip)
    _blocks: ModulatorBlocks | None = field(default=None, init=False, repr=False)

    @property
    def chip_id(self) -> int:
        """Identifier of this die within its lot."""
        return self.variations.chip_id

    @property
    def blocks(self) -> ModulatorBlocks:
        """The chip's analog block set (built once, then cached)."""
        if self._blocks is None:
            d = self.design
            v = self.variations
            self._blocks = ModulatorBlocks(
                tank=TunableLcTank(d.tank, v),
                vglna=Vglna(d.vglna, v),
                gmin=InputTransconductor(d.front_end, v),
                preamp=PreAmplifier(d.front_end, v),
                comparator=Comparator(d.front_end, v),
                dac=FeedbackDac(d.front_end, v),
                delay=LoopDelay(d.front_end, v),
                buffer=OutputBuffer(d.front_end, v),
                tank_current_noise=d.noise.tank_current_noise * v.noise_scale,
                dither_amplitude=d.noise.dither_amplitude,
                bias_global_step=d.bias_global_step,
            )
        return self._blocks

    def simulate_modulator(
        self,
        config: ConfigWord,
        stimulus: ToneStimulus,
        fs: float,
        n_samples: int | None = None,
        seed: int = 0,
        substeps: int = 4,
        initial_state: tuple[float, float] = (0.0, 0.0),
    ) -> ModulatorResult:
        """Transient simulation of the configured modulator."""
        if n_samples is None:
            n_samples = self.design.fft_points
        return simulate_modulator(
            self.blocks,
            config,
            stimulus,
            fs=fs,
            n_samples=n_samples,
            seed=seed,
            substeps=substeps,
            initial_state=initial_state,
        )

    def simulate_receiver(
        self,
        config: ConfigWord,
        stimulus: ToneStimulus,
        fs: float,
        n_baseband: int = 1024,
        seed: int = 0,
        substeps: int = 4,
        digital_config: DigitalConfig | None = None,
    ) -> ReceiverResult:
        """Full-chain simulation: modulator plus digital section.

        ``n_baseband`` output samples require ``n_baseband * osr``
        modulator clock periods, so this costs OSR times more than a
        modulator-only measurement of the same record length — mirroring
        the paper's observation that receiver-output measurements are
        the slow ones (20 minutes per SNR point on their testbed).
        """
        mod = self.simulate_modulator(
            config,
            stimulus,
            fs,
            n_samples=n_baseband * self.design.osr,
            seed=seed,
            substeps=substeps,
        )
        chain = DigitalChain(
            osr=self.design.osr,
            logic_threshold=self.design.front_end.logic_threshold,
            digital_config=digital_config or DigitalConfig(),
        )
        return chain.process(mod.output, fs)

    def simulate_oscillation(
        self,
        config: ConfigWord,
        fs: float,
        n_samples: int = 4096,
        gmq_code: int | None = None,
        seed: int = 0,
        substeps: int = 4,
    ) -> ModulatorResult:
        """Free-running tank measurement (calibration steps 1-7).

        The loop is opened, the input disabled, the comparator buffered
        and the -Gm set to ``gmq_code`` (maximum by default); a small
        initial kick starts the oscillation.
        """
        osc = oscillation_config(config, gmq_code)
        return self.simulate_modulator(
            osc,
            ToneStimulus.off(),
            fs,
            n_samples=n_samples,
            seed=seed,
            substeps=substeps,
            initial_state=(1e-3, 0.0),
        )
