"""The fabricated chip: receiver design + per-chip process variations.

:class:`Chip` is the central object of the reproduction.  Calibration,
locking and attacks all operate on chips strictly through simulation of
their configured behaviour — exactly the oracle access the paper's
threat model grants ("the attacker ... has the netlist and access to
working oracle chips").  All simulation goes through the batched
:class:`repro.engine.SimulationEngine`; the ``simulate_*`` methods are
single-request conveniences that delegate to the process default
engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blocks import (
    Comparator,
    FeedbackDac,
    InputTransconductor,
    LoopDelay,
    OutputBuffer,
    PreAmplifier,
    TunableLcTank,
    Vglna,
)
from repro.engine.cache import BoundedCache
from repro.process.variations import ChipVariations, typical_chip
from repro.receiver.chain import ReceiverResult
from repro.receiver.config import ConfigWord, DigitalConfig
from repro.receiver.design import NOMINAL_DESIGN, ReceiverDesign
from repro.receiver.sdm import (
    ModulatorBlocks,
    ModulatorResult,
    oscillation_config,
)
from repro.receiver.stimulus import ToneStimulus


@dataclass
class Chip:
    """One fabricated instance of the programmable RF receiver."""

    design: ReceiverDesign = field(default_factory=lambda: NOMINAL_DESIGN)
    variations: ChipVariations = field(default_factory=typical_chip)
    _blocks: ModulatorBlocks | None = field(default=None, init=False, repr=False)
    _disc_cache: BoundedCache | None = field(default=None, init=False, repr=False)

    @property
    def chip_id(self) -> int:
        """Identifier of this die within its lot."""
        return self.variations.chip_id

    @property
    def blocks(self) -> ModulatorBlocks:
        """The chip's analog block set (built once, then cached)."""
        if self._blocks is None:
            d = self.design
            v = self.variations
            self._blocks = ModulatorBlocks(
                tank=TunableLcTank(d.tank, v),
                vglna=Vglna(d.vglna, v),
                gmin=InputTransconductor(d.front_end, v),
                preamp=PreAmplifier(d.front_end, v),
                comparator=Comparator(d.front_end, v),
                dac=FeedbackDac(d.front_end, v),
                delay=LoopDelay(d.front_end, v),
                buffer=OutputBuffer(d.front_end, v),
                tank_current_noise=d.noise.tank_current_noise * v.noise_scale,
                dither_amplitude=d.noise.dither_amplitude,
                bias_global_step=d.bias_global_step,
            )
        return self._blocks

    @property
    def discretisation_cache(self) -> BoundedCache:
        """Per-chip memo of ZOH tank discretisations, ``(cc, cf, h)``.

        Chip state like :attr:`blocks` — the matrices depend only on
        this chip's tank and the step size, and computing them (a matrix
        exponential) dominates short simulations, so the engine reuses
        them across every request that hits the same capacitor codes.
        """
        if self._disc_cache is None:
            self._disc_cache = BoundedCache(maxsize=1024)
        return self._disc_cache

    def simulate_modulator(
        self,
        config: ConfigWord,
        stimulus: ToneStimulus,
        fs: float,
        n_samples: int | None = None,
        seed: int = 0,
        substeps: int = 4,
        initial_state: tuple[float, float] = (0.0, 0.0),
    ) -> ModulatorResult:
        """Transient simulation of the configured modulator."""
        # Deferred: the engine package imports this module's siblings.
        from repro.engine.engine import get_default_engine
        from repro.engine.request import ModulatorRequest

        if n_samples is None:
            n_samples = self.design.fft_points
        request = ModulatorRequest(
            config=config,
            stimulus=stimulus,
            fs=fs,
            n_samples=n_samples,
            seed=seed,
            substeps=substeps,
            initial_state=initial_state,
        )
        return get_default_engine().run_one(self, request)

    def simulate_receiver(
        self,
        config: ConfigWord,
        stimulus: ToneStimulus,
        fs: float,
        n_baseband: int = 1024,
        seed: int = 0,
        substeps: int = 4,
        digital_config: DigitalConfig | None = None,
    ) -> ReceiverResult:
        """Full-chain simulation: modulator plus digital section.

        ``n_baseband`` output samples require ``n_baseband * osr``
        modulator clock periods, so this costs OSR times more than a
        modulator-only measurement of the same record length — mirroring
        the paper's observation that receiver-output measurements are
        the slow ones (20 minutes per SNR point on their testbed).
        """
        from repro.engine.engine import get_default_engine
        from repro.engine.request import ReceiverRequest

        if n_baseband <= 0:
            raise ValueError(f"n_baseband must be positive, got {n_baseband}")
        request = ReceiverRequest(
            config=config,
            stimulus=stimulus,
            fs=fs,
            n_baseband=n_baseband,
            seed=seed,
            substeps=substeps,
            digital_config=digital_config,
        )
        return get_default_engine().run_receiver_one(self, request)

    def oscillation_request(
        self,
        config: ConfigWord,
        fs: float,
        n_samples: int = 4096,
        gmq_code: int | None = None,
        seed: int = 0,
        substeps: int = 4,
    ):
        """The engine request :meth:`simulate_oscillation` submits.

        Exposed so batch drivers (the fleet calibrator groups one
        bisection level of a whole lot into a single engine submission)
        issue *exactly* the request the scalar measurement would — same
        oscillation-mode configuration, same kick, same record length —
        which is what makes regrouped runs bit-identical.
        """
        from repro.engine.request import ModulatorRequest

        return ModulatorRequest(
            config=oscillation_config(config, gmq_code),
            stimulus=ToneStimulus.off(),
            fs=fs,
            n_samples=n_samples,
            seed=seed,
            substeps=substeps,
            initial_state=(1e-3, 0.0),
        )

    def simulate_oscillation(
        self,
        config: ConfigWord,
        fs: float,
        n_samples: int = 4096,
        gmq_code: int | None = None,
        seed: int = 0,
        substeps: int = 4,
    ) -> ModulatorResult:
        """Free-running tank measurement (calibration steps 1-7).

        The loop is opened, the input disabled, the comparator buffered
        and the -Gm set to ``gmq_code`` (maximum by default); a small
        initial kick starts the oscillation.
        """
        from repro.engine.engine import get_default_engine

        return get_default_engine().run_one(
            self,
            self.oscillation_request(
                config,
                fs,
                n_samples=n_samples,
                gmq_code=gmq_code,
                seed=seed,
                substeps=substeps,
            ),
        )
