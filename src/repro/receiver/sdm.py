"""Continuous-time band-pass sigma-delta modulator simulation engine.

The loop of Fig. 6 — Gmin, LC tank with -Gm enhancement, pre-amplifier,
clocked comparator, loop delay, NRZ feedback DAC — is integrated with an
exact zero-order-hold discretisation of the linear tank over ``substeps``
sub-intervals per clock period.  The matrix exponential makes the linear
part exact at any step size; the two nonlinear currents (-Gm saturation
and the DAC's drive characteristic) and the input current are treated as
piecewise-constant over a sub-interval, which at 4 substeps per clock
(48 GHz update rate for the 3 GHz standard) is far inside the accuracy
needed for behavioural security experiments.

Everything the configuration word controls is honoured here, including
the loop-topology enables that the calibration procedure manipulates:

* ``fb_en``/``dac_en`` open the feedback loop (steps 4, 8),
* ``comp_clk_en`` turns the comparator into a buffer (step 1) — with the
  clock off the modulator output is the *analog* pre-amplifier output,
  the mechanism of the paper's deceptive key,
* ``gmin_en`` disconnects the RF input (step 3),
* maximum ``gmq_code`` with the loop open puts the tank in oscillation
  mode (step 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.linalg import expm

from repro.blocks import (
    Comparator,
    FeedbackDac,
    InputTransconductor,
    LoopDelay,
    OutputBuffer,
    PreAmplifier,
    TunableLcTank,
    Vglna,
)
from repro.receiver.config import ConfigWord
from repro.receiver.stimulus import ToneStimulus


@dataclass(frozen=True)
class ModulatorResult:
    """Output record of a modulator transient simulation.

    Attributes:
        output: Modulator output at the clock rate — the +/-1 bitstream
            scaled by the output-buffer gain in normal mode, or the
            buffered analog pre-amplifier output in buffer mode.
        bits: Raw comparator decisions (+/-1); meaningful only when
            ``is_bitstream``.
        tank_voltage: Tank voltage sampled at the clock edges.
        fs: Clock (sampling) frequency, Hz.
        is_bitstream: True when the comparator was clocked.
    """

    output: np.ndarray
    bits: np.ndarray
    tank_voltage: np.ndarray
    fs: float
    is_bitstream: bool


@dataclass(frozen=True)
class ModulatorBlocks:
    """The per-chip block set the simulator operates on."""

    tank: TunableLcTank
    vglna: Vglna
    gmin: InputTransconductor
    preamp: PreAmplifier
    comparator: Comparator
    dac: FeedbackDac
    delay: LoopDelay
    buffer: OutputBuffer
    tank_current_noise: float
    dither_amplitude: float
    bias_global_step: float


def _discretise_tank(
    tank: TunableLcTank, cc: int, cf: int, h: float
) -> tuple[np.ndarray, np.ndarray]:
    """Exact ZOH discretisation of the tank over step ``h`` seconds."""
    a, b = tank.state_matrices(cc, cf)
    ad = expm(a * h)
    bd = np.linalg.solve(a, (ad - np.eye(2)) @ b)
    return ad, bd


def simulate_modulator(
    blocks: ModulatorBlocks,
    config: ConfigWord,
    stimulus: ToneStimulus,
    fs: float,
    n_samples: int,
    seed: int = 0,
    substeps: int = 4,
    initial_state: tuple[float, float] = (0.0, 0.0),
) -> ModulatorResult:
    """Transient-simulate the modulator for ``n_samples`` clock periods.

    Args:
        blocks: The chip's analog blocks.
        config: The 64-bit configuration word under test (the key).
        stimulus: RF input.
        fs: Clock frequency (the calibration sets ``fs = 4 * f0``).
        n_samples: Number of output samples.
        seed: Noise seed; fixed seeds make measurements repeatable, as
            repeated lab measurements of one chip would be.
        substeps: Sub-intervals per clock period.
        initial_state: Initial ``(v_tank, i_L)`` — a small kick is useful
            in oscillation mode.

    Returns:
        A :class:`ModulatorResult`.
    """
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive, got {n_samples}")
    if substeps < 2:
        raise ValueError(f"need at least 2 substeps, got {substeps}")
    rng = np.random.default_rng(seed)
    h = 1.0 / (fs * substeps)
    ad, bd = _discretise_tank(blocks.tank, config.cc_coarse, config.cf_fine, h)
    a11, a12 = float(ad[0, 0]), float(ad[0, 1])
    a21, a22 = float(ad[1, 0]), float(ad[1, 1])
    b1, b2 = float(bd[0, 0]), float(bd[1, 0])

    bias_scale = 1.0 + (config.bias_global - 4) * blocks.bias_global_step

    # Input path, fully vectorised: RF tones -> VGLNA -> Gmin current.
    t = np.arange(n_samples * substeps) * h
    v_rf = stimulus.sample(t)
    v_lna = blocks.vglna.process(
        v_rf, config.lna_gain, bandwidth=0.5 / h, rng=rng
    )
    i_sig = blocks.gmin.output_current(
        v_lna, config.gmin_code, enabled=bool(config.gmin_en), bias_scale=bias_scale
    )
    # Tank current noise, piecewise constant per substep.
    sigma_i = blocks.tank_current_noise * math.sqrt(0.5 / h)
    i_noise = rng.normal(0.0, sigma_i, i_sig.shape)
    i_in = i_sig + i_noise

    feedback_on = bool(config.fb_en) and bool(config.dac_en)
    clocked = bool(config.comp_clk_en)
    tau = blocks.delay.delay_periods(config.delay_code)
    delay_whole = int(tau)
    switch_substep = (tau - delay_whole) * substeps
    # In normal mode the DAC drive is +/-1: precompute the switched current.
    i_dac_unit = blocks.dac.output_current(
        1.0, config.dac_code, enabled=feedback_on, bias_scale=bias_scale
    )
    comp_noise = rng.normal(0.0, 1.0, n_samples)
    comp_noise_out = rng.normal(0.0, 1.0, n_samples)
    dither = (
        blocks.dither_amplitude * rng.uniform(-1.0, 1.0, n_samples)
        if config.dither_en
        else np.zeros(n_samples)
    )
    chop_sign = 1.0
    chop_offset = blocks.comparator.offset(config.comp_code)

    gmq_gm = blocks.tank.gmq(config.gmq_code)
    vsat = blocks.tank.design.gmq_vsat
    preamp_gain = blocks.preamp.gain(config.preamp_code, bias_scale)
    v_clip = blocks.preamp.design.preamp_v_clip
    buf_gain = blocks.buffer.gain(config.buffer_code)

    tanh = math.tanh
    v, il = initial_state
    # Decision history d[n], d[n-1], d[n-2]: the programmable delay can
    # reach back almost two clock periods.
    d0 = d1 = d2 = -1.0
    output = np.empty(n_samples)
    bits = np.empty(n_samples)
    tank_v = np.empty(n_samples)
    i_in_list = i_in.tolist()

    decision_sigma = blocks.comparator.decision_noise(config.comp_code)
    hysteresis = blocks.comparator.design.comp_hysteresis

    for n in range(n_samples):
        tank_v[n] = v
        v_pre = v_clip * tanh(preamp_gain * v / v_clip)
        if clocked:
            v_eff = (
                v_pre
                + chop_sign * chop_offset
                + comp_noise[n] * decision_sigma
                + dither[n]
                + hysteresis * d0
            )
            d2 = d1
            d1 = d0
            d0 = 1.0 if v_eff >= 0.0 else -1.0
            bits[n] = d0
            output[n] = d0 * buf_gain
        else:
            d2 = d1
            d1 = d0
            bits[n] = 0.0
            y_buf = blocks.comparator.buffer_output(
                v_pre, config.comp_code, comp_noise[n], comp_noise_out[n]
            )
            output[n] = y_buf * buf_gain
        if config.chop_en:
            chop_sign = -chop_sign

        if delay_whole == 0:
            d_early, d_late = d1, d0
        else:
            d_early, d_late = d2, d1

        base = n * substeps
        for j in range(substeps):
            if clocked:
                drive_bit = d_early if j < switch_substep else d_late
                i_fb = i_dac_unit * drive_bit
            elif feedback_on:
                # Buffer mode with the loop closed: the DAC sees the
                # clipped open-loop comparator output and switches
                # partially.
                v_pre_now = v_clip * tanh(preamp_gain * v / v_clip)
                y_now = blocks.comparator.buffer_output(
                    v_pre_now, config.comp_code, 0.0
                )
                i_fb = i_dac_unit * tanh(y_now / 0.3) / 0.995055
            else:
                i_fb = 0.0
            i_gmq = gmq_gm * vsat * tanh(v / vsat)
            # The feedback current is injected with positive polarity:
            # around fs/4 the resonator's sampled pulse response supplies
            # the loop inversion (see module docstring of blocks.dac /
            # the z^-2 K/(1+z^-2) analysis), so +i_fb is the stable,
            # noise-shaping polarity.
            u = i_in_list[base + j] + i_gmq + i_fb
            v, il = a11 * v + a12 * il + b1 * u, a21 * v + a22 * il + b2 * u

    return ModulatorResult(
        output=output,
        bits=bits,
        tank_voltage=tank_v,
        fs=fs,
        is_bitstream=clocked,
    )


def oscillation_config(config: ConfigWord, gmq_code: int | None = None) -> ConfigWord:
    """Configuration for tank oscillation mode (calibration steps 1-5).

    Comparator as buffer, input off, feedback off, -Gm at the requested
    code (maximum by default).
    """
    if gmq_code is None:
        gmq_code = 63
    return config.replace(
        comp_clk_en=0,
        gmin_en=0,
        fb_en=0,
        dac_en=0,
        gmq_code=gmq_code,
    )
