"""Continuous-time band-pass sigma-delta modulator: result/block records.

The loop of Fig. 6 — Gmin, LC tank with -Gm enhancement, pre-amplifier,
clocked comparator, loop delay, NRZ feedback DAC — is integrated with an
exact zero-order-hold discretisation of the linear tank over ``substeps``
sub-intervals per clock period.  The matrix exponential makes the linear
part exact at any step size; the two nonlinear currents (-Gm saturation
and the DAC's drive characteristic) and the input current are treated as
piecewise-constant over a sub-interval, which at 4 substeps per clock
(48 GHz update rate for the 3 GHz standard) is far inside the accuracy
needed for behavioural security experiments.

Everything the configuration word controls is honoured, including the
loop-topology enables that the calibration procedure manipulates:

* ``fb_en``/``dac_en`` open the feedback loop (steps 4, 8),
* ``comp_clk_en`` turns the comparator into a buffer (step 1) — with the
  clock off the modulator output is the *analog* pre-amplifier output,
  the mechanism of the paper's deceptive key,
* ``gmin_en`` disconnects the RF input (step 3),
* maximum ``gmq_code`` with the loop open puts the tank in oscillation
  mode (step 5).

The integrator itself lives in :mod:`repro.engine` (per-key setup in
``engine.plan``, the scalar reference recursion in ``engine.reference``
and the batched key-axis recursion in ``engine.vectorized``); this
module keeps the data records shared by all of them plus the
:func:`simulate_modulator` convenience entry point for single keys.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.blocks import (
    Comparator,
    FeedbackDac,
    InputTransconductor,
    LoopDelay,
    OutputBuffer,
    PreAmplifier,
    TunableLcTank,
    Vglna,
)
from repro.receiver.config import ConfigWord
from repro.receiver.stimulus import ToneStimulus


@dataclass(frozen=True)
class ModulatorResult:
    """Output record of a modulator transient simulation.

    Attributes:
        output: Modulator output at the clock rate — the +/-1 bitstream
            scaled by the output-buffer gain in normal mode, or the
            buffered analog pre-amplifier output in buffer mode.
        bits: Raw comparator decisions (+/-1); meaningful only when
            ``is_bitstream``.
        tank_voltage: Tank voltage sampled at the clock edges.
        fs: Clock (sampling) frequency, Hz.
        is_bitstream: True when the comparator was clocked.
    """

    output: np.ndarray
    bits: np.ndarray
    tank_voltage: np.ndarray
    fs: float
    is_bitstream: bool


@dataclass(frozen=True)
class ModulatorBlocks:
    """The per-chip block set the simulator operates on."""

    tank: TunableLcTank
    vglna: Vglna
    gmin: InputTransconductor
    preamp: PreAmplifier
    comparator: Comparator
    dac: FeedbackDac
    delay: LoopDelay
    buffer: OutputBuffer
    tank_current_noise: float
    dither_amplitude: float
    bias_global_step: float


def simulate_modulator(
    blocks: ModulatorBlocks,
    config: ConfigWord,
    stimulus: ToneStimulus,
    fs: float,
    n_samples: int,
    seed: int = 0,
    substeps: int = 4,
    initial_state: tuple[float, float] = (0.0, 0.0),
) -> ModulatorResult:
    """Transient-simulate the modulator for ``n_samples`` clock periods.

    Single-key entry point over the engine's reference backend; batch
    work should go through :class:`repro.engine.SimulationEngine`, which
    can amortise the recursion across many keys.

    Args:
        blocks: The chip's analog blocks.
        config: The 64-bit configuration word under test (the key).
        stimulus: RF input.
        fs: Clock frequency (the calibration sets ``fs = 4 * f0``).
        n_samples: Number of output samples.
        seed: Noise seed; fixed seeds make measurements repeatable, as
            repeated lab measurements of one chip would be.
        substeps: Sub-intervals per clock period.
        initial_state: Initial ``(v_tank, i_L)`` — a small kick is useful
            in oscillation mode.

    Returns:
        A :class:`ModulatorResult`.
    """
    # Deferred import: the engine package imports this module's records.
    from repro.engine.plan import build_plan
    from repro.engine.reference import simulate_plan
    from repro.engine.request import ModulatorRequest

    request = ModulatorRequest(
        config=config,
        stimulus=stimulus,
        fs=fs,
        n_samples=n_samples,
        seed=seed,
        substeps=substeps,
        initial_state=initial_state,
    )
    return simulate_plan(build_plan(blocks, request))


def oscillation_config(config: ConfigWord, gmq_code: int | None = None) -> ConfigWord:
    """Configuration for tank oscillation mode (calibration steps 1-5).

    Comparator as buffer, input off, feedback off, -Gm at the requested
    code (maximum by default).
    """
    if gmq_code is None:
        gmq_code = 63
    return config.replace(
        comp_clk_en=0,
        gmin_en=0,
        fb_en=0,
        dac_en=0,
        gmq_code=gmq_code,
    )
