"""Nominal (pre-process-variation) design constants of the receiver.

One dataclass gathers every physical parameter of the behavioural model
so that the process-variation machinery (:mod:`repro.process`) can
perturb a single object per fabricated chip.  Values are chosen to place
the reference operating point (F0 = 3 GHz, Fs = 12 GHz, OSR = 64) in the
paper's reported performance ranges: correct-key SNR > 40 dB at
-25 dBm input.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TankDesign:
    """LC band-pass loop filter with coarse/fine capacitor arrays.

    The arrays are binary weighted (paper Sec. VI-B.1: "capacitor arrays
    are binary-weighted, thus for a desired capacitor value there is a
    unique sub-key").
    """

    inductance: float = 0.5e-9
    #: Fixed tank capacitance, sized so that even a +3-sigma process
    #: draw leaves array headroom above the 3 GHz (minimum-C) corner.
    c_fixed: float = 4.6e-12
    c_coarse_lsb: float = 80e-15
    c_coarse_bits: int = 8
    c_fine_lsb: float = 4e-15
    c_fine_bits: int = 8
    #: Native tank quality factor; sized so the maximum -Gm code can
    #: overcome the loss conductance sqrt(C/L)/Q at every tuning code
    #: (oscillation-mode calibration must work down to 1.4 GHz).
    q_factor: float = 12.0
    #: -Gm Q-enhancement transconductor: 6-bit linear DAC.
    gmq_lsb: float = 0.35e-3
    gmq_bits: int = 6
    #: Saturation voltage of the -Gm cell (limits oscillation amplitude).
    gmq_vsat: float = 0.3


@dataclass(frozen=True)
class VglnaDesign:
    """Five-stage variable-gain LNA with resistive feedback (Fig. 5).

    The 4-bit word selects one of 16 gain levels; noise and linearity
    track the gain setting as in a resistive-feedback inverter chain.
    """

    n_stages: int = 5
    gain_min_db: float = -3.0
    gain_step_db: float = 3.0
    #: Output clip level per stage, volts.
    v_clip: float = 0.9
    #: Input-referred noise density at maximum gain, V/sqrt(Hz).
    noise_density: float = 0.9e-9
    #: Extra input-referred noise per gain step below maximum, factor.
    noise_per_step: float = 1.12


@dataclass(frozen=True)
class FrontEndDesign:
    """Input transconductor Gmin, pre-amplifier, comparator, DAC, delay."""

    #: Gmin bias DAC: i_out = gmin * v, 6-bit.
    gmin_lsb: float = 0.25e-3
    gmin_bits: int = 6
    #: Soft-limiting knee of the transconductor, volts.
    gmin_vlin: float = 0.35
    #: Pre-amplifier gain range: 1 + 3*code/code_max.
    preamp_gain_max: float = 4.0
    preamp_bits: int = 5
    preamp_v_clip: float = 0.6
    #: Comparator: offset/noise degrade as the bias code drops.
    comp_bits: int = 5
    comp_noise_floor: float = 2e-3
    comp_noise_starved: float = 20e-3
    #: Regenerative hysteresis: negligible against the closed-loop
    #: pre-amp swing, but it latches the comparator on the weak inputs
    #: an open-loop invalid key produces.
    comp_hysteresis: float = 15e-3
    #: Feedback DAC full scale: i_fs = dac_i_ref * (0.25 + 1.5*code/code_max).
    dac_i_ref: float = 1.0e-3
    dac_bits: int = 6
    #: Loop delay: tau = delay_code / 16 * Ts, 4-bit.
    delay_bits: int = 4
    #: Output buffer gain: 0.8 + 0.05*code, 3-bit.
    buffer_gain_base: float = 0.8
    buffer_gain_step: float = 0.05
    #: Logic switching threshold of the digital gates fed by the
    #: modulator output, volts.  Full-swing bitstream levels
    #: (+/- buffer gain >= 0.8 V) cross it cleanly; the reduced-swing
    #: analog waveform of a buffer-mode (deceptive) key mostly does
    #: not, which collapses its SNR at the receiver output (Fig. 9).
    logic_threshold: float = 0.4


@dataclass(frozen=True)
class NoiseDesign:
    """Thermal/electronic noise budget of the analog front end."""

    #: Input-referred noise current density into the tank, A/sqrt(Hz).
    #: Sized so the calibrated chip lands just above the paper's 40 dB
    #: correct-key SNR (thermal + shaped quantisation noise combined).
    tank_current_noise: float = 350e-12
    #: Dither injection amplitude at the comparator when dither_en=1, volts.
    dither_amplitude: float = 2e-3


@dataclass(frozen=True)
class ReceiverDesign:
    """Complete nominal design of the programmable RF receiver (Fig. 4)."""

    tank: TankDesign = field(default_factory=TankDesign)
    vglna: VglnaDesign = field(default_factory=VglnaDesign)
    front_end: FrontEndDesign = field(default_factory=FrontEndDesign)
    noise: NoiseDesign = field(default_factory=NoiseDesign)
    #: Oversampling ratio for all standards; band = fs / (2 * osr).
    osr: int = 64
    #: Global bias trim: gm scale = 1 + (code - 4) * step, 3-bit.
    #: A wrong trim skews every transconductance/bias current by up to
    #: ~40%, so these key bits have real locking weight.
    bias_global_step: float = 0.10
    #: Samples per SNR measurement (paper: 8192-point FFT).
    fft_points: int = 8192


NOMINAL_DESIGN = ReceiverDesign()
