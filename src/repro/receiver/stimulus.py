"""RF stimulus description for receiver simulations.

Measurements in the paper use single tones (SNR, dynamic range) and
equal-power two-tone sets (SFDR).  A stimulus is a sum of cosines,
specified in dBm into 50 ohm, evaluated lazily on the simulator's
(sub-sampled) time grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.units import dbm_to_vamp


@dataclass(frozen=True)
class Tone:
    """A single cosine: ``amplitude * cos(2 pi freq t + phase)``."""

    freq: float
    amplitude: float
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.freq <= 0.0:
            raise ValueError(f"tone frequency must be positive, got {self.freq}")
        if self.amplitude < 0.0:
            raise ValueError(f"tone amplitude must be >= 0, got {self.amplitude}")


@dataclass(frozen=True)
class ToneStimulus:
    """A multi-tone RF stimulus."""

    tones: tuple[Tone, ...]

    def sample(self, t: np.ndarray) -> np.ndarray:
        """Waveform evaluated at times ``t`` (seconds)."""
        out = np.zeros_like(np.asarray(t, dtype=float))
        for tone in self.tones:
            out += tone.amplitude * np.cos(2.0 * np.pi * tone.freq * t + tone.phase)
        return out

    @classmethod
    def off(cls) -> "ToneStimulus":
        """No RF input (calibration step 3 disables the input anyway,
        but an explicitly silent stimulus is useful for noise floors)."""
        return cls(tones=())

    @classmethod
    def single(cls, freq: float, power_dbm: float, phase: float = 0.0) -> "ToneStimulus":
        """Single tone of the given power in dBm into 50 ohm."""
        return cls(tones=(Tone(freq, dbm_to_vamp(power_dbm), phase),))

    @classmethod
    def two_tone(cls, f1: float, f2: float, power_dbm_each: float) -> "ToneStimulus":
        """Two equal-power tones (paper Fig. 12: Delta f = 10 MHz)."""
        amp = dbm_to_vamp(power_dbm_each)
        return cls(tones=(Tone(f1, amp), Tone(f2, amp, phase=np.pi / 3)))
