"""The programmable multi-standard RF receiver (paper Figs. 4-6).

Public surface: the :class:`Chip` (a fabricated receiver instance), the
64-bit :class:`ConfigWord` (= the secret key), the standards table, the
stimulus model and the performance measurement functions.
"""

from repro.receiver.chain import DigitalChain, ReceiverResult
from repro.receiver.config import FIELD_SPEC, KEY_BITS, ConfigWord, DigitalConfig
from repro.receiver.design import (
    NOMINAL_DESIGN,
    FrontEndDesign,
    NoiseDesign,
    ReceiverDesign,
    TankDesign,
    VglnaDesign,
)
from repro.receiver.performance import (
    DEFAULT_POWER_DBM,
    SEGMENT_RANGES,
    SFDR_DELTA_HZ,
    SFDR_POWER_DBM,
    DynamicRangePoint,
    GainSegment,
    dynamic_range_db,
    dynamic_range_sweep,
    measure_modulator_snr,
    measure_receiver_snr,
    measure_sfdr,
    modulator_output_spectrum,
    peak_snr,
    signal_band,
    stimulus_frequency,
)
from repro.receiver.receiver import Chip
from repro.receiver.sdm import ModulatorBlocks, ModulatorResult, oscillation_config, simulate_modulator
from repro.receiver.standards import STANDARDS, Standard, standard_by_index, standard_by_name
from repro.receiver.stimulus import Tone, ToneStimulus

__all__ = [
    "Chip",
    "ConfigWord",
    "DEFAULT_POWER_DBM",
    "DigitalChain",
    "DigitalConfig",
    "DynamicRangePoint",
    "FIELD_SPEC",
    "FrontEndDesign",
    "GainSegment",
    "KEY_BITS",
    "ModulatorBlocks",
    "ModulatorResult",
    "NOMINAL_DESIGN",
    "NoiseDesign",
    "ReceiverDesign",
    "ReceiverResult",
    "SEGMENT_RANGES",
    "SFDR_DELTA_HZ",
    "SFDR_POWER_DBM",
    "STANDARDS",
    "Standard",
    "TankDesign",
    "Tone",
    "ToneStimulus",
    "VglnaDesign",
    "dynamic_range_db",
    "dynamic_range_sweep",
    "measure_modulator_snr",
    "measure_receiver_snr",
    "measure_sfdr",
    "modulator_output_spectrum",
    "oscillation_config",
    "peak_snr",
    "signal_band",
    "simulate_modulator",
    "standard_by_index",
    "standard_by_name",
    "stimulus_frequency",
]
