"""Communication standards served by the multi-standard receiver.

The paper's receiver covers 1.5-3.0 GHz ("including Bluetooth, ZigBee,
WiFi 802.11b, etc.") with one configuration word per standard and per
chip.  Each standard records the centre frequency the LC tank must be
tuned to, the channel bandwidth, and the performance specification used
to decide whether a key unlocks the chip.

``REF3000`` is the paper's demonstration point: "We will consider the
maximum center frequency, e.g. 3 GHz".
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Standard:
    """One pre-specified operation mode of the receiver.

    Attributes:
        name: Human-readable standard name.
        f_center: RF centre frequency the tank is calibrated to, Hz.
        channel_bw: Channel bandwidth of the standard, Hz (documentation;
            the SNR integration band is set by the OSR).
        snr_spec_db: Minimum in-band SNR for the chip to count as
            functional in this mode.
        sfdr_spec_db: Minimum two-tone SFDR specification.
        index: The 3-bit digital-section standard select code.
    """

    name: str
    f_center: float
    channel_bw: float
    snr_spec_db: float
    sfdr_spec_db: float
    index: int

    @property
    def fs(self) -> float:
        """Modulator sampling frequency; the paper sets Fs = 4 * F0."""
        return 4.0 * self.f_center


#: The eight pre-specified operation modes (3-bit LUT of Fig. 3).
STANDARDS: tuple[Standard, ...] = (
    Standard("REF3000", 3.000e9, 20e6, 40.0, 40.0, 0),
    Standard("WIMAX2500", 2.595e9, 10e6, 38.0, 38.0, 1),
    Standard("WIFI11B", 2.437e9, 22e6, 35.0, 35.0, 2),
    Standard("BLUETOOTH", 2.441e9, 1e6, 35.0, 35.0, 3),
    Standard("ZIGBEE", 2.405e9, 2e6, 33.0, 33.0, 4),
    Standard("UMTS2100", 2.140e9, 5e6, 36.0, 36.0, 5),
    Standard("LTE1800", 1.842e9, 10e6, 36.0, 36.0, 6),
    Standard("GPS_L1", 1.575e9, 2e6, 33.0, 33.0, 7),
)


def standard_by_name(name: str) -> Standard:
    """Look up a standard by (case-insensitive) name."""
    for std in STANDARDS:
        if std.name.lower() == name.lower():
            return std
    raise KeyError(f"unknown standard {name!r}")


def standard_by_index(index: int) -> Standard:
    """Look up a standard by its 3-bit digital select code."""
    for std in STANDARDS:
        if std.index == index:
            return std
    raise KeyError(f"no standard with index {index}")
