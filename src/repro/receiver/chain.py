"""Digital section of the receiver: slicer, fs/4 mixer, decimation.

The modulator's output buffer drives standard digital logic.  The first
thing that logic does — implicitly — is interpret its input against a
logic threshold.  For a proper +/-1 bitstream this is transparent; for
the *analog* waveform produced by a deceptive key (comparator in buffer
mode) the slicer crushes the signal, which is why the deceptive key's
SNR collapses between Fig. 7 (modulator output) and Fig. 9 (receiver
output) in the paper.

After slicing, the stream is down-converted by the multiplier-free fs/4
mixer and decimated by the OSR through the CIC + compensation + half-band
chain of :mod:`repro.dsp.decimate`.

Key sweeps go through :meth:`DigitalChain.process_matrix`: the slicer,
mixer and decimators all take the whole ``(keys, samples)`` batch in one
pass (the engine's ``run_receiver`` routes batched requests through it),
with per-key rows bit-identical to :meth:`DigitalChain.process`.  The
FIR stages inside run the pinned-order batch convolution (C kernel with
a bit-identical NumPy fallback — see :mod:`repro.dsp.decimate`), so no
per-row Python loop survives anywhere in the matrix path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.dsp.decimate import DecimationChain, fs4_mixer_sequences
from repro.receiver.config import DigitalConfig


@dataclass(frozen=True)
class ReceiverResult:
    """Complex baseband output of the full receiver chain.

    Attributes:
        baseband: Complex baseband samples at ``fs_out``.
        fs_out: Output sampling rate (``fs / osr``), Hz.
        fs_mod: Modulator clock rate, Hz.
    """

    baseband: np.ndarray
    fs_out: float
    fs_mod: float


@dataclass
class DigitalChain:
    """The receiver's digital back-end for one standard profile.

    Args:
        osr: Decimation factor (oversampling ratio).
        logic_threshold: Input slicer threshold, volts.
        digital_config: The 3 digital programming bits.  They select the
            standard profile; a mismatched profile mis-centres the band
            but, as the paper notes, deriving these 3 bits is
            straightforward — they are not part of the key.
    """

    osr: int = 64
    logic_threshold: float = 0.0
    digital_config: DigitalConfig = field(default_factory=DigitalConfig)
    _decimator: DecimationChain = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._decimator = DecimationChain(osr=self.osr)

    def slice_input(self, samples: np.ndarray) -> np.ndarray:
        """Logic-level interpretation of the modulator output."""
        return np.where(np.asarray(samples) >= self.logic_threshold, 1.0, -1.0)

    def process(self, modulator_output: np.ndarray, fs: float) -> ReceiverResult:
        """Slice, down-convert and decimate a modulator output record."""
        sliced = self.slice_input(modulator_output)
        seq_i, seq_q = fs4_mixer_sequences(sliced.size)
        i_stream = sliced * seq_i
        q_stream = sliced * seq_q
        i_dec = self._decimator.process(i_stream)
        q_dec = self._decimator.process(q_stream)
        baseband = i_dec + 1j * q_dec
        return ReceiverResult(baseband=baseband, fs_out=fs / self.osr, fs_mod=fs)

    def process_matrix(
        self, modulator_outputs: np.ndarray, fs: float | Sequence[float]
    ) -> list[ReceiverResult]:
        """Batched :meth:`process`: a ``(keys, samples)`` matrix in one pass.

        The slicer and fs/4 mixer are elementwise over the matrix, and
        the I and Q streams of every key are stacked into a single
        ``(2 * keys, samples)`` matrix so the decimation chain runs once
        for the whole batch.  Per-key results are bit-identical to the
        scalar method (guarded in ``tests/test_receiver_chain.py``).

        Args:
            modulator_outputs: ``(keys, samples)`` modulator records.
            fs: Modulator clock rate, shared or one per key.
        """
        outputs = np.asarray(modulator_outputs)
        if outputs.ndim != 2:
            raise ValueError(
                f"expected a (keys, samples) matrix, got shape {outputs.shape}"
            )
        n_keys, n_samples = outputs.shape
        fs_per_key = (
            [float(fs)] * n_keys
            if np.isscalar(fs)
            else [float(f) for f in fs]
        )
        if len(fs_per_key) != n_keys:
            raise ValueError(
                f"got {len(fs_per_key)} clock rates for {n_keys} keys"
            )
        if n_keys == 0:
            return []
        sliced = self.slice_input(outputs)
        seq_i, seq_q = fs4_mixer_sequences(n_samples)
        streams = np.concatenate([sliced * seq_i, sliced * seq_q], axis=0)
        decimated = self._decimator.process_matrix(streams)
        baseband = decimated[:n_keys] + 1j * decimated[n_keys:]
        return [
            ReceiverResult(
                baseband=baseband[k],
                fs_out=fs_per_key[k] / self.osr,
                fs_mod=fs_per_key[k],
            )
            for k in range(n_keys)
        ]
