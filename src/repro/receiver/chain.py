"""Digital section of the receiver: slicer, fs/4 mixer, decimation.

The modulator's output buffer drives standard digital logic.  The first
thing that logic does — implicitly — is interpret its input against a
logic threshold.  For a proper +/-1 bitstream this is transparent; for
the *analog* waveform produced by a deceptive key (comparator in buffer
mode) the slicer crushes the signal, which is why the deceptive key's
SNR collapses between Fig. 7 (modulator output) and Fig. 9 (receiver
output) in the paper.

After slicing, the stream is down-converted by the multiplier-free fs/4
mixer and decimated by the OSR through the CIC + compensation + half-band
chain of :mod:`repro.dsp.decimate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dsp.decimate import DecimationChain, fs4_mixer_sequences
from repro.receiver.config import DigitalConfig


@dataclass(frozen=True)
class ReceiverResult:
    """Complex baseband output of the full receiver chain.

    Attributes:
        baseband: Complex baseband samples at ``fs_out``.
        fs_out: Output sampling rate (``fs / osr``), Hz.
        fs_mod: Modulator clock rate, Hz.
    """

    baseband: np.ndarray
    fs_out: float
    fs_mod: float


@dataclass
class DigitalChain:
    """The receiver's digital back-end for one standard profile.

    Args:
        osr: Decimation factor (oversampling ratio).
        logic_threshold: Input slicer threshold, volts.
        digital_config: The 3 digital programming bits.  They select the
            standard profile; a mismatched profile mis-centres the band
            but, as the paper notes, deriving these 3 bits is
            straightforward — they are not part of the key.
    """

    osr: int = 64
    logic_threshold: float = 0.0
    digital_config: DigitalConfig = field(default_factory=DigitalConfig)
    _decimator: DecimationChain = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._decimator = DecimationChain(osr=self.osr)

    def slice_input(self, samples: np.ndarray) -> np.ndarray:
        """Logic-level interpretation of the modulator output."""
        return np.where(np.asarray(samples) >= self.logic_threshold, 1.0, -1.0)

    def process(self, modulator_output: np.ndarray, fs: float) -> ReceiverResult:
        """Slice, down-convert and decimate a modulator output record."""
        sliced = self.slice_input(modulator_output)
        seq_i, seq_q = fs4_mixer_sequences(sliced.size)
        i_stream = sliced * seq_i
        q_stream = sliced * seq_q
        i_dec = self._decimator.process(i_stream)
        q_dec = self._decimator.process(q_stream)
        baseband = i_dec + 1j * q_dec
        return ReceiverResult(baseband=baseband, fs_out=fs / self.osr, fs_mod=fs)
