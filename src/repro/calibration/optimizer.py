"""Coordinate-descent bias optimisation (calibration step 14).

"An iterative procedure is used to determine the configuration words of
these blocks through the improvement of the measured Signal-to-Noise
Ratio (SNR) and Spurious Free Dynamic Range (SFDR)" — implemented as a
multi-resolution coordinate descent over the bias codes of Gmin, the
feedback DAC, the pre-amplifier and the comparator, driven purely by
measured performance.

This optimiser is deliberately *not* a generic black-box search: it
encodes designer knowledge (which fields to touch, in which order, from
which simulation-derived starting point).  That knowledge is exactly
the secret the paper argues an attacker lacks (Sec. VI-B.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator

from repro.receiver.config import ConfigWord

#: The bias fields step 14 iterates over, in calibration order, with the
#: width of each field.
STEP14_FIELDS: tuple[tuple[str, int], ...] = (
    ("gmin_code", 6),
    ("dac_code", 6),
    ("preamp_code", 5),
    ("comp_code", 5),
    ("bias_global", 3),
)


@dataclass
class OptimizerTrace:
    """Record of one objective evaluation."""

    config: ConfigWord
    score: float


@dataclass
class CoordinateDescentResult:
    """Outcome of the bias optimisation.

    Attributes:
        config: Best configuration found.
        score: Its objective value.
        n_evaluations: Number of oracle measurements spent.
        trace: Every (configuration, score) evaluated, in order.
    """

    config: ConfigWord
    score: float
    n_evaluations: int
    trace: list[OptimizerTrace] = field(default_factory=list)


def descent_machine(
    start: ConfigWord,
    fields: tuple[tuple[str, int], ...] = STEP14_FIELDS,
    passes: int = 2,
    initial_step: int = 8,
    speculation: str = "deep",
    batched: bool = True,
) -> Generator[list[ConfigWord], list[float], CoordinateDescentResult]:
    """The coordinate descent as a resumable state machine.

    The machine owns the accept logic, the memo and the speculation
    schedule, but not the measurements: it *yields* lists of candidate
    configurations to score and receives their scores via ``send``, so
    any driver — the in-process :func:`coordinate_descent` below, or
    the fleet calibrator fusing many dies' machines into shared engine
    batches — can advance it without changing what it decides.  The
    yielded lists are exactly the submissions the pre-machine descent
    made: speculative prefetch sets when ``batched``, single-config
    misses otherwise, in the same order.  The final
    :class:`CoordinateDescentResult` is the generator's return value.

    ``batched=False`` reproduces the sequential objective protocol:
    nothing is speculated and every yield is a one-config list, one per
    unique evaluation.
    """
    if speculation not in ("deep", "rounds"):
        raise ValueError(
            f"unknown speculation depth {speculation!r}; "
            "choose 'deep' or 'rounds'"
        )
    deep = batched and speculation == "deep"
    cache: dict[int, float] = {}
    pending: dict[int, float] = {}
    trace: list[OptimizerTrace] = []

    def prefetch(candidates: list[ConfigWord]):
        if not batched:
            return
        todo: list[ConfigWord] = []
        words: list[int] = []
        for config in candidates:
            word = config.encode()
            if word in cache or word in pending or word in words:
                continue
            todo.append(config)
            words.append(word)
        if todo:
            scores = yield todo
            for word, score in zip(words, scores):
                pending[word] = score

    def evaluate(config: ConfigWord):
        word = config.encode()
        if word not in cache:
            if word in pending:
                cache[word] = pending.pop(word)
            else:
                cache[word] = (yield [config])[0]
            trace.append(OptimizerTrace(config=config, score=cache[word]))
        return cache[word]

    def neighbours(config: ConfigWord, name: str, code_max: int, step: int):
        code = getattr(config, name)
        return [
            config.replace(**{name: candidate})
            for candidate in (code - step, code + step)
            if 0 <= candidate <= code_max
        ]

    def step_schedule(width: int) -> list[int]:
        code_max = (1 << width) - 1
        schedule = []
        step = min(initial_step, max(code_max // 4, 1))
        while step >= 1:
            schedule.append(step)
            step //= 2
        return schedule

    current = start
    best_score = yield from evaluate(current)
    for _ in range(passes):
        # Sweep-level speculation: both first-step neighbours of every
        # field, in one engine batch, assuming no field moves.  Early
        # fields always hit; later ones only miss if an earlier field
        # accepted a move this sweep.
        if deep:
            sweep_candidates: list[ConfigWord] = []
            for name, width in fields:
                code_max = (1 << width) - 1
                sweep_candidates.extend(
                    neighbours(current, name, code_max, step_schedule(width)[0])
                )
            yield from prefetch(sweep_candidates)
        for name, width in fields:
            code_max = (1 << width) - 1
            if deep:
                # Field-level speculation: both neighbours at every
                # step size of this field's schedule, in one batch.  A
                # field that accepts no move (the common case once the
                # descent settles) consumes the whole batch; an
                # accepted move re-bases the smaller steps and their
                # speculated probes are dropped.
                field_candidates: list[ConfigWord] = []
                for step in step_schedule(width):
                    field_candidates.extend(
                        neighbours(current, name, code_max, step)
                    )
                yield from prefetch(field_candidates)
            for step in step_schedule(width):
                improved = True
                while improved:
                    improved = False
                    code = getattr(current, name)
                    # Round-level speculation: this round's two probes.
                    yield from prefetch(neighbours(current, name, code_max, step))
                    for candidate in (code - step, code + step):
                        if not 0 <= candidate <= code_max:
                            continue
                        trial = current.replace(**{name: candidate})
                        score = yield from evaluate(trial)
                        if score > best_score:
                            best_score = score
                            current = trial
                            improved = True
    return CoordinateDescentResult(
        config=current,
        score=best_score,
        n_evaluations=len(cache),
        trace=trace,
    )


def coordinate_descent(
    objective: Callable[[ConfigWord], float],
    start: ConfigWord,
    fields: tuple[tuple[str, int], ...] = STEP14_FIELDS,
    passes: int = 2,
    initial_step: int = 8,
    batch_objective: Callable[[list[ConfigWord]], list[float]] | None = None,
    speculation: str = "deep",
) -> CoordinateDescentResult:
    """Maximise ``objective`` over the given configuration fields.

    Each field is hill-climbed with shrinking step sizes (8, 4, 2, 1 by
    default); the whole field list is swept ``passes`` times.  The
    objective is typically a measured SNR (optionally blended with an
    SFDR penalty) and is treated as expensive: results are memoised so
    a configuration is never measured twice.

    This is the in-process driver over :func:`descent_machine` — it
    feeds every yielded candidate list to ``batch_objective`` (or, in
    sequential mode, each single candidate to ``objective``) and sends
    the scores back until the machine returns.

    Speculative batched probing
    ---------------------------

    The descent is accept-dependent — each probe's starting point is
    wherever the previous accepts moved — but the probes themselves can
    be *speculated*: when ``batch_objective`` (which must return, per
    configuration, exactly the value ``objective`` would) is given,
    candidate probes are prefetched in batched submissions and the
    sequential accept logic replays over the prefetched values, so the
    accepted path, the final configuration, the evaluation count and
    the trace (order included) are exactly those of the sequential
    descent.  Speculated probes the replay never consumes are simply
    dropped — they cost engine throughput, not correctness, and are not
    counted as evaluations; mispredicted probes (a config the replay
    wants but no speculation covered) fall back to a batch of one.

    ``speculation`` sets the depth, trading batch width for waste:

    * ``"rounds"`` — each hill-climb round prefetches its two
      neighbours as one batch.  Both are always consumed (the round
      evaluates both whatever gets accepted), so this depth never
      wastes a probe; it halves the number of engine submissions.
    * ``"deep"`` — additionally, each sweep prefetches both first-step
      neighbours of *every* field, and each field entry prefetches
      both neighbours at *every* step size, speculating that nothing
      moves.  Settled descents consume whole batches (wide enough for
      the engine's threaded key axis); accepted moves re-base the
      remaining probes and drop their speculations.
    """
    machine = descent_machine(
        start,
        fields=fields,
        passes=passes,
        initial_step=initial_step,
        speculation=speculation,
        batched=batch_objective is not None,
    )
    try:
        candidates = next(machine)
        while True:
            if batch_objective is not None:
                scores = batch_objective(candidates)
            else:
                scores = [objective(config) for config in candidates]
            candidates = machine.send(scores)
    except StopIteration as stop:
        return stop.value
