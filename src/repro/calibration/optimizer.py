"""Coordinate-descent bias optimisation (calibration step 14).

"An iterative procedure is used to determine the configuration words of
these blocks through the improvement of the measured Signal-to-Noise
Ratio (SNR) and Spurious Free Dynamic Range (SFDR)" — implemented as a
multi-resolution coordinate descent over the bias codes of Gmin, the
feedback DAC, the pre-amplifier and the comparator, driven purely by
measured performance.

This optimiser is deliberately *not* a generic black-box search: it
encodes designer knowledge (which fields to touch, in which order, from
which simulation-derived starting point).  That knowledge is exactly
the secret the paper argues an attacker lacks (Sec. VI-B.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.receiver.config import ConfigWord

#: The bias fields step 14 iterates over, in calibration order, with the
#: width of each field.
STEP14_FIELDS: tuple[tuple[str, int], ...] = (
    ("gmin_code", 6),
    ("dac_code", 6),
    ("preamp_code", 5),
    ("comp_code", 5),
    ("bias_global", 3),
)


@dataclass
class OptimizerTrace:
    """Record of one objective evaluation."""

    config: ConfigWord
    score: float


@dataclass
class CoordinateDescentResult:
    """Outcome of the bias optimisation.

    Attributes:
        config: Best configuration found.
        score: Its objective value.
        n_evaluations: Number of oracle measurements spent.
        trace: Every (configuration, score) evaluated, in order.
    """

    config: ConfigWord
    score: float
    n_evaluations: int
    trace: list[OptimizerTrace] = field(default_factory=list)


def coordinate_descent(
    objective: Callable[[ConfigWord], float],
    start: ConfigWord,
    fields: tuple[tuple[str, int], ...] = STEP14_FIELDS,
    passes: int = 2,
    initial_step: int = 8,
) -> CoordinateDescentResult:
    """Maximise ``objective`` over the given configuration fields.

    Each field is hill-climbed with shrinking step sizes (8, 4, 2, 1 by
    default); the whole field list is swept ``passes`` times.  The
    objective is typically a measured SNR (optionally blended with an
    SFDR penalty) and is treated as expensive: results are memoised so
    a configuration is never measured twice.
    """
    cache: dict[int, float] = {}
    trace: list[OptimizerTrace] = []

    def evaluate(config: ConfigWord) -> float:
        word = config.encode()
        if word not in cache:
            cache[word] = objective(config)
            trace.append(OptimizerTrace(config=config, score=cache[word]))
        return cache[word]

    current = start
    best_score = evaluate(current)
    for _ in range(passes):
        for name, width in fields:
            code_max = (1 << width) - 1
            step = min(initial_step, max(code_max // 4, 1))
            while step >= 1:
                improved = True
                while improved:
                    improved = False
                    code = getattr(current, name)
                    for candidate in (code - step, code + step):
                        if not 0 <= candidate <= code_max:
                            continue
                        trial = current.replace(**{name: candidate})
                        score = evaluate(trial)
                        if score > best_score:
                            best_score = score
                            current = trial
                            improved = True
                step //= 2
    return CoordinateDescentResult(
        config=current,
        score=best_score,
        n_evaluations=len(cache),
        trace=trace,
    )
