"""Coordinate-descent bias optimisation (calibration step 14).

"An iterative procedure is used to determine the configuration words of
these blocks through the improvement of the measured Signal-to-Noise
Ratio (SNR) and Spurious Free Dynamic Range (SFDR)" — implemented as a
multi-resolution coordinate descent over the bias codes of Gmin, the
feedback DAC, the pre-amplifier and the comparator, driven purely by
measured performance.

This optimiser is deliberately *not* a generic black-box search: it
encodes designer knowledge (which fields to touch, in which order, from
which simulation-derived starting point).  That knowledge is exactly
the secret the paper argues an attacker lacks (Sec. VI-B.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.receiver.config import ConfigWord

#: The bias fields step 14 iterates over, in calibration order, with the
#: width of each field.
STEP14_FIELDS: tuple[tuple[str, int], ...] = (
    ("gmin_code", 6),
    ("dac_code", 6),
    ("preamp_code", 5),
    ("comp_code", 5),
    ("bias_global", 3),
)


@dataclass
class OptimizerTrace:
    """Record of one objective evaluation."""

    config: ConfigWord
    score: float


@dataclass
class CoordinateDescentResult:
    """Outcome of the bias optimisation.

    Attributes:
        config: Best configuration found.
        score: Its objective value.
        n_evaluations: Number of oracle measurements spent.
        trace: Every (configuration, score) evaluated, in order.
    """

    config: ConfigWord
    score: float
    n_evaluations: int
    trace: list[OptimizerTrace] = field(default_factory=list)


def coordinate_descent(
    objective: Callable[[ConfigWord], float],
    start: ConfigWord,
    fields: tuple[tuple[str, int], ...] = STEP14_FIELDS,
    passes: int = 2,
    initial_step: int = 8,
    batch_objective: Callable[[list[ConfigWord]], list[float]] | None = None,
    speculation: str = "deep",
) -> CoordinateDescentResult:
    """Maximise ``objective`` over the given configuration fields.

    Each field is hill-climbed with shrinking step sizes (8, 4, 2, 1 by
    default); the whole field list is swept ``passes`` times.  The
    objective is typically a measured SNR (optionally blended with an
    SFDR penalty) and is treated as expensive: results are memoised so
    a configuration is never measured twice.

    Speculative batched probing
    ---------------------------

    The descent is accept-dependent — each probe's starting point is
    wherever the previous accepts moved — but the probes themselves can
    be *speculated*: when ``batch_objective`` (which must return, per
    configuration, exactly the value ``objective`` would) is given,
    candidate probes are prefetched in batched submissions and the
    sequential accept logic replays over the prefetched values, so the
    accepted path, the final configuration, the evaluation count and
    the trace (order included) are exactly those of the sequential
    descent.  Speculated probes the replay never consumes are simply
    dropped — they cost engine throughput, not correctness, and are not
    counted as evaluations; mispredicted probes (a config the replay
    wants but no speculation covered) fall back to a batch of one.

    ``speculation`` sets the depth, trading batch width for waste:

    * ``"rounds"`` — each hill-climb round prefetches its two
      neighbours as one batch.  Both are always consumed (the round
      evaluates both whatever gets accepted), so this depth never
      wastes a probe; it halves the number of engine submissions.
    * ``"deep"`` — additionally, each sweep prefetches both first-step
      neighbours of *every* field, and each field entry prefetches
      both neighbours at *every* step size, speculating that nothing
      moves.  Settled descents consume whole batches (wide enough for
      the engine's threaded key axis); accepted moves re-base the
      remaining probes and drop their speculations.
    """
    if speculation not in ("deep", "rounds"):
        raise ValueError(
            f"unknown speculation depth {speculation!r}; "
            "choose 'deep' or 'rounds'"
        )
    deep = speculation == "deep"
    cache: dict[int, float] = {}
    pending: dict[int, float] = {}
    trace: list[OptimizerTrace] = []

    def prefetch(candidates: list[ConfigWord]) -> None:
        if batch_objective is None:
            return
        todo: list[ConfigWord] = []
        words: list[int] = []
        for config in candidates:
            word = config.encode()
            if word in cache or word in pending or word in words:
                continue
            todo.append(config)
            words.append(word)
        if todo:
            for word, score in zip(words, batch_objective(todo)):
                pending[word] = score

    def evaluate(config: ConfigWord) -> float:
        word = config.encode()
        if word not in cache:
            if word in pending:
                cache[word] = pending.pop(word)
            elif batch_objective is not None:
                cache[word] = batch_objective([config])[0]
            else:
                cache[word] = objective(config)
            trace.append(OptimizerTrace(config=config, score=cache[word]))
        return cache[word]

    def neighbours(config: ConfigWord, name: str, code_max: int, step: int):
        code = getattr(config, name)
        return [
            config.replace(**{name: candidate})
            for candidate in (code - step, code + step)
            if 0 <= candidate <= code_max
        ]

    def step_schedule(width: int) -> list[int]:
        code_max = (1 << width) - 1
        schedule = []
        step = min(initial_step, max(code_max // 4, 1))
        while step >= 1:
            schedule.append(step)
            step //= 2
        return schedule

    current = start
    best_score = evaluate(current)
    for _ in range(passes):
        # Sweep-level speculation: both first-step neighbours of every
        # field, in one engine batch, assuming no field moves.  Early
        # fields always hit; later ones only miss if an earlier field
        # accepted a move this sweep.
        if deep:
            sweep_candidates: list[ConfigWord] = []
            for name, width in fields:
                code_max = (1 << width) - 1
                sweep_candidates.extend(
                    neighbours(current, name, code_max, step_schedule(width)[0])
                )
            prefetch(sweep_candidates)
        for name, width in fields:
            code_max = (1 << width) - 1
            if deep:
                # Field-level speculation: both neighbours at every
                # step size of this field's schedule, in one batch.  A
                # field that accepts no move (the common case once the
                # descent settles) consumes the whole batch; an
                # accepted move re-bases the smaller steps and their
                # speculated probes are dropped.
                field_candidates: list[ConfigWord] = []
                for step in step_schedule(width):
                    field_candidates.extend(
                        neighbours(current, name, code_max, step)
                    )
                prefetch(field_candidates)
            for step in step_schedule(width):
                improved = True
                while improved:
                    improved = False
                    code = getattr(current, name)
                    # Round-level speculation: this round's two probes.
                    prefetch(neighbours(current, name, code_max, step))
                    for candidate in (code - step, code + step):
                        if not 0 <= candidate <= code_max:
                            continue
                        trial = current.replace(**{name: candidate})
                        score = evaluate(trial)
                        if score > best_score:
                            best_score = score
                            current = trial
                            improved = True
    return CoordinateDescentResult(
        config=current,
        score=best_score,
        n_evaluations=len(cache),
        trace=trace,
    )
