"""The paper's 14-step off-chip calibration procedure (Sec. V-B).

This module is the "secret calibration algorithm" of the locking scheme.
It drives a chip through the exact sequence the paper lists:

 1. comparator configured as a buffer (clock deactivated),
 2. output buffer configured for the off-chip load,
 3. RF input disabled (Gmin off),
 4. feedback loop (DAC + loop delay) turned off,
 5. LC filter in oscillation mode (-Gm at maximum),
 6. capacitor arrays Cc then Cf tuned until the oscillation frequency
    equals the target centre frequency,
 7. -Gm reduced until the oscillation vanishes,
 8. feedback loop restored,
 9. RF input applied at F0,
10. sampling frequency set to Fs = 4 F0,
11. loop delay set according to Fs,
12. VGLNA tuned for the target sensitivity/dynamic range,
13. Gmin / DAC / pre-amp / comparator initialised to nominal values
    from design simulation,
14. iterative bias optimisation on measured SNR (and SFDR).

All tuning decisions are made from *measurements* (oscillation frequency
metering, SNR/SFDR readings), never from the chip model's internals, so
the procedure works on any process-varied chip exactly as the real flow
works on silicon.

Resumable state machines
------------------------

The per-die step loop is written as generator state machines
(:func:`calibration_machine` and its per-step sub-machines): the
machine owns every tuning decision but performs no simulation — it
*yields* :class:`CalibrationProbe` records (engine requests plus a pure
decode) and receives each probe's decoded value via ``send``.  The
sequential :class:`Calibrator` drives one machine to completion,
satisfying each probe immediately; the fleet driver
(:mod:`repro.calibration.fleet`) advances many dies' machines in
lockstep, fusing every active die's current probe into one engine
batch.  Either way each die issues the same requests in the same order
— only the grouping differs — which is the bit-exactness argument.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Generator

from repro.calibration import metering
from repro.calibration.optimizer import (
    CoordinateDescentResult,
    descent_machine,
)
from repro.dsp.units import dbm_to_vamp
from repro.receiver.config import ConfigWord
from repro.receiver.performance import (
    DEFAULT_POWER_DBM,
    SEGMENT_RANGES,
    GainSegment,
    modulator_sfdr_probe,
    modulator_snr_probe,
)
from repro.receiver.receiver import Chip
from repro.receiver.standards import Standard

if TYPE_CHECKING:
    from repro.engine.request import ModulatorRequest

#: Step-13 nominal bias codes "determined by simulation" on the nominal
#: design — these are part of the secret calibration knowledge.
NOMINAL_BIAS_CODES = {
    "gmin_code": 24,
    "dac_code": 32,
    "preamp_code": 20,
    "comp_code": 28,
    "bias_global": 4,
}

#: Step-11 nominal loop-delay code ("set according to Fs"): 1.5 periods.
NOMINAL_DELAY_CODE = 12

#: Step-2 nominal output-buffer code.
NOMINAL_BUFFER_CODE = 4

#: Target VGLNA output amplitude the sensitivity plan aims at, volts.
LNA_TARGET_AMPLITUDE = 0.14

#: Acceptable relative centre-frequency error after step 6.
FREQ_TOLERANCE = 0.004


@dataclass
class CalibrationLogEntry:
    """One step of the calibration, for audit/tests."""

    step: int
    description: str
    value: float | int | None = None


@dataclass
class CalibrationResult:
    """Outcome of calibrating one chip for one standard.

    Attributes:
        config: The calibrated configuration word — the secret key.
        standard: The standard calibrated for.
        achieved_frequency: Measured oscillation frequency after tuning.
        snr_db: Final measured SNR at the modulator output.
        sfdr_db: Final measured SFDR.
        success: Whether the result meets the standard's specification.
        n_measurements: Total oracle measurements spent.
        log: Step-by-step audit trail.
        segment_gains: Per-segment VGLNA plan (paper Fig. 11).
    """

    config: ConfigWord
    standard: Standard
    achieved_frequency: float
    snr_db: float
    sfdr_db: float
    success: bool
    n_measurements: int
    log: list[CalibrationLogEntry] = field(default_factory=list)
    segment_gains: tuple[GainSegment, ...] = ()


class CalibrationFailed(RuntimeError):
    """A die failed the calibration procedure.

    Raised when a tuning measurement comes back physically impossible
    to act on — today the one such path is the tank never oscillating
    mid-bisection during frequency tuning (a dead die, or one whose
    oscillation detector lost the line).  The exception carries the
    context an operator triaging a lot needs:

    Attributes:
        step: The 14-step procedure step that failed.
        chip_id: The die that failed (None until a driver attaches it).
        log: The :class:`CalibrationLogEntry` audit trail up to the
            failure, so the completed steps are not lost with the die.
    """

    def __init__(
        self,
        message: str,
        step: int | None = None,
        chip_id: int | None = None,
        log: tuple[CalibrationLogEntry, ...] | list[CalibrationLogEntry] = (),
    ):
        super().__init__(message)
        self.step = step
        self.chip_id = chip_id
        self.log = list(log)


@dataclass(frozen=True)
class CalibrationProbe:
    """One measurement a calibration state machine is waiting on.

    Attributes:
        requests: The engine requests this measurement submits — built
            exactly as the scalar procedure builds them, so any driver
            that runs them (alone, or fused with other dies' probes)
            gets bit-identical results.
        decode: Pure post-processing from the requests' results (in
            request order) to the value the machine expects back.
        kind: Debug/audit label (``"fosc"``, ``"oscillates"``,
            ``"scores"``, ``"verify"``).
        fused_extract: Optional hook for drivers that decode many
            probes at once: maps this probe's results to the
            ``(record, fs)`` pair a batched meter
            (:func:`~repro.calibration.metering.
            oscillation_frequency_batch`) consumes.  The batched value
            is bit-identical to ``decode`` on the same results, so
            fusing is pure driver throughput policy — drivers without
            the hook (or ignoring it) call ``decode`` as ever.
    """

    requests: tuple["ModulatorRequest", ...]
    decode: Callable[[list], object]
    kind: str = ""
    fused_extract: Callable[[list], tuple] | None = None


#: A calibration state machine: yields probes, receives decoded values.
CalibrationMachine = Generator[CalibrationProbe, object, "CalibrationResult"]


def _fosc_probe(
    chip: Chip, config: ConfigWord, standard: Standard, seed: int
) -> CalibrationProbe:
    """Oscillation-frequency measurement (steps 5-6), as a probe.

    The request and decode mirror
    :func:`~repro.calibration.metering.frequency_of_oscillation_config`
    field for field: same oscillation-mode record, same settled-half
    slice, same meter.
    """
    request = chip.oscillation_request(config, standard.fs, seed=seed)

    def settled(results):
        return results[0].output[request.n_samples // 2 :]

    def decode(results) -> float | None:
        return metering.oscillation_frequency(settled(results), standard.fs)

    return CalibrationProbe(
        (request,),
        decode,
        kind="fosc",
        # The fleet driver fuses every active die's frequency decode
        # into one batched meter call per round (same settled slice,
        # same meter arithmetic — bit-identical to decode()).
        fused_extract=lambda results: (settled(results), standard.fs),
    )


def _oscillates_probe(
    chip: Chip, config: ConfigWord, standard: Standard, gmq_code: int, seed: int
) -> CalibrationProbe:
    """Sustained-oscillation detection at a -Gm code (step 7)."""
    request = chip.oscillation_request(
        config, standard.fs, gmq_code=gmq_code, seed=seed
    )

    def decode(results) -> bool:
        return metering.is_oscillating(
            results[0].output[request.n_samples // 2 :], standard.fs
        )

    return CalibrationProbe((request,), decode, kind="oscillates")


def _cap_tuning_machine(
    chip: Chip, config: ConfigWord, standard: Standard, seed: int
):
    """Step 6 as a state machine; returns ``(config, achieved, n_meas)``.

    Transcribes :meth:`Calibrator.tune_capacitor_arrays`' binary
    searches probe for probe: each ``yield`` is one metered frequency
    measurement, and the next probe depends on the decoded previous one
    — which is exactly why fleet batching happens across dies (every
    die at its own bisection level) rather than within one die's
    inherently sequential search.
    """
    target = standard.f_center
    n_measurements = 0

    def fosc(cc: int, cf: int):
        nonlocal n_measurements
        n_measurements += 1
        freq = yield _fosc_probe(
            chip, config.replace(cc_coarse=cc, cf_fine=cf), standard, seed
        )
        if freq is None:
            # Dead-die path, explicit: a mid-bisection non-oscillation
            # cannot steer the search and must not masquerade as a
            # frequency reading.
            raise CalibrationFailed(
                f"tank failed to oscillate at (cc={cc}, cf={cf}) "
                "during frequency tuning",
                step=6,
            )
        return freq

    # Coarse: binary search with the fine array mid-scale so the fine
    # range straddles the coarse residual in both directions.
    lo, hi = 0, 255
    while lo < hi:
        mid = (lo + hi) // 2
        if (yield from fosc(mid, 128)) > target:
            lo = mid + 1  # frequency too high -> need more C
        else:
            hi = mid
    cc_best = lo
    if cc_best > 0:
        f_below = yield from fosc(cc_best - 1, 128)
        f_here = yield from fosc(cc_best, 128)
        if abs(f_below - target) < abs(f_here - target):
            cc_best -= 1

    lo, hi = 0, 255
    while lo < hi:
        mid = (lo + hi) // 2
        if (yield from fosc(cc_best, mid)) > target:
            lo = mid + 1
        else:
            hi = mid
    cf_best = lo
    if cf_best > 0:
        f_below = yield from fosc(cc_best, cf_best - 1)
        f_here = yield from fosc(cc_best, cf_best)
        if abs(f_below - target) < abs(f_here - target):
            cf_best -= 1

    achieved = yield from fosc(cc_best, cf_best)
    return (
        config.replace(cc_coarse=cc_best, cf_fine=cf_best),
        achieved,
        n_measurements,
    )


def _q_backoff_machine(
    chip: Chip, config: ConfigWord, standard: Standard, seed: int
):
    """Step 7 as a state machine; returns ``(config, n_meas)``.

    Binary search for the smallest oscillating -Gm code, then sit one
    code below it (maximum loss cancellation without oscillation).
    """
    n_measurements = 0
    lo, hi = 0, 63
    while lo < hi:
        mid = (lo + hi) // 2
        n_measurements += 1
        if (yield _oscillates_probe(chip, config, standard, mid, seed)):
            hi = mid
        else:
            lo = mid + 1
    critical = lo
    return config.replace(gmq_code=max(critical - 1, 0)), n_measurements


def _score_probe(
    chip: Chip,
    standard: Standard,
    candidates: list[ConfigWord],
    n_fft: int,
    sfdr_weight: float,
    seed: int,
) -> CalibrationProbe:
    """Step-14 objective scores for a candidate set, as one probe.

    The SNR sweep and (when weighted) the SFDR sweep ride the same
    probe, so a fleet round fuses both measurement kinds of every die
    into a single engine submission.  Scores are computed by the same
    probe builders and the same expression as
    :meth:`Calibrator.optimise_biases`' batched objective, operand for
    operand.
    """
    snr_requests, snr_decode = modulator_snr_probe(
        chip, candidates, standard, n_fft=n_fft, seed=seed
    )
    if sfdr_weight > 0.0:
        sfdr_requests, sfdr_decode = modulator_sfdr_probe(
            chip, candidates, standard, n_fft=n_fft, seed=seed
        )
    else:
        sfdr_requests, sfdr_decode = [], None
    n_snr = len(snr_requests)

    def decode(results) -> list[float]:
        scores = [m.snr_db for m in snr_decode(results[:n_snr])]
        if sfdr_weight > 0.0:
            scores = [
                score
                + sfdr_weight * min(0.0, m.sfdr_db - standard.sfdr_spec_db)
                for score, m in zip(scores, sfdr_decode(results[n_snr:]))
            ]
        return scores

    return CalibrationProbe(
        tuple(snr_requests) + tuple(sfdr_requests), decode, kind="scores"
    )


def _bias_optimisation_machine(
    chip: Chip,
    standard: Standard,
    config: ConfigWord,
    n_fft: int,
    passes: int,
    sfdr_weight: float,
    seed: int,
    batch_probing: bool,
    speculation: str,
):
    """Step 14 as a state machine; returns ``(descent_result, n_meas)``.

    Wraps the optimizer's :func:`~repro.calibration.optimizer.
    descent_machine` — which owns the accept logic and speculation
    schedule — turning each candidate list it wants scored into one
    :func:`_score_probe`.  Measurements are metered per consumed
    evaluation exactly as the sequential objective meters them;
    speculated probes the descent never consumes are engine throughput,
    not bench measurements of the modelled flow.
    """
    descent = descent_machine(
        config, passes=passes, speculation=speculation, batched=batch_probing
    )
    try:
        candidates = next(descent)
        while True:
            scores = yield _score_probe(
                chip, standard, candidates, n_fft, sfdr_weight, seed
            )
            candidates = descent.send(scores)
    except StopIteration as stop:
        result = stop.value
    per_evaluation = 2 if sfdr_weight > 0.0 else 1
    return result, per_evaluation * result.n_evaluations


def _verification_probe(
    chip: Chip, standard: Standard, config: ConfigWord, seed: int
) -> CalibrationProbe:
    """Final full-record SNR + SFDR verification, as one probe."""
    snr_requests, snr_decode = modulator_snr_probe(
        chip, [config], standard, seed=seed
    )
    sfdr_requests, sfdr_decode = modulator_sfdr_probe(
        chip, [config], standard, seed=seed
    )

    def decode(results) -> tuple[float, float]:
        return (
            snr_decode(results[:1])[0].snr_db,
            sfdr_decode(results[1:])[0].sfdr_db,
        )

    return CalibrationProbe(
        tuple(snr_requests) + tuple(sfdr_requests), decode, kind="verify"
    )


def calibration_machine(
    chip: Chip,
    standard: Standard,
    n_fft: int = 4096,
    optimizer_passes: int = 2,
    sfdr_weight: float = 0.3,
    seed: int = 0,
    batch_probing: bool = True,
    speculation: str = "rounds",
    power_dbm: float = DEFAULT_POWER_DBM,
) -> CalibrationMachine:
    """The full 14-step procedure as a resumable state machine.

    Yields :class:`CalibrationProbe` records and expects each probe's
    decoded value back via ``send``; the generator's return value is
    the :class:`CalibrationResult`.  A dead die raises
    :class:`CalibrationFailed` with this die's id and the audit log up
    to the failure attached.  ``speculation`` must already be resolved
    (``"rounds"`` or ``"deep"``) — resolution is driver policy, see
    :meth:`Calibrator._speculation_depth`.
    """
    n_measurements = 0
    log: list[CalibrationLogEntry] = []
    try:
        # Steps 1-5 configure the loop topology for oscillation-mode
        # tuning; the oscillation requests apply them on every
        # measurement (comparator buffered, input off, loop off, -Gm max).
        config = ConfigWord(
            buffer_code=NOMINAL_BUFFER_CODE,
            delay_code=NOMINAL_DELAY_CODE,
            **NOMINAL_BIAS_CODES,
        )
        log.append(CalibrationLogEntry(1, "comparator configured as buffer"))
        log.append(CalibrationLogEntry(2, "output buffer set", NOMINAL_BUFFER_CODE))
        log.append(CalibrationLogEntry(3, "RF input disabled"))
        log.append(CalibrationLogEntry(4, "feedback loop disabled"))
        log.append(CalibrationLogEntry(5, "-Gm set to maximum", 63))

        config, achieved, n = yield from _cap_tuning_machine(
            chip, config, standard, seed
        )
        n_measurements += n
        log.append(CalibrationLogEntry(6, "capacitor arrays tuned", achieved))

        config, n = yield from _q_backoff_machine(chip, config, standard, seed)
        n_measurements += n
        log.append(CalibrationLogEntry(7, "-Gm backed off", config.gmq_code))

        config = config.replace(fb_en=1, dac_en=1, comp_clk_en=1, gmin_en=1)
        log.append(CalibrationLogEntry(8, "feedback loop restored"))
        log.append(CalibrationLogEntry(9, "RF input applied at F0"))
        log.append(CalibrationLogEntry(10, "Fs set to 4*F0", standard.fs))
        log.append(CalibrationLogEntry(11, "loop delay set", NOMINAL_DELAY_CODE))

        lna_code = vglna_gain_plan(chip, power_dbm)
        config = config.replace(lna_gain=lna_code)
        log.append(CalibrationLogEntry(12, "VGLNA tuned", lna_code))
        log.append(CalibrationLogEntry(13, "bias blocks initialised"))

        opt, n = yield from _bias_optimisation_machine(
            chip,
            standard,
            config,
            n_fft,
            optimizer_passes,
            sfdr_weight,
            seed,
            batch_probing,
            speculation,
        )
        n_measurements += n
        config = opt.config
        log.append(CalibrationLogEntry(14, "bias optimisation done", opt.score))

        snr, sfdr = yield _verification_probe(chip, standard, config, seed)
        n_measurements += 2
    except CalibrationFailed as failure:
        if not failure.log:
            failure.log = list(log)
        if failure.chip_id is None:
            failure.chip_id = chip.chip_id
        raise
    success = snr >= standard.snr_spec_db and sfdr >= standard.sfdr_spec_db - 10.0
    return CalibrationResult(
        config=config,
        standard=standard,
        achieved_frequency=achieved,
        snr_db=snr,
        sfdr_db=sfdr,
        success=success,
        n_measurements=n_measurements,
        log=log,
        segment_gains=segment_gain_plan(chip),
    )


def vglna_gain_plan(chip: Chip, power_dbm: float) -> int:
    """Step 12: VGLNA code for an expected input power (sensitivity plan).

    Chooses the gain that brings the expected tone amplitude to the
    transconductor's optimal drive level.
    """
    d = chip.design.vglna
    amp = dbm_to_vamp(power_dbm)
    wanted_db = 20.0 * math.log10(LNA_TARGET_AMPLITUDE / amp)
    code = round((wanted_db - d.gain_min_db) / d.gain_step_db)
    return max(0, min(15, code))


def segment_gain_plan(chip: Chip) -> tuple[GainSegment, ...]:
    """VGLNA plan for the paper's three dynamic-range segments."""
    segments = []
    for lo, hi in SEGMENT_RANGES:
        centre = 0.5 * (lo + hi)
        segments.append(GainSegment(lo, hi, vglna_gain_plan(chip, centre)))
    return tuple(segments)


class Calibrator:
    """Runs the 14-step procedure on chips.

    Args:
        n_fft: FFT length for the step-14 SNR measurements (a smaller
            record keeps the optimisation fast; the final verification
            uses the full record).
        optimizer_passes: Coordinate-descent sweeps over the bias fields.
        sfdr_weight: Weight of the SFDR shortfall in the step-14
            objective.
        seed: Measurement noise seed.
        batch_probing: Evaluate the step-14 descent's speculative probe
            sets as engine batches (one SNR sweep + one SFDR sweep per
            probe set) instead of one measurement at a time.  The
            batched measurements are bit-exact with the scalar ones and
            the descent replays the identical accept order, so the
            calibrated key, score, log and measurement count do not
            change — only the latency does.
        speculation: Probe-speculation depth for the batched descent:
            ``"rounds"`` (zero wasted probes, two-key batches),
            ``"deep"`` (whole-sweep/whole-field probe sets, widest
            batches, some dropped speculations) or ``"auto"`` (deep
            wherever the engine kernel can thread the key axis across
            more than one CPU, rounds otherwise).  Results are
            identical at every depth.
    """

    def __init__(
        self,
        n_fft: int = 4096,
        optimizer_passes: int = 2,
        sfdr_weight: float = 0.3,
        seed: int = 0,
        batch_probing: bool = True,
        speculation: str = "auto",
    ):
        self.n_fft = n_fft
        self.optimizer_passes = optimizer_passes
        self.sfdr_weight = sfdr_weight
        self.seed = seed
        self.batch_probing = batch_probing
        self.speculation = speculation
        self._n_measurements = 0

    def _speculation_depth(self) -> str:
        """Resolve ``"auto"``: deep probing only pays where dropped
        speculations are absorbed by the kernel's threaded key axis."""
        if self.speculation != "auto":
            return self.speculation
        from repro.engine.native import kernel_threaded, usable_cpus

        return "deep" if kernel_threaded() and usable_cpus() >= 2 else "rounds"

    # -- single-die machine driving ---------------------------------------

    def _drive(self, chip: Chip, machine):
        """Run a calibration state machine to completion on one die.

        Each yielded probe is satisfied immediately through the default
        engine — the sequential special case of the fleet driver's
        lockstep loop.  Returns the machine's return value.
        """
        from repro.engine.engine import get_default_engine

        engine = get_default_engine()
        value = None
        try:
            while True:
                probe = machine.send(value)
                value = probe.decode(engine.run(chip, list(probe.requests)))
        except StopIteration as stop:
            return stop.value

    # -- steps 5-6: frequency tuning --------------------------------------

    def tune_capacitor_arrays(
        self, chip: Chip, config: ConfigWord, standard: Standard
    ) -> tuple[ConfigWord, float]:
        """Step 6: binary-search Cc (coarse) then Cf (fine) to hit F0.

        Oscillation frequency falls monotonically with capacitance, and
        capacitance rises monotonically with either array code, so both
        searches are classic binary searches on measured frequency
        (:func:`_cap_tuning_machine`).  A die whose tank stops
        oscillating mid-bisection raises :class:`CalibrationFailed`.
        """
        config, achieved, n = self._drive(
            chip, _cap_tuning_machine(chip, config, standard, self.seed)
        )
        self._n_measurements += n
        return config, achieved

    def back_off_q_enhancement(
        self, chip: Chip, config: ConfigWord, standard: Standard
    ) -> ConfigWord:
        """Step 7: reduce -Gm until oscillation vanishes.

        Binary search for the smallest oscillating code, then sit one
        code below it (:func:`_q_backoff_machine`)."""
        config, n = self._drive(
            chip, _q_backoff_machine(chip, config, standard, self.seed)
        )
        self._n_measurements += n
        return config

    # -- step 14: bias optimisation ----------------------------------------

    def optimise_biases(
        self, chip: Chip, config: ConfigWord, standard: Standard
    ) -> CoordinateDescentResult:
        """Step 14: coordinate descent on measured SNR (+ SFDR shortfall).

        Drives :func:`_bias_optimisation_machine` — the single source
        of the step-14 score expression, shared with :meth:`calibrate`
        and the fleet driver.  With :attr:`batch_probing` the descent's
        speculative probe sets are measured as engine batches; a probed
        configuration scores bitwise what the sequential objective
        would, so the descent — and therefore the secret key — is
        unchanged.  Measurements are counted per *consumed* evaluation,
        exactly as a per-measurement meter would count them; speculated
        probes the descent never consumes are engine throughput, not
        bench measurements of the modelled flow.
        """
        result, n = self._drive(
            chip,
            _bias_optimisation_machine(
                chip,
                standard,
                config,
                self.n_fft,
                self.optimizer_passes,
                self.sfdr_weight,
                self.seed,
                self.batch_probing,
                self._speculation_depth() if self.batch_probing else "rounds",
            ),
        )
        self._n_measurements += n
        return result

    # -- the full procedure ---------------------------------------------------

    def machine(
        self,
        chip: Chip,
        standard: Standard,
        power_dbm: float = DEFAULT_POWER_DBM,
    ) -> CalibrationMachine:
        """This calibrator's 14-step procedure as a state machine.

        The fleet driver (:class:`~repro.calibration.fleet.
        FleetCalibrator`) builds one of these per die and advances them
        in lockstep; :meth:`calibrate` drives a single one to
        completion.  Both issue identical per-die probes.
        """
        return calibration_machine(
            chip,
            standard,
            n_fft=self.n_fft,
            optimizer_passes=self.optimizer_passes,
            sfdr_weight=self.sfdr_weight,
            seed=self.seed,
            batch_probing=self.batch_probing,
            speculation=(
                self._speculation_depth() if self.batch_probing else "rounds"
            ),
            power_dbm=power_dbm,
        )

    def calibrate(
        self,
        chip: Chip,
        standard: Standard,
        power_dbm: float = DEFAULT_POWER_DBM,
    ) -> CalibrationResult:
        """Run steps 1-14 and return the chip's secret key for ``standard``.

        Raises :class:`CalibrationFailed` (step log and die id attached)
        when the die cannot complete the procedure."""
        self._n_measurements = 0
        result = self._drive(chip, self.machine(chip, standard, power_dbm))
        self._n_measurements = result.n_measurements
        return result
