"""The paper's 14-step off-chip calibration procedure (Sec. V-B).

This module is the "secret calibration algorithm" of the locking scheme.
It drives a chip through the exact sequence the paper lists:

 1. comparator configured as a buffer (clock deactivated),
 2. output buffer configured for the off-chip load,
 3. RF input disabled (Gmin off),
 4. feedback loop (DAC + loop delay) turned off,
 5. LC filter in oscillation mode (-Gm at maximum),
 6. capacitor arrays Cc then Cf tuned until the oscillation frequency
    equals the target centre frequency,
 7. -Gm reduced until the oscillation vanishes,
 8. feedback loop restored,
 9. RF input applied at F0,
10. sampling frequency set to Fs = 4 F0,
11. loop delay set according to Fs,
12. VGLNA tuned for the target sensitivity/dynamic range,
13. Gmin / DAC / pre-amp / comparator initialised to nominal values
    from design simulation,
14. iterative bias optimisation on measured SNR (and SFDR).

All tuning decisions are made from *measurements* (oscillation frequency
metering, SNR/SFDR readings), never from the chip model's internals, so
the procedure works on any process-varied chip exactly as the real flow
works on silicon.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.calibration.metering import frequency_of_oscillation_config, is_oscillating
from repro.calibration.optimizer import CoordinateDescentResult, coordinate_descent
from repro.dsp.units import dbm_to_vamp
from repro.receiver.config import ConfigWord
from repro.receiver.performance import (
    DEFAULT_POWER_DBM,
    SEGMENT_RANGES,
    GainSegment,
    measure_modulator_snr,
    measure_modulator_snr_batch,
    measure_sfdr,
    measure_sfdr_batch,
)
from repro.receiver.receiver import Chip
from repro.receiver.standards import Standard

#: Step-13 nominal bias codes "determined by simulation" on the nominal
#: design — these are part of the secret calibration knowledge.
NOMINAL_BIAS_CODES = {
    "gmin_code": 24,
    "dac_code": 32,
    "preamp_code": 20,
    "comp_code": 28,
    "bias_global": 4,
}

#: Step-11 nominal loop-delay code ("set according to Fs"): 1.5 periods.
NOMINAL_DELAY_CODE = 12

#: Step-2 nominal output-buffer code.
NOMINAL_BUFFER_CODE = 4

#: Target VGLNA output amplitude the sensitivity plan aims at, volts.
LNA_TARGET_AMPLITUDE = 0.14

#: Acceptable relative centre-frequency error after step 6.
FREQ_TOLERANCE = 0.004


@dataclass
class CalibrationLogEntry:
    """One step of the calibration, for audit/tests."""

    step: int
    description: str
    value: float | int | None = None


@dataclass
class CalibrationResult:
    """Outcome of calibrating one chip for one standard.

    Attributes:
        config: The calibrated configuration word — the secret key.
        standard: The standard calibrated for.
        achieved_frequency: Measured oscillation frequency after tuning.
        snr_db: Final measured SNR at the modulator output.
        sfdr_db: Final measured SFDR.
        success: Whether the result meets the standard's specification.
        n_measurements: Total oracle measurements spent.
        log: Step-by-step audit trail.
        segment_gains: Per-segment VGLNA plan (paper Fig. 11).
    """

    config: ConfigWord
    standard: Standard
    achieved_frequency: float
    snr_db: float
    sfdr_db: float
    success: bool
    n_measurements: int
    log: list[CalibrationLogEntry] = field(default_factory=list)
    segment_gains: tuple[GainSegment, ...] = ()


def vglna_gain_plan(chip: Chip, power_dbm: float) -> int:
    """Step 12: VGLNA code for an expected input power (sensitivity plan).

    Chooses the gain that brings the expected tone amplitude to the
    transconductor's optimal drive level.
    """
    d = chip.design.vglna
    amp = dbm_to_vamp(power_dbm)
    wanted_db = 20.0 * math.log10(LNA_TARGET_AMPLITUDE / amp)
    code = round((wanted_db - d.gain_min_db) / d.gain_step_db)
    return max(0, min(15, code))


def segment_gain_plan(chip: Chip) -> tuple[GainSegment, ...]:
    """VGLNA plan for the paper's three dynamic-range segments."""
    segments = []
    for lo, hi in SEGMENT_RANGES:
        centre = 0.5 * (lo + hi)
        segments.append(GainSegment(lo, hi, vglna_gain_plan(chip, centre)))
    return tuple(segments)


class Calibrator:
    """Runs the 14-step procedure on chips.

    Args:
        n_fft: FFT length for the step-14 SNR measurements (a smaller
            record keeps the optimisation fast; the final verification
            uses the full record).
        optimizer_passes: Coordinate-descent sweeps over the bias fields.
        sfdr_weight: Weight of the SFDR shortfall in the step-14
            objective.
        seed: Measurement noise seed.
        batch_probing: Evaluate the step-14 descent's speculative probe
            sets as engine batches (one SNR sweep + one SFDR sweep per
            probe set) instead of one measurement at a time.  The
            batched measurements are bit-exact with the scalar ones and
            the descent replays the identical accept order, so the
            calibrated key, score, log and measurement count do not
            change — only the latency does.
        speculation: Probe-speculation depth for the batched descent:
            ``"rounds"`` (zero wasted probes, two-key batches),
            ``"deep"`` (whole-sweep/whole-field probe sets, widest
            batches, some dropped speculations) or ``"auto"`` (deep
            wherever the engine kernel can thread the key axis across
            more than one CPU, rounds otherwise).  Results are
            identical at every depth.
    """

    def __init__(
        self,
        n_fft: int = 4096,
        optimizer_passes: int = 2,
        sfdr_weight: float = 0.3,
        seed: int = 0,
        batch_probing: bool = True,
        speculation: str = "auto",
    ):
        self.n_fft = n_fft
        self.optimizer_passes = optimizer_passes
        self.sfdr_weight = sfdr_weight
        self.seed = seed
        self.batch_probing = batch_probing
        self.speculation = speculation
        self._n_measurements = 0

    def _speculation_depth(self) -> str:
        """Resolve ``"auto"``: deep probing only pays where dropped
        speculations are absorbed by the kernel's threaded key axis."""
        if self.speculation != "auto":
            return self.speculation
        from repro.engine.native import kernel_threaded, usable_cpus

        return "deep" if kernel_threaded() and usable_cpus() >= 2 else "rounds"

    # -- steps 5-6: frequency tuning --------------------------------------

    def _measure_fosc(self, chip: Chip, config: ConfigWord, standard: Standard) -> float | None:
        self._n_measurements += 1
        return frequency_of_oscillation_config(
            chip, config, standard.fs, seed=self.seed
        )

    def tune_capacitor_arrays(
        self, chip: Chip, config: ConfigWord, standard: Standard
    ) -> tuple[ConfigWord, float]:
        """Step 6: binary-search Cc (coarse) then Cf (fine) to hit F0.

        Oscillation frequency falls monotonically with capacitance, and
        capacitance rises monotonically with either array code, so both
        searches are classic binary searches on measured frequency.
        """
        target = standard.f_center

        def fosc(cc: int, cf: int) -> float:
            freq = self._measure_fosc(
                chip, config.replace(cc_coarse=cc, cf_fine=cf), standard
            )
            if freq is None:
                raise RuntimeError(
                    "tank failed to oscillate during frequency tuning"
                )
            return freq

        # Coarse: binary search with the fine array mid-scale so the fine
        # range straddles the coarse residual in both directions.
        lo, hi = 0, 255
        while lo < hi:
            mid = (lo + hi) // 2
            if fosc(mid, 128) > target:
                lo = mid + 1  # frequency too high -> need more C
            else:
                hi = mid
        cc_best = lo
        if cc_best > 0 and abs(fosc(cc_best - 1, 128) - target) < abs(
            fosc(cc_best, 128) - target
        ):
            cc_best -= 1

        lo, hi = 0, 255
        while lo < hi:
            mid = (lo + hi) // 2
            if fosc(cc_best, mid) > target:
                lo = mid + 1
            else:
                hi = mid
        cf_best = lo
        if cf_best > 0 and abs(fosc(cc_best, cf_best - 1) - target) < abs(
            fosc(cc_best, cf_best) - target
        ):
            cf_best -= 1

        achieved = fosc(cc_best, cf_best)
        return config.replace(cc_coarse=cc_best, cf_fine=cf_best), achieved

    def back_off_q_enhancement(
        self, chip: Chip, config: ConfigWord, standard: Standard
    ) -> ConfigWord:
        """Step 7: reduce -Gm until oscillation vanishes.

        Binary search for the smallest oscillating code, then sit one
        code below it (maximum loss cancellation without oscillation).
        """
        def oscillates(code: int) -> bool:
            self._n_measurements += 1
            result = chip.simulate_oscillation(
                config, standard.fs, gmq_code=code, seed=self.seed
            )
            return is_oscillating(result.output[2048:], standard.fs)

        lo, hi = 0, 63
        while lo < hi:
            mid = (lo + hi) // 2
            if oscillates(mid):
                hi = mid
            else:
                lo = mid + 1
        critical = lo
        return config.replace(gmq_code=max(critical - 1, 0))

    # -- step 14: bias optimisation ----------------------------------------

    def optimise_biases(
        self, chip: Chip, config: ConfigWord, standard: Standard
    ) -> CoordinateDescentResult:
        """Step 14: coordinate descent on measured SNR (+ SFDR shortfall).

        With :attr:`batch_probing` the descent's speculative probe sets
        are measured as engine batches.  A probed configuration scores
        bitwise what the sequential objective would (the batched
        measurements are bit-exact with the scalar ones and the score
        expression is transcribed operand for operand), so the descent
        — and therefore the secret key — is unchanged.  Measurements
        are counted per *consumed* evaluation, exactly as the
        sequential objective counts them; speculated probes the descent
        never consumes are engine throughput, not bench measurements of
        the modelled flow.
        """
        def objective(candidate: ConfigWord) -> float:
            self._n_measurements += 1
            snr = measure_modulator_snr(
                chip, candidate, standard, n_fft=self.n_fft, seed=self.seed
            ).snr_db
            score = snr
            if self.sfdr_weight > 0.0:
                self._n_measurements += 1
                sfdr = measure_sfdr(
                    chip, candidate, standard, n_fft=self.n_fft, seed=self.seed
                ).sfdr_db
                score += self.sfdr_weight * min(0.0, sfdr - standard.sfdr_spec_db)
            return score

        def batch_objective(candidates: list[ConfigWord]) -> list[float]:
            snrs = measure_modulator_snr_batch(
                chip, candidates, standard, n_fft=self.n_fft, seed=self.seed
            )
            scores = [m.snr_db for m in snrs]
            if self.sfdr_weight > 0.0:
                sfdrs = measure_sfdr_batch(
                    chip, candidates, standard, n_fft=self.n_fft, seed=self.seed
                )
                scores = [
                    score
                    + self.sfdr_weight * min(0.0, m.sfdr_db - standard.sfdr_spec_db)
                    for score, m in zip(scores, sfdrs)
                ]
            return scores

        result = coordinate_descent(
            objective,
            config,
            passes=self.optimizer_passes,
            batch_objective=batch_objective if self.batch_probing else None,
            speculation=self._speculation_depth() if self.batch_probing else "rounds",
        )
        if self.batch_probing:
            # The sequential objective meters one SNR (+ one SFDR)
            # reading per unique consumed evaluation; the batched path
            # meters identically, at the same total.
            per_evaluation = 2 if self.sfdr_weight > 0.0 else 1
            self._n_measurements += per_evaluation * result.n_evaluations
        return result

    # -- the full procedure ---------------------------------------------------

    def calibrate(
        self,
        chip: Chip,
        standard: Standard,
        power_dbm: float = DEFAULT_POWER_DBM,
    ) -> CalibrationResult:
        """Run steps 1-14 and return the chip's secret key for ``standard``."""
        self._n_measurements = 0
        log: list[CalibrationLogEntry] = []

        # Steps 1-5 configure the loop topology for oscillation-mode
        # tuning; Chip.simulate_oscillation applies them on every
        # measurement (comparator buffered, input off, loop off, -Gm max).
        config = ConfigWord(
            buffer_code=NOMINAL_BUFFER_CODE,
            delay_code=NOMINAL_DELAY_CODE,
            **NOMINAL_BIAS_CODES,
        )
        log.append(CalibrationLogEntry(1, "comparator configured as buffer"))
        log.append(CalibrationLogEntry(2, "output buffer set", NOMINAL_BUFFER_CODE))
        log.append(CalibrationLogEntry(3, "RF input disabled"))
        log.append(CalibrationLogEntry(4, "feedback loop disabled"))
        log.append(CalibrationLogEntry(5, "-Gm set to maximum", 63))

        config, achieved = self.tune_capacitor_arrays(chip, config, standard)
        log.append(CalibrationLogEntry(6, "capacitor arrays tuned", achieved))

        config = self.back_off_q_enhancement(chip, config, standard)
        log.append(CalibrationLogEntry(7, "-Gm backed off", config.gmq_code))

        config = config.replace(fb_en=1, dac_en=1, comp_clk_en=1, gmin_en=1)
        log.append(CalibrationLogEntry(8, "feedback loop restored"))
        log.append(CalibrationLogEntry(9, "RF input applied at F0"))
        log.append(CalibrationLogEntry(10, "Fs set to 4*F0", standard.fs))
        log.append(CalibrationLogEntry(11, "loop delay set", NOMINAL_DELAY_CODE))

        lna_code = vglna_gain_plan(chip, power_dbm)
        config = config.replace(lna_gain=lna_code)
        log.append(CalibrationLogEntry(12, "VGLNA tuned", lna_code))
        log.append(CalibrationLogEntry(13, "bias blocks initialised"))

        opt = self.optimise_biases(chip, config, standard)
        config = opt.config
        log.append(CalibrationLogEntry(14, "bias optimisation done", opt.score))

        snr = measure_modulator_snr(chip, config, standard, seed=self.seed).snr_db
        sfdr = measure_sfdr(chip, config, standard, seed=self.seed).sfdr_db
        self._n_measurements += 2
        success = snr >= standard.snr_spec_db and sfdr >= standard.sfdr_spec_db - 10.0
        return CalibrationResult(
            config=config,
            standard=standard,
            achieved_frequency=achieved,
            snr_db=snr,
            sfdr_db=sfdr,
            success=success,
            n_measurements=self._n_measurements,
            log=log,
            segment_gains=segment_gain_plan(chip),
        )
