"""ATE-style measurements used by the off-chip calibration.

The calibration algorithm never inspects the chip model's internals: it
observes the output buffer, exactly like the paper's off-chip flow with
external automated test equipment.  This module provides the two meters
the procedure needs: an oscillation-frequency meter (FFT peak with
parabolic interpolation) and an oscillation detector (envelope growth).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.dsp.spectrum import periodogram, periodogram_batch


def _centered(samples: np.ndarray) -> tuple[np.ndarray, float]:
    """Mean-removed record and its RMS — the meter's common front end.

    Shared by the scalar and batched frequency meters so the gate
    arithmetic is the same code (bit-identity by construction).
    """
    x = np.asarray(samples, dtype=float)
    x = x - np.mean(x)
    return x, float(np.sqrt(np.mean(x**2)))


def _peak_frequency(power: np.ndarray, fs: float, n: int) -> float | None:
    """Interpolated peak frequency of one calibrated power spectrum.

    The periodogram-peak + parabolic-log-interpolation back end shared
    by the scalar and batched meters; ``fs / n`` is the bin width.
    """
    peak = int(np.argmax(power[1:-1])) + 1
    total = float(np.sum(power))
    if power[peak] < 0.2 * total:
        # Power not concentrated in a line: noise, not oscillation.
        return None
    p_l = max(power[peak - 1], 1e-300)
    p_c = max(power[peak], 1e-300)
    p_r = max(power[peak + 1], 1e-300)
    a, b, c = math.log(p_l), math.log(p_c), math.log(p_r)
    denom = a - 2.0 * b + c
    delta = 0.0 if abs(denom) < 1e-12 else 0.5 * (a - c) / denom
    delta = max(min(delta, 0.5), -0.5)
    return (peak + delta) * (fs / n)


def oscillation_frequency(samples: np.ndarray, fs: float) -> float | None:
    """Dominant oscillation frequency of a captured waveform, Hz.

    Uses the periodogram peak refined by parabolic interpolation of the
    log-power of the three bins around it (standard frequency-metering
    practice, good to a small fraction of a bin).  Returns None when the
    record is not oscillating (no dominant line above the noise).
    """
    x, rms = _centered(samples)
    if rms < 1e-6:
        return None
    spec = periodogram(x, fs, window="hann")
    return _peak_frequency(spec.power, fs, spec.n)


def oscillation_frequency_batch(
    records: Sequence[np.ndarray], fs: float | Sequence[float]
) -> list[float | None]:
    """Batched :func:`oscillation_frequency` over many captured records.

    One fused windowed FFT per record length replaces the per-record
    scalar periodogram — the fleet calibrator's lockstep rounds meter
    every active die's frequency probe here in one call instead of one
    FFT per die per round.  Per record this is bit-identical to the
    scalar meter: centering and gates run the same shared helpers, and
    a :func:`~repro.dsp.spectrum.periodogram_batch` row equals the 1-D
    :func:`~repro.dsp.spectrum.periodogram` bitwise (spectrum *power*
    does not depend on ``fs``, so records may mix clock rates freely —
    only the final bin-width scaling is per record).

    Args:
        records: Captured waveforms; lengths may differ (records group
            by length internally).
        fs: Sampling rate, shared or one per record.

    Returns:
        One frequency (or None for a non-oscillating record) per
        record, in order.
    """
    records = list(records)
    if np.isscalar(fs):
        fss = [float(fs)] * len(records)
    else:
        fss = [float(f) for f in fs]
    if len(fss) != len(records):
        raise ValueError(f"got {len(fss)} rates for {len(records)} records")
    out: list[float | None] = [None] * len(records)
    by_length: dict[int, list[tuple[int, np.ndarray]]] = {}
    for i, record in enumerate(records):
        x, rms = _centered(record)
        if rms < 1e-6:
            continue
        by_length.setdefault(x.size, []).append((i, x))
    for group in by_length.values():
        # Power is fs-independent, so one batch call serves mixed
        # clocks; any member's rate works as the placeholder.
        specs = periodogram_batch(
            np.stack([x for _, x in group]), fss[group[0][0]], window="hann"
        )
        for (i, _), spec in zip(group, specs):
            out[i] = _peak_frequency(spec.power, fss[i], spec.n)
    return out


def is_oscillating(samples: np.ndarray, fs: float, min_amplitude: float = 0.08) -> bool:
    """Whether a captured record shows sustained (non-decaying) oscillation.

    The record is split in half: sustained oscillation keeps (or grows)
    its RMS in the second half and exceeds ``min_amplitude``.  The
    threshold sits well above the buffer-mode output noise (~15 mV rms)
    and well below the saturated oscillation swing (~0.3 V rms).
    """
    x = np.asarray(samples, dtype=float)
    x = x - np.mean(x)
    half = x.size // 2
    rms_first = float(np.sqrt(np.mean(x[:half] ** 2)))
    rms_second = float(np.sqrt(np.mean(x[half:] ** 2)))
    if rms_second < min_amplitude:
        return False
    return rms_second > 0.5 * rms_first


def frequency_of_oscillation_config(
    chip,
    config,
    fs: float,
    gmq_code: int | None = None,
    n_samples: int = 4096,
    seed: int = 0,
) -> float | None:
    """Measure the free-running tank frequency for given cap codes.

    Wraps :meth:`Chip.simulate_oscillation` and the frequency meter.
    """
    result = chip.simulate_oscillation(
        config, fs, n_samples=n_samples, gmq_code=gmq_code, seed=seed
    )
    # Skip the start-up transient: use the second half of the record.
    settled = result.output[n_samples // 2 :]
    return oscillation_frequency(settled, fs)
