"""ATE-style measurements used by the off-chip calibration.

The calibration algorithm never inspects the chip model's internals: it
observes the output buffer, exactly like the paper's off-chip flow with
external automated test equipment.  This module provides the two meters
the procedure needs: an oscillation-frequency meter (FFT peak with
parabolic interpolation) and an oscillation detector (envelope growth).
"""

from __future__ import annotations

import math

import numpy as np

from repro.dsp.spectrum import periodogram


def oscillation_frequency(samples: np.ndarray, fs: float) -> float | None:
    """Dominant oscillation frequency of a captured waveform, Hz.

    Uses the periodogram peak refined by parabolic interpolation of the
    log-power of the three bins around it (standard frequency-metering
    practice, good to a small fraction of a bin).  Returns None when the
    record is not oscillating (no dominant line above the noise).
    """
    x = np.asarray(samples, dtype=float)
    x = x - np.mean(x)
    rms = float(np.sqrt(np.mean(x**2)))
    if rms < 1e-6:
        return None
    spec = periodogram(x, fs, window="hann")
    peak = int(np.argmax(spec.power[1:-1])) + 1
    total = float(np.sum(spec.power))
    if spec.power[peak] < 0.2 * total:
        # Power not concentrated in a line: noise, not oscillation.
        return None
    p_l = max(spec.power[peak - 1], 1e-300)
    p_c = max(spec.power[peak], 1e-300)
    p_r = max(spec.power[peak + 1], 1e-300)
    a, b, c = math.log(p_l), math.log(p_c), math.log(p_r)
    denom = a - 2.0 * b + c
    delta = 0.0 if abs(denom) < 1e-12 else 0.5 * (a - c) / denom
    delta = max(min(delta, 0.5), -0.5)
    return (peak + delta) * spec.bin_width


def is_oscillating(samples: np.ndarray, fs: float, min_amplitude: float = 0.08) -> bool:
    """Whether a captured record shows sustained (non-decaying) oscillation.

    The record is split in half: sustained oscillation keeps (or grows)
    its RMS in the second half and exceeds ``min_amplitude``.  The
    threshold sits well above the buffer-mode output noise (~15 mV rms)
    and well below the saturated oscillation swing (~0.3 V rms).
    """
    x = np.asarray(samples, dtype=float)
    x = x - np.mean(x)
    half = x.size // 2
    rms_first = float(np.sqrt(np.mean(x[:half] ** 2)))
    rms_second = float(np.sqrt(np.mean(x[half:] ** 2)))
    if rms_second < min_amplitude:
        return False
    return rms_second > 0.5 * rms_first


def frequency_of_oscillation_config(
    chip,
    config,
    fs: float,
    gmq_code: int | None = None,
    n_samples: int = 4096,
    seed: int = 0,
) -> float | None:
    """Measure the free-running tank frequency for given cap codes.

    Wraps :meth:`Chip.simulate_oscillation` and the frequency meter.
    """
    result = chip.simulate_oscillation(
        config, fs, n_samples=n_samples, gmq_code=gmq_code, seed=seed
    )
    # Skip the start-up transient: use the second half of the record.
    settled = result.output[n_samples // 2 :]
    return oscillation_frequency(settled, fs)
