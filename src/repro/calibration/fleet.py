"""Fleet-lockstep calibration: provision a whole lot per engine batch.

Fleet provisioning — one full 14-step calibration per (die, standard) —
is the dominant cost of every campaign that targets the fabric lock,
and most of the procedure is *inherently sequential per die*: steps 5-6
and 7 are binary searches where each measurement decides the next, and
the step-14 descent's probes start wherever the previous accepts moved.
What is **not** sequential is the lot: every die walks the same
procedure independently, so the same search step can run across all
dies at once.  That is what this module does.

:class:`FleetCalibrator` builds one resumable
:func:`~repro.calibration.procedure.calibration_machine` per die and
advances them in lockstep rounds: each round collects every active
die's pending :class:`~repro.calibration.procedure.CalibrationProbe`
and fuses all their engine requests into ONE
:meth:`~repro.engine.engine.SimulationEngine.run_multi` submission — a
bisection level of steps 5-6 over the whole lot, a -Gm back-off probe
of step 7 over the whole lot, or every die's speculative step-14 probe
set (SNR and SFDR sweeps included), whatever mixture the dies happen to
be at.  Dies whose machines return (or that converge a search early
and so yield fewer probes) simply drop out of later rounds.

**Bit-exactness argument.**  A die's machine yields the same requests
in the same order as the sequential
:class:`~repro.calibration.procedure.Calibrator` driving the same
machine — the fleet only *regroups* them with other dies' requests, and
engine results are a pure function of the individual request (the
mixed-chip batch property of ``run_multi``).  Every decode is pure
per-die post-processing — including the *fused* frequency decode,
which meters every active die's fosc probe through one
:func:`~repro.calibration.metering.oscillation_frequency_batch` call
per round (one windowed FFT over the whole fleet instead of one scalar
FFT per die) and is bit-identical per record to each probe's own
``decode``.  So per-die keys, scores, step logs and
metered measurement counts are bit-identical to calibrating each die
alone — the property ``tests/test_fleet_calibration.py`` holds
differentially across fleet sizes, standards mixes, backends and
thread counts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.calibration import metering
from repro.calibration.procedure import (
    CalibrationProbe,
    CalibrationResult,
    Calibrator,
)
from repro.receiver.performance import DEFAULT_POWER_DBM
from repro.receiver.receiver import Chip
from repro.receiver.standards import Standard

if TYPE_CHECKING:
    from repro.engine.engine import SimulationEngine


class FleetCalibrator(Calibrator):
    """Calibrates whole lots in lockstep.

    Accepts every :class:`~repro.calibration.procedure.Calibrator` knob
    (and inherits its single-die :meth:`calibrate`); the defaults are
    the design-house defaults, so campaign provisioning through this
    class stores exactly what ``Calibrator().calibrate`` would.
    """

    def _speculation_depth(self) -> str:
        """Resolve ``"auto"`` for lots: zero-waste ``"rounds"`` probing.

        Deep speculation exists to widen a *single die's* batches for
        the kernel's threaded key axis; a fleet round is already one
        batch over every active die, so dropped speculations would buy
        no extra parallelism while their decodes cost serial time.
        Results are identical at every depth (the optimizer's replay
        property), so this is purely a throughput policy.
        """
        if self.speculation == "auto":
            return "rounds"
        return self.speculation

    def calibrate_fleet(
        self,
        chips: Sequence[Chip],
        standard: Standard | Sequence[Standard],
        power_dbm: float = DEFAULT_POWER_DBM,
        engine: "SimulationEngine | None" = None,
        on_result=None,
    ) -> list[CalibrationResult]:
        """Run all 14 steps in lockstep across ``chips``.

        Args:
            chips: The lot to provision.
            standard: One standard for the whole lot, or one per die
                (mixed-standard fleets are how campaign provisioning
                calibrates all its (die, standard) triples in a single
                lockstep pass).
            power_dbm: Step-12 expected input power.
            engine: Engine to submit the fused batches to (default
                engine when omitted).
            on_result: Optional ``(die_index, result)`` callback fired
                the moment a die's machine completes — dies converge at
                different rounds, so streaming consumers (campaign
                provisioning persists each die to the shared store as
                it lands) keep completed work durable even when a later
                die kills the lot.

        Returns:
            One :class:`CalibrationResult` per die, in ``chips`` order —
            each bit-identical to ``self.calibrate(chip, standard)``.

        Raises:
            CalibrationFailed: A die could not complete the procedure
                (its id and partial step log attached).  Fail-fast: a
                dead die aborts the lot, exactly as it aborts the
                sequential loop at that die; dies already completed
                have been delivered through ``on_result``.
        """
        from repro.engine.engine import get_default_engine

        chips = list(chips)
        if isinstance(standard, Standard):
            standards = [standard] * len(chips)
        else:
            standards = list(standard)
        if len(standards) != len(chips):
            raise ValueError(
                f"fleet of {len(chips)} chips got {len(standards)} standards"
            )
        engine = engine or get_default_engine()
        machines = [
            self.machine(chip, std, power_dbm)
            for chip, std in zip(chips, standards)
        ]
        results: list[CalibrationResult | None] = [None] * len(chips)
        pending: dict[int, CalibrationProbe] = {}
        # Session-scoped drawn-record memo: a lot is measured under the
        # same few setups round after round, so the records persist
        # across the session's submissions and die with it.
        noise_cache: dict = {}

        def advance(die: int, value) -> None:
            try:
                pending[die] = machines[die].send(value)
            except StopIteration as stop:
                results[die] = stop.value
                # A finished die's drawn records can never be reused
                # (entries are per chip): evict them so the session
                # cache scales with the *active* fleet, not the lot.
                blocks = chips[die].blocks
                for key in [
                    k for k, v in noise_cache.items() if v[0] is blocks
                ]:
                    del noise_cache[key]
                if on_result is not None:
                    on_result(die, stop.value)

        for die in range(len(machines)):
            advance(die, None)
        while pending:
            active = sorted(pending)
            # ONE fused engine submission: every active die's probe.
            outs = engine.run_multi(
                [
                    (chips[die], request)
                    for die in active
                    for request in pending[die].requests
                ],
                noise_cache=noise_cache,
            )
            position = 0
            decoded = {}
            # Frequency probes expose a fused decode: instead of one
            # scalar FFT per die per round, every active die's record
            # goes through ONE batched meter call (bit-identical per
            # record — see CalibrationProbe.fused_extract).
            fused: list[tuple[int, object, float]] = []
            for die in active:
                probe = pending[die]
                span = len(probe.requests)
                chunk = outs[position : position + span]
                if probe.fused_extract is not None:
                    record, fs = probe.fused_extract(chunk)
                    fused.append((die, record, fs))
                else:
                    decoded[die] = probe.decode(chunk)
                position += span
            if fused:
                freqs = metering.oscillation_frequency_batch(
                    [record for _, record, _ in fused],
                    [fs for _, _, fs in fused],
                )
                for (die, _, _), freq in zip(fused, freqs):
                    decoded[die] = freq
            for die in active:
                del pending[die]
                advance(die, decoded[die])
        return results  # type: ignore[return-value]
