"""The paper's 14-step off-chip calibration procedure (the secret sauce)."""

from repro.calibration.metering import (
    frequency_of_oscillation_config,
    is_oscillating,
    oscillation_frequency,
)
from repro.calibration.optimizer import (
    STEP14_FIELDS,
    CoordinateDescentResult,
    OptimizerTrace,
    coordinate_descent,
    descent_machine,
)
from repro.calibration.procedure import (
    NOMINAL_BIAS_CODES,
    NOMINAL_DELAY_CODE,
    CalibrationFailed,
    CalibrationLogEntry,
    CalibrationProbe,
    CalibrationResult,
    Calibrator,
    calibration_machine,
    segment_gain_plan,
    vglna_gain_plan,
)
from repro.calibration.fleet import FleetCalibrator

__all__ = [
    "CalibrationFailed",
    "CalibrationLogEntry",
    "CalibrationProbe",
    "CalibrationResult",
    "Calibrator",
    "CoordinateDescentResult",
    "FleetCalibrator",
    "NOMINAL_BIAS_CODES",
    "NOMINAL_DELAY_CODE",
    "OptimizerTrace",
    "STEP14_FIELDS",
    "calibration_machine",
    "coordinate_descent",
    "descent_machine",
    "frequency_of_oscillation_config",
    "is_oscillating",
    "oscillation_frequency",
    "segment_gain_plan",
    "vglna_gain_plan",
]
