"""The paper's 14-step off-chip calibration procedure (the secret sauce)."""

from repro.calibration.metering import (
    frequency_of_oscillation_config,
    is_oscillating,
    oscillation_frequency,
)
from repro.calibration.optimizer import (
    STEP14_FIELDS,
    CoordinateDescentResult,
    OptimizerTrace,
    coordinate_descent,
)
from repro.calibration.procedure import (
    NOMINAL_BIAS_CODES,
    NOMINAL_DELAY_CODE,
    CalibrationLogEntry,
    CalibrationResult,
    Calibrator,
    segment_gain_plan,
    vglna_gain_plan,
)

__all__ = [
    "CalibrationLogEntry",
    "CalibrationResult",
    "Calibrator",
    "CoordinateDescentResult",
    "NOMINAL_BIAS_CODES",
    "NOMINAL_DELAY_CODE",
    "OptimizerTrace",
    "STEP14_FIELDS",
    "coordinate_descent",
    "frequency_of_oscillation_config",
    "is_oscillating",
    "oscillation_frequency",
    "segment_gain_plan",
    "vglna_gain_plan",
]
