"""A small DPLL SAT solver with unit propagation and activity ordering.

Written from scratch for the oracle-guided SAT attack on the digital
locking baselines.  It is a classic iterative DPLL: two-literal watching
is replaced by straightforward clause scanning with per-variable
occurrence lists — entirely adequate for the few-thousand-clause miters
these benchmarks produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SatResult:
    """Solver outcome.

    Attributes:
        satisfiable: Whether a model exists.
        assignment: A satisfying assignment (variable -> bool) when
            satisfiable; empty otherwise.
        decisions: Number of branching decisions taken.
    """

    satisfiable: bool
    assignment: dict[int, bool] = field(default_factory=dict)
    decisions: int = 0


class SatSolver:
    """DPLL over a fixed clause list."""

    def __init__(self, n_vars: int, clauses: list[tuple[int, ...]]):
        self.n_vars = n_vars
        self.clauses = [tuple(c) for c in clauses]
        for clause in self.clauses:
            for lit in clause:
                if lit == 0 or abs(lit) > n_vars:
                    raise ValueError(f"literal {lit} out of range")
        # Occurrence lists: variable -> clause indices.
        self._occurs: dict[int, list[int]] = {v: [] for v in range(1, n_vars + 1)}
        for idx, clause in enumerate(self.clauses):
            for lit in clause:
                self._occurs[abs(lit)].append(idx)

    def solve(self, max_decisions: int = 2_000_000) -> SatResult:
        """Run DPLL; raises RuntimeError past ``max_decisions``."""
        assignment: dict[int, bool] = {}
        trail: list[tuple[int, bool]] = []  # (var, was_decision)
        decisions = 0

        def value(lit: int) -> bool | None:
            v = assignment.get(abs(lit))
            if v is None:
                return None
            return v if lit > 0 else not v

        def assign(lit: int, is_decision: bool) -> None:
            assignment[abs(lit)] = lit > 0
            trail.append((abs(lit), is_decision))

        def propagate() -> bool:
            """Unit propagation to fixpoint; False on conflict."""
            changed = True
            while changed:
                changed = False
                for clause in self.clauses:
                    unassigned = None
                    n_unassigned = 0
                    satisfied = False
                    for lit in clause:
                        v = value(lit)
                        if v is True:
                            satisfied = True
                            break
                        if v is None:
                            unassigned = lit
                            n_unassigned += 1
                    if satisfied:
                        continue
                    if n_unassigned == 0:
                        return False
                    if n_unassigned == 1:
                        assign(unassigned, is_decision=False)
                        changed = True
            return True

        def backtrack() -> bool:
            """Undo to the last decision and flip it; False if none left."""
            while trail:
                var, was_decision = trail.pop()
                val = assignment.pop(var)
                if was_decision:
                    # Flip: re-assign as a forced (non-decision) value.
                    assign(var if not val else -var, is_decision=False)
                    return True
            return False

        # Static branching order: most-occurring variables first.
        order = sorted(
            range(1, self.n_vars + 1),
            key=lambda v: -len(self._occurs[v]),
        )

        while True:
            if not propagate():
                if not backtrack():
                    return SatResult(satisfiable=False, decisions=decisions)
                continue
            free = next((v for v in order if v not in assignment), None)
            if free is None:
                return SatResult(
                    satisfiable=True, assignment=dict(assignment), decisions=decisions
                )
            decisions += 1
            if decisions > max_decisions:
                raise RuntimeError(f"decision budget exceeded ({max_decisions})")
            assign(free, is_decision=True)


def solve_cnf(n_vars: int, clauses: list[tuple[int, ...]], max_decisions: int = 2_000_000) -> SatResult:
    """One-shot convenience wrapper around :class:`SatSolver`."""
    return SatSolver(n_vars, clauses).solve(max_decisions)
