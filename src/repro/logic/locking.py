"""Random XOR/XNOR logic locking (EPIC-style, refs [9], [10], [15]).

Key gates are inserted on randomly chosen internal nets: an XOR key
gate passes the signal for key bit 0, an XNOR for key bit 1 (the
inversion hides the correct polarity from netlist inspection).  With a
wrong key some nets are inverted and the function breaks.

This is the digital locking machinery the MixLock [9] and locked-
calibration [10] baselines rely on — and the machinery the SAT attack
(:mod:`repro.attacks.sat_attack`) defeats, unlike the paper's analog
fabric locking where no Boolean oracle exists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.logic.gates import Netlist


@dataclass(frozen=True)
class LockedNetlist:
    """A locked circuit plus its (secret) correct key.

    Attributes:
        netlist: The locked netlist; key inputs are named ``key<i>``.
        correct_key: The key word (bit i = polarity of key gate i).
        key_bits: Number of key inputs.
    """

    netlist: Netlist
    correct_key: int
    key_bits: int

    def evaluate_with_key(self, input_values: dict[str, int], key: int) -> dict[str, int]:
        """Evaluate the locked circuit under a specific key."""
        values = dict(input_values)
        for i in range(self.key_bits):
            values[f"key{i}"] = (key >> i) & 1
        return self.netlist.evaluate(values)

    def oracle(self, original: Netlist):
        """An I/O oracle function from an unlocked reference circuit."""
        def query(input_values: dict[str, int]) -> dict[str, int]:
            return original.evaluate(input_values)

        return query


def lock_netlist(
    original: Netlist,
    n_key_bits: int,
    rng: np.random.Generator,
) -> LockedNetlist:
    """Insert ``n_key_bits`` random XOR/XNOR key gates into a copy.

    Args:
        original: Circuit to lock (left untouched).
        n_key_bits: Number of key gates; must not exceed the number of
            lockable nets (gate outputs).
        rng: Placement and polarity randomness.

    Returns:
        The locked netlist with its correct key.
    """
    lockable = list(original.gates)
    if n_key_bits > len(lockable):
        raise ValueError(
            f"cannot insert {n_key_bits} key gates into "
            f"{len(lockable)} lockable nets"
        )
    locked = original.copy(new_name=f"{original.name}_locked")
    chosen = rng.choice(len(lockable), size=n_key_bits, replace=False)
    correct_key = 0
    for i, net_idx in enumerate(sorted(chosen)):
        target_net = lockable[net_idx]
        key_bit = int(rng.integers(0, 2))
        correct_key |= key_bit << i
        # Rename the original driver to an internal net, then insert the
        # key gate between it and all former consumers.
        hidden = f"{target_net}__pre_key{i}"
        old_gate = locked.gates.pop(target_net)
        locked.gates[hidden] = type(old_gate)(
            output=hidden, gate_type=old_gate.gate_type, inputs=old_gate.inputs
        )
        gate_type = "XNOR" if key_bit else "XOR"
        locked.inputs.append(f"key{i}")
        locked.add_gate(target_net, gate_type, hidden, f"key{i}")
    locked.validate()
    return LockedNetlist(netlist=locked, correct_key=correct_key, key_bits=n_key_bits)


def functional_under_key(
    locked: LockedNetlist, original: Netlist, key: int, n_vectors: int, rng: np.random.Generator
) -> bool:
    """Check I/O equivalence on random vectors under ``key``."""
    for _ in range(n_vectors):
        vec = {net: int(rng.integers(0, 2)) for net in original.inputs}
        if locked.evaluate_with_key(vec, key) != original.evaluate(vec):
            return False
    return True
