"""Gate-level logic substrate: netlists, locking, CNF, SAT solving."""

from repro.logic.bench_circuits import (
    decimation_controller,
    magnitude_comparator,
    parity_tree,
    ripple_adder,
    sar_optimizer_step,
)
from repro.logic.cnf import CnfBuilder, encode_netlist
from repro.logic.gates import GATE_TYPES, Gate, Netlist
from repro.logic.locking import LockedNetlist, functional_under_key, lock_netlist
from repro.logic.sat import SatResult, SatSolver, solve_cnf

__all__ = [
    "CnfBuilder",
    "GATE_TYPES",
    "Gate",
    "LockedNetlist",
    "Netlist",
    "SatResult",
    "SatSolver",
    "decimation_controller",
    "encode_netlist",
    "functional_under_key",
    "lock_netlist",
    "magnitude_comparator",
    "parity_tree",
    "ripple_adder",
    "sar_optimizer_step",
    "solve_cnf",
]
