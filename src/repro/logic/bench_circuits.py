"""Programmatic benchmark circuits for the digital-locking baselines.

Includes generic arithmetic blocks (adders, comparators, parity) and
the receiver-specific digital blocks the MixLock [9] and locked-
calibration [10] baselines protect: the decimation-control decoder and
a successive-approximation step of the on-chip tuning optimiser.
"""

from __future__ import annotations

from repro.logic.gates import Netlist


def ripple_adder(n_bits: int) -> Netlist:
    """An ``n_bits`` ripple-carry adder: a[n]+b[n] -> sum[n], cout."""
    if n_bits < 1:
        raise ValueError("adder needs at least 1 bit")
    net = Netlist(name=f"adder{n_bits}")
    net.inputs = [f"a{i}" for i in range(n_bits)] + [f"b{i}" for i in range(n_bits)]
    carry = None
    for i in range(n_bits):
        a, b = f"a{i}", f"b{i}"
        axb = f"axb{i}"
        net.add_gate(axb, "XOR", a, b)
        if carry is None:
            net.add_gate(f"s{i}", "BUF", axb)
            net.add_gate(f"c{i}", "AND", a, b)
        else:
            net.add_gate(f"s{i}", "XOR", axb, carry)
            net.add_gate(f"and1_{i}", "AND", axb, carry)
            net.add_gate(f"and2_{i}", "AND", a, b)
            net.add_gate(f"c{i}", "OR", f"and1_{i}", f"and2_{i}")
        carry = f"c{i}"
    net.outputs = [f"s{i}" for i in range(n_bits)] + [carry]
    net.validate()
    return net


def magnitude_comparator(n_bits: int) -> Netlist:
    """``a > b`` comparator over two n-bit words (single output ``gt``)."""
    if n_bits < 1:
        raise ValueError("comparator needs at least 1 bit")
    net = Netlist(name=f"cmp{n_bits}")
    net.inputs = [f"a{i}" for i in range(n_bits)] + [f"b{i}" for i in range(n_bits)]
    # gt_i = a_i & ~b_i ; eq_i = a_i XNOR b_i ; gt = OR over i of
    # (gt_i & eq above i).
    terms = []
    for i in range(n_bits):
        net.add_gate(f"nb{i}", "NOT", f"b{i}")
        net.add_gate(f"gt{i}", "AND", f"a{i}", f"nb{i}")
        net.add_gate(f"eq{i}", "XNOR", f"a{i}", f"b{i}")
    for i in range(n_bits):
        above = [f"eq{j}" for j in range(i + 1, n_bits)]
        if not above:
            terms.append(f"gt{i}")
        elif len(above) == 1:
            net.add_gate(f"t{i}", "AND", f"gt{i}", above[0])
            terms.append(f"t{i}")
        else:
            net.add_gate(f"alleq{i}", "AND", *above)
            net.add_gate(f"t{i}", "AND", f"gt{i}", f"alleq{i}")
            terms.append(f"t{i}")
    if len(terms) == 1:
        net.add_gate("gt", "BUF", terms[0])
    else:
        net.add_gate("gt", "OR", *terms)
    net.outputs = ["gt"]
    net.validate()
    return net


def parity_tree(n_bits: int) -> Netlist:
    """Parity of an n-bit word."""
    if n_bits < 2:
        raise ValueError("parity needs at least 2 bits")
    net = Netlist(name=f"parity{n_bits}")
    net.inputs = [f"x{i}" for i in range(n_bits)]
    net.add_gate("p1", "XOR", "x0", "x1")
    last = "p1"
    for i in range(2, n_bits):
        net.add_gate(f"p{i}", "XOR", last, f"x{i}")
        last = f"p{i}"
    net.outputs = [last]
    net.validate()
    return net


def decimation_controller() -> Netlist:
    """The receiver's decimation-control decoder (MixLock target).

    Decodes the 3 digital programming bits (standard select) plus a
    2-bit rate override into the half-band enable pair, the CIC clear
    strobe and a 4-bit shift-normalisation code — a realistic small
    control block of the digital section in Fig. 4.
    """
    net = Netlist(name="decim_ctrl")
    net.inputs = ["std0", "std1", "std2", "rate0", "rate1"]
    # Half-band enables: hb1 = NOT(rate1 AND rate0); hb2 = NOT rate1.
    net.add_gate("rr", "AND", "rate0", "rate1")
    net.add_gate("hb1_en", "NOT", "rr")
    net.add_gate("hb2_en", "NOT", "rate1")
    # CIC clear on the reserved standard code 7.
    net.add_gate("s01", "AND", "std0", "std1")
    net.add_gate("cic_clr", "AND", "s01", "std2")
    # Shift code: std + rate (3-bit + 2-bit add, ripple).
    net.add_gate("x0", "XOR", "std0", "rate0")
    net.add_gate("c0", "AND", "std0", "rate0")
    net.add_gate("x1a", "XOR", "std1", "rate1")
    net.add_gate("x1", "XOR", "x1a", "c0")
    net.add_gate("c1a", "AND", "std1", "rate1")
    net.add_gate("c1b", "AND", "x1a", "c0")
    net.add_gate("c1", "OR", "c1a", "c1b")
    net.add_gate("x2", "XOR", "std2", "c1")
    net.add_gate("c2", "AND", "std2", "c1")
    net.outputs = ["hb1_en", "hb2_en", "cic_clr", "x0", "x1", "x2", "c2"]
    net.validate()
    return net


def sar_optimizer_step(n_bits: int = 6) -> Netlist:
    """One successive-approximation step of an on-chip tuning optimiser.

    The [10] baseline locks the digital optimiser in the calibration
    feedback loop.  This block computes the next trial code from the
    current code and the comparison verdict: if ``higher`` the current
    trial bit is kept, else cleared; then the next lower bit is set.

    Inputs: ``code[n]``, ``mask[n]`` (one-hot current bit), ``higher``.
    Outputs: ``next[n]``.
    """
    net = Netlist(name=f"sar{n_bits}")
    net.inputs = (
        [f"code{i}" for i in range(n_bits)]
        + [f"mask{i}" for i in range(n_bits)]
        + ["higher"]
    )
    net.add_gate("nh", "NOT", "higher")
    for i in range(n_bits):
        # keep_i = code_i AND NOT(mask_i AND NOT higher): clear the
        # trial bit when the verdict says we overshot.
        net.add_gate(f"clr{i}", "AND", f"mask{i}", "nh")
        net.add_gate(f"nclr{i}", "NOT", f"clr{i}")
        net.add_gate(f"keep{i}", "AND", f"code{i}", f"nclr{i}")
        # set_i = mask_{i+1} (the next lower bit becomes the new trial).
        if i < n_bits - 1:
            net.add_gate(f"next{i}", "OR", f"keep{i}", f"mask{i+1}")
        else:
            net.add_gate(f"next{i}", "BUF", f"keep{i}")
    net.outputs = [f"next{i}" for i in range(n_bits)]
    net.validate()
    return net
