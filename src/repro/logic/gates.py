"""Gate-level combinational netlists.

The digital substrate for the prior-work baselines: MixLock [9] locks
the receiver's digital section, and [10] locks the digital optimiser of
the calibration loop.  Netlists here are plain combinational graphs
with named nets, evaluated in topological order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

#: Supported gate types and their evaluation functions.
GATE_TYPES = ("AND", "OR", "NAND", "NOR", "XOR", "XNOR", "NOT", "BUF", "MUX")


def _evaluate_gate(gate_type: str, inputs: list[int]) -> int:
    """Evaluate one gate on already-resolved input values."""
    if gate_type == "AND":
        return int(all(inputs))
    if gate_type == "OR":
        return int(any(inputs))
    if gate_type == "NAND":
        return int(not all(inputs))
    if gate_type == "NOR":
        return int(not any(inputs))
    if gate_type == "XOR":
        return sum(inputs) % 2
    if gate_type == "XNOR":
        return 1 - sum(inputs) % 2
    if gate_type == "NOT":
        return 1 - inputs[0]
    if gate_type == "BUF":
        return inputs[0]
    if gate_type == "MUX":
        select, a, b = inputs
        return b if select else a
    raise ValueError(f"unknown gate type {gate_type!r}")


@dataclass(frozen=True)
class Gate:
    """One gate: ``output = type(inputs)``.

    For MUX the input order is ``(select, in0, in1)``.
    """

    output: str
    gate_type: str
    inputs: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.gate_type not in GATE_TYPES:
            raise ValueError(f"unknown gate type {self.gate_type!r}")
        arity = {"NOT": 1, "BUF": 1, "MUX": 3}.get(self.gate_type)
        if arity is not None and len(self.inputs) != arity:
            raise ValueError(
                f"{self.gate_type} takes {arity} inputs, got {len(self.inputs)}"
            )
        if arity is None and len(self.inputs) < 2:
            raise ValueError(f"{self.gate_type} needs at least 2 inputs")


@dataclass
class Netlist:
    """A combinational netlist.

    Attributes:
        name: Human-readable circuit name.
        inputs: Primary input net names, in declaration order.
        outputs: Primary output net names.
        gates: Gates keyed by output net.
    """

    name: str
    inputs: list[str] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)
    gates: dict[str, Gate] = field(default_factory=dict)

    def add_gate(self, output: str, gate_type: str, *inputs: str) -> Gate:
        """Create and register a gate driving net ``output``."""
        if output in self.gates:
            raise ValueError(f"net {output!r} already driven")
        if output in self.inputs:
            raise ValueError(f"net {output!r} is a primary input")
        gate = Gate(output=output, gate_type=gate_type, inputs=tuple(inputs))
        self.gates[output] = gate
        return gate

    def graph(self) -> nx.DiGraph:
        """The net-dependency DAG (edges input -> output)."""
        g = nx.DiGraph()
        g.add_nodes_from(self.inputs)
        for gate in self.gates.values():
            for src in gate.inputs:
                g.add_edge(src, gate.output)
        return g

    def validate(self) -> None:
        """Check that the netlist is a well-formed combinational DAG."""
        g = self.graph()
        if not nx.is_directed_acyclic_graph(g):
            raise ValueError(f"{self.name}: combinational loop detected")
        driven = set(self.inputs) | set(self.gates)
        for gate in self.gates.values():
            for src in gate.inputs:
                if src not in driven:
                    raise ValueError(f"{self.name}: net {src!r} undriven")
        for out in self.outputs:
            if out not in driven:
                raise ValueError(f"{self.name}: output {out!r} undriven")

    def topological_nets(self) -> list[str]:
        """Gate outputs in a valid evaluation order."""
        order = nx.topological_sort(self.graph())
        return [net for net in order if net in self.gates]

    def evaluate(self, input_values: dict[str, int]) -> dict[str, int]:
        """Evaluate the netlist; returns output net values.

        Args:
            input_values: Value (0/1) for every primary input.
        """
        values: dict[str, int] = {}
        for net in self.inputs:
            if net not in input_values:
                raise KeyError(f"missing value for input {net!r}")
            values[net] = int(input_values[net]) & 1
        for net in self.topological_nets():
            gate = self.gates[net]
            values[net] = _evaluate_gate(
                gate.gate_type, [values[src] for src in gate.inputs]
            )
        return {out: values[out] for out in self.outputs}

    def evaluate_word(self, word: int) -> int:
        """Evaluate with inputs packed LSB-first into ``word``; outputs
        packed the same way."""
        values = {net: (word >> i) & 1 for i, net in enumerate(self.inputs)}
        out = self.evaluate(values)
        result = 0
        for i, net in enumerate(self.outputs):
            result |= out[net] << i
        return result

    def copy(self, new_name: str | None = None) -> "Netlist":
        """Deep copy (gates are immutable, so sharing them is safe)."""
        return Netlist(
            name=new_name or self.name,
            inputs=list(self.inputs),
            outputs=list(self.outputs),
            gates=dict(self.gates),
        )

    def stats(self) -> dict[str, int]:
        """Size summary for reports."""
        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "gates": len(self.gates),
        }
