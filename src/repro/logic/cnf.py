"""Tseitin transformation: netlists to CNF.

Produces the clause sets the SAT attack solves.  Variables are positive
integers; literals are signed integers (DIMACS convention).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.logic.gates import Netlist


@dataclass
class CnfBuilder:
    """Incremental CNF formula with named-variable management."""

    clauses: list[tuple[int, ...]] = field(default_factory=list)
    _var_count: int = 0
    _names: dict[str, int] = field(default_factory=dict)

    @property
    def n_vars(self) -> int:
        """Number of allocated variables."""
        return self._var_count

    def new_var(self, name: str | None = None) -> int:
        """Allocate a fresh variable, optionally bound to a name."""
        self._var_count += 1
        if name is not None:
            if name in self._names:
                raise ValueError(f"variable name {name!r} already bound")
            self._names[name] = self._var_count
        return self._var_count

    def var(self, name: str) -> int:
        """Variable bound to ``name`` (allocating on first use)."""
        if name not in self._names:
            self.new_var(name)
        return self._names[name]

    def add_clause(self, *literals: int) -> None:
        """Add one clause (non-empty tuple of signed literals)."""
        if not literals:
            raise ValueError("empty clause")
        self.clauses.append(tuple(literals))

    # -- gate encodings ---------------------------------------------------

    def encode_and(self, out: int, ins: list[int]) -> None:
        """out <-> AND(ins)."""
        for i in ins:
            self.add_clause(-out, i)
        self.add_clause(out, *[-i for i in ins])

    def encode_or(self, out: int, ins: list[int]) -> None:
        """out <-> OR(ins)."""
        for i in ins:
            self.add_clause(out, -i)
        self.add_clause(-out, *ins)

    def encode_xor2(self, out: int, a: int, b: int) -> None:
        """out <-> a XOR b."""
        self.add_clause(-out, a, b)
        self.add_clause(-out, -a, -b)
        self.add_clause(out, -a, b)
        self.add_clause(out, a, -b)

    def encode_not(self, out: int, a: int) -> None:
        """out <-> NOT a."""
        self.add_clause(-out, -a)
        self.add_clause(out, a)

    def encode_buf(self, out: int, a: int) -> None:
        """out <-> a."""
        self.add_clause(-out, a)
        self.add_clause(out, -a)

    def encode_mux(self, out: int, sel: int, a: int, b: int) -> None:
        """out <-> (sel ? b : a)."""
        self.add_clause(-out, sel, a)
        self.add_clause(out, sel, -a)
        self.add_clause(-out, -sel, b)
        self.add_clause(out, -sel, -b)


def encode_netlist(builder: CnfBuilder, netlist: Netlist, prefix: str = "") -> dict[str, int]:
    """Tseitin-encode ``netlist`` into ``builder``.

    Every net becomes a variable named ``prefix + net``.  Returns the
    net-to-variable map.
    """
    mapping = {net: builder.var(prefix + net) for net in netlist.inputs}
    for net in netlist.topological_nets():
        gate = netlist.gates[net]
        out = builder.var(prefix + net)
        mapping[net] = out
        ins = [builder.var(prefix + src) for src in gate.inputs]
        if gate.gate_type == "AND":
            builder.encode_and(out, ins)
        elif gate.gate_type == "OR":
            builder.encode_or(out, ins)
        elif gate.gate_type == "NAND":
            tmp = builder.new_var()
            builder.encode_and(tmp, ins)
            builder.encode_not(out, tmp)
        elif gate.gate_type == "NOR":
            tmp = builder.new_var()
            builder.encode_or(tmp, ins)
            builder.encode_not(out, tmp)
        elif gate.gate_type == "XOR":
            acc = ins[0]
            for nxt in ins[1:-1]:
                tmp = builder.new_var()
                builder.encode_xor2(tmp, acc, nxt)
                acc = tmp
            builder.encode_xor2(out, acc, ins[-1])
        elif gate.gate_type == "XNOR":
            tmp = builder.new_var()
            acc = ins[0]
            for nxt in ins[1:-1]:
                t2 = builder.new_var()
                builder.encode_xor2(t2, acc, nxt)
                acc = t2
            builder.encode_xor2(tmp, acc, ins[-1])
            builder.encode_not(out, tmp)
        elif gate.gate_type == "NOT":
            builder.encode_not(out, ins[0])
        elif gate.gate_type == "BUF":
            builder.encode_buf(out, ins[0])
        elif gate.gate_type == "MUX":
            builder.encode_mux(out, ins[0], ins[1], ins[2])
        else:  # pragma: no cover - GATE_TYPES guards this
            raise ValueError(f"unknown gate type {gate.gate_type!r}")
    return mapping
