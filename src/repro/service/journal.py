"""On-disk job journal: finished tasks survive a killed campaign.

The journal reuses the :class:`~repro.engine.store.CalibrationStore`
machinery — atomic temp-file-and-rename pickles keyed by verified
tuples, an O_APPEND audit log — so a campaign killed mid-flight leaves
only whole, readable entries behind.  Each completed cell journals as
``("cell", index) -> (label, report, seconds)`` the moment its result
reaches the parent; resubmitting the identical job replays those
entries instead of re-executing the cells, and because an
:class:`~repro.campaigns.report.AttackReport` is a deterministic value
the resumed run's reports are bit-identical to an uninterrupted run's.

A journal belongs to exactly one cell list: a manifest
(``job.json``) records a fingerprint of the cells at first bind, and
binding a journal to a *different* cell list raises
:class:`~repro.service.jobs.JournalMismatch` instead of silently
serving another campaign's reports.  A torn or truncated entry (the
kill landed mid-write before the rename) degrades to a miss and the
cell simply re-executes.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro import faults
from repro.engine.store import CalibrationStore, ENTRY_MAGIC
from repro.service.jobs import JournalMismatch

#: Manifest file binding a journal directory to one job's cell list.
MANIFEST_FILE = "job.json"

#: Manifest schema tag.
SCHEMA = "repro.service/journal-v1"


def cells_fingerprint(cells) -> str:
    """Deterministic digest of a cell list (cells are frozen dataclasses
    of plain data, so their reprs are stable across processes)."""
    digest = hashlib.sha256()
    for cell in cells:
        digest.update(repr(cell).encode())
        digest.update(b"\0")
    return digest.hexdigest()


class JobJournal:
    """A directory holding one job's finished task results.

    Layout: ``job.json`` (the binding manifest), ``tasks/`` (the
    CalibrationStore-backed entry files and audit log) and ``calstore/``
    (offered to the campaign as its shared calibration store, so a
    resumed campaign also starts from warm die calibrations).
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self._tasks = CalibrationStore(self.path / "tasks")

    # -- binding ----------------------------------------------------------

    def bind(self, fingerprint: str, meta: dict | None = None) -> bool:
        """Bind this journal to a job, or verify an existing binding.

        Returns True when the journal was already bound (a resume) and
        False when this call created the manifest (a fresh journal).
        Raises :class:`JournalMismatch` when the journal is bound to a
        different fingerprint.
        """
        manifest_path = self.path / MANIFEST_FILE
        payload = {"schema": SCHEMA, "fingerprint": fingerprint}
        payload.update(meta or {})
        try:
            # O_CREAT|O_EXCL (the store's own lock pattern): exactly one
            # of two drivers racing to bind a fresh directory creates
            # the manifest; the loser falls through to verification, so
            # concurrent binds with different cell lists cannot both
            # claim the ("cell", index) key namespace.
            fd = os.open(
                manifest_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            try:
                manifest = json.loads(manifest_path.read_text())
            except (OSError, json.JSONDecodeError):
                manifest = {}
            if manifest.get("fingerprint") != fingerprint:
                raise JournalMismatch(
                    f"journal at {self.path} was written by a different job "
                    f"(fingerprint {manifest.get('fingerprint')!r} != "
                    f"{fingerprint!r}); name a fresh journal directory"
                )
            return True
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        return False

    # -- entries ----------------------------------------------------------

    def put_cell(self, index: int, label: str, report, seconds: float) -> None:
        """Persist one finished cell (atomic; audit-logged)."""
        if faults.ENABLED and faults.fire("journal.torn_append"):
            # A crash mid-append: the entry lands truncated and unlogged,
            # so a resume treats this cell as unfinished and re-executes
            # it — the result it re-derives is the identical value.
            entry = self._tasks._entry(("cell", index))
            entry.write_bytes(faults.torn(ENTRY_MAGIC + bytes(16)))
            return
        self._tasks.put(("cell", index), (label, report, seconds), event=label)

    def get_cell(self, index: int):
        """The journaled ``(label, report, seconds)`` or None."""
        return self._tasks.get(("cell", index))

    def completed_cells(self, n_cells: int) -> dict:
        """Every journaled cell of an ``n_cells`` job, by index."""
        found = {}
        for index in range(n_cells):
            entry = self.get_cell(index)
            if entry is not None:
                found[index] = entry
        return found

    def calibration_store_path(self) -> str:
        """The journal's bundled calibration-store directory."""
        return str(self.path / "calstore")

    def events(self) -> list[str]:
        """Audit lines: one per task journaled (never per replay)."""
        return self._tasks.compute_events()
