"""The foundry gateway: one front door over N daemons sharing a root.

:class:`FoundryGateway` is a thin balancer that speaks the
:mod:`~repro.service.protocol` frames on its client side — a
:class:`~repro.service.client.DaemonClient` pointed at a gateway works
unchanged, buffer-replay stream semantics included — and fans job
submissions out across registered :class:`~repro.service.daemon.
FoundryDaemon` backends.  The backends share ONE store/journal root
(the gateway's ``root``): :meth:`~repro.engine.store.CalibrationStore.
get_or_set` lock-election already makes several daemons on one store
compute-once safe, per-job journals live under ``<root>/jobs/<job_id>``
wherever the job runs, and tenant meters and rate buckets are files
under ``<root>/tenants`` — so moving a job between backends changes
*where* it executes and nothing about what it computes.

Routing and failover
====================

* **Consistent routing.**  A new submission routes by rendezvous hash
  of its job id over the *live* backends
  (:func:`rendezvous_backend`), so identical resubmissions land on —
  and attach to — the same backend, and removing one backend remaps
  only that backend's jobs.
* **Health checking.**  A background thread pings every backend each
  ``health_interval`` seconds and refreshes job statuses from the live
  ones.
* **Typed failover.**  When a backend dies, its PENDING jobs re-route:
  the gateway resubmits each one (same job id, rate-exempt) to a
  surviving backend, where it resumes from its journal bit-identically.
  Jobs seen RUNNING (or terminal, their results held only in the dead
  daemon's memory) are *stranded*: queries answer with a typed
  :class:`BackendDown` — never a silent re-run — until the backend
  returns (a restarted daemon recovers its own journaled jobs and
  resumes them bit-identically), or until an explicit resubmission
  re-routes the job as deliberate operator intent.

Rate limits
===========

Tenants configured on the gateway with ``max_submits_per_minute``
debit the shared file-backed :class:`~repro.service.tenants.
TokenBucket` under ``<root>/tenants`` *at the gateway* (refusals are
typed :class:`~repro.service.tenants.RateLimited`, nothing forwarded
or recorded); the forwarded submission is then marked rate-exempt so a
backend configured with the same tenant spec does not double-debit the
same bucket.  Tenants the gateway has no config for pass through and
are enforced by the backend, if configured there.

Like the daemon, the gateway's frame side is **trusted-local** (frames
carry pickles); the untrusted front door is the JSON-only facade in
:mod:`repro.service.http`.
"""

from __future__ import annotations

import hashlib
import os
import socket as socket_module
import threading
import time
from pathlib import Path

from repro.service.daemon import DaemonUnavailable, derive_job_id
from repro.service.protocol import (
    ProtocolError,
    bind,
    connect,
    decode_payload,
    recv_frame,
    send_frame,
)
from repro.service.scheduler import POLL_SECONDS
from repro.service.tenants import TenantConfig, TokenBucket

#: Environment variable naming the gateway's backend list
#: (comma-separated daemon addresses).
GATEWAY_BACKENDS_ENV = "REPRO_GATEWAY_BACKENDS"

#: Socket-read slack on top of a server-side wait the gateway relays
#: (result/drain timeouts) — the client-side constant, same reasoning.
RELAY_GRACE_SECONDS = 10.0

#: Job statuses a dead backend's jobs re-route from; anything else was
#: (or may have been) running and must never silently re-run.
_REROUTABLE = ("pending",)

#: Fresh-connection attempts per backend round trip.  A single torn
#: frame must not read as a dead backend — failover strands RUNNING
#: jobs, which is for daemons that are really gone.  A genuinely dead
#: backend refuses each connect immediately, so the retries cost
#: microseconds there.
BACKEND_REQUEST_ATTEMPTS = 3


class BackendDown(RuntimeError):
    """The backend holding this job is unreachable; the job is NOT
    lost — a PENDING job re-routes, a RUNNING one resumes from its
    journal when its daemon restarts (or when explicitly resubmitted,
    which re-routes it as deliberate operator intent)."""


class _Hangup(Exception):
    """Internal: close the client connection without an error frame
    (a torn relay must look like a torn stream so the client's
    reconnect/resume logic engages, not its error path)."""


def rendezvous_backend(job_id: str, backends) -> str:
    """Pick ``job_id``'s backend by highest-random-weight (rendezvous)
    hashing: every gateway ranks ``(job_id, backend)`` digests the same
    way, so identical resubmissions agree on the backend without any
    shared routing state, and removing a backend remaps only the jobs
    it owned (every other job's top-ranked backend is unchanged)."""
    backends = sorted(backends)
    if not backends:
        raise DaemonUnavailable("no live backends to route to")
    return max(
        backends,
        key=lambda addr: hashlib.sha256(
            f"{job_id}|{addr}".encode()
        ).digest(),
    )


class GatewayJob:
    """One job the gateway knows: enough to route queries to its
    backend and to resubmit it elsewhere on failover (``job_text`` is
    the wire-encoded job; None for jobs discovered from a backend's
    listing, which can strand but not re-route)."""

    __slots__ = ("job_id", "tenant", "job_text", "backend", "status",
                 "stranded")

    def __init__(self, job_id: str, tenant: str, job_text: str | None,
                 backend: str | None = None, status: str = "pending"):
        self.job_id = job_id
        self.tenant = tenant
        self.job_text = job_text
        self.backend = backend
        self.status = status
        self.stranded = False


class FoundryGateway:
    """Front balancer over N foundry daemons sharing one root.

    Args:
        root: The *shared* state directory — the same ``--root`` every
            backend daemon serves (store, journals, tenant meters and
            rate buckets).  The gateway itself only touches
            ``<root>/tenants`` (buckets) and its default socket path.
        backends: Daemon addresses (socket paths or ``host:port``) to
            balance over; resolves ``REPRO_GATEWAY_BACKENDS``
            (comma-separated) when empty.
        socket: Address to listen on; defaults to
            ``<root>/gateway.sock``.
        tenants: :class:`TenantConfig` records for gateway-side
            submission-rate enforcement (see module docstring).
        health_interval: Seconds between backend health ticks.
        backend_timeout: Socket budget for one backend round trip.

    Use ``start()``/``stop()`` to embed (tests do) or :meth:`run` as
    the blocking CLI entry point.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        backends=(),
        socket: str | None = None,
        tenants=(),
        health_interval: float = 1.0,
        backend_timeout: float = 10.0,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if not backends:
            spec = os.environ.get(GATEWAY_BACKENDS_ENV, "")
            backends = [addr for addr in spec.split(",") if addr.strip()]
        self.backends = [str(addr).strip() for addr in backends]
        if not self.backends:
            raise ValueError(
                f"a gateway needs at least one backend daemon address "
                f"(pass backends= or set {GATEWAY_BACKENDS_ENV})"
            )
        self.address = socket or str(self.root / "gateway.sock")
        self.tenants = {config.name: config for config in tenants}
        self.health_interval = health_interval
        self.backend_timeout = backend_timeout
        #: Injectable clock for the submission-rate bucket (tests).
        self.clock = time.monotonic
        self._alive: dict[str, bool] = {}
        self._records: dict[str, GatewayJob] = {}
        self._lock = threading.RLock()
        self._draining = False
        self._stop_event = threading.Event()
        self._shutdown_requested = threading.Event()
        self._health_wake = threading.Event()
        self._listener = None
        self._accept_thread = None
        self._health_thread = None
        self._started = False

    # -- tenants -----------------------------------------------------------

    def tenant(self, name: str) -> TenantConfig:
        return self.tenants.get(name) or TenantConfig(name=name)

    def submit_bucket(self, tenant: TenantConfig) -> TokenBucket | None:
        """The tenant's submission-rate bucket — the same file a
        backend daemon on this root would debit, so the limit is
        tenant-wide however the submission arrives."""
        if tenant.max_submits_per_minute is None:
            return None
        return TokenBucket(
            self.root / "tenants" / f"{tenant.name}.submits",
            tenant.max_submits_per_minute,
            tenant=tenant.name,
            kind="submission",
            clock=self.clock,
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Bring the gateway up: one synchronous health tick first (so
        routing works from the first request), then the front door."""
        if self._started:
            raise RuntimeError("gateway already started")
        self._started = True
        self._health_tick()
        self._health_thread = threading.Thread(
            target=self._health_loop, name="repro-gateway-health",
            daemon=True,
        )
        self._health_thread.start()
        self._listener = bind(self.address)
        self._listener.settimeout(POLL_SECONDS)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-gateway-accept",
            daemon=True,
        )
        self._accept_thread.start()

    def run(self) -> None:
        """Blocking CLI entry point: serve until SIGTERM/SIGINT (or a
        ``drain`` with shutdown), then stop.  The backends are separate
        processes — stopping the gateway never stops them."""
        import signal

        def _on_signal(signum, frame):
            self._shutdown_requested.set()

        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)
        self.start()
        try:
            self._shutdown_requested.wait()
        finally:
            self.stop()

    def stop(self) -> None:
        if not self._started:
            return
        self._shutdown_requested.set()
        self._stop_event.set()
        self._health_wake.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for thread in (self._accept_thread, self._health_thread):
            if thread is not None:
                thread.join(timeout=5.0)
        if os.sep in self.address or ":" not in self.address:
            try:
                os.unlink(self.address)
            except OSError:
                pass
        self._started = False

    # -- backend health and failover ---------------------------------------

    def _alive_backends(self, exclude=()) -> list[str]:
        with self._lock:
            return [
                addr for addr in self.backends
                if self._alive.get(addr, False) and addr not in exclude
            ]

    def _mark_down(self, addr: str) -> None:
        """One backend just failed a request: run its failover now
        rather than waiting for the next health tick."""
        with self._lock:
            was = self._alive.get(addr, False)
            self._alive[addr] = False
        if was:
            self._on_backend_down(addr)

    def _health_loop(self) -> None:
        while not self._stop_event.is_set():
            self._health_wake.wait(self.health_interval)
            self._health_wake.clear()
            if self._stop_event.is_set():
                return
            self._health_tick()

    def _health_tick(self) -> None:
        for addr in list(self.backends):
            try:
                info = self._backend_request(addr, {"op": "ping"})
                up = bool(info.get("ok"))
            except (OSError, ProtocolError, DaemonUnavailable):
                up = False
            with self._lock:
                was = self._alive.get(addr, False)
                self._alive[addr] = up
            if up and not was:
                self._on_backend_up(addr)
            elif was and not up:
                self._on_backend_down(addr)
            if up:
                self._refresh_jobs(addr)

    def _refresh_jobs(self, addr: str) -> None:
        """Keep the routing table's status knowledge fresh from one
        live backend — PENDING-vs-RUNNING at the moment a backend dies
        decides re-route versus strand."""
        try:
            reply = self._backend_request(addr, {"op": "jobs"})
        except (OSError, ProtocolError, DaemonUnavailable):
            return
        if not reply.get("ok"):
            return
        with self._lock:
            for jid, info in reply.get("jobs", {}).items():
                record = self._records.get(jid)
                if record is None:
                    record = GatewayJob(
                        jid, info.get("tenant", "default"), None,
                        backend=addr, status=info.get("status", "unknown"),
                    )
                    self._records[jid] = record
                elif record.backend == addr:
                    record.status = info.get("status", record.status)
                    record.stranded = False

    def _on_backend_up(self, addr: str) -> None:
        """A backend (re)appeared: its stranded jobs are reachable
        again — a restarted daemon has already recovered its own
        journaled jobs and resumed them bit-identically."""
        with self._lock:
            for record in self._records.values():
                if record.backend == addr:
                    record.stranded = False

    def _on_backend_down(self, addr: str) -> None:
        """A backend died: re-route its PENDING jobs to survivors
        (rate-exempt — failover is not client demand — and resuming
        from the shared journal root, so nothing recomputes); strand
        everything else behind a typed :class:`BackendDown`."""
        with self._lock:
            affected = [
                record for record in self._records.values()
                if record.backend == addr
            ]
        for record in affected:
            rerouted = False
            if record.status in _REROUTABLE and record.job_text is not None:
                try:
                    reply, new_addr = self._submit_to(
                        None, record.tenant, record.job_text,
                        record.job_id, rate_exempt=True, exclude=(addr,),
                    )
                    with self._lock:
                        record.backend = new_addr
                        record.stranded = False
                    rerouted = True
                except (DaemonUnavailable, OSError, ProtocolError,
                        RuntimeError):
                    pass
            if not rerouted:
                with self._lock:
                    record.stranded = True

    # -- backend requests --------------------------------------------------

    def _backend_request(self, addr: str, frame: dict,
                         timeout: float | None = "default") -> dict:
        """One round trip to one backend; error frames are returned
        (for relaying), transport failures raise — after retrying on a
        fresh connection up to :data:`BACKEND_REQUEST_ATTEMPTS` times,
        so one torn frame never triggers failover.  Retrying is safe
        because every proxied op is idempotent: ``submit`` attaches by
        job id, ``events`` replays from ``start``, ``cancel`` and
        ``drain`` are no-ops the second time."""
        last_exc = None
        for _ in range(BACKEND_REQUEST_ATTEMPTS):
            try:
                return self._backend_request_once(addr, frame, timeout)
            except (OSError, ProtocolError, DaemonUnavailable) as exc:
                last_exc = exc
        raise last_exc

    def _backend_request_once(self, addr: str, frame: dict,
                              timeout: float | None = "default") -> dict:
        sock = connect(addr, timeout=self.backend_timeout)
        try:
            sock.settimeout(
                self.backend_timeout if timeout == "default" else timeout
            )
            send_frame(sock, frame)
            reply = recv_frame(sock)
        finally:
            sock.close()
        if reply is None:
            raise DaemonUnavailable(
                f"backend {addr} closed the connection"
            )
        return reply

    def _submit_to(self, preferred: str | None, tenant: str, job_text: str,
                   job_id: str, rate_exempt: bool, exclude=()):
        """Forward one submission, preferring ``preferred`` (the job's
        recorded backend) and falling back through the rendezvous
        ranking as backends fail; returns ``(reply, address)``."""
        tried = set(exclude)
        while True:
            alive = self._alive_backends(exclude=tried)
            if preferred is not None and preferred in alive:
                addr = preferred
            elif alive:
                addr = rendezvous_backend(job_id, alive)
            else:
                raise DaemonUnavailable(
                    f"no live backends to submit job {job_id} to "
                    f"({len(self.backends)} registered)"
                )
            try:
                reply = self._backend_request(addr, {
                    "op": "submit", "tenant": tenant, "job": job_text,
                    "job_id": job_id, "rate_exempt": rate_exempt,
                })
            except (OSError, ProtocolError, DaemonUnavailable):
                tried.add(addr)
                self._mark_down(addr)
                continue
            return reply, addr

    def _locate(self, job_id: str) -> str:
        """The live backend serving ``job_id``; typed errors otherwise
        (:class:`KeyError` unknown, :class:`BackendDown` stranded)."""
        with self._lock:
            record = self._records.get(job_id)
        if record is None:
            # Lazy discovery: a job submitted directly to a backend (or
            # known only to a restarted one) is still queryable here.
            for addr in self._alive_backends():
                self._refresh_jobs(addr)
            with self._lock:
                record = self._records.get(job_id)
        if record is None:
            raise KeyError(f"unknown job id {job_id!r}")
        with self._lock:
            stranded = record.stranded
            addr = record.backend
            alive = self._alive.get(addr, False) if addr else False
        if stranded or not alive:
            raise BackendDown(
                f"backend {addr} holding job {job_id} is down; the job "
                f"is journaled and resumes when the backend restarts "
                f"(resubmit it to re-route instead)"
            )
        return addr

    def _forward(self, frame: dict, timeout: float | None = "default") -> dict:
        addr = self._locate(frame["job_id"])
        try:
            return self._backend_request(addr, frame, timeout=timeout)
        except (OSError, ProtocolError, DaemonUnavailable) as exc:
            self._mark_down(addr)
            raise BackendDown(
                f"backend {addr} failed mid-request for job "
                f"{frame['job_id']} ({type(exc).__name__}: {exc})"
            ) from exc

    # -- the socket front door ---------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop_event.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket_module.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._serve_conn, args=(conn,), daemon=True
            ).start()

    def _serve_conn(self, conn) -> None:
        try:
            while not self._stop_event.is_set():
                frame = recv_frame(conn)
                if frame is None:
                    return
                op = frame.get("op")
                handler = getattr(self, f"_op_{op}", None)
                if handler is None:
                    send_frame(conn, {
                        "ok": False, "kind": "ProtocolError",
                        "error": f"unknown op {op!r}",
                    })
                    continue
                try:
                    handler(conn, frame)
                except _Hangup:
                    return
                except (BrokenPipeError, ConnectionResetError):
                    return
                except Exception as exc:
                    send_frame(conn, {
                        "ok": False, "kind": type(exc).__name__,
                        "error": str(exc),
                    })
        except (ProtocolError, OSError):
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    # -- operations --------------------------------------------------------

    def _op_submit(self, conn, frame) -> None:
        with self._lock:
            if self._draining:
                raise DaemonUnavailable(
                    "gateway is draining; new submissions are refused"
                )
        tenant_name = frame.get("tenant") or "default"
        job_text = frame["job"]
        job_id = frame.get("job_id") or derive_job_id(
            tenant_name, decode_payload(job_text)
        )
        with self._lock:
            record = self._records.get(job_id)
            preferred = record.backend if record is not None else None
            was_stranded = record.stranded if record is not None else False
        rate_exempt = bool(frame.get("rate_exempt"))
        if record is None and not rate_exempt:
            # Gateway-side submission-rate enforcement for tenants the
            # gateway is configured with; the forward becomes
            # rate-exempt so the backend does not double-debit the
            # shared bucket.  Unknown records that turn out to attach
            # backend-side stay free there (attach never debits).
            bucket = self.submit_bucket(self.tenant(tenant_name))
            if bucket is not None:
                bucket.take(1.0)
                rate_exempt = True
        if was_stranded:
            # An explicit resubmission of a stranded job is operator
            # intent to re-route it now rather than wait for its
            # backend: route fresh (rendezvous over the living).
            preferred = None
        reply, addr = self._submit_to(
            preferred, tenant_name, job_text, job_id, rate_exempt
        )
        if not reply.get("ok"):
            send_frame(conn, reply)  # relay the typed refusal verbatim
            return
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                record = GatewayJob(job_id, tenant_name, job_text)
                self._records[job_id] = record
            record.tenant = tenant_name
            record.job_text = job_text
            record.backend = addr
            record.stranded = False
            if record.status in ("cancelled", "failed", "unknown"):
                record.status = "pending"  # re-admitted backend-side
        send_frame(conn, {
            "ok": True, "job_id": reply.get("job_id", job_id),
            "attached": reply.get("attached", False), "backend": addr,
        })

    def _op_status(self, conn, frame) -> None:
        reply = self._forward(frame)
        if reply.get("ok"):
            with self._lock:
                record = self._records.get(frame["job_id"])
                if record is not None:
                    record.status = reply.get("status", record.status)
        send_frame(conn, reply)

    def _op_result(self, conn, frame) -> None:
        timeout = frame.get("timeout")
        send_frame(conn, self._forward(
            frame,
            timeout=None if timeout is None
            else max(timeout, 0.0) + RELAY_GRACE_SECONDS,
        ))

    def _op_cancel(self, conn, frame) -> None:
        send_frame(conn, self._forward(frame))

    def _op_events(self, conn, frame) -> None:
        """Relay the backend's event stream frame-for-frame.  A torn
        backend link hangs up on the client *without* an error frame,
        so the client's reconnect/resume path (which re-sends ``start``
        past the events it already has) engages — the same buffer
        replay it uses against a daemon directly."""
        addr = self._locate(frame["job_id"])
        back = None
        try:
            back = connect(addr, timeout=self.backend_timeout)
            back.settimeout(None)  # events arrive at task cadence
            send_frame(back, frame)
            while True:
                reply = recv_frame(back)
                if reply is None:
                    raise _Hangup()
                send_frame(conn, reply)
                if "end" in reply or not reply.get("ok", True):
                    return
        except (OSError, ProtocolError) as exc:
            raise _Hangup() from exc
        finally:
            if back is not None:
                try:
                    back.close()
                except OSError:
                    pass

    def _op_jobs(self, conn, frame) -> None:
        jobs: dict[str, dict] = {}
        for addr in self._alive_backends():
            try:
                reply = self._backend_request(addr, {"op": "jobs"})
            except (OSError, ProtocolError, DaemonUnavailable):
                self._mark_down(addr)
                continue
            for jid, info in reply.get("jobs", {}).items():
                info = dict(info)
                info["backend"] = addr
                jobs[jid] = info
        with self._lock:
            for jid, record in self._records.items():
                if jid not in jobs:
                    jobs[jid] = {
                        "tenant": record.tenant,
                        "status": record.status,
                        "n_events": 0,
                        "backend": record.backend,
                        "stranded": record.stranded,
                    }
            draining = self._draining
        send_frame(conn, {"ok": True, "jobs": jobs, "draining": draining})

    def _op_ping(self, conn, frame) -> None:
        """Aggregate liveness: the shape a daemon's ping answers (so
        ``status`` CLI and clients work unchanged) plus a per-backend
        breakdown."""
        workers = active = n_jobs = 0
        tenants: dict[str, dict] = {}
        per_backend: dict[str, dict] = {}
        for addr in list(self.backends):
            if not self._alive.get(addr, False):
                per_backend[addr] = {"alive": False}
                continue
            try:
                info = self._backend_request(addr, {"op": "ping"})
            except (OSError, ProtocolError, DaemonUnavailable):
                self._mark_down(addr)
                per_backend[addr] = {"alive": False}
                continue
            workers += info.get("workers", 0)
            active += info.get("active", 0)
            n_jobs += info.get("n_jobs", 0)
            tenants.update(info.get("tenants") or {})
            per_backend[addr] = {
                "alive": True,
                "pid": info.get("pid"),
                "name": info.get("name"),
                "workers": info.get("workers", 0),
                "active": info.get("active", 0),
                "n_jobs": info.get("n_jobs", 0),
            }
        with self._lock:
            draining = self._draining
        send_frame(conn, {
            "ok": True,
            "pid": os.getpid(),
            "name": "gateway",
            "gateway": True,
            "workers": workers,
            "active": active,
            "n_jobs": n_jobs,
            "draining": draining,
            "tenants": tenants,
            "backends": per_backend,
        })

    def _op_drain(self, conn, frame) -> None:
        """Fan the drain out: stop gateway admission, then ask every
        live backend to drain (serially; each gets the full timeout).
        ``drained`` is True only when every one of them drained."""
        with self._lock:
            self._draining = True
        timeout = frame.get("timeout")
        shutdown = frame.get("shutdown", True)
        drained = True
        for addr in self._alive_backends():
            try:
                reply = self._backend_request(
                    addr,
                    {"op": "drain", "timeout": timeout,
                     "shutdown": shutdown},
                    timeout=None if timeout is None
                    else max(timeout, 0.0) + RELAY_GRACE_SECONDS,
                )
                drained = drained and bool(reply.get("drained"))
            except (OSError, ProtocolError, DaemonUnavailable):
                self._mark_down(addr)
                drained = False
        send_frame(conn, {"ok": True, "drained": drained})
        if shutdown:
            self._shutdown_requested.set()
