"""The foundry service: one ``submit(job) -> JobHandle`` front door.

:class:`FoundryService` is the execution layer everything above the
engine now talks to: campaigns, fleet provisioning passes and
experiment-registry runs are all :mod:`~repro.service.jobs` submitted
through one API and executed behind one scheduler.  A submitted job is
validated up front (worker counts, scheduler names, attack names,
journal binding — all rejected before any work starts) and returns a
:class:`JobHandle`:

* ``handle.stream()`` — iterate :class:`~repro.service.jobs.TaskEvent`
  records as tasks complete (completion order, not cell order);
* ``handle.result()`` — drive to completion and return the job's
  result (a :class:`~repro.campaigns.campaign.CampaignResult`, a
  provisioning count, or the experiment result list);
* ``handle.status()`` — the :class:`~repro.service.jobs.JobStatus`
  lifecycle;
* ``handle.cancel()`` — stop scheduling, reap the worker team, keep
  everything already journaled.

The handle's consumer drives the job: no scheduler thread lives in the
parent process, so when the scheduler forks its worker team the parent
is single-threaded — the same fork-safety argument as the engine
kernel's per-call thread teams.  Campaign reports are bit-identical to
a sequential run whatever the worker count, backend or scheduler mode
(cells rebuild their chips and seed their own RNGs; calibrations are
deterministic values read through the shared store), and a campaign
with a journal resumes from its finished cells after a kill — both
held in ``tests/test_service.py``.
"""

from __future__ import annotations

import shutil
import tempfile
import time

from repro.engine import CalibrationStore, get_default_engine, set_default_backend
from repro.service.jobs import (
    CampaignJob,
    ExperimentJob,
    JobCancelled,
    JobFailed,
    JobStatus,
    ProvisioningJob,
    SCHEDULERS,
    TaskEvent,
    default_worker_count,
    validate_worker_count,
)
from repro.service.journal import JobJournal, cells_fingerprint
from repro.service.scheduler import (
    CellTask,
    ProvisionTask,
    run_static,
    run_stealing,
)


def plan_campaign_tasks(todo, store, clear_locks: bool):
    """Turn the remaining ``(index, cell)`` pairs into scheduler tasks.

    Returns ``(cell_tasks, provision_tasks, cell_triples)``:
    the cells as :class:`CellTask` records, one :class:`ProvisionTask`
    per calibration triple the cells declare that ``store`` does not
    already hold, and the gating map (cell index -> set of missing
    triples the cell must wait for).  ``clear_locks`` clears each
    missing triple's ``get_or_set`` lock up front — correct only when
    the caller owns the store exclusively (the per-job service path);
    the daemon shares one store across concurrent jobs and sweeps
    debris at startup instead.
    """
    from repro.campaigns.campaign import cell_triples as triples_of

    cell_triples = {index: triples_of(cell) for index, cell in todo}
    triples = sorted(set().union(*cell_triples.values())) if cell_triples else []
    missing = [
        t for t, hit in zip(triples, store.get_many(triples))
        if hit is None
    ]
    if clear_locks:
        for triple in missing:
            store.clear_lock(triple)
    for index in cell_triples:
        cell_triples[index] &= set(missing)
    cell_tasks = [CellTask(index, cell) for index, cell in todo]
    return cell_tasks, [ProvisionTask(t) for t in missing], cell_triples


def plan_cell_partitions(todo):
    """Partition plans for the ``(index, cell)`` pairs whose attack
    adapter declares one (``{cell index: plan}``; empty when every cell
    runs scalar).  Built fresh per scheduling round — plans are
    stateful, parent-side objects the scheduler drives."""
    from repro.campaigns.campaign import cell_partition

    partitions = {}
    for index, cell in todo:
        plan = cell_partition(cell)
        if plan is not None:
            partitions[index] = plan
    return partitions


def journal_task_events(events, journal):
    """Map raw scheduler results to :class:`TaskEvent` records,
    journaling each finished cell the moment its result arrives —
    the shared tail of every scheduled execution path (per-job worker
    teams and the daemon's persistent fleet alike)."""
    for task, payload, seconds in events:
        if isinstance(task, CellTask):
            if journal is not None:
                journal.put_cell(task.index, task.label(), payload, seconds)
            yield TaskEvent("cell", task.label(), task.index, payload, seconds)
        else:
            yield TaskEvent("provision", task.label(), None, payload, seconds)


class JobHandle:
    """Lifecycle handle of one submitted job (see module docstring)."""

    def __init__(self, job, executor):
        self.job = job
        self._executor = executor
        self._status = JobStatus.PENDING
        self._events: list[TaskEvent] = []
        self._result = None
        self._error: JobFailed | None = None
        self._cancelled = False
        self._gen = None

    def status(self) -> JobStatus:
        """Where the job is in its lifecycle."""
        return self._status

    def events(self) -> list[TaskEvent]:
        """Every event delivered so far (the stream's log)."""
        return list(self._events)

    def _run(self):
        self._result = yield from self._executor()

    def _advance(self) -> bool:
        """Drive one task event; False when no more will come."""
        if self._status in (
            JobStatus.COMPLETED,
            JobStatus.FAILED,
            JobStatus.CANCELLED,
        ):
            return False
        if self._cancelled:
            self._status = JobStatus.CANCELLED
            return False
        if self._gen is None:
            self._gen = self._run()
            self._status = JobStatus.RUNNING
        try:
            event = self._gen.send(None)
        except StopIteration:
            self._status = JobStatus.COMPLETED
            return False
        except JobFailed as exc:
            self._status = JobStatus.FAILED
            self._error = exc
            raise
        except BaseException as exc:
            self._status = JobStatus.FAILED
            self._error = JobFailed(
                f"{self.job.__class__.__name__} failed: "
                f"{type(exc).__name__}: {exc}"
            )
            raise self._error from exc
        self._events.append(event)
        return True

    def stream(self):
        """Yield :class:`TaskEvent` records as tasks complete.

        Drives the job while iterated.  **Consumer contract
        (buffer-replay):** every consumer sees the full event log from
        the beginning — events already delivered are replayed first,
        so late consumers, repeated consumers and a second *concurrent*
        ``stream()`` on the same handle all observe the identical
        complete sequence; concurrent consumers never split events
        between them.  (Two streams of one handle interleaved from
        different threads are not supported — the handle's consumer
        drives the job single-threadedly.)  The stream simply ends on
        cancellation; a failure raises :class:`JobFailed` after the
        delivered events — for live and late consumers alike, so a
        failed job is never mistaken for a completed one.
        """
        i = 0
        while True:
            while i >= len(self._events):
                if not self._advance():
                    if self._status is JobStatus.FAILED:
                        raise self._error
                    return
            yield self._events[i]
            i += 1

    def wait(self, timeout: float | None = None) -> bool:
        """Drive the job until it reaches a terminal status, or until
        ``timeout`` seconds elapse.

        Returns True when the job finished (COMPLETED, FAILED *or*
        CANCELLED — inspect ``status()`` or call ``result()`` to
        distinguish), False on timeout.  The in-process handle is
        consumer-driven, so the deadline is checked between tasks: a
        task already running is never preempted, and ``wait(0)`` on an
        undriven job does no work at all.  The network-backed
        :class:`~repro.service.client.RemoteJobHandle` has the same
        signature with the daemon driving regardless.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._status in (JobStatus.PENDING, JobStatus.RUNNING):
            if deadline is not None and time.monotonic() >= deadline:
                return False
            try:
                if not self._advance():
                    break
            except JobFailed:
                break
        return True

    def result(self, timeout: float | None = None):
        """Drive the job to completion and return its result.

        Raises :class:`JobFailed` when a task raised,
        :class:`JobCancelled` when the job was cancelled, and
        :class:`TimeoutError` when ``timeout`` seconds elapse first
        (checked at task boundaries; see :meth:`wait`) — the job is
        *not* cancelled by a timeout, so a later ``result()`` resumes
        driving it.
        """
        if not self.wait(timeout):
            raise TimeoutError(
                f"job still {self._status.value} after {timeout} s "
                f"({len(self._events)} tasks completed); result() again "
                f"to keep driving, cancel() to stop"
            )
        if self._status is JobStatus.FAILED:
            raise self._error
        if self._status is JobStatus.CANCELLED:
            raise JobCancelled(
                f"job cancelled after {len(self._events)} completed tasks"
            )
        return self._result

    def cancel(self) -> bool:
        """Stop the job at the next task boundary.

        Finished tasks stay journaled (a resubmission resumes from
        them); in-flight workers are reaped.  Returns False when the
        job had already finished.
        """
        if self._status in (
            JobStatus.COMPLETED,
            JobStatus.FAILED,
            JobStatus.CANCELLED,
        ):
            return False
        self._cancelled = True
        if self._gen is not None:
            self._gen.close()  # GeneratorExit -> scheduler reaps workers
            self._gen = None
        self._status = JobStatus.CANCELLED
        return True


class FoundryService:
    """Job-oriented execution front door (``submit`` / ``JobHandle``).

    Args:
        n_workers: Default worker count for jobs that do not pin one;
            None falls back to ``REPRO_SERVICE_WORKERS`` (default 1).
        scheduler: Default campaign scheduler mode (``"stealing"``).
    """

    def __init__(self, n_workers: int | None = None, scheduler: str = "stealing"):
        if n_workers is not None:
            validate_worker_count(n_workers)
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; known: {SCHEDULERS}"
            )
        self.n_workers = n_workers
        self.scheduler = scheduler

    # -- submission -------------------------------------------------------

    def submit(self, job) -> JobHandle:
        """Validate ``job`` up front and return its handle (PENDING).

        Execution is driven by the handle's consumer — iterate
        ``stream()`` or call ``result()``.
        """
        if isinstance(job, CampaignJob):
            prepare = self._prepare_campaign
        elif isinstance(job, ProvisioningJob):
            prepare = self._prepare_provisioning
        elif isinstance(job, ExperimentJob):
            prepare = self._prepare_experiments
        else:
            raise TypeError(
                f"unknown job type {type(job).__name__}; submit a "
                f"CampaignJob, ProvisioningJob or ExperimentJob"
            )
        job.validate()
        executor = prepare(job)
        return JobHandle(job, executor)

    def _resolve_workers(self, job_workers: int | None) -> int:
        if job_workers is not None:
            return validate_worker_count(job_workers)
        if self.n_workers is not None:
            return self.n_workers
        return default_worker_count()

    # -- campaign jobs ----------------------------------------------------

    def _prepare_campaign(self, job: CampaignJob):
        from repro.campaigns.attacks import make_attack

        cells = list(job.cells)
        n_workers = self._resolve_workers(job.n_workers)
        scheduler = job.scheduler or self.scheduler
        # Up-front validation: every attack name must resolve before
        # any cell (or worker fork) runs.
        for attack, params in {(c.attack, c.attack_params) for c in cells}:
            make_attack(attack, **dict(params))
        journal = None
        if job.journal is not None:
            journal = JobJournal(job.journal)
            journal.bind(
                cells_fingerprint(cells), meta={"n_cells": len(cells)}
            )
        return lambda: self._campaign_events(job, cells, n_workers,
                                             scheduler, journal)

    def _campaign_events(self, job, cells, n_workers, scheduler, journal):
        from repro.campaigns.campaign import CampaignResult

        resolved_backend = job.backend or get_default_engine().backend
        reports: dict[int, object] = {}
        timings: dict[int, float] = {}
        replayed = journal.completed_cells(len(cells)) if journal else {}
        for index in sorted(replayed):
            label, report, seconds = replayed[index]
            reports[index] = report
            timings[index] = seconds
            yield TaskEvent("replay", label, index, report, seconds)
        todo = [(i, cell) for i, cell in enumerate(cells) if i not in replayed]
        runner, reported_workers = self._campaign_runner(
            job, todo, n_workers, scheduler, journal
        )
        for event in runner:
            if event.kind == "cell":
                reports[event.index] = event.payload
                timings[event.index] = event.seconds
            yield event
        return CampaignResult(
            reports=[reports[i] for i in range(len(cells))],
            cell_seconds=[timings[i] for i in range(len(cells))],
            n_workers=reported_workers,
            backend=resolved_backend,
        )

    def _campaign_runner(self, job, todo, n_workers, scheduler, journal):
        """Choose how the remaining cells execute: ``(runner,
        reported_workers)``.

        The execution-policy hook the daemon's fleet-backed service
        overrides: the base service runs small jobs in-process (the
        ground-truth path) and shards the rest over a per-job worker
        team; the daemon routes everything to its one persistent fleet.
        Either way the runner yields the same :class:`TaskEvent`
        sequence shape, which is why reports are bit-identical across
        execution modes.
        """
        if n_workers == 1:
            return self._campaign_inline(job, todo, journal), 1
        if len(todo) <= 1 and not plan_cell_partitions(todo):
            # A single scalar cell gains nothing from workers — but a
            # single *partitioned* cell is exactly the dominant-cell
            # case sub-task scheduling exists for, so it still shards.
            return self._campaign_inline(job, todo, journal), 1
        return (
            self._campaign_sharded(job, todo, n_workers, scheduler, journal),
            n_workers,
        )

    def _campaign_inline(self, job, todo, journal):
        """In-process execution, cell order — the ground truth every
        other mode is differentially held against."""
        engine = get_default_engine()
        previous_backend = engine.backend
        previous_store = engine.calibration_store
        store_dir = job.calibration_store or (
            journal.calibration_store_path() if journal else None
        )
        if job.backend is not None:
            set_default_backend(job.backend)
        if store_dir is not None:
            engine.calibration_store = CalibrationStore(store_dir)
        try:
            for index, cell in todo:
                start = time.perf_counter()
                report = cell.execute()
                seconds = time.perf_counter() - start
                if journal is not None:
                    journal.put_cell(index, cell.label(), report, seconds)
                yield TaskEvent("cell", cell.label(), index, report, seconds)
        finally:
            engine.backend = previous_backend
            engine.calibration_store = previous_store

    def _campaign_sharded(self, job, todo, n_workers, scheduler, journal):
        """Worker-process execution behind the scheduler."""
        from repro.campaigns.campaign import provision_fleet

        store_path = job.calibration_store or (
            journal.calibration_store_path() if journal else None
        )
        own_tmp = store_path is None
        if own_tmp:
            store_path = tempfile.mkdtemp(prefix="repro-calstore-")
        try:
            store = CalibrationStore(store_path)
            # clear_locks=True: this job owns each triple as exactly
            # one task, so a lock left by a killed run's terminated
            # worker is debris.  (The daemon path plans with False —
            # there a concurrent job may hold a *live* lock.)
            cell_tasks, provision_tasks, cell_triples = plan_campaign_tasks(
                todo, store, clear_locks=True
            )
            missing = [task.triple for task in provision_tasks]
            if scheduler == "static":
                if missing:
                    # The pre-scheduler behaviour: one parent-side
                    # lockstep pass before any worker exists.
                    start = time.perf_counter()
                    provision_fleet(missing, store, backend=job.backend)
                    yield TaskEvent(
                        "provision",
                        f"fleet of {len(missing)} dies",
                        None,
                        tuple(missing),
                        time.perf_counter() - start,
                    )
                events = run_static(cell_tasks, n_workers, job.backend,
                                    store_path)
            else:
                events = run_stealing(
                    cell_tasks,
                    provision_tasks,
                    cell_triples,
                    n_workers,
                    job.backend,
                    store_path,
                    partitions=plan_cell_partitions(todo),
                )
            yield from journal_task_events(events, journal)
        finally:
            if own_tmp:
                shutil.rmtree(store_path, ignore_errors=True)

    # -- provisioning jobs ------------------------------------------------

    def _prepare_provisioning(self, job: ProvisioningJob):
        n_workers = self._resolve_workers(job.n_workers)
        return lambda: self._provisioning_events(job, n_workers)

    def _provisioning_events(self, job, n_workers):
        store = CalibrationStore(job.calibration_store)
        triples = sorted({tuple(t) for t in job.triples})
        missing = [
            t for t, hit in zip(triples, store.get_many(triples))
            if hit is None
        ]
        if not missing:
            return 0
        yield from self._provision_runner(job, missing, n_workers, store)
        return len(missing)

    def _provision_runner(self, job, missing, n_workers, store):
        """Execute the missing triples (the daemon overrides this to
        route them to its persistent fleet)."""
        from repro.campaigns.campaign import provision_fleet

        for triple in missing:
            store.clear_lock(triple)  # killed-run debris; see campaign path
        if n_workers == 1 or len(missing) <= 1:
            start = time.perf_counter()
            provision_fleet(missing, store, backend=job.backend)
            yield TaskEvent(
                "provision",
                f"fleet of {len(missing)} dies",
                None,
                tuple(missing),
                time.perf_counter() - start,
            )
        else:
            events = run_stealing(
                [], [ProvisionTask(t) for t in missing], {}, n_workers,
                job.backend, str(store.path),
            )
            for task, payload, seconds in events:
                yield TaskEvent("provision", task.label(), None, payload,
                                seconds)

    # -- experiment jobs --------------------------------------------------

    def _prepare_experiments(self, job: ExperimentJob):
        return lambda: self._experiment_events(job)

    def _experiment_events(self, job):
        from repro.experiments.runner import REGISTRY

        if job.backend is not None:
            set_default_backend(job.backend)
        selected = list(REGISTRY.values())
        if job.names:
            selected = [spec for spec in selected if spec.name in job.names]
        results = []
        for position, spec in enumerate(selected):
            start = time.perf_counter()
            result = spec.execute(full=job.full)
            seconds = time.perf_counter() - start
            results.append(result)
            yield TaskEvent("experiment", spec.name, position, result, seconds)
        return results
