"""Multi-tenant vocabulary of the foundry daemon: priorities, quotas
and rate limits.

A *tenant* is one customer of a shared daemon (or gateway).  Its
:class:`TenantConfig` carries the admission-control knobs the service
enforces:

* ``priority`` — queued jobs are admitted highest priority first
  (FIFO within a priority level);
* ``max_queries`` — a tenant-level oracle-measurement budget across
  *all* of the tenant's jobs, metered by a :class:`TenantMeter`
  (an **absolute** quota: once spent, it never refills);
* ``max_submits_per_minute`` / ``max_queries_per_minute`` — **rate**
  limits, enforced through file-backed :class:`TokenBucket` records:
  a bucket of that capacity refills continuously at ``limit/60``
  tokens per second, a submission takes one token, an oracle chunk of
  ``n`` measurements takes ``n``, and an empty bucket refuses with a
  typed :class:`RateLimited` — the fair-admission complement to the
  absolute quota for many tenants sharing one daemon fleet.

The meter generalises :meth:`~repro.attacks.oracle.MeasurementOracle.
charge_batch`'s atomic chunk admission to the tenant level: a whole
chunk is admitted or refused at the same per-tenant count **regardless
of placement** — whichever job, cell or worker process submits it —
because the count lives in one file and every charge holds that file's
lock across its check-then-advance.  A refusal raises the same
:class:`~repro.attacks.oracle.QueryBudgetExceeded` the per-oracle
budget raises, with every meter (tenant and oracle) un-advanced, so
attacks report tenant exhaustion exactly as they report their own.
Rate refusals follow the identical contract: :class:`RateLimited` is a
:class:`QueryBudgetExceeded`, raised with the tenant meter, oracle
meter **and** the bucket all un-advanced, so a refused chunk can be
retried after ``retry_after`` seconds without having consumed
anything.

Worker processes install their task's meter through
:func:`repro.attacks.oracle.install_tenant_meter`; every oracle charge
then writes through both meters (and the rate bucket) atomically.
Buckets are keyed by file path, so several daemons sharing one state
root — the gateway's scale-out topology — enforce one tenant-wide
limit between them.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro import faults
from repro.attacks.oracle import QueryBudgetExceeded

try:  # POSIX: the kernel releases a crashed holder's flock for us.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None


class RateLimited(QueryBudgetExceeded):
    """Typed rate-limit refusal: the tenant's token bucket is empty.

    A :class:`QueryBudgetExceeded`, so an attack whose oracle chunk is
    rate-refused reports exhaustion exactly like a spent budget — but
    unlike the absolute quota the refusal is *temporary*: the bucket
    keeps refilling, and ``retry_after`` names the seconds until the
    refused amount fits again.  The refusal leaves every meter and the
    bucket itself un-advanced (nothing was consumed), so retrying after
    ``retry_after`` is side-effect free.
    """

    def __init__(self, message: str, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


@dataclass(frozen=True)
class TenantConfig:
    """One tenant of a shared daemon or gateway.

    Attributes:
        name: Tenant identifier (the ``REPRO_SERVICE_TENANT`` value
            clients submit under).
        priority: Admission priority; higher admits first.
        max_queries: Tenant-wide oracle-measurement budget across all
            the tenant's jobs; None for unlimited.  Absolute — never
            refills.
        max_submits_per_minute: Token-bucket rate limit on job
            submissions (new submissions only; attaching to a live
            identical job is free); None for unlimited.
        max_queries_per_minute: Token-bucket rate limit on oracle
            measurements, enforced in the same atomic
            ``charge_batch`` that meters the absolute quota; None for
            unlimited.
    """

    name: str
    priority: int = 0
    max_queries: int | None = None
    max_submits_per_minute: float | None = None
    max_queries_per_minute: float | None = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.max_queries is not None and self.max_queries < 0:
            raise ValueError(
                f"max_queries must be >= 0 or None (unlimited), "
                f"got {self.max_queries!r}"
            )
        for field_name in ("max_submits_per_minute",
                           "max_queries_per_minute"):
            value = getattr(self, field_name)
            if value is not None and not value > 0:
                raise ValueError(
                    f"{field_name} must be > 0 or None (unlimited), "
                    f"got {value!r}"
                )


def parse_tenant_spec(spec: str) -> TenantConfig:
    """Parse a CLI tenant spec:
    ``name[=priority[:max_queries[:submits/min[:queries/min]]]]``.

    Examples: ``acme`` (defaults), ``acme=5`` (priority 5),
    ``acme=5:20000`` (priority 5, 20000-measurement quota),
    ``acme=::30:6000`` (30 submissions and 6000 measurements per
    minute, no priority or absolute quota).  Empty fields keep their
    defaults.
    """
    name, _, rest = spec.partition("=")
    if not rest:
        return TenantConfig(name=name)
    fields = rest.split(":")
    if len(fields) > 4:
        raise ValueError(
            f"malformed tenant spec {spec!r}; expected "
            f"name[=priority[:max_queries[:submits/min[:queries/min]]]]"
        )
    fields += [""] * (4 - len(fields))
    priority_text, quota_text, spm_text, qpm_text = fields
    try:
        priority = int(priority_text) if priority_text else 0
        max_queries = int(quota_text) if quota_text else None
        spm = float(spm_text) if spm_text else None
        qpm = float(qpm_text) if qpm_text else None
    except ValueError:
        raise ValueError(
            f"malformed tenant spec {spec!r}; expected "
            f"name[=priority[:max_queries[:submits/min[:queries/min]]]]"
        ) from None
    return TenantConfig(
        name=name, priority=priority, max_queries=max_queries,
        max_submits_per_minute=spm, max_queries_per_minute=qpm,
    )


class TokenBucket:
    """File-backed token bucket shared by every process of a tenant.

    The state file holds ``"<tokens> <stamp>"`` — the token level and
    the monotonic clock reading it was valid at.  :meth:`take` holds an
    exclusive lock (same discipline as :class:`TenantMeter`) across
    refill-check-write: the bucket refills continuously at
    ``per_minute / 60`` tokens per second up to ``per_minute``
    capacity, a request that fits is debited atomically, and one that
    does not raises :class:`RateLimited` **without writing anything**
    — a refusal consumes no tokens and can be retried after
    ``retry_after`` seconds.  A fresh bucket starts full.

    ``clock`` is injectable for deterministic tests; the default
    ``time.monotonic`` is system-wide on Linux, so processes sharing
    the file agree on elapsed time.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        per_minute: float,
        tenant: str = "",
        kind: str = "requests",
        clock=time.monotonic,
    ):
        if not per_minute > 0:
            raise ValueError(
                f"per_minute must be > 0, got {per_minute!r}"
            )
        self.path = Path(path)
        self.capacity = float(per_minute)
        self.rate = float(per_minute) / 60.0
        self.tenant = tenant
        self.kind = kind
        self.clock = clock
        self.path.parent.mkdir(parents=True, exist_ok=True)

    # The lock discipline is TenantMeter's, on the bucket's own file.

    def _lock_path(self) -> Path:
        return self.path.with_suffix(self.path.suffix + ".lock")

    def _acquire(self):
        if fcntl is not None:
            fd = os.open(self._lock_path(), os.O_CREAT | os.O_RDWR, 0o644)
            fcntl.flock(fd, fcntl.LOCK_EX)
            return fd
        while True:  # pragma: no cover - non-POSIX fallback
            try:
                return os.open(
                    self._lock_path(), os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                time.sleep(0.005)

    def _release(self, fd: int) -> None:
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)
        else:  # pragma: no cover - non-POSIX fallback
            os.close(fd)
            os.unlink(self._lock_path())

    def _refilled(self, now: float) -> float:
        """Token level at ``now`` (lock held): stored level plus refill
        since the stored stamp, capped at capacity."""
        try:
            tokens_text, stamp_text = self.path.read_text().split()
            tokens, stamp = float(tokens_text), float(stamp_text)
        except (OSError, ValueError):
            return self.capacity  # fresh (or torn) bucket starts full
        return min(self.capacity, tokens + max(0.0, now - stamp) * self.rate)

    def level(self) -> float:
        """The current token level (diagnostics and tests)."""
        fd = self._acquire()
        try:
            return self._refilled(self.clock())
        finally:
            self._release(fd)

    def take(self, n: float = 1.0) -> None:
        """Atomically debit ``n`` tokens, or raise :class:`RateLimited`
        with the bucket un-advanced when they are not there yet."""
        if n < 0:
            raise ValueError(f"cannot take a negative amount, got {n}")
        fd = self._acquire()
        try:
            now = self.clock()
            tokens = self._refilled(now)
            if tokens + 1e-9 < n:
                retry_after = (n - tokens) / self.rate
                raise RateLimited(
                    f"tenant {self.tenant or self.path.stem!r} "
                    f"{self.kind} rate limit of {self.capacity:g}/min "
                    f"exceeded ({n:g} requested, {tokens:.3g} available; "
                    f"retry in {retry_after:.3g}s)",
                    retry_after=retry_after,
                )
            self.path.write_text(f"{tokens - n} {now}\n")
        finally:
            self._release(fd)

    def refund(self, n: float) -> None:
        """Return ``n`` tokens (capped at capacity) — the rollback half
        of a task reservation whose charges were rate-debited."""
        if n <= 0:
            return
        fd = self._acquire()
        try:
            now = self.clock()
            tokens = min(self.capacity, self._refilled(now) + n)
            self.path.write_text(f"{tokens} {now}\n")
        finally:
            self._release(fd)


def reservation_path(meter_path: str | os.PathLike, task_id: str) -> Path:
    """Where ``task_id``'s charge-reservation journal lives, for a
    given meter file — shared by the worker that writes it and the
    parent that settles it."""
    meter_path = Path(meter_path)
    digest = hashlib.sha256(task_id.encode()).hexdigest()[:16]
    return meter_path.parent / f"{meter_path.name}.r-{digest}"


def _read_count(path: Path) -> int:
    try:
        return int(path.read_text() or "0")
    except (OSError, ValueError):
        return 0


class TenantMeter:
    """File-backed atomic query meter shared by every process of a
    tenant's jobs.

    The count is one ASCII integer in ``path``; :meth:`charge_batch`
    holds an exclusive lock across read-check-write, so concurrent
    chunks from any mixture of workers serialise and each whole chunk
    is admitted or refused atomically — the tenant-level analogue of
    the oracle's own ``charge_batch``.  Locking uses ``flock`` where
    available (a crashed holder's lock is released by the kernel, so a
    SIGKILLed worker can never wedge its tenant) and falls back to an
    ``O_CREAT|O_EXCL`` spin lock elsewhere.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        max_queries: int | None = None,
        tenant: str = "",
        max_per_minute: float | None = None,
        clock=time.monotonic,
    ):
        self.path = Path(path)
        self.max_queries = max_queries
        self.tenant = tenant
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._reservation: Path | None = None
        #: The measurement-rate bucket beside the absolute quota
        #: (``max_queries_per_minute``); None when the tenant is
        #: rate-unlimited.  Lives in its own file next to the count, so
        #: every process (and every daemon sharing the root) debits one
        #: tenant-wide bucket.
        self.bucket: TokenBucket | None = None
        if max_per_minute is not None:
            self.bucket = TokenBucket(
                self.path.with_suffix(self.path.suffix + ".rate"),
                max_per_minute,
                tenant=tenant,
                kind="measurement",
                clock=clock,
            )

    # -- locking ----------------------------------------------------------

    def _lock_path(self) -> Path:
        return self.path.with_suffix(self.path.suffix + ".lock")

    def _acquire(self):
        if fcntl is not None:
            fd = os.open(self._lock_path(), os.O_CREAT | os.O_RDWR, 0o644)
            fcntl.flock(fd, fcntl.LOCK_EX)
            return fd
        while True:  # pragma: no cover - non-POSIX fallback
            try:
                return os.open(
                    self._lock_path(), os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                time.sleep(0.005)

    def _release(self, fd: int) -> None:
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)
        else:  # pragma: no cover - non-POSIX fallback
            os.close(fd)
            os.unlink(self._lock_path())

    # -- the meter --------------------------------------------------------

    def _read(self) -> int:
        try:
            return int(self.path.read_text() or "0")
        except (OSError, ValueError):
            return 0

    def n_queries(self) -> int:
        """The tenant's metered measurement count so far."""
        fd = self._acquire()
        try:
            return self._read()
        finally:
            self._release(fd)

    def charge_batch(self, n: int, seconds_each: float = 0.0) -> None:
        """Atomically admit or refuse a whole ``n``-measurement chunk.

        Raises :class:`QueryBudgetExceeded` with the meter un-advanced
        when the chunk does not fit the tenant's remaining quota —
        at the same per-tenant count whichever job or worker placed it
        — and :class:`RateLimited` (a ``QueryBudgetExceeded``) when the
        tenant's measurement-rate bucket cannot cover it yet, with the
        meter *and* the bucket un-advanced (the quota is checked first,
        then the bucket is debited, then the count advances, all under
        the meter lock).

        Inside a task reservation (:meth:`begin_task`), an admitted
        chunk is recorded in the reservation file *before* the main
        count advances, both under the same lock: if this process is
        killed between the two writes, a later :meth:`rollback_task`
        refunds at most what actually landed — the meter can undercount
        a crashed task by one torn chunk, but never double-charge it.
        """
        if n < 0:
            raise ValueError(f"cannot charge a negative batch, got {n}")
        fd = self._acquire()
        try:
            count = self._read()
            if (
                self.max_queries is not None
                and count + n > self.max_queries
            ):
                raise QueryBudgetExceeded(
                    f"tenant {self.tenant or self.path.stem!r} quota of "
                    f"{self.max_queries} measurements exhausted "
                    f"({count} spent, {n} more requested)"
                )
            if self.bucket is not None:
                self.bucket.take(n)  # RateLimited leaves everything as-is
            if self._reservation is not None:
                reserved = _read_count(self._reservation)
                self._reservation.write_text(f"{reserved + n}\n")
            self.path.write_text(f"{count + n}\n")
        finally:
            self._release(fd)
        if faults.ENABLED and faults.fire("task.crash_after_charge"):
            faults.crash()

    # -- per-task charge reservations -------------------------------------
    #
    # The one stateful hazard of retrying a task: a worker that died
    # mid-task has already advanced this meter by its partial charges,
    # and the retry would charge them again.  Workers therefore journal
    # every charge into a per-task reservation file (same lock, same
    # directory), and the *parent* — the only survivor of any crash
    # schedule — settles it: commit (drop the journal, charges stand)
    # when the task's result arrives, rollback (refund the journaled
    # amount) before requeueing a reclaimed task.

    def begin_task(self, task_id: str) -> None:
        """Start journaling this process's charges under ``task_id``
        (worker-side, before the task runs).  Any stale journal for the
        same id was settled by the parent before the retry started."""
        self._reservation = reservation_path(self.path, task_id)
        fd = self._acquire()
        try:
            self._reservation.write_text("0\n")
        finally:
            self._release(fd)

    def commit_task(self, task_id: str) -> None:
        """Settle ``task_id``'s reservation as spent (parent-side, on
        the task's result): the charges stand, the journal is dropped."""
        fd = self._acquire()
        try:
            try:
                os.unlink(reservation_path(self.path, task_id))
            except OSError:
                pass
        finally:
            self._release(fd)

    def rollback_task(self, task_id: str) -> int:
        """Refund ``task_id``'s journaled charges (parent-side, before
        requeueing a task reclaimed from a dead or hung worker); returns
        the number of measurements refunded.  Idempotent: a second
        rollback — or a rollback racing a commit — finds no journal and
        refunds nothing."""
        reservation = reservation_path(self.path, task_id)
        fd = self._acquire()
        try:
            reserved = _read_count(reservation)
            if reserved:
                count = self._read()
                self.path.write_text(f"{max(0, count - reserved)}\n")
            try:
                os.unlink(reservation)
            except OSError:
                pass
        finally:
            self._release(fd)
        if reserved and self.bucket is not None:
            # Refund the rate tokens the reclaimed task's charges took:
            # the retry will debit them again, and a crash must not
            # double-drain the bucket any more than the meter.
            self.bucket.refund(reserved)
        return reserved
