"""Multi-tenant vocabulary of the foundry daemon: priorities and quotas.

A *tenant* is one customer of a shared daemon.  Its
:class:`TenantConfig` carries the two admission-control knobs the
daemon enforces:

* ``priority`` — queued jobs are admitted highest priority first
  (FIFO within a priority level);
* ``max_queries`` — a tenant-level oracle-measurement budget across
  *all* of the tenant's jobs, metered by a :class:`TenantMeter`.

The meter generalises :meth:`~repro.attacks.oracle.MeasurementOracle.
charge_batch`'s atomic chunk admission to the tenant level: a whole
chunk is admitted or refused at the same per-tenant count **regardless
of placement** — whichever job, cell or worker process submits it —
because the count lives in one file and every charge holds that file's
lock across its check-then-advance.  A refusal raises the same
:class:`~repro.attacks.oracle.QueryBudgetExceeded` the per-oracle
budget raises, with every meter (tenant and oracle) un-advanced, so
attacks report tenant exhaustion exactly as they report their own.

Worker processes install their task's meter through
:func:`repro.attacks.oracle.install_tenant_meter`; every oracle charge
then writes through both meters atomically.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.attacks.oracle import QueryBudgetExceeded

try:  # POSIX: the kernel releases a crashed holder's flock for us.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None


@dataclass(frozen=True)
class TenantConfig:
    """One tenant of a shared daemon.

    Attributes:
        name: Tenant identifier (the ``REPRO_SERVICE_TENANT`` value
            clients submit under).
        priority: Admission priority; higher admits first.
        max_queries: Tenant-wide oracle-measurement budget across all
            the tenant's jobs; None for unlimited.
    """

    name: str
    priority: int = 0
    max_queries: int | None = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.max_queries is not None and self.max_queries < 0:
            raise ValueError(
                f"max_queries must be >= 0 or None (unlimited), "
                f"got {self.max_queries!r}"
            )


def parse_tenant_spec(spec: str) -> TenantConfig:
    """Parse a CLI tenant spec: ``name[=priority[:max_queries]]``.

    Examples: ``acme`` (defaults), ``acme=5`` (priority 5),
    ``acme=5:20000`` (priority 5, 20000-measurement quota).
    """
    name, _, rest = spec.partition("=")
    if not rest:
        return TenantConfig(name=name)
    priority_text, _, quota_text = rest.partition(":")
    try:
        priority = int(priority_text) if priority_text else 0
        max_queries = int(quota_text) if quota_text else None
    except ValueError:
        raise ValueError(
            f"malformed tenant spec {spec!r}; expected "
            f"name[=priority[:max_queries]]"
        ) from None
    return TenantConfig(name=name, priority=priority, max_queries=max_queries)


class TenantMeter:
    """File-backed atomic query meter shared by every process of a
    tenant's jobs.

    The count is one ASCII integer in ``path``; :meth:`charge_batch`
    holds an exclusive lock across read-check-write, so concurrent
    chunks from any mixture of workers serialise and each whole chunk
    is admitted or refused atomically — the tenant-level analogue of
    the oracle's own ``charge_batch``.  Locking uses ``flock`` where
    available (a crashed holder's lock is released by the kernel, so a
    SIGKILLed worker can never wedge its tenant) and falls back to an
    ``O_CREAT|O_EXCL`` spin lock elsewhere.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        max_queries: int | None = None,
        tenant: str = "",
    ):
        self.path = Path(path)
        self.max_queries = max_queries
        self.tenant = tenant
        self.path.parent.mkdir(parents=True, exist_ok=True)

    # -- locking ----------------------------------------------------------

    def _lock_path(self) -> Path:
        return self.path.with_suffix(self.path.suffix + ".lock")

    def _acquire(self):
        if fcntl is not None:
            fd = os.open(self._lock_path(), os.O_CREAT | os.O_RDWR, 0o644)
            fcntl.flock(fd, fcntl.LOCK_EX)
            return fd
        while True:  # pragma: no cover - non-POSIX fallback
            try:
                return os.open(
                    self._lock_path(), os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                time.sleep(0.005)

    def _release(self, fd: int) -> None:
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)
        else:  # pragma: no cover - non-POSIX fallback
            os.close(fd)
            os.unlink(self._lock_path())

    # -- the meter --------------------------------------------------------

    def _read(self) -> int:
        try:
            return int(self.path.read_text() or "0")
        except (OSError, ValueError):
            return 0

    def n_queries(self) -> int:
        """The tenant's metered measurement count so far."""
        fd = self._acquire()
        try:
            return self._read()
        finally:
            self._release(fd)

    def charge_batch(self, n: int, seconds_each: float = 0.0) -> None:
        """Atomically admit or refuse a whole ``n``-measurement chunk.

        Raises :class:`QueryBudgetExceeded` with the meter un-advanced
        when the chunk does not fit the tenant's remaining quota —
        at the same per-tenant count whichever job or worker placed it.
        """
        if n < 0:
            raise ValueError(f"cannot charge a negative batch, got {n}")
        fd = self._acquire()
        try:
            count = self._read()
            if (
                self.max_queries is not None
                and count + n > self.max_queries
            ):
                raise QueryBudgetExceeded(
                    f"tenant {self.tenant or self.path.stem!r} quota of "
                    f"{self.max_queries} measurements exhausted "
                    f"({count} spent, {n} more requested)"
                )
            self.path.write_text(f"{count + n}\n")
        finally:
            self._release(fd)
