"""``python -m repro.service`` — the foundry daemon's command line.

Subcommands::

    serve   run a daemon:  python -m repro.service serve --root RUNDIR \\
                [--socket ADDR] [--workers N] [--tenant name=prio:quota]...
    submit  submit a pickled job and stream its events:
            python -m repro.service submit --job job.pkl [--out result.pkl]
    status  daemon stats, or one job's status:
            python -m repro.service status [JOB_ID]
    drain   finish every admitted job, then shut the daemon down:
            python -m repro.service drain [--timeout S] [--no-shutdown]

The daemon address resolves ``--socket``, then ``REPRO_SERVICE_SOCKET``
(serve also falls back to ``<root>/daemon.sock``); the submitting
tenant resolves ``--tenant``, then ``REPRO_SERVICE_TENANT``.
"""

from __future__ import annotations

import argparse
import pickle
import sys


def _cmd_serve(args) -> int:
    from repro.service.daemon import FoundryDaemon
    from repro.service.tenants import parse_tenant_spec

    daemon = FoundryDaemon(
        root=args.root,
        socket=args.socket,
        n_workers=args.workers,
        tenants=[parse_tenant_spec(spec) for spec in args.tenant],
        scheduler=args.scheduler,
        max_active=args.max_active,
    )
    print(
        f"repro-daemon: serving on {daemon.address} "
        f"({daemon.fleet.n_workers} workers, root {daemon.root})",
        flush=True,
    )
    daemon.run()
    print("repro-daemon: stopped", flush=True)
    return 0


def _client(args):
    from repro.service.client import DaemonClient

    return DaemonClient(
        socket=args.socket, tenant=getattr(args, "tenant", None)
    )


def _cmd_submit(args) -> int:
    with open(args.job, "rb") as fh:
        job = pickle.load(fh)
    client = _client(args)
    handle = client.submit(job, job_id=args.job_id)
    print(f"job {handle.job_id} submitted as tenant {client.tenant!r}",
          flush=True)
    try:
        for event in handle.stream():
            print(f"  [{event.kind}] {event.label} ({event.seconds:.2f}s)",
                  flush=True)
        result = handle.result()
    except Exception as exc:
        print(f"job {handle.job_id} failed: {exc}", file=sys.stderr)
        return 1
    status = handle.status().value
    print(f"job {handle.job_id} {status}", flush=True)
    if args.out:
        # Reports are the deterministic part of a campaign result
        # (timings are not); pickle them for byte-for-byte comparison.
        payload = getattr(result, "reports", result)
        with open(args.out, "wb") as fh:
            fh.write(pickle.dumps(payload))
        print(f"result written to {args.out}", flush=True)
    return 0


def _cmd_status(args) -> int:
    client = _client(args)
    if args.job_id:
        handle = client.handle(args.job_id)
        print(handle.status().value)
        return 0
    info = client.ping()
    print(
        f"daemon pid {info['pid']}: {info['workers']} workers, "
        f"{info['active']} active of {info['n_jobs']} jobs"
        + (" (draining)" if info["draining"] else "")
    )
    for name, stats in sorted(info["tenants"].items()):
        quota = stats["max_queries"]
        print(
            f"  tenant {name}: priority {stats['priority']}, "
            f"{stats['n_queries']} queries"
            + (f" of {quota}" if quota is not None else " (unlimited)")
        )
    jobs = client.jobs()["jobs"]
    for job_id, record in sorted(jobs.items()):
        print(
            f"  job {job_id} [{record['tenant']}]: {record['status']} "
            f"({record['n_events']} events)"
        )
    return 0


def _cmd_drain(args) -> int:
    client = _client(args)
    drained = client.drain(
        timeout=args.timeout, shutdown=not args.no_shutdown
    )
    print("drained" if drained else "drain timed out")
    return 0 if drained else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Foundry daemon: serve, submit, status, drain.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run a foundry daemon")
    serve.add_argument("--root", required=True,
                       help="daemon state directory (store, journals, meters)")
    serve.add_argument("--socket", default=None,
                       help="listen address: socket path or host:port")
    serve.add_argument("--workers", type=int, default=None,
                       help="persistent fleet size "
                            "(default: REPRO_SERVICE_WORKERS)")
    serve.add_argument("--tenant", action="append", default=[],
                       metavar="NAME[=PRIO[:QUOTA]]",
                       help="tenant config (repeatable)")
    serve.add_argument("--scheduler", default="stealing",
                       help="default campaign scheduler mode")
    serve.add_argument("--max-active", type=int, default=None,
                       help="max concurrently running jobs")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser("submit", help="submit a pickled job")
    submit.add_argument("--job", required=True,
                        help="path to a pickled job object")
    submit.add_argument("--socket", default=None)
    submit.add_argument("--tenant", default=None)
    submit.add_argument("--job-id", default=None)
    submit.add_argument("--out", default=None,
                        help="write the result's reports as a pickle here")
    submit.set_defaults(func=_cmd_submit)

    status = sub.add_parser("status", help="daemon or job status")
    status.add_argument("job_id", nargs="?", default=None)
    status.add_argument("--socket", default=None)
    status.set_defaults(func=_cmd_status)

    drain = sub.add_parser("drain", help="drain and shut down the daemon")
    drain.add_argument("--socket", default=None)
    drain.add_argument("--timeout", type=float, default=None)
    drain.add_argument("--no-shutdown", action="store_true",
                       help="stop admission and wait, but keep serving")
    drain.set_defaults(func=_cmd_drain)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
