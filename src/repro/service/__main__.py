"""``python -m repro.service`` — the foundry daemon's command line.

Subcommands::

    serve    run a daemon:  python -m repro.service serve --root RUNDIR \\
                [--socket ADDR] [--workers N] [--name NAME] \\
                [--tenant name=prio:quota:spm:qpm]...
    gateway  run a front balancer over daemons sharing RUNDIR:
             python -m repro.service gateway --root RUNDIR \\
                --backend ADDR [--backend ADDR]... [--socket ADDR] \\
                [--http HOST:PORT] [--tenant SPEC]...
    submit   submit a pickled job and stream its events:
             python -m repro.service submit --job job.pkl [--out result.pkl]
    status   daemon stats, or one job's status:
             python -m repro.service status [JOB_ID]
    jobs     list every job the daemon (or gateway) knows
    ping     one-line liveness check (exit 1 when unreachable)
    drain    finish every admitted job, then shut the daemon down:
             python -m repro.service drain [--timeout S] [--no-shutdown]

The daemon address resolves ``--socket``, then ``REPRO_SERVICE_SOCKET``
(serve also falls back to ``<root>/daemon.sock``, gateway to
``<root>/gateway.sock``); the gateway's backend list also resolves
``REPRO_GATEWAY_BACKENDS``; the submitting tenant resolves
``--tenant``, then ``REPRO_SERVICE_TENANT``.
"""

from __future__ import annotations

import argparse
import pickle
import sys


def _cmd_serve(args) -> int:
    from repro.service.daemon import FoundryDaemon
    from repro.service.tenants import parse_tenant_spec

    daemon = FoundryDaemon(
        root=args.root,
        socket=args.socket,
        n_workers=args.workers,
        tenants=[parse_tenant_spec(spec) for spec in args.tenant],
        scheduler=args.scheduler,
        max_active=args.max_active,
        name=args.name,
    )
    print(
        f"repro-daemon: serving on {daemon.address} "
        f"({daemon.fleet.n_workers} workers, root {daemon.root}, "
        f"name {daemon.name})",
        flush=True,
    )
    daemon.run()
    print("repro-daemon: stopped", flush=True)
    return 0


def _cmd_gateway(args) -> int:
    from repro.service.gateway import FoundryGateway
    from repro.service.tenants import parse_tenant_spec

    gateway = FoundryGateway(
        root=args.root,
        backends=args.backend,
        socket=args.socket,
        tenants=[parse_tenant_spec(spec) for spec in args.tenant],
        health_interval=args.health_interval,
    )
    frontend = None
    if args.http:
        from repro.service.http import FoundryHTTPFrontend

        host, _, port = args.http.rpartition(":")
        frontend = FoundryHTTPFrontend(
            backend=gateway.address,
            host=host or "127.0.0.1",
            port=int(port),
        )
    print(
        f"repro-gateway: serving on {gateway.address} over "
        f"{len(gateway.backends)} backend(s), root {gateway.root}"
        + (f", http {frontend.address}" if frontend else ""),
        flush=True,
    )
    if frontend is not None:
        frontend.start()
    try:
        gateway.run()
    finally:
        if frontend is not None:
            frontend.stop()
    print("repro-gateway: stopped", flush=True)
    return 0


def _client(args):
    from repro.service.client import DaemonClient

    return DaemonClient(
        socket=args.socket, tenant=getattr(args, "tenant", None)
    )


def _cmd_submit(args) -> int:
    with open(args.job, "rb") as fh:
        job = pickle.load(fh)
    client = _client(args)
    handle = client.submit(job, job_id=args.job_id)
    print(f"job {handle.job_id} submitted as tenant {client.tenant!r}",
          flush=True)
    try:
        for event in handle.stream():
            print(f"  [{event.kind}] {event.label} ({event.seconds:.2f}s)",
                  flush=True)
        result = handle.result()
    except Exception as exc:
        print(f"job {handle.job_id} failed: {exc}", file=sys.stderr)
        return 1
    status = handle.status().value
    print(f"job {handle.job_id} {status}", flush=True)
    if args.out:
        # Reports are the deterministic part of a campaign result
        # (timings are not); pickle them for byte-for-byte comparison.
        payload = getattr(result, "reports", result)
        with open(args.out, "wb") as fh:
            fh.write(pickle.dumps(payload))
        print(f"result written to {args.out}", flush=True)
    return 0


def _cmd_status(args) -> int:
    client = _client(args)
    if args.job_id:
        handle = client.handle(args.job_id)
        print(handle.status().value)
        return 0
    info = client.ping()
    print(
        f"daemon pid {info['pid']}: {info['workers']} workers, "
        f"{info['active']} active of {info['n_jobs']} jobs"
        + (" (draining)" if info["draining"] else "")
    )
    for name, stats in sorted(info["tenants"].items()):
        quota = stats["max_queries"]
        print(
            f"  tenant {name}: priority {stats['priority']}, "
            f"{stats['n_queries']} queries"
            + (f" of {quota}" if quota is not None else " (unlimited)")
        )
    jobs = client.jobs()["jobs"]
    for job_id, record in sorted(jobs.items()):
        print(
            f"  job {job_id} [{record['tenant']}]: {record['status']} "
            f"({record['n_events']} events)"
        )
    return 0


def _cmd_jobs(args) -> int:
    reply = _client(args).jobs()
    jobs = reply["jobs"]
    if not jobs:
        print("no jobs")
        return 0
    for job_id, record in sorted(jobs.items()):
        extra = ""
        if record.get("backend"):
            extra += f" @ {record['backend']}"
        if record.get("stranded"):
            extra += " (stranded: backend down)"
        print(
            f"{job_id} [{record['tenant']}]: {record['status']} "
            f"({record['n_events']} events){extra}"
        )
    if reply.get("draining"):
        print("(draining)")
    return 0


def _cmd_ping(args) -> int:
    from repro.service.client import DaemonUnavailableError

    try:
        info = _client(args).ping()
    except (DaemonUnavailableError, ConnectionError, OSError) as exc:
        print(f"unreachable: {exc}", file=sys.stderr)
        return 1
    kind = "gateway" if info.get("gateway") else "daemon"
    line = (
        f"{kind} pid {info['pid']}: {info['workers']} workers, "
        f"{info['active']} active of {info['n_jobs']} jobs"
        + (" (draining)" if info.get("draining") else "")
    )
    backends = info.get("backends") or {}
    if backends:
        up = sum(1 for b in backends.values() if b.get("alive"))
        line += f", {up}/{len(backends)} backends alive"
    print(line)
    return 0


def _cmd_drain(args) -> int:
    client = _client(args)
    drained = client.drain(
        timeout=args.timeout, shutdown=not args.no_shutdown
    )
    print("drained" if drained else "drain timed out")
    return 0 if drained else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Foundry daemon: serve, submit, status, drain.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run a foundry daemon")
    serve.add_argument("--root", required=True,
                       help="daemon state directory (store, journals, meters)")
    serve.add_argument("--socket", default=None,
                       help="listen address: socket path or host:port")
    serve.add_argument("--workers", type=int, default=None,
                       help="persistent fleet size "
                            "(default: REPRO_SERVICE_WORKERS)")
    serve.add_argument("--tenant", action="append", default=[],
                       metavar="NAME[=PRIO[:QUOTA[:SPM[:QPM]]]]",
                       help="tenant config (repeatable): priority, absolute "
                            "query quota, submits/min, queries/min")
    serve.add_argument("--scheduler", default="stealing",
                       help="default campaign scheduler mode")
    serve.add_argument("--max-active", type=int, default=None,
                       help="max concurrently running jobs")
    serve.add_argument("--name", default=None,
                       help="daemon identity on a shared root (each daemon "
                            "recovers only its own journaled jobs)")
    serve.set_defaults(func=_cmd_serve)

    gateway = sub.add_parser(
        "gateway", help="run a front balancer over daemons sharing one root"
    )
    gateway.add_argument("--root", required=True,
                         help="the SHARED state directory the backends serve")
    gateway.add_argument("--backend", action="append", default=[],
                         metavar="ADDR",
                         help="backend daemon address (repeatable; default: "
                              "REPRO_GATEWAY_BACKENDS, comma-separated)")
    gateway.add_argument("--socket", default=None,
                         help="listen address (default <root>/gateway.sock)")
    gateway.add_argument("--http", default=None, metavar="HOST:PORT",
                         help="also serve the JSON-only HTTP facade here")
    gateway.add_argument("--tenant", action="append", default=[],
                         metavar="NAME[=PRIO[:QUOTA[:SPM[:QPM]]]]",
                         help="tenant config for gateway-side rate limits")
    gateway.add_argument("--health-interval", type=float, default=1.0,
                         help="seconds between backend health checks")
    gateway.set_defaults(func=_cmd_gateway)

    submit = sub.add_parser("submit", help="submit a pickled job")
    submit.add_argument("--job", required=True,
                        help="path to a pickled job object")
    submit.add_argument("--socket", default=None)
    submit.add_argument("--tenant", default=None)
    submit.add_argument("--job-id", default=None)
    submit.add_argument("--out", default=None,
                        help="write the result's reports as a pickle here")
    submit.set_defaults(func=_cmd_submit)

    status = sub.add_parser("status", help="daemon or job status")
    status.add_argument("job_id", nargs="?", default=None)
    status.add_argument("--socket", default=None)
    status.set_defaults(func=_cmd_status)

    jobs = sub.add_parser("jobs", help="list every job the service knows")
    jobs.add_argument("--socket", default=None)
    jobs.set_defaults(func=_cmd_jobs)

    ping = sub.add_parser("ping", help="one-line liveness check")
    ping.add_argument("--socket", default=None)
    ping.set_defaults(func=_cmd_ping)

    drain = sub.add_parser("drain", help="drain and shut down the daemon")
    drain.add_argument("--socket", default=None)
    drain.add_argument("--timeout", type=float, default=None)
    drain.add_argument("--no-shutdown", action="store_true",
                       help="stop admission and wait, but keep serving")
    drain.set_defaults(func=_cmd_drain)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
