"""Client side of the foundry daemon: a network-backed job handle.

:class:`DaemonClient` speaks the :mod:`~repro.service.protocol` frames
to a running :class:`~repro.service.daemon.FoundryDaemon` and returns a
:class:`RemoteJobHandle` for each submission — drop-in for the
in-process :class:`~repro.service.service.JobHandle`: the same
``stream()`` / ``result(timeout=)`` / ``wait(timeout=)`` / ``status()``
/ ``cancel()`` surface, the same exceptions
(:class:`~repro.service.jobs.JobFailed` carrying the worker traceback,
:class:`~repro.service.jobs.JobCancelled`, :class:`TimeoutError`), the
same buffer-replay stream contract (every consumer replays the full
event log from the beginning), and bit-identical results — the wire
moves pickles, and the daemon differential guard holds a daemon
campaign byte-for-byte against the in-process service.

The one semantic difference is *who drives*: the daemon runs the job
whether or not anyone is connected, so ``wait()``/``result()`` here
block on the daemon instead of driving the executor, and a client
timeout leaves the job running server-side.

Defaults come from the environment: ``REPRO_SERVICE_SOCKET`` names the
daemon address, ``REPRO_SERVICE_TENANT`` the tenant to submit under.
"""

from __future__ import annotations

import os
import time

from repro.service.jobs import JobCancelled, JobFailed, JobStatus
from repro.service.protocol import (
    ProtocolError,
    SERVICE_SOCKET_ENV,
    SERVICE_TENANT_ENV,
    connect,
    decode_payload,
    default_address,
    encode_payload,
    event_from_wire,
    recv_frame,
    send_frame,
)

#: Socket-level grace added on top of a *server-side* wait: when the
#: client asks the daemon to block (``result(timeout=T)``, ``drain``),
#: the socket read must outlive the daemon's own T-second wait by the
#: round-trip and scheduling slack, or a well-behaved daemon reply
#: races the client's socket timeout.  One constant, every such call.
RESULT_GRACE_SECONDS = 10.0

#: First connect-retry backoff, seconds; doubles per attempt up to
#: :data:`CONNECT_BACKOFF_MAX` while the connect budget lasts.
CONNECT_BACKOFF_INITIAL = 0.05

#: Backoff ceiling between connect attempts, seconds.
CONNECT_BACKOFF_MAX = 2.0

#: Reconnect attempts an event stream survives *between* deliveries
#: (each one resumes from the events already received); progress
#: resets the count.
STREAM_RECONNECTS = 5


class DaemonUnavailableError(ConnectionError):
    """The daemon refused the request or went away."""


def _raise_for(reply: dict):
    """Map an error frame to the in-process handle's exception types."""
    kind = reply.get("kind", "")
    error = reply.get("error", "daemon request failed")
    if kind == "JobFailed":
        raise JobFailed(error)
    if kind == "JobCancelled":
        raise JobCancelled(error)
    if kind == "Timeout":
        raise TimeoutError(
            f"job still {reply.get('status', 'running')} "
            f"({reply.get('n_events', 0)} tasks completed); result() again "
            f"to keep waiting, cancel() to stop"
        )
    if kind == "KeyError":
        raise KeyError(error)
    if kind == "DaemonUnavailable":
        raise DaemonUnavailableError(error)
    if kind == "BackendDown":
        from repro.service.gateway import BackendDown

        raise BackendDown(error)
    if kind in ("RateLimited", "QueryBudgetExceeded"):
        # Typed refusals keep their in-process types over the wire, so
        # attack loops that already catch QueryBudgetExceeded treat a
        # rate refusal exactly like quota exhaustion.
        from repro.service.tenants import QueryBudgetExceeded, RateLimited

        raise (RateLimited if kind == "RateLimited" else
               QueryBudgetExceeded)(error)
    if kind in ("ValueError", "TypeError", "JournalMismatch"):
        # Up-front validation keeps its in-process exception type, so
        # submit() misuse reads the same locally and over the wire.
        raised = {"ValueError": ValueError, "TypeError": TypeError}.get(kind)
        if raised is None:
            from repro.service.jobs import JournalMismatch

            raised = JournalMismatch
        raise raised(error)
    raise RuntimeError(f"{kind}: {error}" if kind else error)


def _server_wait_grace(timeout: float | None) -> float | None:
    """The socket timeout matching a server-side wait of ``timeout``
    seconds: the daemon's wait plus :data:`RESULT_GRACE_SECONDS` of
    transit slack.  ``timeout=0`` (an immediate poll) gets the full
    grace — the daemon answers at once, the socket just has to carry
    it; ``None`` (wait forever) disables the socket timeout too."""
    if timeout is None:
        return None
    return max(timeout, 0.0) + RESULT_GRACE_SECONDS


class DaemonClient:
    """A connection factory to one daemon address.

    Args:
        socket: Daemon address (Unix socket path or ``host:port``);
            None resolves ``REPRO_SERVICE_SOCKET``.
        tenant: Tenant to submit under; None resolves
            ``REPRO_SERVICE_TENANT`` (default ``"default"``).
        timeout: Connect budget, seconds.  Transient connect failures —
            the socket file not there yet (a client racing ``serve``
            startup), connection refused (a stale socket file), reset —
            retry with exponential backoff until the budget is spent,
            then raise the last error.  The budget also serves as the
            per-reply socket timeout for plain round trips.

    Each request opens its own connection (requests are independent
    and the daemon serves each connection on its own thread), so one
    client is safe to share across threads.
    """

    def __init__(
        self,
        socket: str | None = None,
        tenant: str | None = None,
        timeout: float = 10.0,
    ):
        self.address = socket or default_address()
        if not self.address:
            raise ValueError(
                f"no daemon address: pass socket= or set {SERVICE_SOCKET_ENV}"
            )
        self.tenant = tenant or os.environ.get(SERVICE_TENANT_ENV) or "default"
        self.timeout = timeout

    def _connect(self):
        """Connect with bounded exponential backoff: keep retrying
        transient failures until ``self.timeout`` seconds have been
        spent, then raise the last one."""
        deadline = time.monotonic() + self.timeout
        backoff = CONNECT_BACKOFF_INITIAL
        while True:
            remaining = deadline - time.monotonic()
            try:
                return connect(
                    self.address, timeout=max(remaining, 0.001)
                )
            except (FileNotFoundError, ConnectionRefusedError,
                    ConnectionResetError, TimeoutError) as exc:
                if time.monotonic() + backoff >= deadline:
                    raise DaemonUnavailableError(
                        f"no daemon reachable at {self.address} within "
                        f"{self.timeout:g}s ({type(exc).__name__}: {exc})"
                    ) from exc
                time.sleep(backoff)
                backoff = min(backoff * 2, CONNECT_BACKOFF_MAX)

    def _request(self, frame: dict, timeout: float | None = "connect"):
        """One request/reply round trip on a fresh connection."""
        sock = self._connect()
        try:
            if timeout == "connect":
                sock.settimeout(self.timeout)  # full budget for the reply
            else:
                sock.settimeout(timeout)
            send_frame(sock, frame)
            reply = recv_frame(sock)
        finally:
            sock.close()
        if reply is None:
            raise DaemonUnavailableError(
                f"daemon at {self.address} closed the connection"
            )
        if not reply.get("ok", False):
            _raise_for(reply)
        return reply

    def ping(self) -> dict:
        """Daemon liveness and stats (pid, workers, jobs, tenants)."""
        return self._request({"op": "ping"})

    def jobs(self) -> dict:
        """Every job the daemon knows: id -> {tenant, status, n_events}."""
        return self._request({"op": "jobs"})

    def submit(self, job, job_id: str | None = None) -> "RemoteJobHandle":
        """Submit ``job`` under this client's tenant; returns a
        network-backed handle.  Submitting an identical job attaches to
        the live submission instead of duplicating it."""
        reply = self._request({
            "op": "submit",
            "tenant": self.tenant,
            "job": encode_payload(job),
            "job_id": job_id,
        })
        return RemoteJobHandle(self, reply["job_id"], job=job)

    def handle(self, job_id: str) -> "RemoteJobHandle":
        """A handle to an already-submitted job by id."""
        return RemoteJobHandle(self, job_id)

    def drain(self, timeout: float | None = None, shutdown: bool = True) -> bool:
        """Stop admission, wait for every job, optionally shut the
        daemon down; returns False when ``timeout`` elapsed first.
        ``timeout=0`` is a valid immediate poll ("drained yet?")."""
        reply = self._request(
            {"op": "drain", "timeout": timeout, "shutdown": shutdown},
            timeout=_server_wait_grace(timeout),
        )
        return reply["drained"]


class RemoteJobHandle:
    """Drop-in :class:`~repro.service.service.JobHandle` backed by a
    daemon (see module docstring for the driving-semantics difference)."""

    def __init__(self, client: DaemonClient, job_id: str, job=None):
        self.client = client
        self.job_id = job_id
        self.job = job

    def status(self) -> JobStatus:
        """Where the job is in its lifecycle (one round trip)."""
        reply = self.client._request({"op": "status", "job_id": self.job_id})
        return JobStatus(reply["status"])

    def events(self) -> list:
        """The full event log delivered so far (replayed, not live)."""
        collected = []
        for event in self._stream(live=False):
            collected.append(event)
        return collected

    def stream(self):
        """Yield :class:`~repro.service.jobs.TaskEvent` records as tasks
        complete — the in-process handle's buffer-replay contract over
        the wire: the full log replays from the beginning, then live
        events follow; ends on completion or cancellation, raises
        :class:`JobFailed` after the delivered events on failure.

        A mid-stream socket drop reconnects with backoff and resumes
        from the events already delivered (the daemon replays its
        buffer from any index), so a consumer sees every event exactly
        once across any number of reconnects."""
        return self._stream(live=True)

    def _stream(self, live: bool):
        delivered = 0
        reconnects_left = STREAM_RECONNECTS
        while True:
            sock = None
            try:
                try:
                    sock = self.client._connect()
                    sock.settimeout(None)  # events arrive at task cadence
                    send_frame(sock, {
                        "op": "events", "job_id": self.job_id,
                        # Resume past the events already yielded; the
                        # daemon replays its buffer from any index.
                        "start": delivered,
                    })
                    while True:
                        frame = recv_frame(sock)
                        if frame is None:
                            raise ProtocolError(
                                "daemon closed the event stream "
                                "(shutdown or restart?)"
                            )
                        if not frame.get("ok", True):
                            _raise_for(frame)  # deliberate — never retried
                        if "event" in frame:
                            yield event_from_wire(frame["event"])
                            delivered += 1
                            reconnects_left = STREAM_RECONNECTS  # progress
                            continue
                        end = frame["end"]
                        if live and end["status"] == JobStatus.FAILED.value:
                            raise JobFailed(end.get("error") or "job failed")
                        return
                finally:
                    if sock is not None:
                        sock.close()
            except TimeoutError:
                # The daemon's own Timeout answer (an OSError subclass
                # since 3.10) is a verdict, not a torn stream.
                raise
            except (ProtocolError, OSError) as exc:
                # A torn stream — daemon restart, dropped or truncated
                # frame, reset connection — is transient: reconnect and
                # resume from `delivered`.  Only repeated tears with no
                # progress in between give up.
                if reconnects_left <= 0:
                    raise DaemonUnavailableError(
                        f"event stream for job {self.job_id} torn "
                        f"{STREAM_RECONNECTS + 1} times without progress: "
                        f"{exc}"
                    ) from exc
                reconnects_left -= 1
                time.sleep(CONNECT_BACKOFF_INITIAL)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal status (the daemon
        drives it regardless); False on timeout.  ``timeout=0`` is a
        valid immediate poll ("finished yet?")."""
        try:
            self._result_frame(timeout)
        except TimeoutError:
            return False
        except (JobFailed, JobCancelled, RuntimeError):
            return True
        return True

    def result(self, timeout: float | None = None):
        """Block for the job's result.  Raises exactly like the
        in-process handle: :class:`JobFailed` (with the worker
        traceback), :class:`JobCancelled`, or :class:`TimeoutError` —
        a timeout leaves the job running on the daemon.  ``timeout=0``
        is a valid immediate poll (result now or TimeoutError)."""
        reply = self._result_frame(timeout)
        return decode_payload(reply["result"])

    def _result_frame(self, timeout: float | None):
        # The daemon waits server-side for `timeout`; the socket read
        # must outlive that wait by the shared transit grace.
        return self.client._request(
            {"op": "result", "job_id": self.job_id, "timeout": timeout},
            timeout=_server_wait_grace(timeout),
        )

    def cancel(self) -> bool:
        """Cancel at the next task boundary; finished tasks stay
        journaled.  Returns False when the job had already finished."""
        reply = self.client._request({"op": "cancel", "job_id": self.job_id})
        return reply["cancelled"]
