"""Client side of the foundry daemon: a network-backed job handle.

:class:`DaemonClient` speaks the :mod:`~repro.service.protocol` frames
to a running :class:`~repro.service.daemon.FoundryDaemon` and returns a
:class:`RemoteJobHandle` for each submission — drop-in for the
in-process :class:`~repro.service.service.JobHandle`: the same
``stream()`` / ``result(timeout=)`` / ``wait(timeout=)`` / ``status()``
/ ``cancel()`` surface, the same exceptions
(:class:`~repro.service.jobs.JobFailed` carrying the worker traceback,
:class:`~repro.service.jobs.JobCancelled`, :class:`TimeoutError`), the
same buffer-replay stream contract (every consumer replays the full
event log from the beginning), and bit-identical results — the wire
moves pickles, and the daemon differential guard holds a daemon
campaign byte-for-byte against the in-process service.

The one semantic difference is *who drives*: the daemon runs the job
whether or not anyone is connected, so ``wait()``/``result()`` here
block on the daemon instead of driving the executor, and a client
timeout leaves the job running server-side.

Defaults come from the environment: ``REPRO_SERVICE_SOCKET`` names the
daemon address, ``REPRO_SERVICE_TENANT`` the tenant to submit under.
"""

from __future__ import annotations

import os
import socket as socket_module

from repro.service.jobs import JobCancelled, JobFailed, JobStatus
from repro.service.protocol import (
    SERVICE_SOCKET_ENV,
    SERVICE_TENANT_ENV,
    connect,
    decode_payload,
    default_address,
    encode_payload,
    event_from_wire,
    recv_frame,
    send_frame,
)


class DaemonUnavailableError(ConnectionError):
    """The daemon refused the request or went away."""


def _raise_for(reply: dict):
    """Map an error frame to the in-process handle's exception types."""
    kind = reply.get("kind", "")
    error = reply.get("error", "daemon request failed")
    if kind == "JobFailed":
        raise JobFailed(error)
    if kind == "JobCancelled":
        raise JobCancelled(error)
    if kind == "Timeout":
        raise TimeoutError(
            f"job still {reply.get('status', 'running')} "
            f"({reply.get('n_events', 0)} tasks completed); result() again "
            f"to keep waiting, cancel() to stop"
        )
    if kind == "KeyError":
        raise KeyError(error)
    if kind == "DaemonUnavailable":
        raise DaemonUnavailableError(error)
    if kind in ("ValueError", "TypeError", "JournalMismatch"):
        # Up-front validation keeps its in-process exception type, so
        # submit() misuse reads the same locally and over the wire.
        raised = {"ValueError": ValueError, "TypeError": TypeError}.get(kind)
        if raised is None:
            from repro.service.jobs import JournalMismatch

            raised = JournalMismatch
        raise raised(error)
    raise RuntimeError(f"{kind}: {error}" if kind else error)


class DaemonClient:
    """A connection factory to one daemon address.

    Args:
        socket: Daemon address (Unix socket path or ``host:port``);
            None resolves ``REPRO_SERVICE_SOCKET``.
        tenant: Tenant to submit under; None resolves
            ``REPRO_SERVICE_TENANT`` (default ``"default"``).
        timeout: Connect timeout, seconds.

    Each request opens its own connection (requests are independent
    and the daemon serves each connection on its own thread), so one
    client is safe to share across threads.
    """

    def __init__(
        self,
        socket: str | None = None,
        tenant: str | None = None,
        timeout: float = 10.0,
    ):
        self.address = socket or default_address()
        if not self.address:
            raise ValueError(
                f"no daemon address: pass socket= or set {SERVICE_SOCKET_ENV}"
            )
        self.tenant = tenant or os.environ.get(SERVICE_TENANT_ENV) or "default"
        self.timeout = timeout

    def _request(self, frame: dict, timeout: float | None = "connect"):
        """One request/reply round trip on a fresh connection."""
        sock = connect(self.address, timeout=self.timeout)
        try:
            if timeout == "connect":
                pass  # keep the connect timeout for the reply too
            else:
                sock.settimeout(timeout)
            send_frame(sock, frame)
            reply = recv_frame(sock)
        finally:
            sock.close()
        if reply is None:
            raise DaemonUnavailableError(
                f"daemon at {self.address} closed the connection"
            )
        if not reply.get("ok", False):
            _raise_for(reply)
        return reply

    def ping(self) -> dict:
        """Daemon liveness and stats (pid, workers, jobs, tenants)."""
        return self._request({"op": "ping"})

    def jobs(self) -> dict:
        """Every job the daemon knows: id -> {tenant, status, n_events}."""
        return self._request({"op": "jobs"})

    def submit(self, job, job_id: str | None = None) -> "RemoteJobHandle":
        """Submit ``job`` under this client's tenant; returns a
        network-backed handle.  Submitting an identical job attaches to
        the live submission instead of duplicating it."""
        reply = self._request({
            "op": "submit",
            "tenant": self.tenant,
            "job": encode_payload(job),
            "job_id": job_id,
        })
        return RemoteJobHandle(self, reply["job_id"], job=job)

    def handle(self, job_id: str) -> "RemoteJobHandle":
        """A handle to an already-submitted job by id."""
        return RemoteJobHandle(self, job_id)

    def drain(self, timeout: float | None = None, shutdown: bool = True) -> bool:
        """Stop admission, wait for every job, optionally shut the
        daemon down; returns False when ``timeout`` elapsed first."""
        grace = None if timeout is None else timeout + 10.0
        reply = self._request(
            {"op": "drain", "timeout": timeout, "shutdown": shutdown},
            timeout=grace,
        )
        return reply["drained"]


class RemoteJobHandle:
    """Drop-in :class:`~repro.service.service.JobHandle` backed by a
    daemon (see module docstring for the driving-semantics difference)."""

    def __init__(self, client: DaemonClient, job_id: str, job=None):
        self.client = client
        self.job_id = job_id
        self.job = job

    def status(self) -> JobStatus:
        """Where the job is in its lifecycle (one round trip)."""
        reply = self.client._request({"op": "status", "job_id": self.job_id})
        return JobStatus(reply["status"])

    def events(self) -> list:
        """The full event log delivered so far (replayed, not live)."""
        collected = []
        for event in self._stream(live=False):
            collected.append(event)
        return collected

    def stream(self):
        """Yield :class:`~repro.service.jobs.TaskEvent` records as tasks
        complete — the in-process handle's buffer-replay contract over
        the wire: the full log replays from the beginning, then live
        events follow; ends on completion or cancellation, raises
        :class:`JobFailed` after the delivered events on failure."""
        return self._stream(live=True)

    def _stream(self, live: bool):
        sock = connect(self.client.address, timeout=self.client.timeout)
        try:
            sock.settimeout(None)  # events arrive at task cadence
            send_frame(sock, {"op": "events", "job_id": self.job_id})
            while True:
                frame = recv_frame(sock)
                if frame is None:
                    raise DaemonUnavailableError(
                        "daemon closed the event stream (shutdown?)"
                    )
                if not frame.get("ok", True):
                    _raise_for(frame)
                if "event" in frame:
                    yield event_from_wire(frame["event"])
                    continue
                end = frame["end"]
                if live and end["status"] == JobStatus.FAILED.value:
                    raise JobFailed(end.get("error") or "job failed")
                return
        finally:
            sock.close()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal status (the daemon
        drives it regardless); False on timeout."""
        try:
            self._result_frame(timeout)
        except TimeoutError:
            return False
        except (JobFailed, JobCancelled, RuntimeError):
            return True
        return True

    def result(self, timeout: float | None = None):
        """Block for the job's result.  Raises exactly like the
        in-process handle: :class:`JobFailed` (with the worker
        traceback), :class:`JobCancelled`, or :class:`TimeoutError` —
        a timeout leaves the job running on the daemon."""
        reply = self._result_frame(timeout)
        return decode_payload(reply["result"])

    def _result_frame(self, timeout: float | None):
        grace = None if timeout is None else timeout + 10.0
        return self.client._request(
            {"op": "result", "job_id": self.job_id, "timeout": timeout},
            timeout=grace,
        )

    def cancel(self) -> bool:
        """Cancel at the next task boundary; finished tasks stay
        journaled.  Returns False when the job had already finished."""
        reply = self.client._request({"op": "cancel", "job_id": self.job_id})
        return reply["cancelled"]
