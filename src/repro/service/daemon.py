"""The foundry daemon: a long-lived, multi-tenant job server.

:class:`FoundryDaemon` promotes the :class:`~repro.service.service.
FoundryService` from a drive-by-consumer library to a server process:
it accepts :mod:`job <repro.service.jobs>` submissions from many
tenants over a Unix/TCP socket front door (:mod:`~repro.service.
protocol` frames), keeps **one persistent worker fleet**, one shared
:class:`~repro.engine.store.CalibrationStore` and one journal root
across every concurrent job, and streams each job's
:class:`~repro.service.jobs.TaskEvent` log over the wire — the
``JobHandle.stream()/result()/status()/cancel()`` shape *is* the wire
protocol, and :class:`~repro.service.client.DaemonClient` returns a
network-backed handle that is drop-in for the in-process one.

Architecture
============

* **Fork first, thread later.**  The fleet's worker processes fork at
  :meth:`FoundryDaemon.start`, while the daemon process is still
  single-threaded — the same fork-safety argument as the engine
  kernel's per-call thread teams.  Only then do the service threads
  start (socket accept, one connection handler per client, one runner
  per admitted job).  A worker *respawned* after a crash necessarily
  forks from the threaded daemon (the trade every
  ``multiprocessing.Pool`` makes); the worker main immediately re-runs
  the same initialisation, so the replacement is indistinguishable.
* **One fleet, many jobs.**  Every job's tasks go into the fleet's one
  ready pool, tagged with a per-job *ticket* and a
  :class:`TaskContext` (backend, store, tenant meter); workers
  re-initialise exactly like the per-job scheduler's workers whenever
  the context changes hands, so which worker runs a task still cannot
  change any report.  A job's ``n_workers`` bounds how many of its
  tasks are in flight at once (1 serialises the job's cells — which is
  what makes per-tenant metering deterministic), and provisioning
  tasks gate their attack cells exactly as in
  :func:`~repro.service.scheduler.run_stealing`.
* **Self-healing.**  Fleet workers are supervised over per-worker
  duplex pipes (see :mod:`~repro.service.scheduler`): a worker that
  dies or hangs mid-task is reaped, respawned, and its task requeued
  with its partial tenant charges rolled back from the per-task
  reservation journal — a job fails only once one of *its* tasks
  exhausts the ``REPRO_TASK_RETRIES`` attempt budget
  (:class:`~repro.service.jobs.TaskRetriesExhausted` delivered to that
  job's mailbox alone; every other tenant's job keeps running), and
  reports stay byte-identical across any crash schedule
  (``tests/test_faults.py``).
* **Admission control.**  Submissions enter a priority queue (tenant
  priority first, FIFO within a level) and at most ``max_active`` jobs
  run concurrently; per-tenant query quotas meter through one
  file-backed :class:`~repro.service.tenants.TenantMeter` per tenant,
  charged atomically by every oracle in every worker.
* **Durable by default.**  Campaign jobs journal into
  ``<root>/jobs/<job_id>/journal`` unless they pin their own; SIGTERM
  stops admission, cancels in-flight jobs at the next task boundary
  (their finished cells are already journaled) *without* marking them
  terminal, and a daemon restarted on the same root re-admits exactly
  those jobs — they resume from their journals bit-identically.
  Startup also sweeps crashed-holder ``get_or_set`` lock debris from
  the store root, so a killed daemon can never stall the next one.

Execution reuses the service layer wholesale: :class:`_FleetService`
overrides only *where* tasks run (the persistent fleet instead of a
per-job worker team), so the event sequence shape, journaling and
result assembly are the very code paths ``tests/test_service.py``
already holds bit-identical — the daemon differential guard in
``tests/test_daemon.py`` closes the loop over the wire.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import json
import os
import pickle
import queue as queue_module
import socket as socket_module
import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from pathlib import Path

from repro import faults
from repro.engine import CalibrationStore
from repro.service.jobs import (
    CampaignJob,
    JobFailed,
    JobStatus,
    ProvisioningJob,
    SCHEDULERS,
    TaskEvent,
    TaskRetriesExhausted,
    default_worker_count,
    task_retry_budget,
    task_timeout_seconds,
    validate_worker_count,
)
from repro.service.protocol import (
    ProtocolError,
    bind,
    decode_payload,
    default_address,
    encode_payload,
    event_to_wire,
    recv_frame,
    send_frame,
)
from repro.service.scheduler import (
    POLL_SECONDS,
    AssembleTask,
    ProvisionTask,
    SubTask,
    _context,
    kill_slot,
    run_task,
    spawn_worker,
    start_heartbeat,
)
from repro.service.service import (
    FoundryService,
    journal_task_events,
    plan_campaign_tasks,
    plan_cell_partitions,
)
from repro.service.tenants import TenantConfig, TenantMeter, TokenBucket

#: Job statuses that will never change again.
TERMINAL_STATUSES = (JobStatus.COMPLETED, JobStatus.FAILED, JobStatus.CANCELLED)


class DaemonUnavailable(RuntimeError):
    """The daemon refused the request (draining or shutting down)."""


def derive_job_id(tenant: str, job) -> str:
    """Deterministic job id from (tenant, job): resubmitting the
    identical job lands on the same journal, so retries after a kill
    resume instead of re-executing (jobs are frozen dataclasses of
    plain data — their reprs are stable across processes, exactly like
    :func:`~repro.service.journal.cells_fingerprint`)."""
    digest = hashlib.sha256()
    digest.update(tenant.encode())
    digest.update(b"\0")
    digest.update(repr(job).encode())
    return digest.hexdigest()[:12]


# ---------------------------------------------------------------------------
# The persistent fleet
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TaskContext:
    """Everything a fleet worker must (re-)initialise to run a task:
    the job's backend and shared store (exactly the per-job scheduler's
    ``_worker_init`` arguments) plus the tenant's meter.  Workers
    re-init only when the context changes hands, so consecutive tasks
    of one job pay it once."""

    backend: str | None = None
    store_path: str | None = None
    tenant: str = "default"
    meter_path: str | None = None
    max_queries: int | None = None
    max_queries_per_minute: float | None = None


@dataclass(frozen=True)
class ExperimentTask:
    """One experiment-registry entry as a fleet task (the daemon runs
    experiment jobs on the fleet — the daemon process itself never
    simulates)."""

    name: str
    full: bool = False
    position: int = 0

    def label(self) -> str:
        return self.name

    def key(self) -> tuple:
        """Stable identity for retry accounting and charge reservations."""
        return ("experiment", self.position, self.name)

    def run(self):
        from repro.experiments.runner import REGISTRY

        return REGISTRY[self.name].execute(full=self.full)


def _fleet_worker_main(conn, heartbeat) -> None:
    """One persistent fleet worker: receive ``(ticket, context, task,
    task_id)`` items on its private duplex pipe until the sentinel,
    re-initialising on context changes.

    Initialisation is the per-job scheduler's ``_worker_init`` plus the
    tenant meter install, so reports cannot depend on which worker (or
    whose fleet) ran a task — the daemon differential guard holds this
    against the in-process service.  Before a metered task runs, its
    charge reservation opens under ``task_id`` (see
    :meth:`~repro.service.tenants.TenantMeter.begin_task`); the
    *parent* settles it — commit on the result, rollback before a
    retry — because the parent is the only survivor of every crash
    schedule.
    """
    from repro.attacks.oracle import install_tenant_meter
    from repro.campaigns.campaign import _worker_init

    start_heartbeat(heartbeat)
    current = None
    meter = None
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            return
        if item is None:
            return
        ticket, context, task, task_id = item
        if context != current:
            _worker_init(context.backend, context.store_path)
            if context.meter_path is not None:
                meter = TenantMeter(
                    context.meter_path,
                    context.max_queries,
                    tenant=context.tenant,
                    max_per_minute=context.max_queries_per_minute,
                )
            else:
                meter = None
            install_tenant_meter(meter)
            current = context
        if meter is not None:
            meter.begin_task(task_id)
        kind, task, payload, seconds, error = run_task(task)
        conn.send((ticket, kind, task, payload, seconds, error))
        if faults.ENABLED and faults.fire("worker.torn_conn"):
            faults.tear_connection(conn)


class _FleetItem:
    """One unit of fleet work in flight: the submitting job's ticket,
    the worker context, the task, and the id its charge reservation
    and retry accounting live under."""

    __slots__ = ("ticket", "context", "task", "task_id")

    def __init__(self, ticket: int, context: TaskContext, task):
        self.ticket = ticket
        self.context = context
        self.task = task
        self.task_id = f"{ticket}:{task.key()!r}"


class WorkerFleet:
    """ONE persistent, self-healing worker team every admitted job's
    tasks run on.

    Unlike the per-job scheduler's teams (forked and reaped per job),
    the fleet forks once — at daemon startup, while the parent is
    still single-threaded — and serves tasks from many concurrent jobs
    out of one shared ready pool.  Each job opens a *ticket*: a
    registered mailbox the router thread delivers that job's results
    to.  Results for a closed ticket (a cancelled job's stragglers)
    are dropped — at most the job's in-flight bound of tasks runs
    wastefully, and every store write they made stays valid
    (deterministic values).

    Supervision (mirroring :func:`~repro.service.scheduler.
    run_stealing`): every worker hangs off its own duplex pipe, so the
    router — which also dispatches and supervises, one thread owning
    all slot state — knows exactly which item each worker holds.  A
    dead worker (exit code) or a hung one (heartbeat silent past
    ``REPRO_TASK_TIMEOUT``) is reaped and respawned, its item's tenant
    charges are rolled back from the reservation journal, and the item
    is requeued at the front of the pool; only when one task has
    consumed the whole ``REPRO_TASK_RETRIES`` budget does its *own*
    job fail (an ``"exhausted"`` mailbox message -> :class:`~repro.
    service.jobs.TaskRetriesExhausted`) — every other job keeps
    running.  Respawned workers fork from a threaded daemon (the same
    trade multiprocessing.Pool makes); only the initial fleet needs
    the single-threaded fork window.
    """

    def __init__(self, n_workers: int):
        validate_worker_count(n_workers, "fleet n_workers")
        self.n_workers = n_workers
        self._mp = _context()
        self.slots: list = []
        self._ready: deque = deque()
        self._attempts: dict[str, list] = {}
        self._mailboxes: dict[int, queue_module.Queue] = {}
        self._tickets = itertools.count(1)
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._router = None
        self._wake_r = self._wake_w = None
        self._failure: str | None = None
        self._retry_budget = task_retry_budget()
        self._watchdog = task_timeout_seconds()
        self._barren_respawns = 0

    @property
    def workers(self) -> list:
        """The live worker processes (diagnostics and tests)."""
        return [slot.proc for slot in self.slots]

    def start(self) -> None:
        """Fork the workers (the caller must still be single-threaded),
        then start the router/dispatcher/supervisor thread."""
        self.slots = [self._spawn() for _ in range(self.n_workers)]
        self._wake_r, self._wake_w = os.pipe()
        self._router = threading.Thread(
            target=self._route, name="repro-fleet-router", daemon=True
        )
        self._router.start()

    def _spawn(self):
        return spawn_worker(self._mp, _fleet_worker_main, ())

    def open_ticket(self) -> tuple[int, queue_module.Queue]:
        with self._lock:
            ticket = next(self._tickets)
            mailbox: queue_module.Queue = queue_module.Queue()
            self._mailboxes[ticket] = mailbox
        return ticket, mailbox

    def close_ticket(self, ticket: int) -> None:
        with self._lock:
            self._mailboxes.pop(ticket, None)
            # Drop the ticket's queued work and retry history: no
            # mailbox will ever collect it.
            self._ready = deque(
                item for item in self._ready if item.ticket != ticket
            )
            prefix = f"{ticket}:"
            for task_id in [
                t for t in self._attempts if t.startswith(prefix)
            ]:
                del self._attempts[task_id]

    def submit(self, ticket: int, context: TaskContext, task) -> None:
        with self._lock:
            self._ready.append(_FleetItem(ticket, context, task))
        self._wake()

    def _wake(self) -> None:
        if self._wake_w is not None:
            try:
                os.write(self._wake_w, b"x")
            except OSError:
                pass

    def check_alive(self) -> None:
        """Raise :class:`JobFailed` when the fleet can no longer make
        progress — not on a worker death (the router respawns those),
        but on a respawn storm or a dead router, where a job's tasks
        would otherwise wait forever."""
        if self._stop_event.is_set():
            return
        if self._failure is not None:
            raise JobFailed(self._failure)
        if self._router is not None and not self._router.is_alive():
            raise JobFailed("fleet router thread died")

    def _deliver(self, ticket: int, message) -> None:
        with self._lock:
            mailbox = self._mailboxes.get(ticket)
        if mailbox is not None:
            mailbox.put(message)

    def _meter(self, item: _FleetItem) -> TenantMeter | None:
        if item.context.meter_path is None:
            return None
        return TenantMeter(
            item.context.meter_path,
            item.context.max_queries,
            tenant=item.context.tenant,
            max_per_minute=item.context.max_queries_per_minute,
        )

    def _settle(self, slot, message) -> None:
        """One worker result: commit its charge reservation (the
        charges stand — even for an ``"error"`` result, which spent
        real measurements exactly as an in-process run would have) and
        deliver it to the submitting job's mailbox."""
        ticket, kind, task, payload, seconds, error = message
        item, slot.item = slot.item, None
        self._barren_respawns = 0
        if item is not None:
            meter = self._meter(item)
            if meter is not None:
                meter.commit_task(item.task_id)
            self._attempts.pop(item.task_id, None)
        self._deliver(ticket, (kind, task, payload, seconds, error))

    def _reclaim(self, slot, note: str) -> None:
        """A dead or hung worker's item: roll back its partial tenant
        charges, then requeue it — or, once its attempt budget is
        spent, fail its own job (and only its own job)."""
        item, slot.item = slot.item, None
        if item is None:
            return
        meter = self._meter(item)
        if meter is not None:
            meter.rollback_task(item.task_id)
        notes = self._attempts.setdefault(item.task_id, [])
        notes.append(note)
        if len(notes) >= self._retry_budget:
            del self._attempts[item.task_id]
            self._deliver(
                item.ticket,
                ("exhausted", item.task, None, 0.0, list(notes)),
            )
            return
        with self._lock:
            self._ready.appendleft(item)  # retry first: cells may gate on it

    def _route(self) -> None:
        """The fleet's one owner thread: dispatch ready items to idle
        workers, collect results, and supervise (reap, respawn,
        requeue) — single-threaded slot state, no handoff races."""
        from multiprocessing import connection

        while not self._stop_event.is_set():
            with self._lock:
                for slot in self.slots:
                    if slot.broken or slot.item is not None \
                            or not self._ready:
                        continue
                    item = self._ready.popleft()
                    try:
                        slot.conn.send(
                            (item.ticket, item.context, item.task,
                             item.task_id)
                        )
                    except (OSError, ValueError):
                        self._ready.appendleft(item)
                        # Flag the torn pipe: the process may be alive
                        # with a beating heartbeat, and an unflagged
                        # slot would look idle forever (livelock).
                        slot.broken = True
                        continue
                    slot.item = item
            waitable = [slot.conn for slot in self.slots] + [self._wake_r]
            try:
                readable = connection.wait(waitable, timeout=POLL_SECONDS)
            except OSError:
                readable = []
            for conn in readable:
                if conn == self._wake_r:  # the wake pipe is a raw fd
                    try:
                        os.read(self._wake_r, 4096)
                    except OSError:
                        pass
                    continue
                slot = next(s for s in self.slots if s.conn is conn)
                try:
                    message = slot.conn.recv()
                except (EOFError, OSError):
                    slot.broken = True  # the sweep below reclaims it
                    continue
                self._settle(slot, message)
            for i, slot in enumerate(self.slots):  # supervision sweep
                hung = slot.stale(self._watchdog)
                if slot.proc.is_alive() and not hung and not slot.broken:
                    continue
                if self._stop_event.is_set():
                    return
                if hung:
                    kill_note = (
                        f"fleet worker hung (heartbeat silent > "
                        f"{self._watchdog:g}s); killed"
                    )
                elif slot.broken and slot.proc.is_alive():
                    kill_note = "fleet worker pipe broke; killed"
                else:
                    kill_note = None
                # Kill hung/broken-but-alive workers BEFORE draining: a
                # drain-first order races a late result into the pipe
                # between drain and kill — the task would settle AND be
                # reclaimed (double execution, double tenant charge).
                # Dead workers cannot send, so the post-kill drain still
                # collects everything they reported before dying.
                note = kill_slot(slot, kill_note)
                try:
                    while slot.conn.poll():
                        self._settle(slot, slot.conn.recv())
                except (EOFError, OSError):
                    pass
                slot.close()
                self._barren_respawns += 1
                if self._barren_respawns > 3 * len(self.slots) + \
                        self._retry_budget:
                    self._failure = (
                        f"fleet workers died {self._barren_respawns} times "
                        f"without completing a task (last: {note})"
                    )
                    self._reclaim(slot, note)
                    return
                self._reclaim(slot, note)
                self.slots[i] = self._spawn()

    def shutdown(self) -> None:
        """Reap the fleet: sentinels, bounded joins, terminate
        stragglers (a stopping daemon must not leave orphans)."""
        self._stop_event.set()
        self._wake()
        if self._router is not None:
            self._router.join(timeout=5.0)
        for slot in self.slots:
            if slot.proc.is_alive():
                try:
                    slot.conn.send(None)
                except (OSError, ValueError):
                    pass
        for slot in self.slots:
            slot.proc.join(timeout=5.0)
            if slot.proc.is_alive():
                slot.proc.terminate()
                slot.proc.join(timeout=5.0)
            slot.close()
        for fd in (self._wake_r, self._wake_w):
            if fd is not None:
                try:
                    os.close(fd)
                except OSError:
                    pass
        self._wake_r = self._wake_w = None


def run_on_fleet(fleet: WorkerFleet, context: TaskContext, cell_tasks,
                 provision_tasks, cell_triples, max_inflight: int,
                 partitions=None):
    """Drive one job's tasks through the shared fleet: yields
    ``(task, payload, seconds)`` per completed provision or cell task,
    completion order.

    The fleet analogue of :func:`~repro.service.scheduler.run_stealing`
    — identical gating (a cell enqueues the moment its last missing
    triple lands) and identical sub-task handling (``partitions`` maps
    cell index -> partition plan; sub-task completions are internal,
    the cell completes via its replaying
    :class:`~repro.service.scheduler.AssembleTask`) — with two
    differences: tasks go to the *shared* persistent fleet instead of a
    private team, and ``max_inflight`` bounds this job's
    concurrently-dispatched tasks (the job's ``n_workers``), which both
    shares the fleet fairly between concurrent jobs and makes a
    1-worker job's cells execute strictly sequentially — the property
    per-tenant quota determinism rides on.  Sub-tasks are unmetered by
    construction, so their reservation/rollback traffic is zero-charge
    and the AssembleTask's charges commit under the same ``("cell",
    index)`` reservation id a scalar cell's would.
    """
    partitions = dict(partitions or {})
    blocked = {
        task: set(cell_triples.get(getattr(task, "index", None), ()))
        for task in cell_tasks
    }
    waiters: dict[tuple, list] = {}
    for task in cell_tasks:
        for triple in blocked[task]:
            waiters.setdefault(triple, []).append(task)
    outstanding: dict[int, int] = {}  # cell index -> unabsorbed sub-tasks
    ready = deque(provision_tasks)  # provisioning first: it unblocks cells

    def release(task):
        plan = partitions.get(getattr(task, "index", None))
        if plan is None:
            ready.append(task)
            return
        parts = plan.initial_parts()
        outstanding[task.index] = len(parts)
        for part_id, part in parts:
            ready.append(SubTask(task.index, part_id, task.cell, part))

    for task in cell_tasks:
        if not blocked[task]:
            release(task)
    total = len(cell_tasks) + len(provision_tasks)
    ticket, mailbox = fleet.open_ticket()
    inflight = 0
    done = 0
    try:
        while done < total:
            while ready and inflight < max_inflight:
                fleet.submit(ticket, context, ready.popleft())
                inflight += 1
            try:
                kind, task, payload, seconds, error = mailbox.get(
                    timeout=POLL_SECONDS
                )
            except queue_module.Empty:
                fleet.check_alive()
                continue
            inflight -= 1
            if kind == "exhausted":
                # This task's workers died/hung through its whole retry
                # budget; only THIS job fails — the fleet healed itself
                # and every other job keeps running.
                raise TaskRetriesExhausted(task.label(), error)
            if kind == "error":
                raise JobFailed(f"task {task.label()!r} failed:\n{error}")
            if isinstance(task, SubTask):
                plan = partitions[task.index]
                new_parts = plan.absorb(task.part_id, payload)
                outstanding[task.index] += len(new_parts) - 1
                for part_id, part in new_parts:
                    ready.append(
                        SubTask(task.index, part_id, task.cell, part)
                    )
                if outstanding[task.index] == 0:
                    ready.append(
                        AssembleTask(task.index, task.cell, plan.script())
                    )
                continue
            done += 1
            if isinstance(task, ProvisionTask):
                for waiter in waiters.pop(task.triple, ()):
                    pending = blocked[waiter]
                    pending.discard(task.triple)
                    if not pending:
                        release(waiter)
            yield task, payload, seconds
    finally:
        fleet.close_ticket(ticket)


# ---------------------------------------------------------------------------
# The service facade over the fleet
# ---------------------------------------------------------------------------


class _FleetService(FoundryService):
    """A :class:`FoundryService` whose execution hooks route every task
    to the daemon's persistent fleet — the daemon process itself never
    simulates, and validation / journal replay / result assembly stay
    the inherited (differentially guarded) code paths."""

    def __init__(self, daemon: "FoundryDaemon", tenant: TenantConfig):
        super().__init__(
            n_workers=daemon.fleet.n_workers, scheduler=daemon.scheduler
        )
        self._daemon = daemon
        self._tenant = tenant

    def _task_context(self, backend, store_path) -> TaskContext:
        return TaskContext(
            backend=backend,
            store_path=store_path,
            tenant=self._tenant.name,
            meter_path=str(self._daemon.meter_path(self._tenant.name)),
            max_queries=self._tenant.max_queries,
            max_queries_per_minute=self._tenant.max_queries_per_minute,
        )

    def _campaign_runner(self, job, todo, n_workers, scheduler, journal):
        return self._campaign_fleet(job, todo, n_workers, journal), n_workers

    def _campaign_fleet(self, job, todo, n_workers, journal):
        store_path = job.calibration_store or (
            journal.calibration_store_path() if journal else None
        )
        store = CalibrationStore(store_path)
        # clear_locks=False: unlike the per-job service, a concurrent
        # job of this daemon may hold a *live* lock on a shared triple;
        # crashed-holder debris was swept once at daemon startup.
        cell_tasks, provision_tasks, cell_triples = plan_campaign_tasks(
            todo, store, clear_locks=False
        )
        events = run_on_fleet(
            self._daemon.fleet,
            self._task_context(job.backend, store_path),
            cell_tasks,
            provision_tasks,
            cell_triples,
            max_inflight=n_workers,
            partitions=plan_cell_partitions(todo),
        )
        yield from journal_task_events(events, journal)

    def _provision_runner(self, job, missing, n_workers, store):
        events = run_on_fleet(
            self._daemon.fleet,
            self._task_context(job.backend, str(store.path)),
            [],
            [ProvisionTask(t) for t in missing],
            {},
            max_inflight=n_workers,
        )
        for task, payload, seconds in events:
            yield TaskEvent("provision", task.label(), None, payload, seconds)

    def _experiment_events(self, job):
        from repro.experiments.runner import REGISTRY

        selected = list(REGISTRY)
        if job.names:
            selected = [name for name in selected if name in job.names]
        tasks = [
            ExperimentTask(name, job.full, position)
            for position, name in enumerate(selected)
        ]
        # max_inflight=1: experiments stream in report order, exactly
        # like the in-process registry loop.
        events = run_on_fleet(
            self._daemon.fleet,
            self._task_context(job.backend, None),
            tasks,
            [],
            {},
            max_inflight=1,
        )
        results = []
        for task, payload, seconds in events:
            results.append(payload)
            yield TaskEvent("experiment", task.name, task.position, payload,
                            seconds)
        return results


# ---------------------------------------------------------------------------
# The daemon
# ---------------------------------------------------------------------------


class DaemonJob:
    """One submitted job's server-side record: the in-process handle,
    the wire-encoded event log, and a condition variable every
    connection handler waits on."""

    def __init__(self, job_id: str, tenant: TenantConfig, job, handle):
        self.job_id = job_id
        self.tenant = tenant
        self.job = job
        self.handle = handle  # None for a terminal stub loaded at restart
        self.status = JobStatus.PENDING if handle is not None else None
        self.events: list[dict] = []
        self.result_text: str | None = None
        self.error: str | None = None
        self.cond = threading.Condition()
        self.cancel_requested = False
        self.drain_cancelled = False
        self.admitted = False


class FoundryDaemon:
    """Long-lived, multi-tenant job server over the foundry service.

    Args:
        root: The daemon's state directory — shared calibration store
            (``calstore/``), per-job journals (``jobs/<job_id>/``),
            tenant meters (``tenants/``) and the default socket.
        socket: Address to listen on — a Unix socket path or
            ``host:port``; defaults to ``REPRO_SERVICE_SOCKET``, else
            ``<root>/daemon.sock``.
        n_workers: Persistent fleet size; None resolves
            ``REPRO_SERVICE_WORKERS`` (the service convention).
        tenants: :class:`TenantConfig` records for tenants with
            non-default priority or a query quota; unknown tenants are
            admitted with defaults (priority 0, unlimited).
        scheduler: Default campaign scheduler mode name (validated).
        max_active: Concurrently *running* jobs; queued jobs beyond it
            wait in PENDING, admitted highest tenant priority first.
            Defaults to ``max(2, n_workers)``.
        name: This daemon's identity on a *shared* root.  Several
            daemons may serve one root (the gateway's scale-out
            topology); each persisted job records its owner, and
            restart recovery re-admits only this daemon's own jobs —
            otherwise every daemon on the root would re-run every job.
            Single-daemon roots can ignore it (default ``"daemon"``).

    Use ``start()``/``stop()`` to embed (tests do), or :meth:`run` as
    the blocking CLI entry point with SIGTERM/SIGINT drain semantics.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        socket: str | None = None,
        n_workers: int | None = None,
        tenants=(),
        scheduler: str = "stealing",
        max_active: int | None = None,
        name: str | None = None,
    ):
        self.root = Path(root)
        self.name = name or "daemon"
        #: Injectable clock for the submission-rate bucket (tests pin
        #: it; worker-side measurement buckets always use real time).
        self.clock = time.monotonic
        self.root.mkdir(parents=True, exist_ok=True)
        self.address = socket or default_address() or str(self.root / "daemon.sock")
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; known: {SCHEDULERS}"
            )
        self.scheduler = scheduler
        n = n_workers if n_workers is not None else default_worker_count()
        self.fleet = WorkerFleet(n)
        if max_active is None:
            max_active = max(2, n)
        validate_worker_count(max_active, "max_active")
        self.max_active = max_active
        self.tenants = {config.name: config for config in tenants}
        self._jobs: dict[str, DaemonJob] = {}
        self._queue: list = []
        self._seq = itertools.count()
        self._active = 0
        self._lock = threading.RLock()
        self._state_cond = threading.Condition(self._lock)
        self._draining = False
        self._stop_event = threading.Event()
        self._shutdown_requested = threading.Event()
        self._listener = None
        self._accept_thread = None
        self._started = False

    # -- paths ------------------------------------------------------------

    def store_path(self) -> Path:
        """The daemon-wide shared calibration store directory."""
        return self.root / "calstore"

    def jobs_root(self) -> Path:
        return self.root / "jobs"

    def job_dir(self, job_id: str) -> Path:
        return self.jobs_root() / job_id

    def meter_path(self, tenant: str) -> Path:
        return self.root / "tenants" / f"{tenant}.count"

    def tenant_meter(self, tenant: str) -> TenantMeter:
        """The (parent-side view of the) tenant's query meter."""
        config = self.tenant(tenant)
        return TenantMeter(
            self.meter_path(tenant), config.max_queries, tenant=tenant,
            max_per_minute=config.max_queries_per_minute,
        )

    def tenant(self, name: str) -> TenantConfig:
        return self.tenants.get(name) or TenantConfig(name=name)

    def submit_bucket(self, tenant: TenantConfig) -> TokenBucket | None:
        """The tenant's submission-rate bucket, or None when unlimited.
        Keyed by file path under the (possibly shared) root, so every
        daemon and gateway on the root debits one tenant-wide limit."""
        if tenant.max_submits_per_minute is None:
            return None
        return TokenBucket(
            self.root / "tenants" / f"{tenant.name}.submits",
            tenant.max_submits_per_minute,
            tenant=tenant.name,
            kind="submission",
            clock=self.clock,
        )

    # -- lifecycle --------------------------------------------------------

    def start(self) -> int:
        """Bring the daemon up; returns the number of stale store locks
        swept.

        Order matters: sweep crashed-holder lock debris and fork the
        fleet *first*, while this process is still single-threaded
        (fork safety), then recover journaled jobs and finally open the
        front door.
        """
        if self._started:
            raise RuntimeError("daemon already started")
        swept = CalibrationStore(self.store_path()).clear_locks()
        self.fleet.start()
        self._started = True
        self._recover()
        self._listener = bind(self.address)
        self._listener.settimeout(POLL_SECONDS)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-daemon-accept", daemon=True
        )
        self._accept_thread.start()
        return swept

    def run(self) -> None:
        """Blocking CLI entry point with signal-driven drain: SIGTERM
        (and SIGINT) stops admission, cancels in-flight jobs at the
        next task boundary — their finished cells are already
        journaled, and they are *not* marked terminal, so a restart on
        the same root resumes them — and exits."""
        import signal

        def _on_signal(signum, frame):
            self._shutdown_requested.set()

        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)
        self.start()
        try:
            self._shutdown_requested.wait()
        finally:
            self.stop(drain_cancel=True)

    def stop(self, drain_cancel: bool = False) -> None:
        """Tear the daemon down.

        With ``drain_cancel`` (the SIGTERM path) in-flight jobs are
        cancelled at the next task boundary and left *resumable* (no
        terminal marker); without it the caller is expected to have
        drained already (or accepts killing the fleet under running
        jobs — their journals stay consistent either way).
        """
        if not self._started:
            return
        self._shutdown_requested.set()
        with self._lock:
            self._draining = True
            active = [
                djob for djob in self._jobs.values()
                if djob.admitted and djob.status not in TERMINAL_STATUSES
                and djob.status is not None
            ]
        if drain_cancel:
            for djob in active:
                self.cancel_job(djob.job_id, drain=True)
            with self._state_cond:
                self._state_cond.wait_for(
                    lambda: self._active == 0, timeout=60.0
                )
        self._stop_event.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        self.fleet.shutdown()
        family_is_unix = os.sep in self.address or ":" not in self.address
        if family_is_unix:
            try:
                os.unlink(self.address)
            except OSError:
                pass
        self._started = False

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting new jobs and wait for every queued and
        running job to finish; returns False on timeout."""
        with self._state_cond:
            self._draining = True
            return self._state_cond.wait_for(
                lambda: self._active == 0
                and not any(
                    djob.status is JobStatus.PENDING
                    for djob in self._jobs.values()
                ),
                timeout=timeout,
            )

    # -- submission and admission ----------------------------------------

    def submit_job(self, tenant_name: str, job, job_id: str | None = None,
                   rate_exempt: bool = False):
        """Admit ``job`` for ``tenant_name``: returns ``(DaemonJob,
        attached)`` where ``attached`` is True when an identical live
        submission already existed (idempotent resubmission).

        A resubmission of a CANCELLED or FAILED job — or of a job only
        known from a previous daemon life — is re-admitted and resumes
        from its journal.

        A genuinely *new* admission debits the tenant's submission-rate
        bucket (typed :class:`~repro.service.tenants.RateLimited`
        refusal, nothing persisted or queued); attaching is free, and
        ``rate_exempt`` skips the debit for submissions that are not
        client demand — restart recovery, and gateway forwarding of a
        submission the gateway already debited.
        """
        tenant = self.tenant(tenant_name or "default")
        with self._lock:
            if self._draining:
                raise DaemonUnavailable(
                    "daemon is draining; new submissions are refused"
                )
            jid = job_id or derive_job_id(tenant.name, job)
            existing = self._jobs.get(jid)
            if existing is not None and existing.handle is not None and (
                existing.status not in (JobStatus.CANCELLED, JobStatus.FAILED)
            ):
                return existing, True
            if not rate_exempt:
                bucket = self.submit_bucket(tenant)
                if bucket is not None:
                    bucket.take(1.0)
            prepared = self._prepare(jid, job)
            handle = _FleetService(self, tenant).submit(prepared)
            djob = DaemonJob(jid, tenant, prepared, handle)
            self._jobs[jid] = djob
            self._persist(jid, tenant.name, job)
            heapq.heappush(
                self._queue, (-tenant.priority, next(self._seq), jid)
            )
            self._maybe_admit_locked()
        return djob, False

    def _prepare(self, job_id: str, job):
        """Bind the job to the daemon's shared state: the daemon-wide
        calibration store, and a per-job journal directory so every
        campaign is resumable by default."""
        job_dir = self.job_dir(job_id)
        job_dir.mkdir(parents=True, exist_ok=True)
        if isinstance(job, CampaignJob):
            return replace(
                job,
                journal=job.journal or str(job_dir / "journal"),
                calibration_store=job.calibration_store
                or str(self.store_path()),
            )
        if isinstance(job, ProvisioningJob):
            return replace(
                job,
                calibration_store=job.calibration_store
                or str(self.store_path()),
            )
        return job

    def _persist(self, job_id: str, tenant: str, job) -> None:
        """Record the submission for restart recovery (atomic writes:
        a SIGKILL mid-persist must not leave a torn job pickle)."""
        job_dir = self.job_dir(job_id)
        for name, data in (
            ("job.pkl", pickle.dumps(job)),
            ("meta.json", json.dumps(
                {"job_id": job_id, "tenant": tenant,
                 "job_type": type(job).__name__, "owner": self.name}
            ).encode()),
        ):
            tmp = job_dir / (name + ".tmp")
            tmp.write_bytes(data)
            os.replace(tmp, job_dir / name)
        # A re-admission supersedes any previous terminal marker.
        try:
            os.unlink(job_dir / "terminal.json")
        except OSError:
            pass

    def _write_terminal(self, djob: DaemonJob) -> None:
        marker = self.job_dir(djob.job_id) / "terminal.json"
        tmp = marker.with_suffix(".tmp")
        tmp.write_text(json.dumps(
            {"status": djob.status.value, "error": djob.error}
        ))
        os.replace(tmp, marker)

    def _recover(self) -> None:
        """Re-admit every journaled job without a terminal marker —
        the restart half of drain/restart resume.  Jobs *with* a
        terminal marker load as inert records, so status queries keep
        answering; resubmitting one re-admits it (a campaign replays
        its journal, so even a COMPLETED resubmission is cheap)."""
        jobs_root = self.jobs_root()
        if not jobs_root.is_dir():
            return
        for job_dir in sorted(jobs_root.iterdir()):
            meta_path = job_dir / "meta.json"
            job_path = job_dir / "job.pkl"
            if not (meta_path.is_file() and job_path.is_file()):
                continue
            try:
                meta = json.loads(meta_path.read_text())
                if meta.get("owner", self.name) != self.name:
                    # Another daemon on this shared root owns this job
                    # (gateway scale-out); recovering it here would run
                    # it twice.  A record persisted before owners
                    # existed has no field and counts as ours.
                    continue
                terminal_path = job_dir / "terminal.json"
                if terminal_path.is_file():
                    terminal = json.loads(terminal_path.read_text())
                    stub = DaemonJob(
                        meta["job_id"], self.tenant(meta["tenant"]),
                        None, None,
                    )
                    stub.status = JobStatus(terminal["status"])
                    stub.error = terminal.get("error")
                    with self._lock:
                        self._jobs[meta["job_id"]] = stub
                    continue
                with open(job_path, "rb") as fh:
                    job = pickle.load(fh)
                # rate_exempt: recovery is not client demand — a
                # restart must never be refused by the submit bucket.
                self.submit_job(meta["tenant"], job, job_id=meta["job_id"],
                                rate_exempt=True)
            except (OSError, ValueError, KeyError, pickle.PickleError) as exc:
                # A torn record (the kill landed mid-persist) is not
                # recoverable state — skip it rather than refuse to start.
                print(f"repro-daemon: skipping {job_dir.name}: {exc}")

    def _maybe_admit_locked(self) -> None:
        while self._queue and self._active < self.max_active:
            _, _, jid = heapq.heappop(self._queue)
            djob = self._jobs.get(jid)
            if djob is None or djob.status is not JobStatus.PENDING \
                    or djob.admitted:
                continue
            djob.admitted = True
            self._active += 1
            threading.Thread(
                target=self._run_job, args=(djob,),
                name=f"repro-job-{jid}", daemon=True,
            ).start()

    def _run_job(self, djob: DaemonJob) -> None:
        handle = djob.handle
        with djob.cond:
            if not djob.cancel_requested:
                djob.status = JobStatus.RUNNING
            djob.cond.notify_all()
        error = None
        status = JobStatus.FAILED
        try:
            for event in handle.stream():
                wire = event_to_wire(event)
                with djob.cond:
                    djob.events.append(wire)
                    djob.cond.notify_all()
                if djob.cancel_requested:
                    handle.cancel()
            if handle.status() is JobStatus.CANCELLED:
                status = JobStatus.CANCELLED
            else:
                djob.result_text = encode_payload(handle.result())
                status = JobStatus.COMPLETED
        except JobFailed as exc:
            error = str(exc)
        except BaseException as exc:
            error = f"{type(exc).__name__}: {exc}"
        with djob.cond:
            djob.status = status
            djob.error = error
            djob.cond.notify_all()
        if not (status is JobStatus.CANCELLED and djob.drain_cancelled):
            self._write_terminal(djob)
        with self._lock:
            self._active -= 1
            self._maybe_admit_locked()
            self._state_cond.notify_all()

    def _job(self, job_id: str) -> DaemonJob:
        with self._lock:
            djob = self._jobs.get(job_id)
        if djob is None:
            raise KeyError(f"unknown job id {job_id!r}")
        return djob

    def cancel_job(self, job_id: str, drain: bool = False) -> bool:
        """Cancel at the next task boundary; finished tasks stay
        journaled.  Returns False when the job had already finished."""
        djob = self._job(job_id)
        finish_now = False
        with djob.cond:
            if djob.status in TERMINAL_STATUSES or djob.status is None:
                return False
            djob.cancel_requested = True
            if drain:
                djob.drain_cancelled = True
            if not djob.admitted:
                # Still queued: no runner thread will report for it.
                djob.handle.cancel()
                djob.status = JobStatus.CANCELLED
                djob.cond.notify_all()
                finish_now = True
        if finish_now:
            if not drain:
                self._write_terminal(djob)
            with self._lock:
                self._state_cond.notify_all()
        return True

    # -- the socket front door -------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop_event.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket_module.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._serve_conn, args=(conn,), daemon=True
            ).start()

    def _serve_conn(self, conn) -> None:
        try:
            while not self._stop_event.is_set():
                frame = recv_frame(conn)
                if frame is None:
                    return
                op = frame.get("op")
                handler = getattr(self, f"_op_{op}", None)
                if handler is None:
                    send_frame(conn, {
                        "ok": False, "kind": "ProtocolError",
                        "error": f"unknown op {op!r}",
                    })
                    continue
                try:
                    handler(conn, frame)
                except (BrokenPipeError, ConnectionResetError):
                    return
                except Exception as exc:
                    send_frame(conn, {
                        "ok": False, "kind": type(exc).__name__,
                        "error": str(exc),
                    })
        except (ProtocolError, OSError):
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _op_submit(self, conn, frame) -> None:
        job = decode_payload(frame["job"])
        djob, attached = self.submit_job(
            frame.get("tenant") or "default", job, frame.get("job_id"),
            rate_exempt=bool(frame.get("rate_exempt")),
        )
        send_frame(conn, {
            "ok": True, "job_id": djob.job_id, "attached": attached,
        })

    def _op_status(self, conn, frame) -> None:
        djob = self._job(frame["job_id"])
        with djob.cond:
            send_frame(conn, {
                "ok": True,
                "status": djob.status.value,
                "n_events": len(djob.events),
                "error": djob.error,
                "tenant": djob.tenant.name,
            })

    def _op_jobs(self, conn, frame) -> None:
        with self._lock:
            jobs = {
                jid: {
                    "tenant": djob.tenant.name,
                    "status": djob.status.value if djob.status else "unknown",
                    "n_events": len(djob.events),
                }
                for jid, djob in self._jobs.items()
            }
        send_frame(conn, {"ok": True, "jobs": jobs, "draining": self._draining})

    def _op_ping(self, conn, frame) -> None:
        with self._lock:
            n_jobs = len(self._jobs)
            active = self._active
        send_frame(conn, {
            "ok": True,
            "pid": os.getpid(),
            "name": self.name,
            "workers": self.fleet.n_workers,
            "n_jobs": n_jobs,
            "active": active,
            "draining": self._draining,
            "tenants": {
                name: {
                    "priority": config.priority,
                    "max_queries": config.max_queries,
                    "n_queries": self.tenant_meter(name).n_queries(),
                    "max_submits_per_minute": config.max_submits_per_minute,
                    "max_queries_per_minute": config.max_queries_per_minute,
                }
                for name, config in self.tenants.items()
            },
        })

    def _op_events(self, conn, frame) -> None:
        """Stream the job's event log from ``start``, then an ``end``
        frame with the terminal status (buffer-replay: every consumer
        sees the full log, matching ``JobHandle.stream()``)."""
        djob = self._job(frame["job_id"])
        i = int(frame.get("start", 0))
        while True:
            with djob.cond:
                if len(djob.events) <= i and (
                    djob.status not in TERMINAL_STATUSES
                    and djob.status is not None
                ):
                    djob.cond.wait(timeout=POLL_SECONDS)
                batch = list(djob.events[i:])
                done = (
                    djob.status in TERMINAL_STATUSES or djob.status is None
                )
                status = djob.status
                error = djob.error
                result_text = djob.result_text
            for wire in batch:
                send_frame(conn, {"event": wire})
            i += len(batch)
            if done and not batch:
                send_frame(conn, {"end": {
                    "status": status.value if status else "unknown",
                    "error": error,
                    "result": result_text,
                }})
                return
            if self._stop_event.is_set():
                return

    def _op_result(self, conn, frame) -> None:
        djob = self._job(frame["job_id"])
        timeout = frame.get("timeout")
        deadline = None if timeout is None else time.monotonic() + timeout
        with djob.cond:
            while djob.status not in TERMINAL_STATUSES \
                    and djob.status is not None:
                if self._stop_event.is_set():
                    send_frame(conn, {
                        "ok": False, "kind": "DaemonUnavailable",
                        "error": "daemon is shutting down",
                    })
                    return
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    send_frame(conn, {
                        "ok": False, "kind": "Timeout",
                        "status": djob.status.value,
                        "n_events": len(djob.events),
                    })
                    return
                djob.cond.wait(timeout=POLL_SECONDS if remaining is None
                               else min(POLL_SECONDS, remaining))
            status = djob.status
            error = djob.error
            result_text = djob.result_text
            n_events = len(djob.events)
        if status is JobStatus.COMPLETED:
            if result_text is None:  # terminal stub from a previous life
                send_frame(conn, {
                    "ok": False, "kind": "RuntimeError",
                    "error": "result not retained across a daemon restart; "
                             "resubmit the job to replay it from its journal",
                })
                return
            send_frame(conn, {"ok": True, "result": result_text})
        elif status is JobStatus.CANCELLED:
            send_frame(conn, {
                "ok": False, "kind": "JobCancelled",
                "error": f"job cancelled after {n_events} completed tasks",
            })
        else:
            send_frame(conn, {
                "ok": False, "kind": "JobFailed",
                "error": error or "job failed",
            })

    def _op_cancel(self, conn, frame) -> None:
        cancelled = self.cancel_job(frame["job_id"])
        send_frame(conn, {"ok": True, "cancelled": cancelled})

    def _op_drain(self, conn, frame) -> None:
        drained = self.drain(timeout=frame.get("timeout"))
        send_frame(conn, {"ok": True, "drained": drained})
        if frame.get("shutdown", True):
            self._shutdown_requested.set()
