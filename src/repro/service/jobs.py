"""Job descriptions and lifecycle vocabulary of the foundry service.

A *job* is a picklable, declarative description of a unit of service
work — a whole attack campaign (:class:`CampaignJob`), a fleet
provisioning pass (:class:`ProvisioningJob`) or a run of registered
experiments (:class:`ExperimentJob`).  Jobs carry no behaviour: the
:class:`~repro.service.service.FoundryService` validates them up front
at ``submit`` time and executes them through the scheduler, emitting
one :class:`TaskEvent` per completed task and moving the handle
through the :class:`JobStatus` lifecycle
(``PENDING -> RUNNING -> COMPLETED`` / ``FAILED`` / ``CANCELLED``).

Cells whose attack adapter declares a partition plan
(:meth:`~repro.campaigns.attacks.Attack.partition`) are shattered into
scheduler-internal sub-tasks; those never surface here.  A partitioned
cell still emits exactly one ``"cell"`` :class:`TaskEvent` — fired when
the parent's sequential-replay assembly completes — with a payload
bit-identical to the unpartitioned cell's, so streaming consumers and
journals cannot tell the difference.

Worker counts everywhere in the service follow one convention,
mirrored on ``REPRO_ENGINE_THREADS``: a count must be a positive
integer (``1`` runs in-process), rejected up front with the valid
range in the error.  ``REPRO_SERVICE_WORKERS`` supplies the default
for jobs that do not pin one.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field

#: Environment variable naming the default worker count for jobs that
#: do not pin one (unset or empty means in-process execution).
SERVICE_WORKERS_ENV = "REPRO_SERVICE_WORKERS"

#: Environment variable naming the per-task attempt budget: a task
#: whose worker dies or hangs is requeued and re-executed until it has
#: consumed this many attempts, then fails its job with
#: :class:`TaskRetriesExhausted`.  Unset or empty means the default.
TASK_RETRIES_ENV = "REPRO_TASK_RETRIES"

#: Attempts per task when ``REPRO_TASK_RETRIES`` is unset: first
#: execution plus two retries.
DEFAULT_TASK_RETRIES = 3

#: Environment variable naming the hung-worker watchdog threshold,
#: seconds: a worker whose heartbeat has been silent this long while
#: holding a task is killed, respawned, and its task requeued.  Unset,
#: empty or 0 disables the watchdog.  Heartbeats tick while a task
#: computes (a worker-side thread), so long tasks never trip it — only
#: a genuinely frozen process does.
TASK_TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"

#: The scheduler modes a campaign job may request.
SCHEDULERS = ("stealing", "static")


class JobStatus(enum.Enum):
    """Lifecycle of a submitted job."""

    PENDING = "pending"      #: submitted, not yet driven
    RUNNING = "running"      #: at least one task dispatched
    COMPLETED = "completed"  #: every task finished, result available
    FAILED = "failed"        #: a task raised; ``result()`` re-raises
    CANCELLED = "cancelled"  #: cancelled; finished tasks stay journaled


class JobFailed(RuntimeError):
    """A task of the job raised; the message names the failing task."""


class TaskRetriesExhausted(JobFailed):
    """One task consumed its whole attempt budget (worker deaths,
    hung-worker reclaims) without completing.

    A single worker death no longer fails a job — the scheduler
    respawns the worker and requeues the task — so reaching this
    exception means *every* attempt was lost to infrastructure.  The
    per-attempt failure descriptions ride along so the operator can see
    whether the attempts died the same way (a task that reliably OOMs
    its worker) or differently (a flaky host).

    Attributes:
        label: The failing task's label.
        attempts: One human-readable description per lost attempt, in
            order (exit codes for deaths, watchdog notes for hangs).
    """

    def __init__(self, label: str, attempts):
        self.label = label
        self.attempts = list(attempts)
        lines = "\n".join(
            f"  attempt {i}: {note}"
            for i, note in enumerate(self.attempts, start=1)
        )
        super().__init__(
            f"task {label!r} exhausted its {len(self.attempts)}-attempt "
            f"retry budget ({TASK_RETRIES_ENV}):\n{lines}"
        )


class JobCancelled(RuntimeError):
    """The job was cancelled before completing."""


class JournalMismatch(ValueError):
    """The named journal belongs to a different job (fingerprint clash)."""


def validate_worker_count(value, name: str = "n_workers") -> int:
    """Validate a worker count up front (the REPRO_ENGINE_THREADS
    convention: positive integer, valid range in the error)."""
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ValueError(
            f"{name} must be a positive integer "
            f"(valid range: >= 1, where 1 runs in-process), got {value!r}"
        )
    return value


def default_worker_count() -> int:
    """Resolve the service-wide default worker count from
    ``REPRO_SERVICE_WORKERS`` (unset or empty means 1, in-process)."""
    raw = os.environ.get(SERVICE_WORKERS_ENV)
    if raw is None or raw.strip() == "":
        return 1
    try:
        n = int(raw)
    except ValueError:
        n = -1
    if n < 1:
        raise ValueError(
            f"{SERVICE_WORKERS_ENV} must be a positive integer "
            f"(valid range: >= 1, or unset for in-process execution), "
            f"got {raw!r}"
        )
    return n


def task_retry_budget() -> int:
    """Resolve the per-task attempt budget from ``REPRO_TASK_RETRIES``
    (the worker-count convention: positive integer, valid range in the
    error; unset or empty means :data:`DEFAULT_TASK_RETRIES`)."""
    raw = os.environ.get(TASK_RETRIES_ENV)
    if raw is None or raw.strip() == "":
        return DEFAULT_TASK_RETRIES
    try:
        n = int(raw)
    except ValueError:
        n = -1
    if n < 1:
        raise ValueError(
            f"{TASK_RETRIES_ENV} must be a positive integer "
            f"(valid range: >= 1, where 1 means no retries), got {raw!r}"
        )
    return n


def task_timeout_seconds() -> float | None:
    """Resolve the hung-worker watchdog threshold from
    ``REPRO_TASK_TIMEOUT`` (seconds of heartbeat silence; unset, empty
    or 0 disables the watchdog)."""
    raw = os.environ.get(TASK_TIMEOUT_ENV)
    if raw is None or raw.strip() == "":
        return None
    try:
        seconds = float(raw)
    except ValueError:
        seconds = -1.0
    if seconds < 0:
        raise ValueError(
            f"{TASK_TIMEOUT_ENV} must be a non-negative number of seconds "
            f"(0 or unset disables the watchdog), got {raw!r}"
        )
    return seconds if seconds > 0 else None


@dataclass(frozen=True)
class TaskEvent:
    """One completed task, streamed through ``JobHandle.stream()``.

    Attributes:
        kind: ``"cell"`` (an executed campaign cell), ``"replay"`` (a
            cell served from the job journal), ``"provision"`` (a die
            calibration), or ``"experiment"`` (one registry entry).
        label: Human-readable task tag.
        index: Position of the task in the job's own ordering (cell
            index, experiment position), None for provisioning.
        payload: The task's result — an
            :class:`~repro.campaigns.report.AttackReport`, an
            ``ExperimentResult``, or a provisioning triple/count.
        seconds: Wall-clock seconds the task took (journal replays
            carry the original run's timing).
    """

    kind: str
    label: str
    index: int | None = None
    payload: object = None
    seconds: float = 0.0


@dataclass(frozen=True)
class CampaignJob:
    """Execute a list of campaign cells and assemble a
    :class:`~repro.campaigns.campaign.CampaignResult`.

    Attributes:
        cells: The independent cells, in report order (see
            :func:`~repro.campaigns.campaign.expand_matrix`).
        n_workers: Worker processes; None resolves
            ``REPRO_SERVICE_WORKERS`` (default 1, in-process).
        backend: Optional engine backend for the whole job.
        calibration_store: Directory of the cross-process calibration
            store workers share; None uses the journal's store when a
            journal is named, else a job-private temporary directory.
        journal: Directory of the on-disk job journal.  Completed cells
            persist there as they finish, so resubmitting the identical
            job resumes from the finished cells bit-identically; a
            journal written by a *different* cell list is rejected with
            :class:`JournalMismatch`.
        scheduler: ``"stealing"`` (shared task queue, workers pull as
            they free up — the default) or ``"static"`` (contiguous
            pre-assigned shards; the naive baseline the imbalanced-fleet
            benchmark guards against).  None inherits the service's
            default.
    """

    cells: tuple = ()
    n_workers: int | None = None
    backend: str | None = None
    calibration_store: str | None = None
    journal: str | None = None
    scheduler: str | None = None

    def validate(self) -> None:
        """Reject malformed jobs up front, before any work happens."""
        if self.scheduler is not None and self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; known: {SCHEDULERS}"
            )
        if self.n_workers is not None:
            validate_worker_count(self.n_workers)


@dataclass(frozen=True)
class ProvisioningJob:
    """Fleet-calibrate ``(lot_seed, chip_id, standard_index)`` triples
    into a calibration store; the result is the number computed.

    With one worker the pass runs as a single parent-side lockstep
    :func:`~repro.campaigns.campaign.provision_fleet` batch; with more,
    each missing triple becomes a first-class task on the scheduler's
    shared queue.
    """

    triples: tuple = ()
    calibration_store: str | None = None
    backend: str | None = None
    n_workers: int | None = None

    def validate(self) -> None:
        if self.calibration_store is None:
            raise ValueError("ProvisioningJob requires a calibration_store")
        for triple in self.triples:
            if len(tuple(triple)) != 3:
                raise ValueError(
                    f"provisioning triples are (lot_seed, chip_id, "
                    f"standard_index), got {triple!r}"
                )
        if self.n_workers is not None:
            validate_worker_count(self.n_workers)


@dataclass(frozen=True)
class ExperimentJob:
    """Run registered experiments (the runner's registry) in report
    order; the result is the list of ``ExperimentResult`` tables."""

    names: tuple | None = None
    full: bool = False
    backend: str | None = None

    def validate(self) -> None:
        if self.names:
            from repro.experiments.runner import REGISTRY

            unknown = set(self.names) - set(REGISTRY)
            if unknown:
                raise KeyError(
                    f"unknown experiment(s) {sorted(unknown)}; "
                    f"known: {sorted(REGISTRY)}"
                )
