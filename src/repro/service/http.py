"""JSON-over-HTTP facade: the *untrusted* front door of the service.

The frame protocol (:mod:`~repro.service.protocol`) moves pickles and
is trusted-local by design — never expose it to clients you do not
control.  :class:`FoundryHTTPFrontend` is the boundary for everyone
else: a stdlib :mod:`http.server` translator that accepts **only
JSON**, validates the documented job schema server-side
(:func:`job_from_json`), and only then constructs the real job objects
on the trusted side before forwarding them over frames to a gateway or
daemon.  Nothing a client sends is ever unpickled, no server-side path
(journal or calibration store directory) is accepted from the wire,
and responses are plain JSON built from the campaign serialization
helpers — the ``reports`` list is the deterministic artefact payload,
byte-comparable across transports.

Job schema (``POST /v1/jobs`` body)::

    {"tenant": "acme",              # optional; or X-Repro-Tenant header
     "job": {
       "type": "campaign",          # or "experiment"
       "cells": [                   # campaign only
         {"attack": "brute-force",  # a repro.campaigns.ATTACKS name
          "attack_params": {...},   # JSON scalars only
          "scenario": {             # every field optional
            "scheme": "fabric",     # a scenario TARGETS name
            "scheme_params": {...}, # JSON scalars only
            "chip": {"lot_seed": 2020, "chip_id": 0},
            "standard_index": 0, "cost": "hardware", "budget": 150,
            "max_queries": null, "n_fft": 2048,
            "seed": 0, "measurement_seed": 0}}],
       "n_workers": 2,              # optional
       "backend": "reference",      # optional engine backend
       "scheduler": "stealing",     # optional
       # experiment jobs instead take:
       "names": ["fig4"],           # optional registry filter
       "full": false}}              # optional

Endpoints::

    GET  /v1/ping                      service liveness and stats
    GET  /v1/jobs                      known jobs
    POST /v1/jobs                      submit (schema above)
    GET  /v1/jobs/<id>                 one job's status
    GET  /v1/jobs/<id>/events?start=N  poll events from index N
    GET  /v1/jobs/<id>/result?timeout=S  result (202 while running)
    POST /v1/jobs/<id>/cancel          cancel at the next task boundary
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.service.client import DaemonClient, DaemonUnavailableError
from repro.service.jobs import (
    CampaignJob,
    ExperimentJob,
    JobCancelled,
    JobFailed,
    JournalMismatch,
    SCHEDULERS,
    validate_worker_count,
)
from repro.service.protocol import (
    connect,
    event_from_wire,
    recv_frame,
    send_frame,
)
from repro.service.tenants import QueryBudgetExceeded, RateLimited

#: Refuse request bodies beyond this size (a facade for untrusted
#: clients must bound every allocation it makes on their behalf).
MAX_BODY_BYTES = 1 << 20

#: JSON scalar types allowed as attack/scheme parameter values.
_SCALARS = (str, int, float, bool, type(None))


class SchemaError(ValueError):
    """The request body does not match the documented job schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def _scalar_params(value, where: str) -> tuple:
    """A ``{name: scalar}`` JSON object as the sorted tuple-of-pairs
    the frozen dataclasses carry (the same normalisation
    ``expand_matrix`` applies, so HTTP and in-process submissions of
    one logical job derive the same job id)."""
    if value is None:
        return ()
    _require(isinstance(value, dict), f"{where} must be a JSON object")
    for key, item in value.items():
        _require(isinstance(key, str), f"{where} keys must be strings")
        _require(
            isinstance(item, _SCALARS),
            f"{where}[{key!r}] must be a JSON scalar, got "
            f"{type(item).__name__}",
        )
    return tuple(sorted(value.items()))


def _scenario_from_json(payload, where: str):
    from repro.campaigns.scenario import ChipSpec, TARGETS, ThreatScenario

    if payload is None:
        return ThreatScenario()
    _require(isinstance(payload, dict), f"{where} must be a JSON object")
    allowed = {
        "scheme", "scheme_params", "chip", "standard_index", "cost",
        "budget", "max_queries", "n_fft", "seed", "measurement_seed",
    }
    unknown = set(payload) - allowed
    _require(
        not unknown,
        f"{where} has unknown field(s) {sorted(unknown)}; "
        f"allowed: {sorted(allowed)}",
    )
    fields: dict = {}
    if "scheme" in payload:
        scheme = payload["scheme"]
        _require(isinstance(scheme, str), f"{where}.scheme must be a string")
        _require(
            scheme in TARGETS,
            f"{where}.scheme {scheme!r} unknown; known: {sorted(TARGETS)}",
        )
        fields["scheme"] = scheme
    if "scheme_params" in payload:
        fields["scheme_params"] = _scalar_params(
            payload["scheme_params"], f"{where}.scheme_params"
        )
    if "chip" in payload:
        chip = payload["chip"]
        _require(isinstance(chip, dict), f"{where}.chip must be a JSON object")
        unknown = set(chip) - {"lot_seed", "chip_id"}
        _require(
            not unknown,
            f"{where}.chip has unknown field(s) {sorted(unknown)}",
        )
        for key in ("lot_seed", "chip_id"):
            _require(
                isinstance(chip.get(key, 0), int),
                f"{where}.chip.{key} must be an integer",
            )
        fields["chip"] = ChipSpec(**chip)
    for key in ("standard_index", "budget", "n_fft", "seed",
                "measurement_seed"):
        if key in payload:
            _require(
                isinstance(payload[key], int)
                and not isinstance(payload[key], bool),
                f"{where}.{key} must be an integer",
            )
            fields[key] = payload[key]
    if "max_queries" in payload and payload["max_queries"] is not None:
        _require(
            isinstance(payload["max_queries"], int)
            and not isinstance(payload["max_queries"], bool)
            and payload["max_queries"] >= 0,
            f"{where}.max_queries must be a non-negative integer or null",
        )
        fields["max_queries"] = payload["max_queries"]
    if "cost" in payload:
        from repro.campaigns.scenario import COST_MODELS

        _require(
            payload["cost"] in COST_MODELS,
            f"{where}.cost {payload['cost']!r} unknown; "
            f"known: {sorted(COST_MODELS)}",
        )
        fields["cost"] = payload["cost"]
    return ThreatScenario(**fields)


def job_from_json(payload):
    """Validate the documented JSON job schema and build the real job
    object (trusted side).  Raises :class:`SchemaError` naming the
    offending field; never accepts server-side paths (``journal``,
    ``calibration_store``) from the wire — the daemon assigns those."""
    _require(isinstance(payload, dict), "job must be a JSON object")
    job_type = payload.get("type")
    _require(
        job_type in ("campaign", "experiment"),
        f"job.type must be 'campaign' or 'experiment', got {job_type!r}",
    )
    forbidden = {"journal", "calibration_store"} & set(payload)
    _require(
        not forbidden,
        f"job must not name server-side paths {sorted(forbidden)}; "
        f"the daemon assigns them",
    )
    backend = payload.get("backend")
    if backend is not None:
        _require(isinstance(backend, str), "job.backend must be a string")
    if job_type == "experiment":
        unknown = set(payload) - {"type", "names", "full", "backend"}
        _require(
            not unknown,
            f"experiment job has unknown field(s) {sorted(unknown)}",
        )
        names = payload.get("names")
        if names is not None:
            _require(
                isinstance(names, list)
                and all(isinstance(n, str) for n in names),
                "job.names must be a list of strings",
            )
            names = tuple(names)
        full = payload.get("full", False)
        _require(isinstance(full, bool), "job.full must be a boolean")
        job = ExperimentJob(names=names, full=full, backend=backend)
        job.validate()
        return job
    from repro.campaigns import ATTACKS
    from repro.campaigns.campaign import CampaignCell

    unknown = set(payload) - {
        "type", "cells", "n_workers", "backend", "scheduler",
    }
    _require(
        not unknown, f"campaign job has unknown field(s) {sorted(unknown)}"
    )
    cells_payload = payload.get("cells")
    _require(
        isinstance(cells_payload, list) and cells_payload,
        "job.cells must be a non-empty list",
    )
    cells = []
    for i, cell in enumerate(cells_payload):
        where = f"job.cells[{i}]"
        _require(isinstance(cell, dict), f"{where} must be a JSON object")
        unknown = set(cell) - {"attack", "attack_params", "scenario"}
        _require(
            not unknown, f"{where} has unknown field(s) {sorted(unknown)}"
        )
        attack = cell.get("attack")
        _require(
            isinstance(attack, str) and attack in ATTACKS,
            f"{where}.attack {attack!r} unknown; known: {sorted(ATTACKS)}",
        )
        cells.append(CampaignCell(
            attack=attack,
            scenario=_scenario_from_json(
                cell.get("scenario"), f"{where}.scenario"
            ),
            attack_params=_scalar_params(
                cell.get("attack_params"), f"{where}.attack_params"
            ),
        ))
    n_workers = payload.get("n_workers")
    if n_workers is not None:
        try:
            validate_worker_count(n_workers, "job.n_workers")
        except ValueError as exc:
            raise SchemaError(str(exc)) from None
    scheduler = payload.get("scheduler")
    _require(
        scheduler is None or scheduler in SCHEDULERS,
        f"job.scheduler must be one of {SCHEDULERS} or omitted, "
        f"got {scheduler!r}",
    )
    job = CampaignJob(
        cells=tuple(cells), n_workers=n_workers, backend=backend,
        scheduler=scheduler,
    )
    job.validate()
    return job


def event_to_json(event) -> dict:
    """One :class:`~repro.service.jobs.TaskEvent` as plain JSON (the
    payload through the campaign serialization helpers)."""
    from repro.campaigns.report import AttackReport
    from repro.campaigns.serialization import (
        attack_report_to_dict,
        experiment_result_to_dict,
        jsonable,
    )

    payload = event.payload
    if isinstance(payload, AttackReport):
        payload = attack_report_to_dict(payload)
    elif hasattr(payload, "experiment_id") and hasattr(payload, "rows"):
        payload = experiment_result_to_dict(payload)
    else:
        payload = jsonable(payload)
    return {
        "kind": event.kind,
        "label": event.label,
        "index": event.index,
        "seconds": event.seconds,
        "payload": payload,
    }


def result_to_json(result):
    """A job result as plain JSON.  Campaign results keep the artefact
    schema (``reports`` is the deterministic, byte-comparable part;
    ``cell_seconds`` are timings and are not)."""
    from repro.campaigns.serialization import (
        campaign_result_to_dict,
        experiment_result_to_dict,
        jsonable,
    )

    if hasattr(result, "reports") and hasattr(result, "cell_seconds"):
        return campaign_result_to_dict(result)
    if isinstance(result, list) and result and all(
        hasattr(r, "experiment_id") for r in result
    ):
        return [experiment_result_to_dict(r) for r in result]
    return jsonable(result)


class _HTTPHandler(BaseHTTPRequestHandler):
    """One request: parse, translate to frames, answer JSON.  The
    frontend instance rides on the server object."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-foundry-http/1"

    # -- plumbing ---------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.frontend.verbose:
            super().log_message(format, *args)

    @property
    def frontend(self) -> "FoundryHTTPFrontend":
        return self.server.frontend

    def _reply(self, status: int, payload) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, exc: BaseException) -> None:
        payload = {"kind": type(exc).__name__, "error": str(exc)}
        if isinstance(exc, RateLimited):
            payload["retry_after"] = exc.retry_after
        self._reply(status, payload)

    def _body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise SchemaError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte cap"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SchemaError(f"request body is not JSON: {exc}") from None
        _require(isinstance(payload, dict), "request body must be a JSON "
                                            "object")
        return payload

    def _client(self, tenant: str | None = None) -> DaemonClient:
        return DaemonClient(
            socket=self.frontend.backend,
            tenant=tenant or self.headers.get("X-Repro-Tenant")
            or self.frontend.tenant,
        )

    def _dispatch(self, method: str) -> None:
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}
        try:
            handler = self._route(method, parts)
            if handler is None:
                self._reply(404, {
                    "kind": "NotFound",
                    "error": f"no route {method} {url.path}",
                })
                return
            handler(query)
        except SchemaError as exc:
            self._error(400, exc)
        except (ValueError, TypeError, JournalMismatch) as exc:
            self._error(400, exc)
        except KeyError as exc:
            self._error(404, exc)
        except RateLimited as exc:
            self._error(429, exc)
        except QueryBudgetExceeded as exc:
            self._error(429, exc)
        except JobCancelled as exc:
            self._error(409, exc)
        except JobFailed as exc:
            self._error(500, exc)
        except (DaemonUnavailableError, ConnectionError, OSError) as exc:
            self._error(503, exc)
        except Exception as exc:  # a facade must answer, not hang up
            self._error(500, exc)

    def _route(self, method: str, parts: list):
        if len(parts) < 1 or parts[0] != "v1":
            return None
        if method == "GET" and parts[1:] == ["ping"]:
            return self._get_ping
        if parts[1:2] != ["jobs"]:
            return None
        rest = parts[2:]
        if method == "GET" and rest == []:
            return self._get_jobs
        if method == "POST" and rest == []:
            return self._post_job
        if len(rest) == 1 and method == "GET":
            return lambda q: self._get_status(rest[0], q)
        if len(rest) == 2 and method == "GET" and rest[1] == "events":
            return lambda q: self._get_events(rest[0], q)
        if len(rest) == 2 and method == "GET" and rest[1] == "result":
            return lambda q: self._get_result(rest[0], q)
        if len(rest) == 2 and method == "POST" and rest[1] == "cancel":
            return lambda q: self._post_cancel(rest[0], q)
        return None

    def do_GET(self):  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self):  # noqa: N802 - stdlib naming
        self._dispatch("POST")

    # -- endpoints --------------------------------------------------------

    def _get_ping(self, query) -> None:
        self._reply(200, self._client().ping())

    def _get_jobs(self, query) -> None:
        self._reply(200, self._client().jobs())

    def _post_job(self, query) -> None:
        body = self._body()
        unknown = set(body) - {"tenant", "job"}
        _require(
            not unknown,
            f"request has unknown field(s) {sorted(unknown)}; "
            f"expected {{'tenant'?, 'job'}}",
        )
        tenant = body.get("tenant")
        _require(
            tenant is None or isinstance(tenant, str),
            "tenant must be a string",
        )
        job = job_from_json(body.get("job"))
        handle = self._client(tenant).submit(job)
        self._reply(202, {
            "job_id": handle.job_id,
            "status_url": f"/v1/jobs/{handle.job_id}",
        })

    def _get_status(self, job_id: str, query) -> None:
        reply = self._client()._request({"op": "status", "job_id": job_id})
        self._reply(200, {
            "job_id": job_id,
            "status": reply["status"],
            "n_events": reply["n_events"],
            "error": reply.get("error"),
            "tenant": reply.get("tenant"),
        })

    def _get_events(self, job_id: str, query) -> None:
        """Poll events from ``start``: a *bounded* read of the event
        stream — status first to learn how many events exist, then read
        exactly that many off the replaying stream and hang up.  No
        long-poll: an untrusted client gets an answer and comes back."""
        try:
            start = int(query.get("start", "0"))
        except ValueError:
            raise SchemaError("start must be an integer") from None
        _require(start >= 0, "start must be >= 0")
        client = self._client()
        status = client._request({"op": "status", "job_id": job_id})
        available = int(status["n_events"])
        events = []
        if available > start:
            sock = None
            try:
                sock = connect(client.address, timeout=client.timeout)
                sock.settimeout(client.timeout)
                send_frame(sock, {
                    "op": "events", "job_id": job_id, "start": start,
                })
                while len(events) < available - start:
                    frame = recv_frame(sock)
                    if frame is None or "event" not in frame:
                        break
                    events.append(event_to_json(
                        event_from_wire(frame["event"])
                    ))
            finally:
                if sock is not None:
                    sock.close()
        self._reply(200, {
            "job_id": job_id,
            "start": start,
            "events": events,
            "next": start + len(events),
            "status": status["status"],
        })

    def _get_result(self, job_id: str, query) -> None:
        try:
            timeout = float(query.get("timeout", "0"))
        except ValueError:
            raise SchemaError("timeout must be a number") from None
        timeout = max(0.0, min(timeout, self.frontend.max_wait))
        handle = self._client().handle(job_id)
        try:
            result = handle.result(timeout=timeout)
        except TimeoutError:
            status = self._client()._request(
                {"op": "status", "job_id": job_id}
            )
            self._reply(202, {
                "job_id": job_id,
                "status": status["status"],
                "n_events": status["n_events"],
            })
            return
        self._reply(200, {
            "job_id": job_id,
            "status": "completed",
            "result": result_to_json(result),
        })

    def _post_cancel(self, job_id: str, query) -> None:
        cancelled = self._client().handle(job_id).cancel()
        self._reply(200, {"job_id": job_id, "cancelled": cancelled})


class FoundryHTTPFrontend:
    """The JSON facade server: binds ``host:port`` and translates to
    the frame protocol at ``backend`` (a gateway or daemon address).

    Args:
        backend: Frame-protocol address to forward to.
        host: HTTP bind host (default loopback; put a real proxy in
            front before exposing it wider).
        port: HTTP bind port; 0 picks a free one (see :attr:`port`).
        tenant: Default tenant for requests that name none
            (``X-Repro-Tenant`` or the body field override it).
        max_wait: Cap on the server-side seconds one
            ``/result?timeout=`` request may hold a connection.
    """

    def __init__(
        self,
        backend: str,
        host: str = "127.0.0.1",
        port: int = 0,
        tenant: str | None = None,
        max_wait: float = 60.0,
        verbose: bool = False,
    ):
        self.backend = backend
        self.tenant = tenant
        self.max_wait = max_wait
        self.verbose = verbose
        self._server = ThreadingHTTPServer((host, port), _HTTPHandler)
        self._server.daemon_threads = True
        self._server.frontend = self
        self._thread = None

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def address(self) -> str:
        host, port = self._server.server_address[:2]
        return f"{host}:{port}"

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-http", daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server.server_close()

    def serve_forever(self) -> None:
        """Blocking entry point (the CLI uses :class:`FoundryGateway.
        run` with the frontend started alongside instead)."""
        self._server.serve_forever(poll_interval=0.1)
