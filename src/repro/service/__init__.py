"""Job-oriented execution service: submit, stream, resume.

The campaign, provisioning and experiment layers used to each own
their execution loop; this package gives them one.  A
:class:`~repro.service.service.FoundryService` accepts declarative
:mod:`jobs <repro.service.jobs>` through a single
``submit(job) -> JobHandle`` API:

* :class:`~repro.service.jobs.CampaignJob` — an attack campaign's cell
  list, executed behind a **work-stealing scheduler**
  (:mod:`repro.service.scheduler`): cells are tasks on a shared queue
  that workers pull as they free up, die calibrations are first-class
  tasks that unblock their gated attack cells the moment they land —
  early-calibrated dies attack while stragglers are still calibrating
  — and imbalanced fleets pack tightly instead of idling behind a
  dominant cell;
* :class:`~repro.service.jobs.ProvisioningJob` — a fleet calibration
  pass into a shared store;
* :class:`~repro.service.jobs.ExperimentJob` — registered paper
  artefacts in report order.

The handle streams :class:`~repro.service.jobs.TaskEvent` records as
tasks complete (``stream()``), assembles the job's result
(``result()``), reports the lifecycle (``status()``) and cancels
cleanly (``cancel()``).  Completed cells journal into an on-disk
:class:`~repro.service.journal.JobJournal` as they finish, so a killed
campaign resumes from its finished cells bit-identically.

Reports are bit-identical to sequential execution across worker
counts, backends and scheduler modes — cells rebuild their chips and
seed their own RNGs, and calibrations are deterministic values read
through the shared :class:`~repro.engine.store.CalibrationStore` —
held differentially in ``tests/test_service.py``.
:func:`~repro.campaigns.campaign.run_campaign`, the experiment runner
and the example studies are thin clients of this service.

Execution is **self-healing**: supervised workers (the stealing
scheduler and the daemon fleet) that die or hang mid-task are
respawned and their task retried up to ``REPRO_TASK_RETRIES`` attempts
(a hung worker is reclaimed after ``REPRO_TASK_TIMEOUT`` seconds of
heartbeat silence), with reports byte-identical across any crash
schedule — held under the deterministic fault-injection plans of
:mod:`repro.faults` in ``tests/test_faults.py``.
"""

from repro.service.jobs import (
    CampaignJob,
    ExperimentJob,
    JobCancelled,
    JobFailed,
    JobStatus,
    JournalMismatch,
    ProvisioningJob,
    SCHEDULERS,
    SERVICE_WORKERS_ENV,
    TASK_RETRIES_ENV,
    TASK_TIMEOUT_ENV,
    TaskEvent,
    TaskRetriesExhausted,
    default_worker_count,
    task_retry_budget,
    task_timeout_seconds,
    validate_worker_count,
)
from repro.service.journal import JobJournal, cells_fingerprint
from repro.service.service import FoundryService, JobHandle
from repro.service.protocol import SERVICE_SOCKET_ENV, SERVICE_TENANT_ENV
from repro.service.tenants import (
    RateLimited,
    TenantConfig,
    TenantMeter,
    TokenBucket,
    parse_tenant_spec,
)
from repro.service.client import DaemonClient, RemoteJobHandle
from repro.service.daemon import DaemonUnavailable, FoundryDaemon, WorkerFleet
from repro.service.gateway import (
    BackendDown,
    FoundryGateway,
    GATEWAY_BACKENDS_ENV,
    rendezvous_backend,
)
from repro.service.http import FoundryHTTPFrontend, job_from_json

__all__ = [
    "BackendDown",
    "CampaignJob",
    "DaemonClient",
    "DaemonUnavailable",
    "ExperimentJob",
    "FoundryDaemon",
    "FoundryGateway",
    "FoundryHTTPFrontend",
    "FoundryService",
    "GATEWAY_BACKENDS_ENV",
    "JobCancelled",
    "JobFailed",
    "JobHandle",
    "JobJournal",
    "JobStatus",
    "JournalMismatch",
    "ProvisioningJob",
    "RateLimited",
    "RemoteJobHandle",
    "SCHEDULERS",
    "SERVICE_SOCKET_ENV",
    "SERVICE_TENANT_ENV",
    "SERVICE_WORKERS_ENV",
    "TASK_RETRIES_ENV",
    "TASK_TIMEOUT_ENV",
    "TaskEvent",
    "TaskRetriesExhausted",
    "TenantConfig",
    "TenantMeter",
    "TokenBucket",
    "WorkerFleet",
    "cells_fingerprint",
    "default_worker_count",
    "job_from_json",
    "parse_tenant_spec",
    "rendezvous_backend",
    "task_retry_budget",
    "task_timeout_seconds",
    "validate_worker_count",
]
