"""Wire protocol of the foundry daemon: length-prefixed JSON frames.

One frame is a 4-byte big-endian length followed by that many bytes of
UTF-8 JSON.  Control fields (operation, job id, tenant, status) are
plain JSON so any client can speak the protocol; *values* that must
round-trip bit-identically — submitted jobs, :class:`~repro.service.
jobs.TaskEvent` payloads, campaign results — travel as base64-encoded
pickles inside the JSON frame (:func:`encode_payload` /
:func:`decode_payload`), because an :class:`~repro.campaigns.report.
AttackReport` is a deterministic value and pickling is the identity
the journal already relies on.  The daemon is therefore a *trusted*
local service: never point a client at a socket you do not control
(pickle executes on decode), exactly like the on-disk journal.

Addresses are either a filesystem path (Unix domain socket — the
default, ``<root>/daemon.sock``) or ``host:port`` (TCP, for one lab
network sharing a daemon).  ``REPRO_SERVICE_SOCKET`` names the default
address for both the daemon and every client;
``REPRO_SERVICE_TENANT`` names the client's default tenant.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import socket
import struct

from repro import faults

#: Environment variable naming the daemon address (socket path or
#: ``host:port``) for the daemon and every client.
SERVICE_SOCKET_ENV = "REPRO_SERVICE_SOCKET"

#: Environment variable naming the client's default tenant.
SERVICE_TENANT_ENV = "REPRO_SERVICE_TENANT"

#: Refuse frames beyond this many bytes: a corrupt length prefix must
#: not look like a multi-gigabyte allocation request.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """The peer sent bytes that are not a well-formed frame."""


def encode_payload(obj) -> str:
    """Pickle ``obj`` and wrap it for a JSON frame (base64 text)."""
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def decode_payload(text: str):
    """Inverse of :func:`encode_payload`."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def send_frame(sock: socket.socket, obj: dict) -> None:
    """Send one length-prefixed JSON frame."""
    data = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    packet = _HEADER.pack(len(data)) + data
    if faults.ENABLED:
        if faults.fire("frame.drop"):
            # The frame vanishes and the connection tears, the way a
            # mid-stream network failure looks to both peers.
            raise faults.FaultInjected("fault injected: frame dropped")
        if faults.fire("frame.truncate"):
            sock.sendall(faults.torn(packet))
            raise faults.FaultInjected("fault injected: frame truncated")
    sock.sendall(packet)


def _recv_exact(
    sock: socket.socket, n: int, eof_ok: bool = False
) -> bytes | None:
    """Read exactly ``n`` bytes; None on EOF at a frame boundary.

    With ``eof_ok`` (the length-prefix read), a peer that closes
    *mid-prefix* also reads as a clean EOF: a dying peer tears its
    connection at whatever byte its kernel buffer happened to flush,
    and the first 1-3 bytes of a length prefix carry no information
    worth reporting — both the daemon loop and the client treat it
    exactly like a close between frames.  A close mid-*payload* stays a
    :class:`ProtocolError`: the peer promised ``length`` bytes and
    broke the promise, which the caller may want to distinguish (the
    client's stream resume does).
    """
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if got == 0 or eof_ok:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({got} of {n} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict | None:
    """Receive one frame; None when the peer closed cleanly — between
    frames or mid-length-prefix (see :func:`_recv_exact`)."""
    header = _recv_exact(sock, _HEADER.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed between header and body")
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(obj).__name__}")
    return obj


def event_to_wire(event) -> dict:
    """One :class:`~repro.service.jobs.TaskEvent` as a wire dict:
    control fields plain JSON, payload pickled (bit-identity)."""
    return {
        "kind": event.kind,
        "label": event.label,
        "index": event.index,
        "seconds": event.seconds,
        "payload": encode_payload(event.payload),
    }


def event_from_wire(wire: dict):
    """Inverse of :func:`event_to_wire`."""
    from repro.service.jobs import TaskEvent

    return TaskEvent(
        kind=wire["kind"],
        label=wire["label"],
        index=wire["index"],
        payload=decode_payload(wire["payload"]),
        seconds=wire["seconds"],
    )


def parse_address(spec: str) -> tuple[str, object]:
    """Classify an address spec: ``("unix", path)`` or ``("tcp", (host, port))``.

    A spec whose final colon-separated field is all digits is TCP
    (``localhost:7070``); anything else — including every filesystem
    path — is a Unix socket path.
    """
    if not spec:
        raise ValueError(
            "empty daemon address; pass a socket path or host:port "
            f"(or set {SERVICE_SOCKET_ENV})"
        )
    host, _, port = spec.rpartition(":")
    if host and port.isdigit() and os.sep not in spec:
        return "tcp", (host, int(port))
    return "unix", spec


def default_address() -> str | None:
    """The ``REPRO_SERVICE_SOCKET`` address, or None when unset."""
    spec = os.environ.get(SERVICE_SOCKET_ENV)
    return spec if spec else None


def connect(spec: str, timeout: float | None = None) -> socket.socket:
    """Open a client connection to a daemon address."""
    family, target = parse_address(spec)
    if family == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        sock.connect(target)
    except OSError:
        sock.close()
        raise
    return sock


def bind(spec: str) -> socket.socket:
    """Create the daemon's listening socket for an address.

    A stale Unix socket file left by a killed daemon is unlinked first
    — binding over it would otherwise fail forever (the filesystem
    analogue of the calibration store's crashed-holder lock debris).
    """
    family, target = parse_address(spec)
    if family == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.bind(target)
        except OSError:
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.connect(target)
            except OSError:
                probe.close()
                os.unlink(target)  # stale: nobody is listening
                sock.bind(target)
            else:
                probe.close()
                sock.close()
                raise OSError(f"a daemon is already listening on {target}")
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(target)
    sock.listen(64)
    return sock
