"""Work-stealing task scheduler with worker supervision.

The campaign layer's original sharding mapped whole cells over a
process pool — a static split that leaves workers idle whenever one
die's attack dominates the wall clock, and serialises provisioning
ahead of the whole attack phase.  This scheduler replaces that with a
work-conserving pull model: every unit of work (a die calibration, an
attack cell) is a task in one shared ready pool, the next task goes to
whichever worker frees up first, and attack cells that need a die's
calibration are *gated* — released the instant their die's
provisioning task completes, while straggler dies are still
calibrating on other workers.  Imbalanced fleets therefore pack
tightly (the dominant cell occupies one worker while the others drain
the rest), and provisioning overlaps the attack phase instead of
preceding it.

Supervision: each worker is connected to the parent by its own duplex
pipe, so the parent always knows exactly which task each worker holds
— a dead worker (exit code) or a hung one (its heartbeat thread silent
for ``REPRO_TASK_TIMEOUT`` seconds) is killed, respawned, and its task
requeued, and the job only fails once one task has consumed the whole
``REPRO_TASK_RETRIES`` attempt budget
(:class:`~repro.service.jobs.TaskRetriesExhausted`, carrying the
per-attempt failure notes).  Per-worker pipes are what make this
airtight: assignment is parent-side state (no pickup-message race to
lose a task in), and a worker killed mid-result tears only its own
channel (a shared queue's writer lock dies with its holder and wedges
every survivor).

Determinism: tasks carry their cell index, results are journaled and
assembled by index, every cell rebuilds its chip and seeds its own
RNGs, and die calibrations are deterministic values read through the
shared :class:`~repro.engine.store.CalibrationStore` — so the reports
are bit-identical to a sequential run whatever the worker count, the
dispatch order *or the crash schedule*: a retried task re-executes
identically (held differentially in ``tests/test_service.py`` and
``tests/test_faults.py``).

Sub-tasks (partitioned cells): a cell whose attack adapter declares a
partition plan (:meth:`~repro.campaigns.attacks.Attack.partition`) is
never dispatched as one :class:`CellTask`.  Instead its plan emits
:class:`SubTask` records — speculative, *unmetered* measurement slices
(brute-force key-range scores, GA population-slice scores) that are
pure functions of the cell, so a retried sub-task is trivially safe —
and the parent absorbs each result back into the plan, which may emit
further sub-tasks (the GA breeds generation ``g+1`` only after
absorbing generation ``g``).  When the plan drains, one
:class:`AssembleTask` replays the *scalar* attack against the plan's
measurement script (sequential accept-order replay: identical draws,
best-so-far updates, early exits and ``unlocks`` adjudications, with
every oracle/tenant charge committed in replay order), so the report,
``n_queries`` and the ``QueryBudgetExceeded`` refusal point are
bit-identical to the unpartitioned cell across partition sizes, worker
counts and backends.  Sub-task completions are internal — only
provision and cell (assembly) results are yielded.

The ``static`` mode pre-assigns contiguous cell shards per worker
(what naive sharding would do) and exists as the baseline the
imbalanced-fleet benchmark in ``benchmarks/test_bench_campaign.py``
guards the work-stealing speedup against; it keeps the original
unsupervised team (a dead worker fails the job), which is part of what
the baseline measures against.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass

from repro import faults
from repro.service.jobs import (
    JobFailed,
    TaskRetriesExhausted,
    task_retry_budget,
    task_timeout_seconds,
)

#: Seconds between worker-liveness checks while awaiting results.
POLL_SECONDS = 0.2

#: Seconds between a worker's heartbeat ticks.  The watchdog threshold
#: (``REPRO_TASK_TIMEOUT``) should be a comfortable multiple of this.
HEARTBEAT_SECONDS = 0.5


@dataclass(frozen=True)
class ProvisionTask:
    """Calibrate one ``(lot_seed, chip_id, standard_index)`` die into
    the shared calibration store."""

    triple: tuple

    def label(self) -> str:
        lot_seed, chip_id, standard_index = self.triple
        return f"provision lot{lot_seed}/chip{chip_id}/std{standard_index}"

    def key(self) -> tuple:
        """Stable identity for retry accounting and charge reservations."""
        return ("provision", self.triple)

    def run(self):
        from repro.campaigns.scenario import ChipSpec, provision_calibration
        from repro.receiver.standards import standard_by_index

        lot_seed, chip_id, standard_index = self.triple
        provision_calibration(
            ChipSpec(lot_seed=lot_seed, chip_id=chip_id),
            standard_by_index(standard_index),
        )
        return self.triple


@dataclass(frozen=True)
class CellTask:
    """Execute one campaign cell (the cell rebuilds its own chip and
    seeds its own RNGs, so it runs identically on any worker)."""

    index: int
    cell: object

    def label(self) -> str:
        return self.cell.label()

    def key(self) -> tuple:
        """Stable identity for retry accounting and charge reservations."""
        return ("cell", self.index)

    def run(self):
        return self.cell.execute()


@dataclass(frozen=True)
class SubTask:
    """One speculative slice of a partitioned cell's measurement work.

    The part computes raw measurement values (SNR/SFDR scores) directly
    — *never* through the metering oracle, so neither the oracle budget
    nor an installed tenant meter moves: all charges commit later, in
    replay order, inside the cell's :class:`AssembleTask`.  Sub-tasks
    are pure functions of ``(cell, part)`` with no side effects, which
    makes their retries trivially safe under supervision.
    """

    index: int
    part_id: tuple
    cell: object
    part: object

    def label(self) -> str:
        return f"{self.cell.label()} [{'/'.join(map(str, self.part_id))}]"

    def key(self) -> tuple:
        """Stable identity for retry accounting and charge reservations."""
        return ("subtask", self.index, self.part_id)

    def run(self):
        return self.part.run(self.cell)


@dataclass(frozen=True)
class AssembleTask(CellTask):
    """Sequential accept-order replay of a partitioned cell: re-runs
    the scalar attack with measurements served from the sub-tasks'
    script (live fallback when the script runs dry — e.g. a deceptive
    key pushing the search past where speculation stopped).  All
    oracle/tenant charges happen here, in replay order, under the same
    ``("cell", index)`` identity a scalar cell task would use — so the
    retry budget and the daemon's charge-reservation path treat it
    exactly like the cell it assembles, and it journals as a plain cell
    result (it *is* a :class:`CellTask`)."""

    script: object = None

    def run(self):
        return self.cell.execute_scripted(self.script)


def _worker_loop(tasks, task_queue, result_queue, backend, store_path) -> None:
    """One worker process: pull tasks until the sentinel (stealing mode,
    ``task_queue``) or the pre-assigned shard runs dry (static mode,
    ``tasks``), reporting each outcome on ``result_queue``.

    Worker initialisation matches the campaign layer exactly — a
    pristine private engine of the requested backend, reading through
    the campaign's shared calibration store — so reports cannot depend
    on which worker ran a cell.
    """
    from repro.campaigns.campaign import _worker_init

    _worker_init(backend, store_path)
    shard = list(tasks or [])
    while True:
        if task_queue is not None:
            task = task_queue.get()
        else:
            task = shard.pop(0) if shard else None
        if task is None:
            return
        start = time.perf_counter()
        try:
            payload = task.run()
        except BaseException:
            result_queue.put(
                ("error", task, None, time.perf_counter() - start,
                 traceback.format_exc())
            )
            continue
        result_queue.put(
            ("done", task, payload, time.perf_counter() - start, None)
        )


def _context():
    return multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    )


# ---------------------------------------------------------------------------
# Supervised workers (the stealing scheduler and the daemon fleet)
# ---------------------------------------------------------------------------


def start_heartbeat(heartbeat) -> None:
    """Start the worker-side heartbeat: a daemon thread stamping
    ``time.monotonic()`` into the shared double every
    :data:`HEARTBEAT_SECONDS`.  It beats while a task computes (long
    tasks never look hung) and freezes with the process when the
    process freezes (``SIGSTOP``, a wedged syscall) — which is exactly
    the signal the parent's watchdog reclaims on.

    The shared value is lock-free (a raw aligned double; torn
    reads/writes don't occur on the platforms the fork context runs
    on): a lock would hand a killed worker a way to wedge the parent.

    The ``task.stall_heartbeat`` fault point stops the beat (the thread
    exits) while the worker keeps computing — a starved heartbeat
    thread under a long GIL-holding call looks exactly like this.
    """

    def beat():
        while not _HEARTBEAT_STALLED.is_set():
            heartbeat.value = time.monotonic()
            time.sleep(HEARTBEAT_SECONDS)

    threading.Thread(target=beat, name="repro-heartbeat", daemon=True).start()


#: Worker-process flag the ``task.stall_heartbeat`` fault point sets to
#: silence the heartbeat thread without touching the worker itself.
_HEARTBEAT_STALLED = threading.Event()


def run_task(task):
    """Execute one task under the fault-injection points every
    supervised worker threads through: ``task.hang`` freezes the
    process instead of running (nothing mutated — the watchdog must
    reclaim), ``task.crash_before_report`` kills the process after the
    task ran but before its result message exists (the supervisor must
    requeue), ``task.stall_heartbeat`` silences the heartbeat and delays
    the task past the watchdog while staying alive (the *late result*
    schedule the supervisor's kill-before-drain ordering exists for).
    Returns a ``(kind, task, payload, seconds, error)`` result tuple."""
    if faults.ENABLED and faults.fire("task.hang"):
        faults.hang()
    if faults.ENABLED and faults.fire("task.stall_heartbeat"):
        _HEARTBEAT_STALLED.set()
        timeout = task_timeout_seconds()
        time.sleep((timeout or 0.0) + 3 * POLL_SECONDS)
    start = time.perf_counter()
    try:
        payload = task.run()
    except BaseException:
        return ("error", task, None, time.perf_counter() - start,
                traceback.format_exc())
    if faults.ENABLED and faults.fire("task.crash_before_report"):
        faults.crash()
    return ("done", task, payload, time.perf_counter() - start, None)


def _supervised_worker_main(conn, heartbeat, backend, store_path) -> None:
    """One supervised worker: receive tasks on its private duplex pipe,
    send one result tuple back per task, exit on the None sentinel (or
    the parent's end of the pipe closing).  Initialisation matches the
    campaign layer exactly, so reports cannot depend on which worker —
    or which *attempt* — ran a cell."""
    from repro.campaigns.campaign import _worker_init

    _worker_init(backend, store_path)
    start_heartbeat(heartbeat)
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        conn.send(run_task(task))
        if faults.ENABLED and faults.fire("worker.torn_conn"):
            faults.tear_connection(conn)


class WorkerSlot:
    """Parent-side record of one supervised worker: its process, the
    parent end of its private pipe, its heartbeat, and — the heart of
    supervision — exactly which task it currently holds."""

    def __init__(self, proc, conn, heartbeat):
        self.proc = proc
        self.conn = conn
        self.heartbeat = heartbeat
        self.item = None  # the dispatched work, parent-defined shape
        # Set when a send to this worker failed: the process may still
        # be alive with a beating heartbeat, but its pipe is torn, so
        # the supervision sweep must reap it — an idle-looking slot that
        # can never be dispatched to would otherwise livelock the round.
        self.broken = False

    def stale(self, timeout: float | None) -> bool:
        """Has the heartbeat been silent past the watchdog threshold
        while a task is assigned?"""
        return (
            timeout is not None
            and self.item is not None
            and time.monotonic() - self.heartbeat.value > timeout
        )

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass


def spawn_worker(ctx, target, args) -> WorkerSlot:
    """Fork one supervised worker connected by a fresh duplex pipe.
    ``target`` receives ``(child_conn, heartbeat, *args)``."""
    parent_conn, child_conn = ctx.Pipe()
    heartbeat = ctx.Value("d", time.monotonic(), lock=False)
    proc = ctx.Process(
        target=target, args=(child_conn, heartbeat) + tuple(args), daemon=True
    )
    proc.start()
    child_conn.close()  # ours alone now lives in the child
    return WorkerSlot(proc, parent_conn, heartbeat)


def kill_slot(slot: WorkerSlot, note_kill: str | None) -> str:
    """Kill (when ``note_kill`` names a reason and the process is still
    alive) and join one worker, WITHOUT closing the parent's end of its
    pipe: the supervisor drains any result the worker managed to send
    *after* this, then closes.  Draining before the kill is the race —
    a hung-but-alive worker can emit its result between the drain and
    the kill, and the drained-empty supervisor would requeue and run the
    task twice.  Killing first makes the post-kill drain complete: a
    dead process cannot send.  Returns the per-attempt note: the kill
    reason when this call did the killing, but the worker's own exit
    code when the join reveals it died by itself first (``is_alive`` can
    lag a crashing worker's pipe EOF, so a kill request may race a
    natural death — the factual exit code outranks the stale reason)."""
    if note_kill is not None and slot.proc.is_alive():
        slot.proc.kill()  # SIGKILL: works on a SIGSTOPped process too
    slot.proc.join(timeout=5.0)
    if slot.proc.is_alive():  # pragma: no cover - kill cannot be refused
        slot.proc.terminate()
        slot.proc.join(timeout=5.0)
    exitcode = slot.proc.exitcode
    if note_kill is not None and (exitcode is None or exitcode < 0):
        return note_kill
    return f"worker died with exit code {exitcode}"


def reap_slot(slot: WorkerSlot, note_hung: str | None) -> str:
    """:func:`kill_slot` plus closing the parent's pipe end — for
    callers with nothing left to drain."""
    note = kill_slot(slot, note_hung)
    slot.close()
    return note


def wait_readable(slots, timeout: float):
    """The slots whose pipes are readable (a result, or EOF from a
    death) within ``timeout`` seconds."""
    from multiprocessing import connection

    by_conn = {slot.conn: slot for slot in slots}
    try:
        readable = connection.wait(list(by_conn), timeout=timeout)
    except OSError:  # a pipe torn down mid-wait: the sweep will see it
        return []
    return [by_conn[conn] for conn in readable]


def _collect(workers, result_queue, n_pending):
    """Yield ``(task, payload, seconds)`` for every pending task,
    failing the job if a worker dies or a task raises."""
    while n_pending:
        try:
            kind, task, payload, seconds, error = result_queue.get(
                timeout=POLL_SECONDS
            )
        except queue_module.Empty:
            dead = [w for w in workers if not w.is_alive() and w.exitcode]
            if dead:
                raise JobFailed(
                    f"worker died with exit code {dead[0].exitcode} "
                    f"({n_pending} tasks outstanding)"
                )
            continue
        if kind == "error":
            raise JobFailed(f"task {task.label()!r} failed:\n{error}")
        n_pending -= 1
        yield task, payload, seconds


def _shutdown(workers, graceful: bool) -> None:
    """Reap the worker team: join finished workers, terminate stragglers
    (a cancelled job must not leave orphans behind)."""
    for worker in workers:
        if graceful:
            worker.join(timeout=5.0)
        if worker.is_alive():
            worker.terminate()
            worker.join(timeout=5.0)


def run_stealing(cell_tasks, provision_tasks, cell_triples, n_workers,
                 backend, store_path, partitions=None):
    """Drive a supervised work-stealing round: yields one ``(task,
    payload, seconds)`` per completed provision or cell task, in
    completion order.

    ``cell_triples`` maps cell index -> set of provisioning triples the
    cell is gated on; gated cells release the moment their last triple
    completes, so early-calibrated dies unblock their attack cells
    while stragglers are still calibrating.

    ``partitions`` maps cell index -> partition plan (see the module
    docstring): a partitioned cell releases as its plan's initial
    :class:`SubTask` fan-out instead of one :class:`CellTask`, absorbed
    results may fan out further (GA generations), and the cell
    completes via the :class:`AssembleTask` replay once its plan has no
    sub-task outstanding.  Sub-task completions are internal — they are
    never yielded.

    A worker that dies or hangs mid-task is reaped, respawned, and its
    task requeued at the *front* of the ready pool (retries first:
    downstream gating may be waiting on it); the round fails with
    :class:`~repro.service.jobs.TaskRetriesExhausted` only once one
    task has consumed its whole ``REPRO_TASK_RETRIES`` budget.  A task
    that *raises* still fails the round immediately — tasks are pure
    functions of their pickled selves, so a Python exception would
    simply raise again on retry.
    """
    partitions = dict(partitions or {})
    blocked = {
        task.index: set(cell_triples.get(task.index, ()))
        for task in cell_tasks
    }
    waiters: dict[tuple, list] = {}
    for task in cell_tasks:
        for triple in blocked[task.index]:
            waiters.setdefault(triple, []).append(task)
    n_results = len(cell_tasks) + len(provision_tasks)
    retry_budget = task_retry_budget()
    watchdog = task_timeout_seconds()
    outstanding: dict[int, int] = {}  # cell index -> unabsorbed sub-tasks
    ready = deque(provision_tasks)  # provisioning first: it unblocks cells

    def release(task):
        """An unblocked cell enters the pool — as itself, or, when a
        partition plan covers it, as the plan's initial sub-tasks."""
        plan = partitions.get(task.index)
        if plan is None:
            ready.append(task)
            return
        parts = plan.initial_parts()
        outstanding[task.index] = len(parts)
        for part_id, part in parts:
            ready.append(SubTask(task.index, part_id, task.cell, part))

    for task in cell_tasks:
        if not blocked[task.index]:
            release(task)
    ctx = _context()

    def spawn():
        return spawn_worker(
            ctx, _supervised_worker_main, (backend, store_path)
        )

    # Partitioned rounds hold more units than results, so size the team
    # by the requested width rather than the (smaller) result count.
    n_units = n_results if not partitions else max(n_results, n_workers)
    slots = [spawn() for _ in range(max(1, min(n_workers, n_units)))]
    attempts: dict[tuple, list] = {}
    done = 0
    graceful = False
    # Workers dying before they ever hold a task (a broken backend
    # import, a bad store path) never consume any task's retry budget,
    # so bound them separately or a crash-at-init would respawn forever.
    respawns_without_progress = 0
    max_barren_respawns = 3 * len(slots) + retry_budget

    def settle(slot, message):
        """One result message: free the slot, unblock gated cells.
        Returns the event to yield, or None for an internal (sub-task)
        completion."""
        nonlocal done, respawns_without_progress
        respawns_without_progress = 0
        kind, task, payload, seconds, error = message
        slot.item = None
        if kind == "error":
            raise JobFailed(f"task {task.label()!r} failed:\n{error}")
        if isinstance(task, SubTask):
            plan = partitions[task.index]
            new_parts = plan.absorb(task.part_id, payload)
            outstanding[task.index] += len(new_parts) - 1
            for part_id, part in new_parts:
                ready.append(SubTask(task.index, part_id, task.cell, part))
            if outstanding[task.index] == 0:
                ready.append(
                    AssembleTask(task.index, task.cell, plan.script())
                )
            return None
        done += 1
        if isinstance(task, ProvisionTask):
            for waiter in waiters.pop(task.triple, ()):
                pending = blocked[waiter.index]
                pending.discard(task.triple)
                if not pending:
                    release(waiter)
        return task, payload, seconds

    try:
        while done < n_results:
            for slot in slots:  # dispatch to every idle worker
                if slot.broken or slot.item is not None or not ready:
                    continue
                task = ready.popleft()
                try:
                    slot.conn.send(task)
                except (OSError, ValueError):
                    ready.appendleft(task)
                    # The pipe is torn even if the process looks healthy:
                    # flag it so the sweep reaps it, or an alive worker
                    # with a beating heartbeat would sit here looking
                    # idle forever (the single-worker livelock).
                    slot.broken = True
                    continue
                slot.item = task
            for slot in wait_readable(slots, timeout=POLL_SECONDS):
                try:
                    message = slot.conn.recv()
                except (EOFError, OSError):
                    slot.broken = True  # the sweep below reclaims it
                    continue
                event = settle(slot, message)
                if event is not None:
                    yield event
            for i, slot in enumerate(slots):  # supervision sweep
                hung = slot.stale(watchdog)
                if slot.proc.is_alive() and not hung and not slot.broken:
                    continue
                if hung:
                    kill_note = (
                        f"worker hung (heartbeat silent > {watchdog:g}s); "
                        f"killed"
                    )
                elif slot.broken and slot.proc.is_alive():
                    kill_note = "worker pipe broke; killed"
                else:
                    kill_note = None
                # Kill hung/broken-but-alive workers BEFORE draining:
                # draining first races a late result into the pipe
                # between drain and kill, and the task would settle AND
                # requeue (double execution, double tenant charge).
                # Dead workers keep the documented drain-before-reclaim
                # order trivially — they cannot send anything new.
                note = kill_slot(slot, kill_note)
                try:
                    while slot.conn.poll():
                        event = settle(slot, slot.conn.recv())
                        if event is not None:
                            yield event
                except (EOFError, OSError):
                    pass
                slot.close()
                task, slot.item = slot.item, None
                respawns_without_progress += 1
                if respawns_without_progress > max_barren_respawns:
                    raise JobFailed(
                        f"workers died {respawns_without_progress} times "
                        f"without completing a task (last: {note}); "
                        f"giving up instead of respawning forever"
                    )
                slots[i] = spawn()
                if task is not None:
                    notes = attempts.setdefault(task.key(), [])
                    notes.append(note)
                    if len(notes) >= retry_budget:
                        raise TaskRetriesExhausted(task.label(), notes)
                    ready.appendleft(task)  # retry first: others may gate on it
        for slot in slots:
            if slot.proc.is_alive():
                try:
                    slot.conn.send(None)
                except (OSError, ValueError):
                    pass
        graceful = True
    finally:
        _shutdown([slot.proc for slot in slots], graceful)
        for slot in slots:
            slot.close()


def run_static(cell_tasks, n_workers, backend, store_path):
    """Drive a static round: contiguous shards pre-assigned per worker.

    The naive baseline — no queue, no stealing: each worker executes
    its slice of the cell list in order, so one dominant cell pins its
    whole shard behind it.  Provisioning is not gated here; the caller
    provisions (lockstep, parent-side) before sharding.
    """
    tasks = list(cell_tasks)
    n_workers = max(1, min(n_workers, len(tasks)))
    chunk = (len(tasks) + n_workers - 1) // n_workers
    shards = [tasks[i * chunk:(i + 1) * chunk] for i in range(n_workers)]
    ctx = _context()
    result_queue = ctx.Queue()
    workers = [
        ctx.Process(
            target=_worker_loop,
            args=(shard, None, result_queue, backend, store_path),
            daemon=True,
        )
        for shard in shards
        if shard
    ]
    for worker in workers:
        worker.start()
    graceful = False
    try:
        yield from _collect(workers, result_queue, len(tasks))
        graceful = True
    finally:
        _shutdown(workers, graceful)
