"""Work-stealing task scheduler: a shared queue workers pull from.

The campaign layer's original sharding mapped whole cells over a
process pool — a static split that leaves workers idle whenever one
die's attack dominates the wall clock, and serialises provisioning
ahead of the whole attack phase.  This scheduler replaces that with a
pull model: every unit of work (a die calibration, an attack cell) is
a task on one shared queue, workers take the next task the moment they
free up, and attack cells that need a die's calibration are *gated* —
queued the instant their die's provisioning task completes, while
straggler dies are still calibrating on other workers.  Imbalanced
fleets therefore pack tightly (the dominant cell occupies one worker
while the others drain the rest), and provisioning overlaps the attack
phase instead of preceding it.

Determinism: tasks carry their cell index, results are journaled and
assembled by index, every cell rebuilds its chip and seeds its own
RNGs, and die calibrations are deterministic values read through the
shared :class:`~repro.engine.store.CalibrationStore` — so the reports
are bit-identical to a sequential run whatever the worker count or
pull order (held differentially in ``tests/test_service.py``).

The ``static`` mode pre-assigns contiguous cell shards per worker
(what naive sharding would do) and exists as the baseline the
imbalanced-fleet benchmark in ``benchmarks/test_bench_campaign.py``
guards the work-stealing speedup against.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
import traceback
from dataclasses import dataclass

from repro.service.jobs import JobFailed

#: Seconds between worker-liveness checks while awaiting results.
POLL_SECONDS = 0.2


@dataclass(frozen=True)
class ProvisionTask:
    """Calibrate one ``(lot_seed, chip_id, standard_index)`` die into
    the shared calibration store."""

    triple: tuple

    def label(self) -> str:
        lot_seed, chip_id, standard_index = self.triple
        return f"provision lot{lot_seed}/chip{chip_id}/std{standard_index}"

    def run(self):
        from repro.campaigns.scenario import ChipSpec, provision_calibration
        from repro.receiver.standards import standard_by_index

        lot_seed, chip_id, standard_index = self.triple
        provision_calibration(
            ChipSpec(lot_seed=lot_seed, chip_id=chip_id),
            standard_by_index(standard_index),
        )
        return self.triple


@dataclass(frozen=True)
class CellTask:
    """Execute one campaign cell (the cell rebuilds its own chip and
    seeds its own RNGs, so it runs identically on any worker)."""

    index: int
    cell: object

    def label(self) -> str:
        return self.cell.label()

    def run(self):
        return self.cell.execute()


def _worker_loop(tasks, task_queue, result_queue, backend, store_path) -> None:
    """One worker process: pull tasks until the sentinel (stealing mode,
    ``task_queue``) or the pre-assigned shard runs dry (static mode,
    ``tasks``), reporting each outcome on ``result_queue``.

    Worker initialisation matches the campaign layer exactly — a
    pristine private engine of the requested backend, reading through
    the campaign's shared calibration store — so reports cannot depend
    on which worker ran a cell.
    """
    from repro.campaigns.campaign import _worker_init

    _worker_init(backend, store_path)
    shard = list(tasks or [])
    while True:
        if task_queue is not None:
            task = task_queue.get()
        else:
            task = shard.pop(0) if shard else None
        if task is None:
            return
        start = time.perf_counter()
        try:
            payload = task.run()
        except BaseException:
            result_queue.put(
                ("error", task, None, time.perf_counter() - start,
                 traceback.format_exc())
            )
            continue
        result_queue.put(
            ("done", task, payload, time.perf_counter() - start, None)
        )


def _context():
    return multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    )


def _collect(workers, result_queue, n_pending):
    """Yield ``(task, payload, seconds)`` for every pending task,
    failing the job if a worker dies or a task raises."""
    while n_pending:
        try:
            kind, task, payload, seconds, error = result_queue.get(
                timeout=POLL_SECONDS
            )
        except queue_module.Empty:
            dead = [w for w in workers if not w.is_alive() and w.exitcode]
            if dead:
                raise JobFailed(
                    f"worker died with exit code {dead[0].exitcode} "
                    f"({n_pending} tasks outstanding)"
                )
            continue
        if kind == "error":
            raise JobFailed(f"task {task.label()!r} failed:\n{error}")
        n_pending -= 1
        yield task, payload, seconds


def _shutdown(workers, graceful: bool) -> None:
    """Reap the worker team: join finished workers, terminate stragglers
    (a cancelled job must not leave orphans behind)."""
    for worker in workers:
        if graceful:
            worker.join(timeout=5.0)
        if worker.is_alive():
            worker.terminate()
            worker.join(timeout=5.0)


def run_stealing(cell_tasks, provision_tasks, cell_triples, n_workers,
                 backend, store_path):
    """Drive a work-stealing round: yields one ``(task, payload,
    seconds)`` per completed task, in completion order.

    ``cell_triples`` maps cell index -> set of provisioning triples the
    cell is gated on; gated cells enqueue the moment their last triple
    completes, so early-calibrated dies unblock their attack cells
    while stragglers are still calibrating.
    """
    blocked = {
        task.index: set(cell_triples.get(task.index, ()))
        for task in cell_tasks
    }
    waiters: dict[tuple, list] = {}
    for task in cell_tasks:
        for triple in blocked[task.index]:
            waiters.setdefault(triple, []).append(task)
    n_tasks = len(cell_tasks) + len(provision_tasks)
    ctx = _context()
    task_queue, result_queue = ctx.Queue(), ctx.Queue()
    workers = [
        ctx.Process(
            target=_worker_loop,
            args=(None, task_queue, result_queue, backend, store_path),
            daemon=True,
        )
        for _ in range(max(1, min(n_workers, n_tasks)))
    ]
    for worker in workers:
        worker.start()
    graceful = False
    try:
        # Provisioning first: it unblocks the most downstream work.
        for task in provision_tasks:
            task_queue.put(task)
        for task in cell_tasks:
            if not blocked[task.index]:
                task_queue.put(task)
        for task, payload, seconds in _collect(workers, result_queue, n_tasks):
            if isinstance(task, ProvisionTask):
                for waiter in waiters.pop(task.triple, ()):
                    pending = blocked[waiter.index]
                    pending.discard(task.triple)
                    if not pending:
                        task_queue.put(waiter)
            yield task, payload, seconds
        for _ in workers:
            task_queue.put(None)
        graceful = True
    finally:
        _shutdown(workers, graceful)


def run_static(cell_tasks, n_workers, backend, store_path):
    """Drive a static round: contiguous shards pre-assigned per worker.

    The naive baseline — no queue, no stealing: each worker executes
    its slice of the cell list in order, so one dominant cell pins its
    whole shard behind it.  Provisioning is not gated here; the caller
    provisions (lockstep, parent-side) before sharding.
    """
    tasks = list(cell_tasks)
    n_workers = max(1, min(n_workers, len(tasks)))
    chunk = (len(tasks) + n_workers - 1) // n_workers
    shards = [tasks[i * chunk:(i + 1) * chunk] for i in range(n_workers)]
    ctx = _context()
    result_queue = ctx.Queue()
    workers = [
        ctx.Process(
            target=_worker_loop,
            args=(shard, None, result_queue, backend, store_path),
            daemon=True,
        )
        for shard in shards
        if shard
    ]
    for worker in workers:
        worker.start()
    graceful = False
    try:
        yield from _collect(workers, result_queue, len(tasks))
        graceful = True
    finally:
        _shutdown(workers, graceful)
