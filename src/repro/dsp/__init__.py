"""Signal processing and measurement substrate.

Everything the evaluation measures — SNR, SFDR, PSD, dynamic range — is
computed by this package, which also provides the receiver's digital
decimation filters.
"""

from repro.dsp.decimate import CicDecimator, DecimationChain, FirDecimator, fs4_mixer_sequences
from repro.dsp.filters import design_cic_compensator, design_halfband, design_lowpass, freq_response
from repro.dsp.metrics import (
    SNR_FLOOR_DB,
    SfdrMeasurement,
    ToneMeasurement,
    band_snr,
    enob,
    snr_from_samples,
    thd,
    two_tone_sfdr,
)
from repro.dsp.spectrum import Spectrum, periodogram, periodogram_batch, welch_psd
from repro.dsp.tones import coherent_frequency, sample_times, sine, two_tone
from repro.dsp.units import (
    K_BOLTZMANN,
    R_REF,
    T_REF,
    db,
    db_amplitude,
    dbm_to_vamp,
    dbm_to_vrms,
    dbm_to_watt,
    thermal_noise_power,
    undb,
    undb_amplitude,
    vamp_to_dbm,
    watt_to_dbm,
)
from repro.dsp.windows import WindowInfo, make_window

__all__ = [
    "CicDecimator",
    "DecimationChain",
    "FirDecimator",
    "K_BOLTZMANN",
    "R_REF",
    "SNR_FLOOR_DB",
    "SfdrMeasurement",
    "Spectrum",
    "T_REF",
    "ToneMeasurement",
    "WindowInfo",
    "band_snr",
    "coherent_frequency",
    "db",
    "db_amplitude",
    "dbm_to_vamp",
    "dbm_to_vrms",
    "dbm_to_watt",
    "design_cic_compensator",
    "design_halfband",
    "design_lowpass",
    "enob",
    "freq_response",
    "fs4_mixer_sequences",
    "make_window",
    "periodogram",
    "periodogram_batch",
    "sample_times",
    "sine",
    "snr_from_samples",
    "thd",
    "thermal_noise_power",
    "two_tone",
    "two_tone_sfdr",
    "undb",
    "undb_amplitude",
    "vamp_to_dbm",
    "watt_to_dbm",
    "welch_psd",
]
