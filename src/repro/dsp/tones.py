"""Test-tone generation with coherent-sampling helpers.

SNR/SFDR measurements on short FFTs are only clean when the stimulus is
coherent with the record length (an integer number of cycles per FFT).
The paper uses 8192-point FFTs; these helpers snap requested frequencies
onto FFT bin centres, preferring odd bin counts so that the tone exercises
different phases in every sample.
"""

from __future__ import annotations

import numpy as np


def coherent_frequency(f_target: float, fs: float, n: int, prefer_odd: bool = True) -> float:
    """Nearest coherent frequency to ``f_target`` for an ``n``-point record.

    Returns ``k * fs / n`` with integer ``k``; when ``prefer_odd`` the bin
    count ``k`` is made odd (standard ADC-test practice) so the sampled
    phase pattern never repeats within the record.
    """
    if not 0.0 < f_target < fs / 2.0:
        raise ValueError(f"f_target must be in (0, fs/2), got {f_target}")
    k = int(round(f_target * n / fs))
    k = max(k, 1)
    if prefer_odd and k % 2 == 0:
        k += 1 if (f_target * n / fs) >= k else -1
        k = max(k, 1)
    return k * fs / n


def sine(n: int, fs: float, freq: float, amplitude: float, phase: float = 0.0) -> np.ndarray:
    """``n`` samples of ``amplitude * cos(2 pi freq t + phase)`` at rate ``fs``."""
    t = np.arange(n) / fs
    return amplitude * np.cos(2.0 * np.pi * freq * t + phase)


def two_tone(
    n: int,
    fs: float,
    f1: float,
    f2: float,
    amplitude: float,
    phase1: float = 0.0,
    phase2: float = 0.0,
) -> np.ndarray:
    """Equal-amplitude two-tone stimulus (paper Fig. 12 SFDR test)."""
    return sine(n, fs, f1, amplitude, phase1) + sine(n, fs, f2, amplitude, phase2)


def sample_times(n: int, fs: float) -> np.ndarray:
    """Time axis for ``n`` samples at rate ``fs``."""
    return np.arange(n) / fs
