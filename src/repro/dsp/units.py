"""Unit conversions used throughout the RF receiver model.

The paper quotes stimulus levels in dBm into the canonical RF reference
impedance of 50 ohm.  All internal signal processing uses volts, so these
helpers convert between power-referred (dBm, watt) and voltage-referred
(V amplitude, V rms) quantities.
"""

from __future__ import annotations

import math

#: Canonical RF reference impedance, ohms.
R_REF = 50.0

#: Boltzmann constant, J/K.
K_BOLTZMANN = 1.380649e-23

#: Standard noise-figure reference temperature, kelvin.
T_REF = 290.0


def dbm_to_watt(dbm: float) -> float:
    """Convert a power in dBm to watts."""
    return 1e-3 * 10.0 ** (dbm / 10.0)


def watt_to_dbm(watt: float) -> float:
    """Convert a power in watts to dBm."""
    if watt <= 0.0:
        raise ValueError(f"power must be positive, got {watt}")
    return 10.0 * math.log10(watt / 1e-3)


def dbm_to_vrms(dbm: float, impedance: float = R_REF) -> float:
    """RMS voltage of a sinusoid carrying ``dbm`` into ``impedance``."""
    return math.sqrt(dbm_to_watt(dbm) * impedance)


def dbm_to_vamp(dbm: float, impedance: float = R_REF) -> float:
    """Peak amplitude of a sinusoid carrying ``dbm`` into ``impedance``."""
    return dbm_to_vrms(dbm, impedance) * math.sqrt(2.0)


def vamp_to_dbm(vamp: float, impedance: float = R_REF) -> float:
    """Power in dBm of a sinusoid with peak amplitude ``vamp``."""
    if vamp <= 0.0:
        raise ValueError(f"amplitude must be positive, got {vamp}")
    return watt_to_dbm(vamp**2 / (2.0 * impedance))


def db(ratio: float) -> float:
    """Power ratio expressed in decibels."""
    if ratio <= 0.0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    return 10.0 * math.log10(ratio)


def db_amplitude(ratio: float) -> float:
    """Amplitude ratio expressed in decibels (20 log10)."""
    if ratio <= 0.0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    return 20.0 * math.log10(ratio)


def undb(decibels: float) -> float:
    """Inverse of :func:`db`: decibels back to a power ratio."""
    return 10.0 ** (decibels / 10.0)


def undb_amplitude(decibels: float) -> float:
    """Inverse of :func:`db_amplitude`: decibels back to an amplitude ratio."""
    return 10.0 ** (decibels / 20.0)


def thermal_noise_power(bandwidth_hz: float, temperature_k: float = T_REF) -> float:
    """Available thermal noise power kTB in watts over ``bandwidth_hz``."""
    if bandwidth_hz < 0.0:
        raise ValueError(f"bandwidth must be non-negative, got {bandwidth_hz}")
    return K_BOLTZMANN * temperature_k * bandwidth_hz
