"""Performance metrics computed from calibrated spectra.

These mirror the measurements reported in the paper's evaluation:

* in-band SNR of the band-pass sigma-delta bitstream (Figs. 7, 9, 11) —
  the paper's SNR counts in-band harmonics/spurs as noise, i.e. it is an
  SNDR-style figure ("there are harmonics within the band-of-interest"),
* SFDR from a two-tone test where the dominant spur is the third-order
  product (Fig. 12),
* THD and ENOB as auxiliary figures of merit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.dsp.spectrum import Spectrum, periodogram

#: SNR reported when the measured signal power is zero (dead output).
SNR_FLOOR_DB = -60.0


@dataclass(frozen=True)
class ToneMeasurement:
    """Result of a single-tone in-band measurement.

    Attributes:
        snr_db: Signal power over total remaining in-band power, dB.
        signal_power: Tone power, V^2.
        noise_power: In-band power excluding the tone's main lobe, V^2.
        signal_frequency: Frequency of the located tone peak, Hz.
    """

    snr_db: float
    signal_power: float
    noise_power: float
    signal_frequency: float


def _safe_ratio_db(signal: float, noise: float) -> float:
    """10 log10(signal/noise) with floor/ceiling guards for dead spectra."""
    if signal <= 0.0:
        return SNR_FLOOR_DB
    if noise <= 0.0:
        return -SNR_FLOOR_DB
    return 10.0 * math.log10(signal / noise)


# The index sets these metrics combine are contiguous ascending runs
# (band edges, tone lobes), so the generic sorted-set routines
# (``intersect1d``/``setdiff1d``/``union1d``) are replaced by run
# arithmetic producing the *identical* ascending index sequences — same
# gathered elements in the same order, hence bitwise-identical sums —
# without the per-call unique/sort machinery, which dominated batched
# measurement decodes.


def _runs_subtract(
    lo: int, hi: int, excludes: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """``[lo, hi]`` minus sorted disjoint runs, as sorted disjoint runs."""
    runs: list[tuple[int, int]] = []
    cursor = lo
    for e_lo, e_hi in excludes:
        if e_hi < cursor or e_lo > hi:
            continue
        if e_lo > cursor:
            runs.append((cursor, e_lo - 1))
        cursor = e_hi + 1
        if cursor > hi:
            break
    if cursor <= hi:
        runs.append((cursor, hi))
    return runs


def _runs_indices(runs: list[tuple[int, int]]) -> np.ndarray:
    """Concatenate runs into one ascending index array."""
    if not runs:
        return np.empty(0, dtype=np.int64)
    return np.concatenate([np.arange(lo, hi + 1) for lo, hi in runs])


def _run_of(indices: np.ndarray) -> tuple[int, int]:
    """Bounds of a non-empty contiguous ascending index run."""
    return int(indices[0]), int(indices[-1])


def band_snr(
    spectrum: Spectrum,
    f_signal: float,
    f_lo: float,
    f_hi: float,
    search_bins: int = 4,
) -> ToneMeasurement:
    """SNR of the tone near ``f_signal`` against everything else in band.

    The tone's main lobe is located and integrated; every other bin in
    ``[f_lo, f_hi]`` — noise, shaped quantisation noise, harmonics and
    intermodulation spurs alike — counts as noise, matching the paper's
    usage.
    """
    band = spectrum.band_indices(f_lo, f_hi)
    if band.size == 0:
        raise ValueError(f"no spectrum bins in [{f_lo}, {f_hi}] Hz")
    lobe = spectrum.tone_indices(f_signal, search_bins)
    band_lo, band_hi = _run_of(band)
    lobe_lo, lobe_hi = _run_of(lobe)
    in_lo, in_hi = max(band_lo, lobe_lo), min(band_hi, lobe_hi)
    lobe_in_band = (
        [(in_lo, in_hi)] if in_lo <= in_hi else []
    )
    signal_power = float(
        np.sum(spectrum.power[_runs_indices(lobe_in_band)])
    )
    noise_bins = _runs_indices(
        _runs_subtract(band_lo, band_hi, lobe_in_band)
    )
    noise_power = float(np.sum(spectrum.power[noise_bins]))
    peak_freq = float(spectrum.freqs[lobe[np.argmax(spectrum.power[lobe])]])
    return ToneMeasurement(
        snr_db=_safe_ratio_db(signal_power, noise_power),
        signal_power=signal_power,
        noise_power=noise_power,
        signal_frequency=peak_freq,
    )


def snr_from_samples(
    samples: np.ndarray,
    fs: float,
    f_signal: float,
    f_lo: float,
    f_hi: float,
    window: str = "hann",
) -> ToneMeasurement:
    """Convenience wrapper: periodogram + :func:`band_snr`."""
    return band_snr(periodogram(samples, fs, window), f_signal, f_lo, f_hi)


@dataclass(frozen=True)
class SfdrMeasurement:
    """Result of a two-tone SFDR measurement.

    Attributes:
        sfdr_db: Fundamental power minus the worst in-band spur, dB.
        im3_db: Fundamental power minus the stronger IM3 product, dB
            (the paper's "third harmonic" in the narrowband RF context).
        fundamental_power: Power of the stronger fundamental, V^2.
        worst_spur_frequency: Frequency of the worst spur, Hz.
    """

    sfdr_db: float
    im3_db: float
    fundamental_power: float
    worst_spur_frequency: float


def two_tone_sfdr(
    spectrum: Spectrum,
    f1: float,
    f2: float,
    f_lo: float,
    f_hi: float,
    search_bins: int = 4,
) -> SfdrMeasurement:
    """SFDR from a two-tone test with tones at ``f1`` and ``f2``.

    The third-order intermodulation products fall at ``2 f1 - f2`` and
    ``2 f2 - f1``, inside the band for closely spaced tones — these are
    what the paper calls the third harmonic of the two-tone test.  SFDR
    is also reported against the worst arbitrary in-band spur.
    """
    lobe1 = spectrum.tone_indices(f1, search_bins)
    lobe2 = spectrum.tone_indices(f2, search_bins)
    p1 = float(np.sum(spectrum.power[lobe1]))
    p2 = float(np.sum(spectrum.power[lobe2]))
    fundamental = max(p1, p2)

    band = spectrum.band_indices(f_lo, f_hi)
    if band.size == 0:
        raise ValueError("band contains only the fundamentals")
    band_lo, band_hi = _run_of(band)
    first, second = sorted([_run_of(lobe1), _run_of(lobe2)])
    if second[0] <= first[1] + 1:  # overlapping/adjacent lobes merge
        exclude = [(first[0], max(first[1], second[1]))]
    else:
        exclude = [first, second]
    spur_runs = _runs_subtract(band_lo, band_hi, exclude)
    spur_bins = _runs_indices(spur_runs)

    im3_lo = 2.0 * f1 - f2
    im3_hi = 2.0 * f2 - f1
    im3_power = 0.0
    for f_im3 in (im3_lo, im3_hi):
        if f_lo <= f_im3 <= f_hi:
            # Clip the IM3 lobe against the fundamentals' bins: for
            # closely spaced tones the lobes border each other.
            im3_run = _run_of(spectrum.tone_indices(f_im3, search_bins))
            idx = _runs_indices(_runs_subtract(*im3_run, exclude))
            im3_power = max(im3_power, float(np.sum(spectrum.power[idx])))
    if spur_bins.size == 0:
        raise ValueError("band contains only the fundamentals")
    worst = int(spur_bins[np.argmax(spectrum.power[spur_bins])])
    # Integrate the spur's lobe but never the fundamentals' own bins —
    # a spur adjacent to a fundamental must not swallow its shoulder.
    worst_lo, worst_hi = _run_of(
        spectrum.tone_indices(float(spectrum.freqs[worst]), 0)
    )
    lobe_worst = _runs_indices(
        [
            (max(run_lo, worst_lo), min(run_hi, worst_hi))
            for run_lo, run_hi in spur_runs
            if max(run_lo, worst_lo) <= min(run_hi, worst_hi)
        ]
    )
    worst_power = float(np.sum(spectrum.power[lobe_worst]))

    return SfdrMeasurement(
        sfdr_db=_safe_ratio_db(fundamental, worst_power),
        im3_db=_safe_ratio_db(fundamental, max(im3_power, 1e-30)),
        fundamental_power=fundamental,
        worst_spur_frequency=float(spectrum.freqs[worst]),
    )


def thd(
    spectrum: Spectrum,
    f_fundamental: float,
    n_harmonics: int = 5,
    search_bins: int = 3,
) -> float:
    """Total harmonic distortion in dB (harmonic power over fundamental).

    Harmonics are folded back into the first Nyquist zone.
    """
    fund = spectrum.tone_power(f_fundamental, search_bins)
    fs = spectrum.fs
    harm_power = 0.0
    for h in range(2, n_harmonics + 2):
        f_h = (h * f_fundamental) % fs
        if f_h > fs / 2.0:
            f_h = fs - f_h
        if f_h <= spectrum.bin_width:
            continue
        harm_power += spectrum.tone_power(f_h, search_bins)
    if fund <= 0.0:
        return -SNR_FLOOR_DB
    return 10.0 * math.log10(max(harm_power, 1e-30) / fund)


def enob(snr_db: float) -> float:
    """Effective number of bits from an SNR figure."""
    return (snr_db - 1.76) / 6.02
