"""Calibrated spectra for tone and noise measurements.

The convention used here makes a single calibrated periodogram serve both
tone-power and noise-power readings:

    P[k] = 2 |X[k]|^2 / (N^2 * CG^2 * NBW)

where ``CG`` is the window coherent gain and ``NBW`` its equivalent noise
bandwidth in bins.  With this scaling,

* the sum of ``P`` over a tone's main lobe equals the tone power in V^2
  (rms) — exactly for bin-centred tones with a Hann window, and
* the sum of ``P`` over any band of bins equals the white-noise power that
  falls in that band.

This is the measurement backbone for the paper's Figs. 7, 9, 10 and 12.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.windows import WindowInfo, make_window


@dataclass
class Spectrum:
    """One-sided (real input) or two-sided (complex input) power spectrum.

    Attributes:
        freqs: Bin centre frequencies in Hz.  For complex inputs these
            span ``[-fs/2, fs/2)``; for real inputs ``[0, fs/2]``.
        power: Calibrated bin powers in V^2 (see module docstring).
        fs: Sampling frequency in Hz.
        n: FFT length.
        window: The window used, with its calibration factors.
    """

    freqs: np.ndarray
    power: np.ndarray
    fs: float
    n: int
    window: WindowInfo

    @property
    def bin_width(self) -> float:
        """Frequency spacing between bins, Hz."""
        return self.fs / self.n

    def band_indices(self, f_lo: float, f_hi: float) -> np.ndarray:
        """Indices of bins whose centre lies in ``[f_lo, f_hi]``.

        The frequency grid is ascending, so the edges are found by
        bisection; the result is the same contiguous ascending run a
        mask scan would produce, at O(log n) instead of O(n) — metric
        decodes run once per measurement, which makes this a hot path
        for batched sweeps.
        """
        lo = int(np.searchsorted(self.freqs, f_lo, side="left"))
        hi = int(np.searchsorted(self.freqs, f_hi, side="right"))
        return np.arange(lo, hi)

    def band_power(self, f_lo: float, f_hi: float) -> float:
        """Total power (V^2) in the band ``[f_lo, f_hi]``."""
        idx = self.band_indices(f_lo, f_hi)
        return float(np.sum(self.power[idx]))

    def peak_index(self, f_lo: float, f_hi: float) -> int:
        """Index of the strongest bin in ``[f_lo, f_hi]``."""
        idx = self.band_indices(f_lo, f_hi)
        if idx.size == 0:
            raise ValueError(f"no bins in [{f_lo}, {f_hi}] Hz")
        return int(idx[np.argmax(self.power[idx])])

    def tone_indices(self, f_tone: float, search_bins: int = 3) -> np.ndarray:
        """Bins forming the main lobe of the tone nearest ``f_tone``.

        The peak is searched within ``search_bins`` of the nominal
        location to tolerate slight frequency error, then the window's
        main-lobe width is taken around the found peak.
        """
        # Nearest bin by bisection on the ascending grid — identical
        # (ties included: the lower index wins, as argmin's first-hit
        # rule would pick) to scanning |freqs - f_tone|, without the
        # full-array pass.
        position = int(np.searchsorted(self.freqs, f_tone))
        if position <= 0:
            nominal = 0
        elif position >= self.freqs.size:
            nominal = self.freqs.size - 1
        elif (
            f_tone - self.freqs[position - 1]
            <= self.freqs[position] - f_tone
        ):
            nominal = position - 1
        else:
            nominal = position
        lo = max(nominal - search_bins, 0)
        hi = min(nominal + search_bins, self.power.size - 1)
        local = lo + int(np.argmax(self.power[lo : hi + 1]))
        half = self.window.main_lobe_bins
        lobe_lo = max(local - half, 0)
        lobe_hi = min(local + half, self.power.size - 1)
        return np.arange(lobe_lo, lobe_hi + 1)

    def tone_power(self, f_tone: float, search_bins: int = 3) -> float:
        """Power (V^2) of the tone nearest ``f_tone``."""
        idx = self.tone_indices(f_tone, search_bins)
        return float(np.sum(self.power[idx]))

    def psd(self) -> np.ndarray:
        """Power spectral density in V^2/Hz."""
        return self.power / self.bin_width

    def psd_db(self, floor_db: float = -250.0) -> np.ndarray:
        """PSD in dBV^2/Hz, clipped below at ``floor_db`` to avoid -inf."""
        density = self.psd()
        with np.errstate(divide="ignore"):
            out = 10.0 * np.log10(density)
        return np.maximum(out, floor_db)


def periodogram(samples: np.ndarray, fs: float, window: str = "hann") -> Spectrum:
    """Calibrated periodogram of ``samples``.

    Real inputs yield a one-sided spectrum; complex inputs (e.g. the
    receiver's complex baseband output) a two-sided, fftshifted one.
    """
    x = np.asarray(samples)
    n = x.size
    if n < 8:
        raise ValueError(f"need at least 8 samples, got {n}")
    win = make_window(window, n)
    xw = x * win.samples
    scale = 1.0 / (n**2 * win.coherent_gain**2 * win.noise_bandwidth_bins)
    if np.iscomplexobj(x):
        spec = np.fft.fftshift(np.fft.fft(xw))
        freqs = np.fft.fftshift(np.fft.fftfreq(n, d=1.0 / fs))
        power = np.abs(spec) ** 2 * scale
    else:
        spec = np.fft.rfft(xw)
        freqs = np.fft.rfftfreq(n, d=1.0 / fs)
        power = np.abs(spec) ** 2 * (2.0 * scale)
        power[0] *= 0.5
        if n % 2 == 0:
            power[-1] *= 0.5
    return Spectrum(freqs=freqs, power=power, fs=fs, n=n, window=win)


def periodogram_batch(
    samples: np.ndarray, fs: float, window: str = "hann"
) -> list[Spectrum]:
    """Calibrated periodograms of a ``(keys, samples)`` matrix, one pass.

    Key sweeps measure many records of one length at one clock, so the
    windowing and FFT run over the whole matrix (the FFT is applied
    along the last axis, which transforms each row exactly as the 1-D
    call does) and the window is designed once.  Per-row spectra are
    bit-identical to :func:`periodogram` (guarded in
    ``tests/test_dsp_windows_spectrum.py``).
    """
    x = np.asarray(samples)
    if x.ndim != 2:
        raise ValueError(f"expected a (keys, samples) matrix, got shape {x.shape}")
    n_keys, n = x.shape
    if n_keys == 0:
        return []
    if n < 8:
        raise ValueError(f"need at least 8 samples, got {n}")
    win = make_window(window, n)
    xw = x * win.samples
    scale = 1.0 / (n**2 * win.coherent_gain**2 * win.noise_bandwidth_bins)
    if np.iscomplexobj(x):
        spec = np.fft.fftshift(np.fft.fft(xw, axis=-1), axes=-1)
        freqs = np.fft.fftshift(np.fft.fftfreq(n, d=1.0 / fs))
        power = np.abs(spec) ** 2 * scale
    else:
        spec = np.fft.rfft(xw, axis=-1)
        freqs = np.fft.rfftfreq(n, d=1.0 / fs)
        power = np.abs(spec) ** 2 * (2.0 * scale)
        power[:, 0] *= 0.5
        if n % 2 == 0:
            power[:, -1] *= 0.5
    return [
        Spectrum(freqs=freqs, power=power[k], fs=fs, n=n, window=win)
        for k in range(n_keys)
    ]


def welch_psd(
    samples: np.ndarray,
    fs: float,
    segment_length: int,
    overlap: float = 0.5,
    window: str = "hann",
) -> Spectrum:
    """Welch-averaged spectrum for smoother PSD plots (paper Fig. 10).

    Segments of ``segment_length`` samples with fractional ``overlap``
    are individually windowed and their calibrated periodograms averaged.
    """
    x = np.asarray(samples)
    if segment_length > x.size:
        raise ValueError(
            f"segment_length {segment_length} exceeds signal length {x.size}"
        )
    if not 0.0 <= overlap < 1.0:
        raise ValueError(f"overlap must be in [0, 1), got {overlap}")
    step = max(int(segment_length * (1.0 - overlap)), 1)
    accumulated = None
    count = 0
    for start in range(0, x.size - segment_length + 1, step):
        seg = periodogram(x[start : start + segment_length], fs, window)
        if accumulated is None:
            accumulated = seg
            accumulated.power = accumulated.power.copy()
        else:
            accumulated.power += seg.power
        count += 1
    accumulated.power /= count
    return accumulated
