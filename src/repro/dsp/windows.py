"""FFT window functions and their correction factors.

Spectral measurements in the paper (SNR from an 8192-point FFT, PSD plots)
require windowing with known coherent and noise gains so that tone power
and noise density can be recovered from windowed periodograms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class WindowInfo:
    """A window together with the factors needed to calibrate spectra.

    Attributes:
        samples: The window coefficients, length ``n``.
        coherent_gain: Mean of the window; scales tone amplitudes.
        noise_bandwidth_bins: Equivalent noise bandwidth in FFT bins;
            scales broadband noise power.
        main_lobe_bins: Half-width of the main lobe in bins.  Tone power
            is integrated over ``+/- main_lobe_bins`` around the peak.
    """

    samples: np.ndarray
    coherent_gain: float
    noise_bandwidth_bins: float
    main_lobe_bins: int


_MAIN_LOBE_BINS = {
    "rect": 1,
    "hann": 3,
    "hamming": 3,
    "blackman": 4,
    "blackmanharris": 5,
}


#: Memo of built windows: a window is a pure function of (name, n) and
#: every spectrum of a sweep re-uses the same few shapes, so designs are
#: shared (callers only ever multiply by ``samples``, never mutate it).
_WINDOW_CACHE: dict[tuple[str, int], WindowInfo] = {}


def make_window(name: str, n: int) -> WindowInfo:
    """Build window ``name`` of length ``n`` with calibration factors.

    Supported names: ``rect``, ``hann``, ``hamming``, ``blackman``,
    ``blackmanharris``.  Designs are memoised — same name and length,
    same (shared, read-only) :class:`WindowInfo`.
    """
    if n <= 0:
        raise ValueError(f"window length must be positive, got {n}")
    name = name.lower()
    cached = _WINDOW_CACHE.get((name, n))
    if cached is not None:
        return cached
    k = np.arange(n)
    if name == "rect":
        w = np.ones(n)
    elif name == "hann":
        w = 0.5 - 0.5 * np.cos(2.0 * np.pi * k / n)
    elif name == "hamming":
        w = 0.54 - 0.46 * np.cos(2.0 * np.pi * k / n)
    elif name == "blackman":
        w = (
            0.42
            - 0.5 * np.cos(2.0 * np.pi * k / n)
            + 0.08 * np.cos(4.0 * np.pi * k / n)
        )
    elif name == "blackmanharris":
        w = (
            0.35875
            - 0.48829 * np.cos(2.0 * np.pi * k / n)
            + 0.14128 * np.cos(4.0 * np.pi * k / n)
            - 0.01168 * np.cos(6.0 * np.pi * k / n)
        )
    else:
        raise ValueError(f"unknown window {name!r}")
    coherent_gain = float(np.mean(w))
    noise_bandwidth = float(np.sum(w**2) / (np.sum(w) ** 2) * n)
    w.setflags(write=False)  # shared across callers: enforce read-only
    window = WindowInfo(
        samples=w,
        coherent_gain=coherent_gain,
        noise_bandwidth_bins=noise_bandwidth,
        main_lobe_bins=_MAIN_LOBE_BINS[name],
    )
    _WINDOW_CACHE[(name, n)] = window
    return window
