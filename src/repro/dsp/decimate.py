"""Decimation structures for the receiver's digital back-end.

The paper's receiver (Fig. 4) follows the band-pass sigma-delta modulator
with a digital down-conversion mixer and a decimation filter.  After the
fs/4 mixer the complex baseband stream is decimated by the OSR (64 for
the reference standard) through:

    CIC (order 4, R = 16)  ->  CIC droop compensator  ->  2 half-bands

Each structure is implemented operationally (integrator/comb chains,
polyphase-free direct convolution) rather than as a single black-box
filter, so that the digital section can be locked/unlocked at the block
level by the MixLock baseline.

Every stage also takes a ``(keys, samples)`` matrix through
``process_matrix``: key sweeps decimate the whole batch in one pass
instead of re-entering the chain per key.  The matrix path is
bit-identical to running ``process`` row by row — integrators are
per-row cumulative sums (NumPy accumulates each row of an ``axis=-1``
cumsum in the same sequential order as the 1-D call), combs and
subsampling are elementwise, and the FIR stages keep the *same*
``np.convolve`` primitive per row, because its accumulation order (a
BLAS dot under the hood) is implementation-defined and no re-ordered
vectorised formulation is guaranteed to round identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dsp.filters import design_cic_compensator, design_halfband


@dataclass
class CicDecimator:
    """Hogenauer cascaded integrator-comb decimator.

    Attributes:
        rate: Decimation factor R.
        order: Number of integrator and comb stages N.
        differential_delay: Comb differential delay M (usually 1).
    """

    rate: int
    order: int = 4
    differential_delay: int = 1

    def __post_init__(self) -> None:
        if self.rate < 2:
            raise ValueError(f"CIC rate must be >= 2, got {self.rate}")
        if self.order < 1:
            raise ValueError(f"CIC order must be >= 1, got {self.order}")

    @property
    def gain(self) -> float:
        """DC gain (R*M)^N of the raw CIC structure."""
        return float((self.rate * self.differential_delay) ** self.order)

    def process(self, samples: np.ndarray) -> np.ndarray:
        """Decimate ``samples`` by ``rate``, normalised to unit DC gain.

        Integrators run at the input rate (cumulative sums), the stream is
        subsampled, then combs run at the output rate.
        """
        x = np.asarray(samples, dtype=complex if np.iscomplexobj(samples) else float)
        for _ in range(self.order):
            x = np.cumsum(x)
        x = x[:: self.rate]
        for _ in range(self.order):
            delayed = np.concatenate([np.zeros(self.differential_delay, dtype=x.dtype), x[: -self.differential_delay]])
            x = x - delayed
        return x / self.gain

    def process_matrix(self, samples: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`process` of a ``(keys, samples)`` matrix.

        One pass decimates every key; each row is bit-identical to the
        1-D call (cumulative sums accumulate per row in the same order,
        combs and the gain division are elementwise).
        """
        x = np.asarray(samples, dtype=complex if np.iscomplexobj(samples) else float)
        if x.ndim != 2:
            raise ValueError(f"expected a (keys, samples) matrix, got shape {x.shape}")
        for _ in range(self.order):
            x = np.cumsum(x, axis=-1)
        x = x[:, :: self.rate]
        dd = self.differential_delay
        for _ in range(self.order):
            delayed = np.concatenate(
                [np.zeros((x.shape[0], dd), dtype=x.dtype), x[:, :-dd]], axis=-1
            )
            x = x - delayed
        return x / self.gain


@dataclass
class FirDecimator:
    """Direct-form FIR filter followed by subsampling."""

    taps: np.ndarray
    rate: int = 1

    def __post_init__(self) -> None:
        self.taps = np.asarray(self.taps, dtype=float)
        if self.rate < 1:
            raise ValueError(f"rate must be >= 1, got {self.rate}")

    def process(self, samples: np.ndarray) -> np.ndarray:
        """Filter then keep every ``rate``-th sample ('same' alignment)."""
        y = np.convolve(samples, self.taps, mode="same")
        return y[:: self.rate]

    def process_matrix(self, samples: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`process` of a ``(keys, samples)`` matrix.

        The convolution stays ``np.convolve`` per row — its inner
        accumulation order is implementation-defined (BLAS dot), so no
        re-ordered whole-matrix formulation is guaranteed bit-identical
        to the scalar path.  Everything around it (stacking, 'same'
        alignment, subsampling) is batched.
        """
        x = np.asarray(samples)
        if x.ndim != 2:
            raise ValueError(f"expected a (keys, samples) matrix, got shape {x.shape}")
        if x.shape[0] == 0:
            out_n = max(x.shape[1], self.taps.size)  # np.convolve 'same'
            dtype = np.result_type(x.dtype, self.taps.dtype)
            return np.empty((0, out_n), dtype=dtype)[:, :: self.rate]
        y = np.stack([np.convolve(row, self.taps, mode="same") for row in x])
        return y[:, :: self.rate]


@dataclass
class DecimationChain:
    """Complete OSR decimator: CIC + compensator + half-band stages.

    Args:
        osr: Overall decimation factor; must be ``cic_rate * 2**n_halfbands``.
        cic_rate: First-stage CIC decimation factor.
        cic_order: CIC order.
        compensator_taps: Length of the droop-compensation FIR.
        halfband_taps: Length of each half-band FIR (4k+3).
    """

    osr: int = 64
    cic_rate: int = 16
    cic_order: int = 4
    compensator_taps: int = 33
    halfband_taps: int = 31
    _stages: list = field(init=False, repr=False)

    def __post_init__(self) -> None:
        residual = self.osr // self.cic_rate
        if self.cic_rate * residual != self.osr or residual & (residual - 1):
            raise ValueError(
                f"osr {self.osr} must equal cic_rate {self.cic_rate} times a power of two"
            )
        stages: list = [CicDecimator(rate=self.cic_rate, order=self.cic_order)]
        comp = design_cic_compensator(
            self.compensator_taps, self.cic_order, self.cic_rate
        )
        stages.append(FirDecimator(taps=comp, rate=1))
        n_halfbands = residual.bit_length() - 1
        for _ in range(n_halfbands):
            stages.append(FirDecimator(taps=design_halfband(self.halfband_taps), rate=2))
        self._stages = stages

    @property
    def stages(self) -> list:
        """The ordered list of decimation stages."""
        return list(self._stages)

    def process(self, samples: np.ndarray) -> np.ndarray:
        """Run ``samples`` through the full chain (complex-safe)."""
        x = np.asarray(samples)
        if np.iscomplexobj(x):
            real = x.real.astype(float)
            imag = x.imag.astype(float)
            for stage in self._stages:
                real = stage.process(real)
                imag = stage.process(imag)
            return real + 1j * imag
        x = x.astype(float)
        for stage in self._stages:
            x = stage.process(x)
        return x

    def process_matrix(self, samples: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`process` of a ``(keys, samples)`` matrix.

        Decimates every key in one pass through each stage; rows are
        bit-identical to the per-key scalar chain (see the stage
        ``process_matrix`` docstrings for the exactness argument).
        """
        x = np.asarray(samples)
        if x.ndim != 2:
            raise ValueError(f"expected a (keys, samples) matrix, got shape {x.shape}")
        if np.iscomplexobj(x):
            real = x.real.astype(float)
            imag = x.imag.astype(float)
            for stage in self._stages:
                real = stage.process_matrix(real)
                imag = stage.process_matrix(imag)
            return real + 1j * imag
        x = x.astype(float)
        for stage in self._stages:
            x = stage.process_matrix(x)
        return x


def fs4_mixer_sequences(n: int) -> tuple[np.ndarray, np.ndarray]:
    """In-phase and quadrature fs/4 local-oscillator sequences.

    With the modulator clocked at exactly four times the centre frequency
    (paper calibration step 10), digital down-conversion reduces to the
    multiplier-free sequences ``[1, 0, -1, 0]`` and ``[0, -1, 0, 1]``.
    """
    base_i = np.array([1.0, 0.0, -1.0, 0.0])
    base_q = np.array([0.0, -1.0, 0.0, 1.0])
    reps = -(-n // 4)
    return np.tile(base_i, reps)[:n], np.tile(base_q, reps)[:n]
