"""Decimation structures for the receiver's digital back-end.

The paper's receiver (Fig. 4) follows the band-pass sigma-delta modulator
with a digital down-conversion mixer and a decimation filter.  After the
fs/4 mixer the complex baseband stream is decimated by the OSR (64 for
the reference standard) through:

    CIC (order 4, R = 16)  ->  CIC droop compensator  ->  2 half-bands

Each structure is implemented operationally (integrator/comb chains,
polyphase-free direct convolution) rather than as a single black-box
filter, so that the digital section can be locked/unlocked at the block
level by the MixLock baseline.

Every stage also takes a ``(keys, samples)`` matrix through
``process_matrix``: key sweeps decimate the whole batch in one pass
instead of re-entering the chain per key.  The matrix path is
bit-identical to running ``process`` row by row — integrators are
per-row cumulative sums (NumPy accumulates each row of an ``axis=-1``
cumsum in the same sequential order as the 1-D call), combs and
subsampling are elementwise, and the FIR stages run one *pinned-order*
convolution primitive everywhere (see below).

Pinned-order FIR
----------------

The FIR stages used to keep ``np.convolve`` per row because its inner
accumulation order (a BLAS dot under the hood) is implementation-
defined, which made the scalar path itself the only spec.  That is
exactly why it had to go: a build-dependent sum order can never be
matched by a compiled batch kernel — or by another BLAS.  The stages
now accumulate each 'same'-aligned output sample in an *explicitly
pinned* ascending-tap order over the zero-padded row,

    y[i] = ((0 + taps[0]*x[i+s]) + taps[1]*x[i+s-1]) + ...

which two independent implementations transcribe exactly:
:func:`fir_same_pinned` here (a tap-outer NumPy loop whose per-element
left fold is that sum tree, usable with no compiler anywhere) and the
threaded ``repro_fir_batch`` entry of the engine kernel
(:func:`repro.engine.native.fir_batch_native`, used whenever the
kernel is available).  C and NumPy are bit-identical to each other on
every platform — a stronger exactness property than the np.convolve
path ever had, and the per-row Python convolution loop in matrix
sweeps is gone.  Against ``np.convolve`` itself the pinned order
agrees to a few ULPs (guarded differentially in
``tests/test_dsp_filters_decimate.py``), differing only where BLAS
multi-accumulator dots reassociate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dsp.filters import design_cic_compensator, design_halfband


@dataclass
class CicDecimator:
    """Hogenauer cascaded integrator-comb decimator.

    Attributes:
        rate: Decimation factor R.
        order: Number of integrator and comb stages N.
        differential_delay: Comb differential delay M (usually 1).
    """

    rate: int
    order: int = 4
    differential_delay: int = 1

    def __post_init__(self) -> None:
        if self.rate < 2:
            raise ValueError(f"CIC rate must be >= 2, got {self.rate}")
        if self.order < 1:
            raise ValueError(f"CIC order must be >= 1, got {self.order}")

    @property
    def gain(self) -> float:
        """DC gain (R*M)^N of the raw CIC structure."""
        return float((self.rate * self.differential_delay) ** self.order)

    def process(self, samples: np.ndarray) -> np.ndarray:
        """Decimate ``samples`` by ``rate``, normalised to unit DC gain.

        Integrators run at the input rate (cumulative sums), the stream is
        subsampled, then combs run at the output rate.
        """
        x = np.asarray(samples, dtype=complex if np.iscomplexobj(samples) else float)
        for _ in range(self.order):
            x = np.cumsum(x)
        x = x[:: self.rate]
        for _ in range(self.order):
            delayed = np.concatenate([np.zeros(self.differential_delay, dtype=x.dtype), x[: -self.differential_delay]])
            x = x - delayed
        return x / self.gain

    def process_matrix(self, samples: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`process` of a ``(keys, samples)`` matrix.

        One pass decimates every key; each row is bit-identical to the
        1-D call (cumulative sums accumulate per row in the same order,
        combs and the gain division are elementwise).
        """
        x = np.asarray(samples, dtype=complex if np.iscomplexobj(samples) else float)
        if x.ndim != 2:
            raise ValueError(f"expected a (keys, samples) matrix, got shape {x.shape}")
        for _ in range(self.order):
            x = np.cumsum(x, axis=-1)
        x = x[:, :: self.rate]
        dd = self.differential_delay
        for _ in range(self.order):
            delayed = np.concatenate(
                [np.zeros((x.shape[0], dd), dtype=x.dtype), x[:, :-dd]], axis=-1
            )
            x = x - delayed
        return x / self.gain


def fir_same_pinned(x: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Pinned-order 'same'-aligned FIR of every row of ``x``.

    The portable transcription of the kernel's ``repro_fir_batch``:
    each output sample accumulates ``taps[0]`` first and ``taps[-1]``
    last over the zero-padded row, so the per-element sum tree is a
    plain left fold — the tap-outer loop below performs exactly that
    fold element-wise, making this bit-identical to the C kernel on
    every platform (zero-padded terms included: both sides accumulate
    them rather than skip, which keeps IEEE signed zeros identical for
    the exactly-zero samples the fs/4 mixer produces).

    Output is aligned and shaped like ``np.convolve(row, taps,
    "same")`` — ``(rows, max(samples, taps))`` — and matches it to a
    few ULPs; bitwise it matches only the pinned order.

    Args:
        x: ``(rows, samples)`` real matrix.
        taps: 1-D filter taps.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"expected a (rows, samples) matrix, got shape {x.shape}")
    taps = np.asarray(taps, dtype=np.float64)
    n, m = x.shape[1], taps.size
    if m == 0:
        raise ValueError("taps must be non-empty")
    out_n = max(n, m)
    if x.shape[0] == 0:
        return np.empty((0, out_n))
    if n == 0:
        raise ValueError("samples cannot be empty")  # as np.convolve
    # 'same' alignment: y[i] = full[i + start], start = (min(n,m)-1)//2.
    s0 = (min(n, m) - 1) // 2 + m - 1
    padded = np.zeros((x.shape[0], out_n + s0))
    padded[:, m - 1 : m - 1 + n] = x
    out = np.zeros((x.shape[0], out_n))
    for k in range(m):
        out += taps[k] * padded[:, s0 - k : s0 - k + out_n]
    return out


def _fir_rows(x: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Pinned-order FIR rows via the kernel when available.

    Kernel and transcription are bit-identical, so this dispatch is
    pure throughput policy.  Imported lazily: the engine package
    imports the receiver stack, which imports this module.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim == 2 and x.shape[0] > 0 and x.shape[1] > 0:
        from repro.engine import native

        if native.kernel_available():
            return native.fir_batch_native(x, taps)
    return fir_same_pinned(x, taps)


@dataclass
class FirDecimator:
    """Direct-form FIR filter followed by subsampling.

    Both entry points run the pinned-order convolution (module
    docstring): :meth:`process` as a one-row matrix, so scalar and
    matrix paths are bit-identical by construction.
    """

    taps: np.ndarray
    rate: int = 1

    def __post_init__(self) -> None:
        self.taps = np.asarray(self.taps, dtype=float)
        if self.rate < 1:
            raise ValueError(f"rate must be >= 1, got {self.rate}")

    def process(self, samples: np.ndarray) -> np.ndarray:
        """Filter then keep every ``rate``-th sample ('same' alignment)."""
        x = np.asarray(samples)
        if np.iscomplexobj(x):
            y = self._filter(x.real[None, :])[0] + 1j * self._filter(
                x.imag[None, :]
            )[0]
        else:
            y = self._filter(x[None, :])[0]
        return y[:: self.rate]

    def process_matrix(self, samples: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`process` of a ``(keys, samples)`` matrix.

        One pinned-order batch convolution covers every key (threaded
        in the kernel path) — the per-row ``np.convolve`` Python loop
        this method used to carry is gone.
        """
        x = np.asarray(samples)
        if x.ndim != 2:
            raise ValueError(f"expected a (keys, samples) matrix, got shape {x.shape}")
        if np.iscomplexobj(x):
            y = self._filter(x.real) + 1j * self._filter(x.imag)
        else:
            y = self._filter(x)
        return y[:, :: self.rate]

    def _filter(self, x: np.ndarray) -> np.ndarray:
        return _fir_rows(x, self.taps)


@dataclass
class DecimationChain:
    """Complete OSR decimator: CIC + compensator + half-band stages.

    Args:
        osr: Overall decimation factor; must be ``cic_rate * 2**n_halfbands``.
        cic_rate: First-stage CIC decimation factor.
        cic_order: CIC order.
        compensator_taps: Length of the droop-compensation FIR.
        halfband_taps: Length of each half-band FIR (4k+3).
    """

    osr: int = 64
    cic_rate: int = 16
    cic_order: int = 4
    compensator_taps: int = 33
    halfband_taps: int = 31
    _stages: list = field(init=False, repr=False)

    def __post_init__(self) -> None:
        residual = self.osr // self.cic_rate
        if self.cic_rate * residual != self.osr or residual & (residual - 1):
            raise ValueError(
                f"osr {self.osr} must equal cic_rate {self.cic_rate} times a power of two"
            )
        stages: list = [CicDecimator(rate=self.cic_rate, order=self.cic_order)]
        comp = design_cic_compensator(
            self.compensator_taps, self.cic_order, self.cic_rate
        )
        stages.append(FirDecimator(taps=comp, rate=1))
        n_halfbands = residual.bit_length() - 1
        for _ in range(n_halfbands):
            stages.append(FirDecimator(taps=design_halfband(self.halfband_taps), rate=2))
        self._stages = stages

    @property
    def stages(self) -> list:
        """The ordered list of decimation stages."""
        return list(self._stages)

    def process(self, samples: np.ndarray) -> np.ndarray:
        """Run ``samples`` through the full chain (complex-safe)."""
        x = np.asarray(samples)
        if np.iscomplexobj(x):
            real = x.real.astype(float)
            imag = x.imag.astype(float)
            for stage in self._stages:
                real = stage.process(real)
                imag = stage.process(imag)
            return real + 1j * imag
        x = x.astype(float)
        for stage in self._stages:
            x = stage.process(x)
        return x

    def process_matrix(self, samples: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`process` of a ``(keys, samples)`` matrix.

        Decimates every key in one pass through each stage; rows are
        bit-identical to the per-key scalar chain (see the stage
        ``process_matrix`` docstrings for the exactness argument).
        """
        x = np.asarray(samples)
        if x.ndim != 2:
            raise ValueError(f"expected a (keys, samples) matrix, got shape {x.shape}")
        if np.iscomplexobj(x):
            real = x.real.astype(float)
            imag = x.imag.astype(float)
            for stage in self._stages:
                real = stage.process_matrix(real)
                imag = stage.process_matrix(imag)
            return real + 1j * imag
        x = x.astype(float)
        for stage in self._stages:
            x = stage.process_matrix(x)
        return x


def fs4_mixer_sequences(n: int) -> tuple[np.ndarray, np.ndarray]:
    """In-phase and quadrature fs/4 local-oscillator sequences.

    With the modulator clocked at exactly four times the centre frequency
    (paper calibration step 10), digital down-conversion reduces to the
    multiplier-free sequences ``[1, 0, -1, 0]`` and ``[0, -1, 0, 1]``.
    """
    base_i = np.array([1.0, 0.0, -1.0, 0.0])
    base_q = np.array([0.0, -1.0, 0.0, 1.0])
    reps = -(-n // 4)
    return np.tile(base_i, reps)[:n], np.tile(base_q, reps)[:n]
