"""FIR filter design for the receiver's digital decimation chain.

The receiver decimates the 1-bit fs/4 band-pass bitstream by the OSR
(64) after down-conversion.  The chain (see :mod:`repro.dsp.decimate`)
uses a CIC first stage, a CIC droop-compensation FIR, and half-band
stages, all designed here from first principles (windowed-sinc), with a
frequency-response evaluator for verification.

Designed taps are *applied* through the pinned-order FIR path in
:mod:`repro.dsp.decimate` (C kernel and NumPy transcription,
bit-identical to each other), not through ``np.convolve``.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.windows import make_window


def design_lowpass(num_taps: int, cutoff: float, fs: float, window: str = "blackman") -> np.ndarray:
    """Windowed-sinc linear-phase low-pass FIR.

    Args:
        num_taps: Filter length (odd recommended for a symmetric type-I
            filter).
        cutoff: -6 dB cutoff frequency, Hz.
        fs: Sampling frequency, Hz.
        window: Window applied to the ideal sinc.

    Returns:
        Tap array normalised to unit DC gain.
    """
    if num_taps < 3:
        raise ValueError(f"num_taps must be >= 3, got {num_taps}")
    if not 0.0 < cutoff < fs / 2.0:
        raise ValueError(f"cutoff must be in (0, fs/2), got {cutoff}")
    m = np.arange(num_taps) - (num_taps - 1) / 2.0
    fc = cutoff / fs
    taps = 2.0 * fc * np.sinc(2.0 * fc * m)
    taps *= make_window(window, num_taps).samples
    return taps / np.sum(taps)


def design_halfband(num_taps: int, window: str = "blackman") -> np.ndarray:
    """Half-band low-pass FIR for decimation by 2.

    ``num_taps`` must be of the form 4k+3 so that every second tap (except
    the centre) is an exact zero of the sinc; the zeros are forced to
    eliminate design-window leakage.
    """
    if num_taps % 4 != 3:
        raise ValueError(f"half-band length must be 4k+3, got {num_taps}")
    taps = design_lowpass(num_taps, 0.25 * 1.0, 1.0, window)
    centre = (num_taps - 1) // 2
    for i in range(num_taps):
        if i != centre and (i - centre) % 2 == 0:
            taps[i] = 0.0
    return taps / np.sum(taps)


def design_cic_compensator(
    num_taps: int,
    cic_order: int,
    cic_rate: int,
    passband_fraction: float = 0.4,
    fs: float = 1.0,
) -> np.ndarray:
    """FIR that flattens CIC passband droop (inverse-sinc equaliser).

    Designed by frequency sampling: the target response is the inverse of
    the CIC magnitude up to ``passband_fraction`` of the post-CIC Nyquist
    frequency, rolling off to zero beyond it.

    Args:
        num_taps: Equaliser length (odd).
        cic_order: Number of integrator/comb stages of the CIC.
        cic_rate: CIC decimation factor.
        passband_fraction: Edge of the equalised band, as a fraction of
            the post-CIC Nyquist frequency.
        fs: Post-CIC sampling frequency (only sets the tap grid; the
            design is rate-relative).

    Returns:
        Tap array with unit DC gain.
    """
    if num_taps % 2 == 0:
        raise ValueError(f"compensator length must be odd, got {num_taps}")
    grid = np.linspace(0.0, 0.5, 512)
    target = np.zeros_like(grid)
    for i, f in enumerate(grid):
        if f <= passband_fraction * 0.5:
            target[i] = 1.0 / _cic_droop(f, cic_order, cic_rate)
        else:
            target[i] = 0.0
    # Frequency-sampling design: inverse DTFT of the (real, even) target.
    m = np.arange(num_taps) - (num_taps - 1) / 2.0
    taps = np.zeros(num_taps)
    df = grid[1] - grid[0]
    for i, f in enumerate(grid):
        weight = 1.0 if 0 < i < grid.size - 1 else 0.5
        taps += 2.0 * weight * target[i] * np.cos(2.0 * np.pi * f * m) * df
    taps *= make_window("hamming", num_taps).samples
    return taps / np.sum(taps)


def _cic_droop(f_relative: float, order: int, rate: int) -> float:
    """Magnitude of an order-``order`` CIC at ``f_relative`` (post-CIC rate).

    ``f_relative`` is in cycles/sample at the decimated rate.
    """
    f_in = f_relative / rate
    if abs(f_in) < 1e-12:
        return 1.0
    num = np.sin(np.pi * rate * f_in)
    den = rate * np.sin(np.pi * f_in)
    return float(abs(num / den) ** order)


def freq_response(taps: np.ndarray, freqs: np.ndarray, fs: float) -> np.ndarray:
    """Complex frequency response of an FIR at ``freqs`` (Hz)."""
    taps = np.asarray(taps, dtype=float)
    n = np.arange(taps.size)
    omega = 2.0 * np.pi * np.asarray(freqs) / fs
    return np.exp(-1j * np.outer(omega, n)) @ taps
