"""[7] Parameter-biasing obfuscation (Rao & Savidis, LATS 2017).

The original transistor of a biasing circuit is replaced by a bank of
parallel transistors whose gates are enabled by key bits; only the
combination whose *aggregate width* equals the original width restores
the intended bias current.  Modelled with square-law MOS devices in the
MNA engine: the key enables binary-weighted width segments of the
current-source device of a simple bias branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.base import AnalogLockScheme, RemovalSurface, SchemeProfile
from repro.circuit import Circuit, MnaSolver, Mosfet, Resistor, VoltageSource

#: Width segments in units of the unit device, binary weighted + decoys.
SEGMENT_WIDTHS = (1, 2, 4, 8, 3, 6, 5, 7)

#: The original transistor's width in unit-device multiples.
TARGET_WIDTH = 15


@dataclass
class BiasObfuscationLock(AnalogLockScheme):
    """Width-obfuscated current source.

    The correct key enables segments summing exactly to the original
    width.  The testbench is a resistively-loaded common-source bias
    branch; the scheme unlocks when the branch current is within
    ``tolerance`` of the nominal design current.
    """

    kp_unit: float = 5e-5
    vth: float = 0.45
    supply: float = 1.2
    vbias: float = 0.75
    tolerance: float = 0.03
    _i_target: float = field(init=False)
    _correct_key: int = field(init=False)

    def __post_init__(self) -> None:
        self._correct_key = self._find_canonical_key()
        self._i_target = self.branch_current(self._correct_key)

    def _find_canonical_key(self) -> int:
        """Lowest-index segment set summing to the target width."""
        for key in range(1 << len(SEGMENT_WIDTHS)):
            if self._width(key) == TARGET_WIDTH:
                return key
        raise RuntimeError("no segment combination reaches the target width")

    @staticmethod
    def _width(key: int) -> int:
        return sum(
            w for i, w in enumerate(SEGMENT_WIDTHS) if (key >> i) & 1
        )

    def branch_current(self, key: int) -> float:
        """Bias-branch current for a key (MNA with square-law MOS)."""
        if not 0 <= key < (1 << len(SEGMENT_WIDTHS)):
            raise ValueError(f"key {key} out of range")
        width = self._width(key)
        if width == 0:
            return 0.0
        c = Circuit(title="bias_obfuscation")
        c.add(VoltageSource("VDD", "vdd", "0", dc=self.supply))
        c.add(VoltageSource("VB", "gate", "0", dc=self.vbias))
        c.add(Resistor("Rd", "vdd", "drain", 2.2e3))
        c.add(
            Mosfet(
                "Marr",
                d="drain",
                g="gate",
                s="0",
                kp=self.kp_unit * width,
                vth=self.vth,
            )
        )
        solution = MnaSolver(c).dc_operating_point()
        return (self.supply - solution.v("drain")) / 2.2e3

    # -- AnalogLockScheme -----------------------------------------------------

    @property
    def profile(self) -> SchemeProfile:
        return SchemeProfile(
            name="parameter-biasing obfuscation",
            reference="[7]",
            locks_what="width of biasing transistors",
            added_circuitry=True,
            key_bits=len(SEGMENT_WIDTHS),
            area_overhead_pct=12.0,
            power_overhead_pct=1.0,
            performance_penalty_db=0.3,
            requires_redesign=True,
        )

    @property
    def correct_key(self) -> int:
        return self._correct_key

    def unlocks(self, key: int) -> bool:
        i = self.branch_current(key)
        if self._i_target == 0.0:
            return False
        return abs(i - self._i_target) / self._i_target <= self.tolerance

    def removal_surface(self) -> RemovalSurface:
        return RemovalSurface(
            has_added_circuitry=True,
            n_bias_nodes=1,
            biases_fixed_per_design=True,
            replacement_difficulty=0,
        )
