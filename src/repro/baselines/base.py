"""Common interface of the prior-work analog locking baselines (Fig. 1).

Every baseline implements the same protocol so the comparison table of
the paper's Sections II/IV-A can be *computed*: does the right key
unlock the scheme's own testbench, what circuitry was added, what does
it cost, and what is the removal-attack surface.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


@dataclass(frozen=True)
class SchemeProfile:
    """Descriptor of one locking technique.

    Attributes:
        name: Scheme name.
        reference: Paper reference tag ([6]..[11], or 'this work').
        locks_what: Which part of the design carries the lock.
        added_circuitry: Whether lock hardware was inserted on-chip.
        key_bits: Key width.
        area_overhead_pct: Added area relative to the protected block.
        power_overhead_pct: Added power.
        performance_penalty_db: Performance cost of the insertion.
        requires_redesign: Whether the analog design must be re-entered
            or re-sized around the lock.
    """

    name: str
    reference: str
    locks_what: str
    added_circuitry: bool
    key_bits: int
    area_overhead_pct: float
    power_overhead_pct: float
    performance_penalty_db: float
    requires_redesign: bool


@dataclass(frozen=True)
class RemovalSurface:
    """What a removal attacker can exploit (paper Sec. II).

    Attributes:
        has_added_circuitry: Anything to cut out at all?
        n_bias_nodes: Number of bias values the attacker must recover.
        biases_fixed_per_design: True when the biases are identical for
            every fabricated chip (the fatal weakness of [6]-[8], [11]);
            False when they are per-chip tuning values ([9], [10] lock
            functionality/tuning, not fixed biases).
        replacement_difficulty: Qualitative 0..3 scale of replacing the
            locked block with a 'fresh' one (0 = trivial bias re-gen,
            3 = impossible, nothing to replace).
    """

    has_added_circuitry: bool
    n_bias_nodes: int
    biases_fixed_per_design: bool
    replacement_difficulty: int


class AnalogLockScheme(abc.ABC):
    """Protocol every baseline implements."""

    @property
    @abc.abstractmethod
    def profile(self) -> SchemeProfile:
        """Static descriptor of the scheme."""

    @property
    @abc.abstractmethod
    def correct_key(self) -> int:
        """The secret key of this instance."""

    @abc.abstractmethod
    def unlocks(self, key: int) -> bool:
        """Whether ``key`` restores nominal function on the testbench."""

    @abc.abstractmethod
    def removal_surface(self) -> RemovalSurface:
        """The scheme's removal-attack surface."""

    def lock_effectiveness(self, n_random_keys: int, rng) -> float:
        """Fraction of random keys that fail to unlock (higher = better).

        The key population is drawn in one ``rng.integers`` call (the
        batched draw consumes the generator stream element-for-element
        like the old scalar loop, so figures are unchanged); accidental
        draws of the correct key are excluded from the failure count.
        """
        if n_random_keys < 1:
            raise ValueError(
                f"n_random_keys must be >= 1, got {n_random_keys}"
            )
        key_space = 1 << self.profile.key_bits
        keys = rng.integers(0, key_space, size=n_random_keys)
        failures = sum(
            1
            for key in (int(k) for k in keys)
            if key != self.correct_key and not self.unlocks(key)
        )
        return failures / n_random_keys
