"""[10] Locking the calibration loop's digital optimiser (Jayasankaran
et al., ICCAD 2018).

The on-chip calibration feedback loop contains a digital optimiser that
turns measured performance indicators into tuning codes; logic-locking
that optimiser means a wrong key produces wrong tuning settings.
Modelled as a logic-locked successive-approximation (SAR) step driving
a binary code search toward a target: with the correct key the SAR
converges to the target code, with a wrong key it lands elsewhere and
the (abstracted) analog block stays detuned.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attacks.sat_attack import SatAttack, SatAttackResult
from repro.baselines.base import AnalogLockScheme, RemovalSurface, SchemeProfile
from repro.logic.bench_circuits import sar_optimizer_step
from repro.logic.gates import Netlist
from repro.logic.locking import LockedNetlist, lock_netlist

N_CODE_BITS = 6


@dataclass
class CalibrationLoopLock(AnalogLockScheme):
    """Logic-locked SAR optimiser in the tuning loop."""

    target_code: int = 0b101101
    n_key_bits: int = 10
    seed: int = 9
    original: Netlist = field(init=False)
    locked: LockedNetlist = field(init=False)

    def __post_init__(self) -> None:
        if not 0 <= self.target_code < (1 << N_CODE_BITS):
            raise ValueError(f"target code {self.target_code} out of range")
        self.original = sar_optimizer_step(N_CODE_BITS)
        rng = np.random.default_rng(self.seed)
        self.locked = lock_netlist(self.original, self.n_key_bits, rng)

    def _run_sar(self, key: int) -> int:
        """Run the full SAR search using the (locked) step logic.

        The comparator verdict ("higher") abstracts the analog
        measurement: it reports whether the target code is >= the
        current trial code, as a monotonic tuning knob would.
        """
        code = 0
        for bit in reversed(range(N_CODE_BITS)):
            trial = code | (1 << bit)
            higher = int(self.target_code >= trial)
            vec: dict[str, int] = {"higher": higher}
            for i in range(N_CODE_BITS):
                vec[f"code{i}"] = (trial >> i) & 1
                vec[f"mask{i}"] = int(i == bit)
            out = self.locked.evaluate_with_key(vec, key)
            next_code = 0
            for i in range(N_CODE_BITS):
                next_code |= out[f"next{i}"] << i
            # The step logic sets the next lower trial bit itself; strip
            # it for the loop-carried code (we re-add per iteration).
            if bit > 0:
                next_code &= ~(1 << (bit - 1))
            code = next_code
        return code

    # -- AnalogLockScheme ----------------------------------------------------

    @property
    def profile(self) -> SchemeProfile:
        return SchemeProfile(
            name="locked calibration optimiser",
            reference="[10]",
            locks_what="digital optimiser of the calibration loop",
            added_circuitry=True,
            key_bits=self.n_key_bits,
            area_overhead_pct=3.0,
            power_overhead_pct=1.5,
            performance_penalty_db=0.0,
            requires_redesign=False,
        )

    @property
    def correct_key(self) -> int:
        return self.locked.correct_key

    def unlocks(self, key: int) -> bool:
        """Unlocked when the SAR converges to the intended tuning code."""
        return self._run_sar(key) == self.target_code

    def removal_surface(self) -> RemovalSurface:
        return RemovalSurface(
            has_added_circuitry=True,
            n_bias_nodes=0,
            biases_fixed_per_design=False,
            replacement_difficulty=2,
        )

    def run_sat_attack(self) -> SatAttackResult:
        """Oracle-guided SAT attack on the locked optimiser step."""
        attack = SatAttack(
            locked=self.locked, oracle=self.locked.oracle(self.original)
        )
        return attack.run()
