"""Minimal dense neural network with from-scratch backpropagation.

Substrate for the neural-network biasing baseline [11]: a two-layer
tanh MLP trained with plain gradient descent on mean-squared error.
numpy only — no autograd framework exists in this environment, so the
gradients are written out by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class TinyMlp:
    """``n_in -> n_hidden (tanh) -> n_out (linear)`` regression net."""

    n_in: int
    n_hidden: int
    n_out: int
    seed: int = 0
    w1: np.ndarray = field(init=False, repr=False)
    b1: np.ndarray = field(init=False, repr=False)
    w2: np.ndarray = field(init=False, repr=False)
    b2: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.seed)
        scale1 = 1.0 / np.sqrt(self.n_in)
        scale2 = 1.0 / np.sqrt(self.n_hidden)
        self.w1 = rng.normal(0.0, scale1, (self.n_in, self.n_hidden))
        self.b1 = np.zeros(self.n_hidden)
        self.w2 = rng.normal(0.0, scale2, (self.n_hidden, self.n_out))
        self.b2 = np.zeros(self.n_out)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Predict outputs for a batch of inputs (n, n_in)."""
        x = np.atleast_2d(x)
        hidden = np.tanh(x @ self.w1 + self.b1)
        return hidden @ self.w2 + self.b2

    def train(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 2000,
        learning_rate: float = 0.05,
    ) -> float:
        """Full-batch gradient descent on MSE; returns the final loss."""
        x = np.atleast_2d(x)
        y = np.atleast_2d(y)
        n = x.shape[0]
        loss = np.inf
        for _ in range(epochs):
            hidden = np.tanh(x @ self.w1 + self.b1)
            pred = hidden @ self.w2 + self.b2
            err = pred - y
            loss = float(np.mean(err**2))
            # Backprop (MSE, linear output, tanh hidden).
            grad_pred = 2.0 * err / n
            grad_w2 = hidden.T @ grad_pred
            grad_b2 = grad_pred.sum(axis=0)
            grad_hidden = grad_pred @ self.w2.T * (1.0 - hidden**2)
            grad_w1 = x.T @ grad_hidden
            grad_b1 = grad_hidden.sum(axis=0)
            self.w2 -= learning_rate * grad_w2
            self.b2 -= learning_rate * grad_b2
            self.w1 -= learning_rate * grad_w1
            self.b1 -= learning_rate * grad_b1
        return loss
