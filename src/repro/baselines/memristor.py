"""[6] Memristor-crossbar bias locking (Hoe et al., ISVLSI 2014).

The original work locks the body biasing of a sense amplifier's input
pair behind a memristor crossbar: only the correct programmed
resistance pattern produces the intended bias voltage.  Modelled here
as a two-branch crossbar divider solved with the MNA engine; the key
bits select each memristor's low/high state.

Its weakness (paper Sec. II): the lock acts on a *bias* that is fixed
per design — an attacker recovers the single bias voltage from any
working chip and replaces the crossbar with a plain divider.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.base import AnalogLockScheme, RemovalSurface, SchemeProfile
from repro.circuit import Circuit, Memristor, MnaSolver, Resistor, VoltageSource

#: Key width: 8 memristors in the crossbar.
N_DEVICES = 8


@dataclass
class MemristorBiasLock(AnalogLockScheme):
    """Crossbar-locked body-bias generator.

    Args:
        correct_key_word: Programmed crossbar pattern (one bit per
            device; bit=1 means low-resistance state).
        supply: Bias supply voltage.
        tolerance: Acceptable bias error for the sense amp to work, V.
    """

    correct_key_word: int = 0b10110100
    supply: float = 1.2
    tolerance: float = 0.04
    _target: float = field(init=False)

    def __post_init__(self) -> None:
        self._target = self.bias_voltage(self.correct_key_word)

    def _crossbar(self, key: int) -> Circuit:
        """Crossbar divider: four devices up, four down, keyed states."""
        c = Circuit(title="memristor_bias")
        c.add(VoltageSource("VDD", "vdd", "0", dc=self.supply))
        for i in range(N_DEVICES):
            state = float((key >> i) & 1)
            top = i < N_DEVICES // 2
            c.add(
                Memristor(
                    f"M{i}",
                    "vdd" if top else "bias",
                    "bias" if top else "0",
                    r_on=20e3,
                    r_off=400e3,
                    state=state,
                )
            )
        # Sense-amp body pin load.
        c.add(Resistor("Rload", "bias", "0", 1e6))
        return c

    def bias_voltage(self, key: int) -> float:
        """Generated body-bias voltage for a crossbar pattern."""
        if not 0 <= key < (1 << N_DEVICES):
            raise ValueError(f"key {key} out of range")
        solution = MnaSolver(self._crossbar(key)).dc_operating_point()
        return solution.v("bias")

    # -- AnalogLockScheme ----------------------------------------------------

    @property
    def profile(self) -> SchemeProfile:
        return SchemeProfile(
            name="memristor crossbar bias lock",
            reference="[6]",
            locks_what="body bias of the sense-amp input pair",
            added_circuitry=True,
            key_bits=N_DEVICES,
            area_overhead_pct=9.0,
            power_overhead_pct=3.0,
            performance_penalty_db=0.4,
            requires_redesign=True,
        )

    @property
    def correct_key(self) -> int:
        return self.correct_key_word

    def unlocks(self, key: int) -> bool:
        return abs(self.bias_voltage(key) - self._target) <= self.tolerance

    def removal_surface(self) -> RemovalSurface:
        return RemovalSurface(
            has_added_circuitry=True,
            n_bias_nodes=1,
            biases_fixed_per_design=True,
            replacement_difficulty=0,
        )
