"""[11] Neural-network-based analog performance locking (Volanis et al.,
VTS 2019).

An on-chip neural network maps a secret *analog* key — DC voltages
presented at extra input pins — to the correct bias codes.  Presenting
anything but the enrolled voltage vector produces wrong biases and
degraded performance.

Modelled with the from-scratch MLP of :mod:`repro.baselines.mlp`: the
net is trained to reproduce the calibrated bias codes at the secret
voltage vector and decoy codes elsewhere, mimicking the obfuscation
training of the original work.  Weakness (paper Sec. II): the *output*
of the network is a handful of bias values, observable on a working
chip and fixed per design — a removal attacker reads them once and
replaces the network with hardwired biases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import AnalogLockScheme, RemovalSurface, SchemeProfile
from repro.baselines.mlp import TinyMlp

#: Number of analog key pins (DC voltages in [0, 1] V).
N_KEY_PINS = 4

#: Quantisation of the analog key for the integer-key interface: each
#: pin is a 4-bit DAC level, so the integer key packs 4x4 bits.
PIN_BITS = 4


@dataclass
class NeuralBiasLock(AnalogLockScheme):
    """MLP-locked bias generation.

    Args:
        bias_targets: The calibrated bias codes (normalised to [0,1])
            the network must produce under the secret key.
        secret_levels: The secret 4-bit DAC level per key pin.
    """

    bias_targets: tuple[float, ...] = (0.375, 0.5, 0.65)
    secret_levels: tuple[int, ...] = (3, 11, 6, 14)
    tolerance: float = 0.05
    seed: int = 2
    net: TinyMlp = field(init=False)
    training_loss: float = field(init=False)

    def __post_init__(self) -> None:
        if len(self.secret_levels) != N_KEY_PINS:
            raise ValueError(f"need {N_KEY_PINS} secret levels")
        if any(not 0 <= lv < (1 << PIN_BITS) for lv in self.secret_levels):
            raise ValueError("secret levels must be 4-bit")
        rng = np.random.default_rng(self.seed)
        self.net = TinyMlp(
            n_in=N_KEY_PINS, n_hidden=24, n_out=len(self.bias_targets), seed=self.seed
        )
        # Training set: the secret point -> correct biases (replicated so
        # the fit pins it exactly), decoy points -> random wrong biases
        # (the obfuscation corpus).
        x = [self._levels_to_voltages(self.secret_levels)] * 16
        y = [np.array(self.bias_targets)] * 16
        for _ in range(60):
            decoy = rng.integers(0, 1 << PIN_BITS, N_KEY_PINS)
            if tuple(decoy) == tuple(self.secret_levels):
                continue
            x.append(self._levels_to_voltages(decoy))
            y.append(rng.uniform(0.0, 1.0, len(self.bias_targets)))
        self.training_loss = self.net.train(
            np.array(x), np.array(y), epochs=4000, learning_rate=0.08
        )

    @staticmethod
    def _levels_to_voltages(levels) -> np.ndarray:
        return (np.asarray(levels, dtype=float) + 0.5) / (1 << PIN_BITS)

    def biases_for_levels(self, levels) -> np.ndarray:
        """Bias codes produced for a vector of key-pin DAC levels."""
        return self.net.forward(self._levels_to_voltages(levels))[0]

    # -- AnalogLockScheme ------------------------------------------------------

    @property
    def profile(self) -> SchemeProfile:
        return SchemeProfile(
            name="neural-network biasing lock",
            reference="[11]",
            locks_what="bias generation behind an on-chip neural network",
            added_circuitry=True,
            key_bits=N_KEY_PINS * PIN_BITS,
            area_overhead_pct=15.0,
            power_overhead_pct=6.0,
            performance_penalty_db=0.0,
            requires_redesign=False,
        )

    @property
    def correct_key(self) -> int:
        word = 0
        for i, level in enumerate(self.secret_levels):
            word |= level << (i * PIN_BITS)
        return word

    def _key_to_levels(self, key: int) -> tuple[int, ...]:
        return tuple(
            (key >> (i * PIN_BITS)) & ((1 << PIN_BITS) - 1) for i in range(N_KEY_PINS)
        )

    def unlocks(self, key: int) -> bool:
        if not 0 <= key < (1 << (N_KEY_PINS * PIN_BITS)):
            raise ValueError(f"key {key} out of range")
        produced = self.biases_for_levels(self._key_to_levels(key))
        return bool(
            np.all(np.abs(produced - np.array(self.bias_targets)) <= self.tolerance)
        )

    def removal_surface(self) -> RemovalSurface:
        return RemovalSurface(
            has_added_circuitry=True,
            n_bias_nodes=len(self.bias_targets),
            biases_fixed_per_design=True,
            replacement_difficulty=0,
        )
