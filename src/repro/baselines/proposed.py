"""The paper's proposed scheme wrapped in the baseline interface.

Lets the comparison experiments treat "locking via the programmability
fabric" as a seventh row of the Fig. 1 table: zero added circuitry,
zero overhead, 64-bit key, no removal surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import AnalogLockScheme, RemovalSurface, SchemeProfile
from repro.locking.scheme import ProgrammabilityLock
from repro.receiver.config import KEY_BITS, ConfigWord
from repro.receiver.standards import Standard


@dataclass
class ProposedFabricLock(AnalogLockScheme):
    """Programmability-fabric locking as an :class:`AnalogLockScheme`.

    Args:
        lock: A provisioned :class:`ProgrammabilityLock`.
        standard: The operation mode the comparison runs in.
        n_fft: Measurement record length per key trial.
    """

    lock: ProgrammabilityLock
    standard: Standard
    n_fft: int = 2048
    _correct: int = field(init=False)

    def __post_init__(self) -> None:
        self._correct = self.lock.key_for(self.standard).encode()

    @property
    def profile(self) -> SchemeProfile:
        return SchemeProfile(
            name="locking via the programmability fabric",
            reference="this work",
            locks_what="the complete analog functionality (tuning knobs)",
            added_circuitry=False,
            key_bits=KEY_BITS,
            area_overhead_pct=0.0,
            power_overhead_pct=0.0,
            performance_penalty_db=0.0,
            requires_redesign=False,
        )

    @property
    def correct_key(self) -> int:
        return self._correct

    def unlocks(self, key: int) -> bool:
        evaluation = self.lock.evaluate_key(
            ConfigWord.decode(key), self.standard, n_fft=self.n_fft
        )
        return evaluation.unlocked

    def removal_surface(self) -> RemovalSurface:
        return RemovalSurface(
            has_added_circuitry=False,
            n_bias_nodes=0,
            biases_fixed_per_design=False,
            replacement_difficulty=3,
        )

    def lock_effectiveness(self, n_random_keys: int, rng: np.random.Generator) -> float:
        """Fraction of random 64-bit keys that fail to unlock.

        Every trial is a full chip measurement here, so the population
        goes through the batched engine in one submission.  The key
        draws and the per-key adjudication (same ``n_fft``, same seed)
        match the previous per-key loop, and the engine backends are
        bit-exact, so the figure is unchanged.
        """
        if n_random_keys < 1:
            raise ValueError(
                f"n_random_keys must be >= 1, got {n_random_keys}"
            )
        keys = [ConfigWord.random(rng) for _ in range(n_random_keys)]
        evaluations = self.lock.evaluate_keys(
            keys, self.standard, n_fft=self.n_fft
        )
        failures = sum(1 for e in evaluations if not e.unlocked)
        return failures / n_random_keys
