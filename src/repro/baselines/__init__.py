"""Prior-work analog locking baselines (paper Fig. 1) + the proposed scheme."""

from repro.baselines.base import AnalogLockScheme, RemovalSurface, SchemeProfile
from repro.baselines.bias_obfuscation import BiasObfuscationLock
from repro.baselines.calibration_lock import CalibrationLoopLock
from repro.baselines.current_mirror import CurrentMirrorLock
from repro.baselines.memristor import MemristorBiasLock
from repro.baselines.mixlock import MixLock
from repro.baselines.mlp import TinyMlp
from repro.baselines.neural_bias import NeuralBiasLock
from repro.baselines.proposed import ProposedFabricLock

__all__ = [
    "AnalogLockScheme",
    "BiasObfuscationLock",
    "CalibrationLoopLock",
    "CurrentMirrorLock",
    "MemristorBiasLock",
    "MixLock",
    "NeuralBiasLock",
    "ProposedFabricLock",
    "RemovalSurface",
    "SchemeProfile",
    "TinyMlp",
]
