"""[9] MixLock: mixed-signal locking via logic locking (Leonhard et al.,
DATE 2019).

Locks the *digital section* of the mixed-signal system — here the
receiver's decimation-control decoder — with random XOR/XNOR key gates.
A wrong key corrupts the decimation control, breaking the receiver even
though the analog section is untouched.

Strengths over the bias schemes: the key relates to functionality, not
a few fixed biases.  Weaknesses (paper Secs. II, IV-B.1): a removal
attacker can re-synthesise a "fresh" unlocked digital section, and the
oracle-guided SAT attack applies directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attacks.sat_attack import SatAttack, SatAttackResult
from repro.baselines.base import AnalogLockScheme, RemovalSurface, SchemeProfile
from repro.logic.bench_circuits import decimation_controller
from repro.logic.gates import Netlist
from repro.logic.locking import LockedNetlist, lock_netlist


@dataclass
class MixLock(AnalogLockScheme):
    """Logic-locked decimation controller."""

    n_key_bits: int = 10
    seed: int = 5
    original: Netlist = field(init=False)
    locked: LockedNetlist = field(init=False)

    def __post_init__(self) -> None:
        self.original = decimation_controller()
        rng = np.random.default_rng(self.seed)
        self.locked = lock_netlist(self.original, self.n_key_bits, rng)

    # -- AnalogLockScheme ------------------------------------------------------

    @property
    def profile(self) -> SchemeProfile:
        return SchemeProfile(
            name="MixLock (logic-locked digital section)",
            reference="[9]",
            locks_what="digital section of the mixed-signal system",
            added_circuitry=True,
            key_bits=self.n_key_bits,
            area_overhead_pct=2.5,
            power_overhead_pct=1.0,
            performance_penalty_db=0.0,
            requires_redesign=False,
        )

    @property
    def correct_key(self) -> int:
        return self.locked.correct_key

    def unlocks(self, key: int) -> bool:
        """Functional equivalence over the full (small) input space."""
        n_inputs = len(self.original.inputs)
        for word in range(1 << n_inputs):
            vec = {net: (word >> i) & 1 for i, net in enumerate(self.original.inputs)}
            if self.locked.evaluate_with_key(vec, key) != self.original.evaluate(vec):
                return False
        return True

    def removal_surface(self) -> RemovalSurface:
        return RemovalSurface(
            has_added_circuitry=True,
            n_bias_nodes=0,
            biases_fixed_per_design=False,
            replacement_difficulty=2,
        )

    def run_sat_attack(self) -> SatAttackResult:
        """The attack that defeats this baseline (paper Sec. IV-B.1)."""
        attack = SatAttack(
            locked=self.locked, oracle=self.locked.oracle(self.original)
        )
        return attack.run()
