"""[8] Current-mirror combinational locking (Wang et al., ITC 2017).

The current mirrors providing the biasing are redesigned so that key
transistors gate binary-weighted output legs: only the correct key
yields the intended mirror ratio.  Modelled with square-law MOS devices
in the MNA engine: a diode-connected reference and keyed output legs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.base import AnalogLockScheme, RemovalSurface, SchemeProfile
from repro.circuit import Circuit, CurrentSource, MnaSolver, Mosfet, Resistor, VoltageSource

#: Output legs in unit-device multiples (binary weighted).
LEG_WIDTHS = (1, 2, 4, 8, 16, 3)

#: Intended mirror ratio in unit multiples.
TARGET_RATIO_UNITS = 12


@dataclass
class CurrentMirrorLock(AnalogLockScheme):
    """Keyed current mirror with binary-weighted output legs."""

    i_ref: float = 50e-6
    kp_unit: float = 4e-5
    vth: float = 0.45
    tolerance: float = 0.05
    _correct_key: int = field(init=False)
    _i_target: float = field(init=False)

    def __post_init__(self) -> None:
        self._correct_key = self._find_canonical_key()
        self._i_target = self.output_current(self._correct_key)

    @staticmethod
    def _units(key: int) -> int:
        return sum(w for i, w in enumerate(LEG_WIDTHS) if (key >> i) & 1)

    def _find_canonical_key(self) -> int:
        for key in range(1 << len(LEG_WIDTHS)):
            if self._units(key) == TARGET_RATIO_UNITS:
                return key
        raise RuntimeError("no leg combination reaches the target ratio")

    def output_current(self, key: int) -> float:
        """Mirrored output current for a key."""
        if not 0 <= key < (1 << len(LEG_WIDTHS)):
            raise ValueError(f"key {key} out of range")
        units = self._units(key)
        if units == 0:
            return 0.0
        c = Circuit(title="keyed_mirror")
        # Reference branch: current source into a diode-connected device.
        c.add(CurrentSource("Iref", "0", "ref", dc=self.i_ref))
        c.add(Mosfet("Mref", d="ref", g="ref", s="0", kp=self.kp_unit, vth=self.vth))
        # Output branch: supply through a load resistor into the keyed
        # aggregate-width device (stays saturated for sane ratios).
        c.add(VoltageSource("VDD", "vdd", "0", dc=1.8))
        c.add(Resistor("Rl", "vdd", "out", 1e3))
        c.add(
            Mosfet(
                "Mout", d="out", g="ref", s="0", kp=self.kp_unit * units, vth=self.vth
            )
        )
        solution = MnaSolver(c).dc_operating_point()
        return (1.8 - solution.v("out")) / 1e3

    # -- AnalogLockScheme ----------------------------------------------------

    @property
    def profile(self) -> SchemeProfile:
        return SchemeProfile(
            name="current-mirror combinational lock",
            reference="[8]",
            locks_what="mirror ratios of the bias distribution",
            added_circuitry=True,
            key_bits=len(LEG_WIDTHS),
            area_overhead_pct=7.0,
            power_overhead_pct=2.0,
            performance_penalty_db=0.2,
            requires_redesign=True,
        )

    @property
    def correct_key(self) -> int:
        return self._correct_key

    def unlocks(self, key: int) -> bool:
        i = self.output_current(key)
        if self._i_target <= 0.0:
            return False
        return abs(i - self._i_target) / self._i_target <= self.tolerance

    def removal_surface(self) -> RemovalSurface:
        return RemovalSurface(
            has_added_circuitry=True,
            n_bias_nodes=2,
            biases_fixed_per_design=True,
            replacement_difficulty=0,
        )
