"""repro — reproduction of "Securing Programmable Analog ICs Against Piracy".

M. Elshamy et al., DATE 2020 (HAL hal-02384389).

The package implements, in pure Python:

* a behavioural multi-standard RF receiver (VGLNA + continuous-time
  band-pass sigma-delta modulator + digital down-conversion/decimation),
* its 64-bit programmability fabric and per-chip process variations,
* the paper's 14-step off-chip calibration procedure,
* the proposed locking-through-programmability scheme with tamper-proof
  memory and PUF key management,
* an attack suite (brute force, multi-objective optimisation, removal,
  oracle-guided SAT) and six prior-work baseline locking schemes,
* a unified attack-campaign API (:mod:`repro.campaigns`): one
  ``Attack.execute(scenario) -> AttackReport`` protocol, declarative
  threat-scenario matrices and chip-fleet process sharding,
* a job-oriented execution service (:mod:`repro.service`): campaigns,
  provisioning passes and experiment runs submitted through one
  ``FoundryService.submit(job) -> JobHandle`` API with streaming
  results, a work-stealing scheduler and resumable job journals, and
* experiment drivers regenerating every figure/analysis of the paper.

Start with :mod:`repro.locking` and ``examples/quickstart.py``.
"""

__version__ = "1.0.0"
