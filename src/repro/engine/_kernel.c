/* Batched modulator integrator — compiled fast path of the vectorized
 * backend (see repro/engine/native.py, which builds and loads this).
 *
 * Bit-exactness contract with the Python reference loop
 * (repro/engine/reference.py):
 *
 *   - every expression below is a line-for-line transcription of the
 *     reference recursion with the SAME operand order, so each IEEE-754
 *     add/mul/div rounds identically;
 *   - tanh() here and CPython's math.tanh are the same libm symbol, so
 *     the only transcendental matches exactly;
 *   - the build disables floating-point contraction (-ffp-contract=off),
 *     so the compiler cannot fuse a*b+c into an FMA with different
 *     rounding.
 *
 * The batch ABI carries the per-key state (v, i_L) over the key axis:
 * each input is an array of per-key row pointers, and the outer loop
 * walks keys while the inner recursion walks time.  Keys are
 * independent — each key reads only its own rows and parameter block
 * and writes only its own output rows — so the key loop is also the
 * kernel's second axis of parallelism: when the library is built with
 * pthreads, keys are distributed over a per-call worker team pulling
 * from an atomic counter (dynamic scheduling).  Thread count cannot
 * change any result (per-key arithmetic is untouched and there is no
 * shared mutable state), so 1-vs-N-thread runs are bit-identical;
 * without pthreads the same loop simply runs sequentially.
 *
 * Raw pthreads, not OpenMP, deliberately: the workers are created and
 * joined inside each call, so no threading runtime state ever
 * outlives it — processes that fork() after using the kernel (the
 * campaign layer's worker pools do) stay safe, where a forked child
 * of an OpenMP parent deadlocks in the orphaned runtime.
 *
 * SIMD time recursion (third axis, per thread)
 * --------------------------------------------
 *
 * The time recursion is inherently sequential per key, but L keys can
 * advance one step together: the lane path below packs consecutive
 * keys whose loop-topology flags agree (clocked / feedback_on /
 * chop_en / delay_whole — everything that picks a branch) into
 * 2- or 4-wide vector lanes, transposes their per-sample input records
 * into a key-inner scratch layout (sample-major, lane-minor, so the
 * hot loop issues contiguous vector loads), and carries (v, i_L) and
 * the decision history as vectors.  The exactness argument extends
 * lane-wise:
 *
 *   - every vector add/mul/div is the per-lane IEEE-754 scalar
 *     operation, applied in the same operand order as the scalar
 *     transcription (the expressions are written identically);
 *   - tanh is applied PER LANE through the very same libm call — no
 *     vectorised math library, no polynomial approximation — so the
 *     transcendental is bitwise the scalar path's;
 *   - -ffp-contract=off covers vector expressions too.
 *
 * Hence lane width cannot change any result: 0/2/4-lane runs are
 * bit-identical (guarded in tests/test_engine.py).  Keys that do not
 * fill a uniform pack (odd remainders, mode changes mid-batch) run the
 * scalar path, which the same guard covers.  The win is instruction-
 * level: one lane's step is latency-bound on tanh plus the tank
 * update's dependency chain, and L independent lanes fill those
 * bubbles.  Lane width is a per-call argument (resolved in native.py
 * from REPRO_ENGINE_SIMD; < 0 asks this library to pick via
 * repro_kernel_simd_width()), and toolchains without GNU vector
 * extensions compile the scalar-only kernel with the identical ABI.
 */

#include <math.h>
#include <stdlib.h>
#include <string.h>

#ifdef REPRO_USE_PTHREADS
#include <pthread.h>
#include <stdatomic.h>
#include <unistd.h>
#endif

/* Hard cap on the per-call worker team: 64 helper threads plus the
 * calling thread.  n_threads is clamped to this up front (and then to
 * the number of work items), so requesting more is safe and merely
 * redundant — documented in native.py, covered by a many-threads test. */
#define REPRO_MAX_THREADS 65

int repro_kernel_simd_width(void);

/* Per-key parameter row layout; must match PARAM_FIELDS in native.py. */
enum {
    P_A11, P_A12, P_A21, P_A22, P_B1, P_B2,
    P_CLOCKED, P_FEEDBACK_ON, P_CHOP_EN, P_DELAY_WHOLE, P_SWITCH_SUBSTEP,
    P_I_DAC_UNIT, P_CHOP_OFFSET, P_DECISION_SIGMA, P_HYSTERESIS,
    P_GV, P_VSAT, P_PREAMP_GAIN, P_V_CLIP, P_BUF_GAIN,
    P_BUFFER_GAIN, P_BUFFER_CLAMP, P_BUFFER_NOISE, P_V0, P_IL0,
    N_PARAMS
};

static void simulate_key(
    int n_samples, int substeps,
    const double *i_in, const double *comp_noise,
    const double *comp_noise_out, const double *dither,
    const double *p,
    double *output, double *bits, double *tank_v)
{
    const double a11 = p[P_A11], a12 = p[P_A12];
    const double a21 = p[P_A21], a22 = p[P_A22];
    const double b1 = p[P_B1], b2 = p[P_B2];
    const int clocked = p[P_CLOCKED] != 0.0;
    const int feedback_on = p[P_FEEDBACK_ON] != 0.0;
    const int chop_en = p[P_CHOP_EN] != 0.0;
    const int delay_whole = (int)p[P_DELAY_WHOLE];
    const double switch_substep = p[P_SWITCH_SUBSTEP];
    const double i_dac_unit = p[P_I_DAC_UNIT];
    const double chop_offset = p[P_CHOP_OFFSET];
    const double decision_sigma = p[P_DECISION_SIGMA];
    const double hysteresis = p[P_HYSTERESIS];
    const double gv = p[P_GV], vsat = p[P_VSAT];
    const double preamp_gain = p[P_PREAMP_GAIN], v_clip = p[P_V_CLIP];
    const double buf_gain = p[P_BUF_GAIN];
    const double buffer_gain = p[P_BUFFER_GAIN];
    const double buffer_clamp = p[P_BUFFER_CLAMP];
    const double buffer_noise = p[P_BUFFER_NOISE];

    double chop_sign = 1.0;
    double v = p[P_V0], il = p[P_IL0];
    double d0 = -1.0, d1 = -1.0, d2 = -1.0;

    for (int n = 0; n < n_samples; n++) {
        tank_v[n] = v;
        double v_pre = v_clip * tanh(preamp_gain * v / v_clip);
        if (clocked) {
            double v_eff = v_pre + chop_sign * chop_offset
                + comp_noise[n] * decision_sigma + dither[n]
                + hysteresis * d0;
            d2 = d1;
            d1 = d0;
            d0 = (v_eff >= 0.0) ? 1.0 : -1.0;
            bits[n] = d0;
            output[n] = d0 * buf_gain;
        } else {
            d2 = d1;
            d1 = d0;
            bits[n] = 0.0;
            /* Un-clocked comparator as an open-loop buffer stage. */
            double v_eff = v_pre + chop_offset
                + comp_noise[n] * decision_sigma;
            double y_buf = buffer_clamp
                    * tanh(buffer_gain * v_eff / buffer_clamp)
                + comp_noise_out[n] * buffer_noise;
            output[n] = y_buf * buf_gain;
        }
        if (chop_en)
            chop_sign = -chop_sign;

        double d_early, d_late;
        if (delay_whole == 0) {
            d_early = d1;
            d_late = d0;
        } else {
            d_early = d2;
            d_late = d1;
        }

        int base = n * substeps;
        for (int j = 0; j < substeps; j++) {
            double i_fb;
            if (clocked) {
                double drive_bit = (j < switch_substep) ? d_early : d_late;
                i_fb = i_dac_unit * drive_bit;
            } else if (feedback_on) {
                /* Buffer mode with the loop closed: the DAC sees the
                 * clipped open-loop comparator output and switches
                 * partially. */
                double v_pre_now = v_clip * tanh(preamp_gain * v / v_clip);
                double y_now = buffer_clamp
                        * tanh(buffer_gain
                               * (v_pre_now + chop_offset
                                  + 0.0 * decision_sigma)
                               / buffer_clamp)
                    + 0.0 * buffer_noise;
                i_fb = i_dac_unit * tanh(y_now / 0.3) / 0.995055;
            } else {
                i_fb = 0.0;
            }
            double i_gmq = gv * tanh(v / vsat);
            /* +i_fb is the stable, noise-shaping polarity — see the
             * reference loop for the fs/4 phasing argument. */
            double u = i_in[base + j] + i_gmq + i_fb;
            double vn = a11 * v + a12 * il + b1 * u;
            double iln = a21 * v + a22 * il + b2 * u;
            v = vn;
            il = iln;
        }
    }
}

/* ---------------------------------------------------------------------
 * SIMD lane path: L consecutive uniform-mode keys advance together.
 * ------------------------------------------------------------------- */

#if defined(__GNUC__) || defined(__clang__)
#define REPRO_HAVE_SIMD 1
typedef double vd2 __attribute__((vector_size(16)));
typedef double vd4 __attribute__((vector_size(32)));
#endif

struct batch_task {
    int n_keys, n_samples, substeps;
    const double *const *i_in;
    const double *const *comp_noise;
    const double *const *comp_noise_out;
    const double *const *dither;
    const double *params;
    double *const *output;
    double *const *bits;
    double *const *tank_v;
    /* Lane packs: pack i covers keys [pack_start[i], pack_start[i] +
     * pack_len[i]); NULL means one implicit single-key pack per key. */
    const int *pack_start;
    const int *pack_len;
    int n_packs;
    int simd;
#ifdef REPRO_USE_PTHREADS
    atomic_int next_pack;
#endif
};

static void run_key(const struct batch_task *t, int k)
{
    simulate_key(t->n_samples, t->substeps, t->i_in[k], t->comp_noise[k],
                 t->comp_noise_out[k], t->dither[k],
                 t->params + k * N_PARAMS,
                 t->output[k], t->bits[k], t->tank_v[k]);
}

#ifdef REPRO_HAVE_SIMD

/* One lane function per width, generated from the same transcription.
 * Every arithmetic expression mirrors simulate_key() token for token;
 * vector ops are the per-lane IEEE scalar ops in the same order, and
 * tanh goes through the scalar libm call per lane (LANE_TANH).  The
 * per-sample records are read from a transposed key-inner scratch
 * (sample-major, lane-minor) filled once per pack; failure to allocate
 * it falls back to the scalar walk, results unchanged. */
#define DEFINE_SIMULATE_LANES(L, VD, NAME)                                    \
static void NAME(const struct batch_task *t, int k0)                          \
{                                                                             \
    const int n_samples = t->n_samples, substeps = t->substeps;               \
    const double *p[L];                                                       \
    for (int l = 0; l < L; l++)                                               \
        p[l] = t->params + (k0 + l) * N_PARAMS;                               \
    const int clocked = p[0][P_CLOCKED] != 0.0;                               \
    const int feedback_on = p[0][P_FEEDBACK_ON] != 0.0;                       \
    const int chop_en = p[0][P_CHOP_EN] != 0.0;                               \
    const int delay_whole = (int)p[0][P_DELAY_WHOLE];                         \
    VD a11, a12, a21, a22, b1, b2, switch_substep, i_dac_unit;                \
    VD chop_offset, decision_sigma, hysteresis, gv, vsat;                     \
    VD preamp_gain, v_clip, buf_gain, buffer_gain, buffer_clamp;              \
    VD buffer_noise, v, il;                                                   \
    for (int l = 0; l < L; l++) {                                             \
        a11[l] = p[l][P_A11]; a12[l] = p[l][P_A12];                           \
        a21[l] = p[l][P_A21]; a22[l] = p[l][P_A22];                           \
        b1[l] = p[l][P_B1]; b2[l] = p[l][P_B2];                               \
        switch_substep[l] = p[l][P_SWITCH_SUBSTEP];                           \
        i_dac_unit[l] = p[l][P_I_DAC_UNIT];                                   \
        chop_offset[l] = p[l][P_CHOP_OFFSET];                                 \
        decision_sigma[l] = p[l][P_DECISION_SIGMA];                           \
        hysteresis[l] = p[l][P_HYSTERESIS];                                   \
        gv[l] = p[l][P_GV]; vsat[l] = p[l][P_VSAT];                           \
        preamp_gain[l] = p[l][P_PREAMP_GAIN]; v_clip[l] = p[l][P_V_CLIP];     \
        buf_gain[l] = p[l][P_BUF_GAIN];                                       \
        buffer_gain[l] = p[l][P_BUFFER_GAIN];                                 \
        buffer_clamp[l] = p[l][P_BUFFER_CLAMP];                               \
        buffer_noise[l] = p[l][P_BUFFER_NOISE];                               \
        v[l] = p[l][P_V0]; il[l] = p[l][P_IL0];                               \
    }                                                                         \
    /* Transposed key-inner scratch: [sample][lane] for each record. */       \
    const size_t n_sub = (size_t)n_samples * substeps;                        \
    double *scratch = malloc(                                                 \
        sizeof(double) * L * (n_sub + (size_t)n_samples * 3));                \
    if (scratch == NULL) {                                                    \
        for (int l = 0; l < L; l++)                                           \
            run_key(t, k0 + l);                                               \
        return;                                                               \
    }                                                                         \
    double *iin_t = scratch;                                                  \
    double *cn_t = iin_t + L * n_sub;                                         \
    double *cno_t = cn_t + (size_t)L * n_samples;                             \
    double *dith_t = cno_t + (size_t)L * n_samples;                           \
    for (int l = 0; l < L; l++) {                                             \
        const double *src = t->i_in[k0 + l];                                  \
        for (size_t m = 0; m < n_sub; m++)                                    \
            iin_t[m * L + l] = src[m];                                        \
        const double *cn = t->comp_noise[k0 + l];                             \
        const double *cno = t->comp_noise_out[k0 + l];                        \
        const double *dith = t->dither[k0 + l];                               \
        for (int n = 0; n < n_samples; n++) {                                 \
            cn_t[n * L + l] = cn[n];                                          \
            cno_t[n * L + l] = cno[n];                                        \
            dith_t[n * L + l] = dith[n];                                      \
        }                                                                     \
    }                                                                         \
    double chop_sign = 1.0;                                                   \
    VD d0, d1, d2;                                                            \
    for (int l = 0; l < L; l++) {                                             \
        d0[l] = -1.0; d1[l] = -1.0; d2[l] = -1.0;                             \
    }                                                                         \
    for (int n = 0; n < n_samples; n++) {                                     \
        for (int l = 0; l < L; l++)                                           \
            t->tank_v[k0 + l][n] = v[l];                                      \
        VD pre_arg = preamp_gain * v / v_clip;                                \
        VD pre_th;                                                            \
        for (int l = 0; l < L; l++)                                           \
            pre_th[l] = tanh(pre_arg[l]);                                     \
        VD v_pre = v_clip * pre_th;                                           \
        VD cn, dith;                                                          \
        for (int l = 0; l < L; l++) {                                         \
            cn[l] = cn_t[n * L + l];                                          \
            dith[l] = dith_t[n * L + l];                                      \
        }                                                                     \
        if (clocked) {                                                        \
            VD v_eff = v_pre + chop_sign * chop_offset                        \
                + cn * decision_sigma + dith                                  \
                + hysteresis * d0;                                            \
            d2 = d1;                                                          \
            d1 = d0;                                                          \
            for (int l = 0; l < L; l++) {                                     \
                d0[l] = (v_eff[l] >= 0.0) ? 1.0 : -1.0;                       \
                t->bits[k0 + l][n] = d0[l];                                   \
            }                                                                 \
            VD out = d0 * buf_gain;                                           \
            for (int l = 0; l < L; l++)                                       \
                t->output[k0 + l][n] = out[l];                                \
        } else {                                                              \
            d2 = d1;                                                          \
            d1 = d0;                                                          \
            VD v_eff = v_pre + chop_offset                                    \
                + cn * decision_sigma;                                        \
            VD y_arg = buffer_gain * v_eff / buffer_clamp;                    \
            VD y_th;                                                          \
            for (int l = 0; l < L; l++)                                       \
                y_th[l] = tanh(y_arg[l]);                                     \
            VD cno;                                                           \
            for (int l = 0; l < L; l++) {                                     \
                t->bits[k0 + l][n] = 0.0;                                     \
                cno[l] = cno_t[n * L + l];                                    \
            }                                                                 \
            VD y_buf = buffer_clamp * y_th + cno * buffer_noise;              \
            VD out = y_buf * buf_gain;                                        \
            for (int l = 0; l < L; l++)                                       \
                t->output[k0 + l][n] = out[l];                                \
        }                                                                     \
        if (chop_en)                                                          \
            chop_sign = -chop_sign;                                           \
        VD d_early, d_late;                                                   \
        if (delay_whole == 0) {                                               \
            d_early = d1;                                                     \
            d_late = d0;                                                      \
        } else {                                                              \
            d_early = d2;                                                     \
            d_late = d1;                                                      \
        }                                                                     \
        int base = n * substeps;                                              \
        for (int j = 0; j < substeps; j++) {                                  \
            VD i_fb;                                                          \
            if (clocked) {                                                    \
                VD drive_bit;                                                 \
                for (int l = 0; l < L; l++)                                   \
                    drive_bit[l] =                                            \
                        (j < switch_substep[l]) ? d_early[l] : d_late[l];     \
                i_fb = i_dac_unit * drive_bit;                                \
            } else if (feedback_on) {                                         \
                VD now_arg = preamp_gain * v / v_clip;                        \
                VD now_th;                                                    \
                for (int l = 0; l < L; l++)                                   \
                    now_th[l] = tanh(now_arg[l]);                             \
                VD v_pre_now = v_clip * now_th;                               \
                VD yn_arg = buffer_gain                                       \
                    * (v_pre_now + chop_offset                                \
                       + 0.0 * decision_sigma)                                \
                    / buffer_clamp;                                           \
                VD yn_th;                                                     \
                for (int l = 0; l < L; l++)                                   \
                    yn_th[l] = tanh(yn_arg[l]);                               \
                VD y_now = buffer_clamp * yn_th + 0.0 * buffer_noise;         \
                VD fb_arg = y_now / 0.3;                                      \
                VD fb_th;                                                     \
                for (int l = 0; l < L; l++)                                   \
                    fb_th[l] = tanh(fb_arg[l]);                               \
                i_fb = i_dac_unit * fb_th / 0.995055;                         \
            } else {                                                          \
                for (int l = 0; l < L; l++)                                   \
                    i_fb[l] = 0.0;                                            \
            }                                                                 \
            VD gm_arg = v / vsat;                                             \
            VD gm_th;                                                         \
            for (int l = 0; l < L; l++)                                       \
                gm_th[l] = tanh(gm_arg[l]);                                   \
            VD i_gmq = gv * gm_th;                                            \
            VD iin;                                                           \
            for (int l = 0; l < L; l++)                                       \
                iin[l] = iin_t[(size_t)(base + j) * L + l];                   \
            VD u = iin + i_gmq + i_fb;                                        \
            VD vn = a11 * v + a12 * il + b1 * u;                              \
            VD iln = a21 * v + a22 * il + b2 * u;                             \
            v = vn;                                                           \
            il = iln;                                                         \
        }                                                                     \
    }                                                                         \
    free(scratch);                                                            \
}

DEFINE_SIMULATE_LANES(2, vd2, simulate_keys_lanes2)
DEFINE_SIMULATE_LANES(4, vd4, simulate_keys_lanes4)

#endif /* REPRO_HAVE_SIMD */

static void run_pack(const struct batch_task *t, int i)
{
    if (t->pack_start == NULL) {
        run_key(t, i);
        return;
    }
    int k0 = t->pack_start[i];
    int len = t->pack_len[i];
#ifdef REPRO_HAVE_SIMD
    if (len == 4) {
        simulate_keys_lanes4(t, k0);
        return;
    }
    if (len == 2) {
        simulate_keys_lanes2(t, k0);
        return;
    }
#endif
    for (int k = k0; k < k0 + len; k++)
        run_key(t, k);
}

#ifdef REPRO_USE_PTHREADS
/* Dynamic scheduling off an atomic counter: record lengths are uniform
 * within a batch but clocked and buffer-mode keys cost differently per
 * sample, so workers pull packs instead of taking fixed slices. */
static void *batch_worker(void *arg)
{
    struct batch_task *t = arg;
    for (;;) {
        int i = atomic_fetch_add_explicit(&t->next_pack, 1,
                                          memory_order_relaxed);
        if (i >= t->n_packs)
            return (void *)0;
        run_pack(t, i);
    }
}
#endif

/* Run a prepared task, threading over packs when the build and the
 * clamped thread count allow it. */
static void run_batch_task(struct batch_task *task, int n_threads)
{
#ifdef REPRO_USE_PTHREADS
    if (n_threads <= 0) {
        long online = sysconf(_SC_NPROCESSORS_ONLN);
        n_threads = online > 0 ? (int)online : 1;
    }
    /* Clamp once, up front: the helper array is fixed-size, so the
     * team can never exceed 64 helpers + the calling thread. */
    if (n_threads > REPRO_MAX_THREADS)
        n_threads = REPRO_MAX_THREADS;
    if (n_threads > task->n_packs)
        n_threads = task->n_packs;
    if (n_threads > 1) {
        /* Spawn helpers, work in this thread too, join before
         * returning — no thread outlives the call. */
        pthread_t helpers[REPRO_MAX_THREADS - 1];
        int n_helpers = n_threads - 1;
        int spawned = 0;
        atomic_init(&task->next_pack, 0);
        for (int i = 0; i < n_helpers; i++) {
            if (pthread_create(&helpers[spawned], 0, batch_worker, task))
                break;  /* fewer workers, same results */
            spawned++;
        }
        batch_worker(task);
        for (int i = 0; i < spawned; i++)
            pthread_join(helpers[i], 0);
        return;
    }
#else
    (void)n_threads;
#endif
    for (int i = 0; i < task->n_packs; i++)
        run_pack(task, i);
}

/* Whether keys a and b may share a lane pack: every parameter that
 * picks a control-flow branch must agree (per-lane data parameters may
 * differ freely — selects and arithmetic handle them lane-wise). */
static int same_mode(const double *params, int a, int b)
{
    const double *pa = params + a * N_PARAMS;
    const double *pb = params + b * N_PARAMS;
    return (pa[P_CLOCKED] != 0.0) == (pb[P_CLOCKED] != 0.0)
        && (pa[P_FEEDBACK_ON] != 0.0) == (pb[P_FEEDBACK_ON] != 0.0)
        && (pa[P_CHOP_EN] != 0.0) == (pb[P_CHOP_EN] != 0.0)
        && (int)pa[P_DELAY_WHOLE] == (int)pb[P_DELAY_WHOLE];
}

void repro_simulate_batch(
    int n_keys, int n_samples, int substeps,
    const double *const *i_in, const double *const *comp_noise,
    const double *const *comp_noise_out, const double *const *dither,
    const double *params,
    double *const *output, double *const *bits, double *const *tank_v,
    int n_threads, int simd_lanes)
{
    struct batch_task task = {
        n_keys, n_samples, substeps,
        i_in, comp_noise, comp_noise_out, dither, params,
        output, bits, tank_v,
        0, 0, n_keys, 0,
    };
    if (simd_lanes < 0)
        simd_lanes = repro_kernel_simd_width();
#ifndef REPRO_HAVE_SIMD
    simd_lanes = 0;
#endif
    int *packs = 0;
    if (simd_lanes >= 2 && n_keys >= 2) {
        packs = malloc(sizeof(int) * 2 * (size_t)n_keys);
        if (packs != 0) {
            int *start = packs, *len = packs + n_keys;
            int n_packs = 0, k = 0;
            while (k < n_keys) {
                int run = 1;
                while (run < simd_lanes && k + run < n_keys
                       && same_mode(params, k, k + run))
                    run++;
                /* Full-width packs only (with a 2-wide tail under
                 * 4-wide lanes); stragglers take the scalar walk. */
                if (run == 4 || run == 2) {
                    ;
                } else if (run == 3) {
                    run = 2;
                } else {
                    run = 1;
                }
                start[n_packs] = k;
                len[n_packs] = run;
                n_packs++;
                k += run;
            }
            task.pack_start = start;
            task.pack_len = len;
            task.n_packs = n_packs;
            task.simd = simd_lanes;
        }
    }
    run_batch_task(&task, n_threads);
    free(packs);
}

/* ---------------------------------------------------------------------
 * Pinned-order batch FIR ('same' alignment, ascending-tap summation).
 *
 * Each output sample accumulates taps[0] first, taps[m-1] last, over a
 * zero-padded input row:
 *
 *     y[i] = (((0 + t0*x[i+s]) + t1*x[i+s-1]) + ...) + t_{m-1}*x[i+s-m+1]
 *
 * with s chosen so y aligns with np.convolve(x, taps, mode="same").
 * The loop nest below runs taps outermost and output samples
 * innermost, so the per-output summation TREE is exactly that pinned
 * left fold — the compiler may vectorise ACROSS output samples freely
 * (each output's chain is untouched), but can never reassociate within
 * one (and -ffp-contract=off forbids FMA fusion).  The pure-NumPy
 * transcription in repro/dsp/decimate.py performs the identical padded
 * gather and the identical tap-outer accumulation, so C and fallback
 * are bit-identical everywhere (guarded in
 * tests/test_dsp_filters_decimate.py).  Rows are independent, so the
 * row loop threads exactly like the integrator's key axis.
 * ------------------------------------------------------------------- */

struct fir_task {
    int n_rows, n_in, n_taps, out_n, pad_start;
    const double *const *rows;
    const double *taps;
    double *const *out;
#ifdef REPRO_USE_PTHREADS
    atomic_int next_row;
#endif
};

static void fir_row(const struct fir_task *t, int r, double *pad)
{
    const int n = t->n_in, m = t->n_taps, out_n = t->out_n;
    const int s0 = t->pad_start + m - 1;
    const size_t pad_len = (size_t)out_n + s0;
    memset(pad, 0, sizeof(double) * pad_len);
    memcpy(pad + m - 1, t->rows[r], sizeof(double) * n);
    /* restrict: out and the scratch pad never alias, which is what
     * lets the compiler vectorise the accumulation across outputs. */
    double *restrict out = t->out[r];
    /* Output blocks sized so block + sliding input window live in L1
     * across all m tap passes; within a block, taps ascend, so every
     * out[i]'s fold is the pinned order regardless of blocking. */
    const int BLOCK = 1024;
    for (int b = 0; b < out_n; b += BLOCK) {
        const int e = (b + BLOCK < out_n) ? b + BLOCK : out_n;
        for (int i = b; i < e; i++)
            out[i] = 0.0;
        for (int k = 0; k < m; k++) {
            const double tap = t->taps[k];
            const double *restrict src = pad + s0 - k;
            for (int i = b; i < e; i++)
                out[i] += tap * src[i];
        }
    }
}

static void fir_rows_range(struct fir_task *t, double *pad, int from, int to)
{
    for (int r = from; r < to; r++)
        fir_row(t, r, pad);
}

#ifdef REPRO_USE_PTHREADS
static void *fir_worker(void *arg)
{
    struct fir_task *t = arg;
    double *pad = malloc(sizeof(double) * ((size_t)t->out_n
                                           + t->pad_start + t->n_taps - 1));
    if (pad == NULL)
        return (void *)0;  /* leave the rows to other workers/the caller */
    for (;;) {
        int r = atomic_fetch_add_explicit(&t->next_row, 1,
                                          memory_order_relaxed);
        if (r >= t->n_rows)
            break;
        fir_row(t, r, pad);
    }
    free(pad);
    return (void *)0;
}
#endif

int repro_fir_batch(
    int n_rows, int n_in, const double *const *rows,
    int n_taps, const double *taps,
    double *const *out, int n_threads)
{
    if (n_rows <= 0)
        return 0;
    if (n_in <= 0 || n_taps <= 0)
        return -1;
    struct fir_task task;
    task.n_rows = n_rows;
    task.n_in = n_in;
    task.n_taps = n_taps;
    task.out_n = n_in > n_taps ? n_in : n_taps;
    task.pad_start = ((n_in < n_taps ? n_in : n_taps) - 1) / 2;
    task.rows = rows;
    task.taps = taps;
    task.out = out;
    const size_t pad_len = (size_t)task.out_n + task.pad_start + n_taps - 1;
#ifdef REPRO_USE_PTHREADS
    if (n_threads <= 0) {
        long online = sysconf(_SC_NPROCESSORS_ONLN);
        n_threads = online > 0 ? (int)online : 1;
    }
    if (n_threads > REPRO_MAX_THREADS)
        n_threads = REPRO_MAX_THREADS;
    if (n_threads > n_rows)
        n_threads = n_rows;
    if (n_threads > 1) {
        pthread_t helpers[REPRO_MAX_THREADS - 1];
        int n_helpers = n_threads - 1;
        int spawned = 0;
        atomic_init(&task.next_row, 0);
        for (int i = 0; i < n_helpers; i++) {
            if (pthread_create(&helpers[spawned], 0, fir_worker, &task))
                break;
            spawned++;
        }
        fir_worker(&task);
        for (int i = 0; i < spawned; i++)
            pthread_join(helpers[i], 0);
        /* A worker that failed to allocate scratch simply pulled no
         * rows; anything left over is finished here, sequentially. */
        int done = atomic_load_explicit(&task.next_row,
                                        memory_order_relaxed);
        if (done < n_rows) {
            double *pad = malloc(sizeof(double) * pad_len);
            if (pad == NULL)
                return -1;
            fir_rows_range(&task, pad, done, n_rows);
            free(pad);
        }
        return 0;
    }
#else
    (void)n_threads;
#endif
    {
        double *pad = malloc(sizeof(double) * pad_len);
        if (pad == NULL)
            return -1;
        fir_rows_range(&task, pad, 0, n_rows);
        free(pad);
    }
    return 0;
}

/* ABI sanity hook for the loader. */
int repro_kernel_n_params(void) { return N_PARAMS; }

/* Whether this build can actually thread the key axis. */
int repro_kernel_threaded(void) {
#ifdef REPRO_USE_PTHREADS
    return 1;
#else
    return 0;
#endif
}

/* Best lane width this build + host supports for the SIMD time
 * recursion: 4 where AVX-class 256-bit vectors exist, 2 for baseline
 * 128-bit doubles, 0 when the toolchain had no vector extensions.
 * Width is pure throughput policy — results are bit-identical at any
 * width (including 0). */
int repro_kernel_simd_width(void) {
#ifdef REPRO_HAVE_SIMD
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx") ? 4 : 2;
#else
    return 2;
#endif
#else
    return 0;
#endif
}

/* The helper-team bound (64 helpers + the caller), exported so the
 * loader can document and test the clamp. */
int repro_kernel_max_threads(void) { return REPRO_MAX_THREADS; }
