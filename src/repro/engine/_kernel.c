/* Batched modulator integrator — compiled fast path of the vectorized
 * backend (see repro/engine/native.py, which builds and loads this).
 *
 * Bit-exactness contract with the Python reference loop
 * (repro/engine/reference.py):
 *
 *   - every expression below is a line-for-line transcription of the
 *     reference recursion with the SAME operand order, so each IEEE-754
 *     add/mul/div rounds identically;
 *   - tanh() here and CPython's math.tanh are the same libm symbol, so
 *     the only transcendental matches exactly;
 *   - the build disables floating-point contraction (-ffp-contract=off),
 *     so the compiler cannot fuse a*b+c into an FMA with different
 *     rounding.
 *
 * The batch ABI carries the per-key state (v, i_L) over the key axis:
 * each input is an array of per-key row pointers, and the outer loop
 * walks keys while the inner recursion walks time.  Keys are
 * independent — each key reads only its own rows and parameter block
 * and writes only its own output rows — so the key loop is also the
 * kernel's second axis of parallelism: when the library is built with
 * pthreads, keys are distributed over a per-call worker team pulling
 * from an atomic counter (dynamic scheduling).  Thread count cannot
 * change any result (per-key arithmetic is untouched and there is no
 * shared mutable state), so 1-vs-N-thread runs are bit-identical;
 * without pthreads the same loop simply runs sequentially.
 *
 * Raw pthreads, not OpenMP, deliberately: the workers are created and
 * joined inside each call, so no threading runtime state ever
 * outlives it — processes that fork() after using the kernel (the
 * campaign layer's worker pools do) stay safe, where a forked child
 * of an OpenMP parent deadlocks in the orphaned runtime.
 */

#include <math.h>

#ifdef REPRO_USE_PTHREADS
#include <pthread.h>
#include <stdatomic.h>
#include <unistd.h>
#endif

/* Per-key parameter row layout; must match PARAM_FIELDS in native.py. */
enum {
    P_A11, P_A12, P_A21, P_A22, P_B1, P_B2,
    P_CLOCKED, P_FEEDBACK_ON, P_CHOP_EN, P_DELAY_WHOLE, P_SWITCH_SUBSTEP,
    P_I_DAC_UNIT, P_CHOP_OFFSET, P_DECISION_SIGMA, P_HYSTERESIS,
    P_GV, P_VSAT, P_PREAMP_GAIN, P_V_CLIP, P_BUF_GAIN,
    P_BUFFER_GAIN, P_BUFFER_CLAMP, P_BUFFER_NOISE, P_V0, P_IL0,
    N_PARAMS
};

static void simulate_key(
    int n_samples, int substeps,
    const double *i_in, const double *comp_noise,
    const double *comp_noise_out, const double *dither,
    const double *p,
    double *output, double *bits, double *tank_v)
{
    const double a11 = p[P_A11], a12 = p[P_A12];
    const double a21 = p[P_A21], a22 = p[P_A22];
    const double b1 = p[P_B1], b2 = p[P_B2];
    const int clocked = p[P_CLOCKED] != 0.0;
    const int feedback_on = p[P_FEEDBACK_ON] != 0.0;
    const int chop_en = p[P_CHOP_EN] != 0.0;
    const int delay_whole = (int)p[P_DELAY_WHOLE];
    const double switch_substep = p[P_SWITCH_SUBSTEP];
    const double i_dac_unit = p[P_I_DAC_UNIT];
    const double chop_offset = p[P_CHOP_OFFSET];
    const double decision_sigma = p[P_DECISION_SIGMA];
    const double hysteresis = p[P_HYSTERESIS];
    const double gv = p[P_GV], vsat = p[P_VSAT];
    const double preamp_gain = p[P_PREAMP_GAIN], v_clip = p[P_V_CLIP];
    const double buf_gain = p[P_BUF_GAIN];
    const double buffer_gain = p[P_BUFFER_GAIN];
    const double buffer_clamp = p[P_BUFFER_CLAMP];
    const double buffer_noise = p[P_BUFFER_NOISE];

    double chop_sign = 1.0;
    double v = p[P_V0], il = p[P_IL0];
    double d0 = -1.0, d1 = -1.0, d2 = -1.0;

    for (int n = 0; n < n_samples; n++) {
        tank_v[n] = v;
        double v_pre = v_clip * tanh(preamp_gain * v / v_clip);
        if (clocked) {
            double v_eff = v_pre + chop_sign * chop_offset
                + comp_noise[n] * decision_sigma + dither[n]
                + hysteresis * d0;
            d2 = d1;
            d1 = d0;
            d0 = (v_eff >= 0.0) ? 1.0 : -1.0;
            bits[n] = d0;
            output[n] = d0 * buf_gain;
        } else {
            d2 = d1;
            d1 = d0;
            bits[n] = 0.0;
            /* Un-clocked comparator as an open-loop buffer stage. */
            double v_eff = v_pre + chop_offset
                + comp_noise[n] * decision_sigma;
            double y_buf = buffer_clamp
                    * tanh(buffer_gain * v_eff / buffer_clamp)
                + comp_noise_out[n] * buffer_noise;
            output[n] = y_buf * buf_gain;
        }
        if (chop_en)
            chop_sign = -chop_sign;

        double d_early, d_late;
        if (delay_whole == 0) {
            d_early = d1;
            d_late = d0;
        } else {
            d_early = d2;
            d_late = d1;
        }

        int base = n * substeps;
        for (int j = 0; j < substeps; j++) {
            double i_fb;
            if (clocked) {
                double drive_bit = (j < switch_substep) ? d_early : d_late;
                i_fb = i_dac_unit * drive_bit;
            } else if (feedback_on) {
                /* Buffer mode with the loop closed: the DAC sees the
                 * clipped open-loop comparator output and switches
                 * partially. */
                double v_pre_now = v_clip * tanh(preamp_gain * v / v_clip);
                double y_now = buffer_clamp
                        * tanh(buffer_gain
                               * (v_pre_now + chop_offset
                                  + 0.0 * decision_sigma)
                               / buffer_clamp)
                    + 0.0 * buffer_noise;
                i_fb = i_dac_unit * tanh(y_now / 0.3) / 0.995055;
            } else {
                i_fb = 0.0;
            }
            double i_gmq = gv * tanh(v / vsat);
            /* +i_fb is the stable, noise-shaping polarity — see the
             * reference loop for the fs/4 phasing argument. */
            double u = i_in[base + j] + i_gmq + i_fb;
            double vn = a11 * v + a12 * il + b1 * u;
            double iln = a21 * v + a22 * il + b2 * u;
            v = vn;
            il = iln;
        }
    }
}

struct batch_task {
    int n_keys, n_samples, substeps;
    const double *const *i_in;
    const double *const *comp_noise;
    const double *const *comp_noise_out;
    const double *const *dither;
    const double *params;
    double *const *output;
    double *const *bits;
    double *const *tank_v;
#ifdef REPRO_USE_PTHREADS
    atomic_int next_key;
#endif
};

static void run_key(struct batch_task *t, int k)
{
    simulate_key(t->n_samples, t->substeps, t->i_in[k], t->comp_noise[k],
                 t->comp_noise_out[k], t->dither[k],
                 t->params + k * N_PARAMS,
                 t->output[k], t->bits[k], t->tank_v[k]);
}

#ifdef REPRO_USE_PTHREADS
/* Dynamic scheduling off an atomic counter: record lengths are uniform
 * within a batch but clocked and buffer-mode keys cost differently per
 * sample, so workers pull keys instead of taking fixed slices. */
static void *batch_worker(void *arg)
{
    struct batch_task *t = arg;
    for (;;) {
        int k = atomic_fetch_add_explicit(&t->next_key, 1,
                                          memory_order_relaxed);
        if (k >= t->n_keys)
            return (void *)0;
        run_key(t, k);
    }
}
#endif

void repro_simulate_batch(
    int n_keys, int n_samples, int substeps,
    const double *const *i_in, const double *const *comp_noise,
    const double *const *comp_noise_out, const double *const *dither,
    const double *params,
    double *const *output, double *const *bits, double *const *tank_v,
    int n_threads)
{
    struct batch_task task = {
        n_keys, n_samples, substeps,
        i_in, comp_noise, comp_noise_out, dither, params,
        output, bits, tank_v,
    };
#ifdef REPRO_USE_PTHREADS
    if (n_threads <= 0) {
        long online = sysconf(_SC_NPROCESSORS_ONLN);
        n_threads = online > 0 ? (int)online : 1;
    }
    if (n_threads > n_keys)
        n_threads = n_keys;
    if (n_threads > 1) {
        /* Spawn helpers, work in this thread too, join before
         * returning — no thread outlives the call. */
        pthread_t helpers[64];
        int n_helpers = n_threads - 1;
        int spawned = 0;
        if (n_helpers > 64)
            n_helpers = 64;
        atomic_init(&task.next_key, 0);
        for (int i = 0; i < n_helpers; i++) {
            if (pthread_create(&helpers[spawned], 0, batch_worker, &task))
                break;  /* fewer workers, same results */
            spawned++;
        }
        batch_worker(&task);
        for (int i = 0; i < spawned; i++)
            pthread_join(helpers[i], 0);
        return;
    }
#else
    (void)n_threads;
#endif
    for (int k = 0; k < n_keys; k++)
        run_key(&task, k);
}

/* ABI sanity hook for the loader. */
int repro_kernel_n_params(void) { return N_PARAMS; }

/* Whether this build can actually thread the key axis. */
int repro_kernel_threaded(void) {
#ifdef REPRO_USE_PTHREADS
    return 1;
#else
    return 0;
#endif
}
