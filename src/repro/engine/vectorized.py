"""Vectorized backend: one call integrates a whole batch of keys.

The modulator's time recursion is inherently sequential, but different
configuration words are independent — so the backend carries the tank
state ``(v, i_L)``, the comparator decision history and every per-key
constant as arrays over the *key axis* and advances all keys together.
The heavy lifting happens in a small compiled kernel
(:mod:`repro.engine.native`): per-key inputs are handed over as key-axis
pointer arrays and the recursion runs at native speed, which is where
the multi-key throughput comes from (an order of magnitude over the
interpreted per-key loop, on top of batching away Python call overhead).

A NumPy-ufunc formulation of the same key-axis recursion was measured
first and rejected: with ~0.5 µs of dispatch overhead per elementwise
op and ~14 ops per substep, it loses to the scalar loop below ~30 keys
— the regime every quick-mode sweep lives in.  Inside the kernel the
key axis is exploited twice more: pthread workers split keys across
cores, and within each worker 2/4-wide SIMD lanes advance uniform-mode
key packs together (``REPRO_ENGINE_SIMD``; per-lane reference operand
order and per-lane libm ``tanh``, so lane width never changes a bit —
see :mod:`repro.engine.native`).

Bit-exactness with the reference backend is by construction (shared
:class:`~repro.engine.plan.KeyPlan` inputs, identical operand order,
the same libm ``tanh``, FP contraction disabled — see
:mod:`repro.engine.native`), and is enforced by the equivalence suite
in ``tests/test_engine.py``.  On machines without a C compiler the
backend transparently falls back to running the reference loop per key,
which keeps results identical everywhere — only throughput differs.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine import native
from repro.engine.plan import KeyPlan
from repro.engine.reference import simulate_plan
from repro.receiver.sdm import ModulatorResult


def simulate_plans(plans: Sequence[KeyPlan]) -> list[ModulatorResult]:
    """Integrate a batch of key plans simultaneously.

    All plans must share ``n_samples`` and ``substeps`` (the engine
    groups requests by that time grid); everything else — configuration,
    stimulus, clock, seed, initial state — may vary per key.
    """
    plans = list(plans)
    if not plans:
        return []
    n_samples = plans[0].n_samples
    substeps = plans[0].substeps
    for plan in plans:
        if plan.n_samples != n_samples or plan.substeps != substeps:
            raise ValueError(
                "batch mixes time grids: "
                f"({plan.n_samples}, {plan.substeps}) vs "
                f"({n_samples}, {substeps})"
            )
    if native.kernel_available():
        return native.simulate_plans_native(plans)
    # No compiler on this machine: identical results, scalar speed.
    return [simulate_plan(plan) for plan in plans]
