"""The batched simulation engine and its process-wide default instance.

:class:`SimulationEngine` is the one oracle API every layer above the
receiver goes through: ``Chip.simulate_*`` delegates single requests to
it, the performance/measurement layer submits whole key sweeps, and the
attacks query it through the measurement oracle.  See the package
docstring (:mod:`repro.engine`) for the architecture.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.engine import native
from repro.engine.cache import BoundedCache
from repro.engine.plan import build_plan
from repro.engine.store import CalibrationStore
from repro.engine.reference import simulate_plan
from repro.engine.request import ModulatorRequest, ReceiverRequest
from repro.engine.vectorized import simulate_plans
from repro.receiver.chain import DigitalChain, ReceiverResult
from repro.receiver.config import DigitalConfig
from repro.receiver.sdm import ModulatorResult

if TYPE_CHECKING:  # avoid the receiver -> engine -> receiver import cycle
    from repro.receiver.receiver import Chip

#: Selectable integration backends.
BACKENDS = ("auto", "reference", "vectorized")


@dataclass
class EngineStats:
    """Counters for engine instrumentation (reset with the caches)."""

    n_requests: int = 0
    n_batches: int = 0
    n_reference_runs: int = 0
    n_vectorized_runs: int = 0
    integrate_seconds: float = 0.0
    dsp_seconds: float = 0.0


@dataclass
class SimulationEngine:
    """Batched oracle: ``run(chip, requests) -> results``.

    Args:
        backend: ``"reference"`` forces the scalar loop, ``"vectorized"``
            forces the batch backend (any batch size), ``"auto"`` uses
            the batch backend whenever its compiled kernel is available.
            Backends are bit-exact, so dispatch is purely a throughput
            decision.
        calibration_cache_size: Bound on the engine-owned calibration
            result cache (replaces the old unbounded module global).
    """

    backend: str = "auto"
    calibration_cache_size: int = 64
    calibration_store: CalibrationStore | None = None
    calibration_cache: BoundedCache = field(init=False, repr=False)
    stats: EngineStats = field(default_factory=EngineStats, init=False)

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )
        self.calibration_cache = BoundedCache(self.calibration_cache_size)

    # -- modulator oracle --------------------------------------------------

    def run(
        self, chip: "Chip", requests: Sequence[ModulatorRequest]
    ) -> list[ModulatorResult]:
        """Simulate a batch of configuration words on one chip.

        Requests are grouped by time grid (``n_samples``, ``substeps``);
        each group is integrated by the selected backend.  Results come
        back in request order and are identical whichever backend ran
        them.
        """
        return self.run_multi([(chip, request) for request in requests])

    def run_multi(
        self,
        items: Sequence[tuple["Chip", ModulatorRequest]],
        noise_cache: dict | None = None,
    ) -> list[ModulatorResult]:
        """Simulate a mixed-chip batch: ``(chip, request)`` pairs.

        The key axis is indifferent to *which* die a request probes —
        every per-key input (block constants, discretised tank, noise
        records) is baked into its :class:`~repro.engine.plan.KeyPlan`
        before the backends see it — so requests of *different* chips
        group by time grid exactly like requests of one chip, and each
        result is bit-identical to running its request alone.  This is
        what lets fleet calibration fuse one bisection level of a whole
        lot into a single kernel submission.  Each chip's
        discretisation memo is its own; the sampled-stimulus and
        drawn-record memos are per submission — or, when a driver runs
        a *session* of related submissions (a lockstep fleet
        calibration measures every die under the same few setups,
        round after round), a caller-held ``noise_cache`` dict carries
        the drawn records across calls (deterministic values; see the
        contract in :func:`~repro.engine.plan.build_plan`).  Results
        come back in item order.
        """
        items = list(items)
        results: list[ModulatorResult | None] = [None] * len(items)
        groups: dict[tuple[int, int], list[int]] = {}
        for i, (_, request) in enumerate(items):
            groups.setdefault(request.batch_key, []).append(i)
        stim_cache: dict = {}
        if noise_cache is None:
            noise_cache = {}
        for indices in groups.values():
            plans = [
                build_plan(
                    items[i][0].blocks,
                    items[i][1],
                    disc_cache=items[i][0].discretisation_cache,
                    stim_cache=stim_cache,
                    noise_cache=noise_cache,
                )
                for i in indices
            ]
            start = time.perf_counter()
            if self._use_vectorized():
                outs = simulate_plans(plans)
                self.stats.n_vectorized_runs += len(plans)
            else:
                outs = [simulate_plan(plan) for plan in plans]
                self.stats.n_reference_runs += len(plans)
            self.stats.integrate_seconds += time.perf_counter() - start
            for i, out in zip(indices, outs):
                results[i] = out
            self.stats.n_batches += 1
        self.stats.n_requests += len(items)
        return results  # type: ignore[return-value]

    def run_one(self, chip: "Chip", request: ModulatorRequest) -> ModulatorResult:
        """Single-request convenience wrapper over :meth:`run`."""
        return self.run(chip, [request])[0]

    def _use_vectorized(self) -> bool:
        if self.backend == "vectorized":
            return True
        if self.backend == "reference":
            return False
        return native.kernel_available()

    # -- full-chain oracle -------------------------------------------------

    def run_receiver(
        self, chip: "Chip", requests: Sequence[ReceiverRequest]
    ) -> list[ReceiverResult]:
        """Simulate modulator batches and push the whole batch through
        the digital section (slicer, fs/4 mixer, decimation).

        The modulator outputs are regrouped by record length and each
        group goes through :meth:`DigitalChain.process_matrix` as one
        ``(keys, samples)`` matrix, so the post-integration stage is
        batched exactly like the integration itself.  Per-request
        results are bit-identical to processing each record alone (the
        matrix chain's per-row exactness property); the digital
        programming bits select the standard profile and do not enter
        the arithmetic, so they stay per-request metadata.
        """
        requests = list(requests)
        osr = chip.design.osr
        mod_requests = [
            ModulatorRequest(
                config=r.config,
                stimulus=r.stimulus,
                fs=r.fs,
                n_samples=r.n_baseband * osr,
                seed=r.seed,
                substeps=r.substeps,
            )
            for r in requests
        ]
        mods = self.run(chip, mod_requests)
        groups: dict[tuple, list[int]] = {}
        for i, request in enumerate(requests):
            profile = request.digital_config or DigitalConfig()
            groups.setdefault((request.n_baseband, profile), []).append(i)
        results: list[ReceiverResult | None] = [None] * len(requests)
        for (_, profile), indices in groups.items():
            chain = DigitalChain(
                osr=osr,
                logic_threshold=chip.design.front_end.logic_threshold,
                digital_config=profile,
            )
            start = time.perf_counter()
            outs = chain.process_matrix(
                np.stack([mods[i].output for i in indices]),
                fs=[requests[i].fs for i in indices],
            )
            self.stats.dsp_seconds += time.perf_counter() - start
            for i, out in zip(indices, outs):
                results[i] = out
        return results  # type: ignore[return-value]

    def run_receiver_one(
        self, chip: "Chip", request: ReceiverRequest
    ) -> ReceiverResult:
        """Single-request convenience wrapper over :meth:`run_receiver`."""
        return self.run_receiver(chip, [request])[0]

    # -- engine-owned caches -----------------------------------------------

    def calibrated(
        self,
        chip: "Chip",
        standard,
        factory: Callable | None = None,
        key: tuple | None = None,
    ):
        """Calibration result for ``chip`` at ``standard``, cached.

        The default cache key is ``(chip_id, standard.index)`` —
        experiments all draw chips from the shared reference lot, so a
        die is identified by its id.  Callers whose chips span several
        lots must pass an explicit ``key`` that includes the lot (the
        campaign layer keys on ``(lot_seed, chip_id, standard.index)``),
        or dies with equal ids would collide.  Pass ``factory`` (a
        zero-argument callable) to control how a missing entry is
        computed; the default runs the full paper calibration procedure.

        Lookup order is memory LRU, then the engine's cross-process
        :class:`~repro.engine.store.CalibrationStore` (when attached),
        then ``factory`` — whose result is written through to both.
        Calibration results are deterministic values, so neither cache
        layer can change what callers observe, only who pays for the
        compute.
        """
        if factory is None:
            def factory():  # deferred import: calibration imports the receiver
                from repro.calibration.procedure import Calibrator

                return Calibrator().calibrate(chip, standard)

        if key is None:
            key = (chip.variations.chip_id, standard.index)
        if self.calibration_store is not None:
            store = self.calibration_store
            inner = factory

            def factory():
                return store.get_or_set(key, inner)

        return self.calibration_cache.get_or_set(key, factory)

    def clear_caches(self) -> None:
        """Test hook: drop cached calibrations (the attached store's
        entries included) and reset statistics."""
        self.calibration_cache.clear()
        if self.calibration_store is not None:
            self.calibration_store.clear()
        self.stats = EngineStats()


def _resolve_env_backend() -> str:
    """Validate ``REPRO_ENGINE_BACKEND`` up front, with a clear error.

    A typo'd backend name should fail here, naming the variable and the
    valid choices — not surface later as an opaque failure somewhere
    inside the engine (or, worse, silently run the wrong backend).
    """
    backend = os.environ.get("REPRO_ENGINE_BACKEND", "auto")
    if backend not in BACKENDS:
        raise ValueError(
            f"REPRO_ENGINE_BACKEND={backend!r} is not a valid engine "
            f"backend; choose from {', '.join(BACKENDS)}"
        )
    return backend


def _resolve_env_store() -> CalibrationStore | None:
    """Attach the cross-process calibration store named by
    ``REPRO_CALIBRATION_STORE`` (unset: no store)."""
    path = os.environ.get("REPRO_CALIBRATION_STORE")
    return CalibrationStore(path) if path else None


# REPRO_ENGINE_BACKEND forces the default engine's backend for a whole
# process tree — how the CI matrix runs the identical suite on both
# backends without touching any test.
_DEFAULT_ENGINE = SimulationEngine(
    backend=_resolve_env_backend(),
    calibration_store=_resolve_env_store(),
)


def get_default_engine() -> SimulationEngine:
    """The process-wide engine used by ``Chip.simulate_*`` delegation."""
    return _DEFAULT_ENGINE


def set_default_backend(backend: str) -> None:
    """Switch the default engine's backend (CLI ``--backend`` hook)."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; "
            f"choose from {', '.join(BACKENDS)}"
        )
    _DEFAULT_ENGINE.backend = backend


def clear_caches() -> None:
    """Test hook: clear every cache on the default engine."""
    _DEFAULT_ENGINE.clear_caches()
