"""Batched simulation engine — one oracle API for every experiment.

Every figure, table and attack in this reproduction reduces to the same
operation: *simulate this chip under these N configuration words*.  The
engine makes that the primitive.  Callers build request records and
submit whole sweeps; the engine integrates them with one of two
interchangeable, bit-exact backends.

Architecture
============

::

    experiments / attacks / calibration / locking
            |        (ModulatorRequest / ReceiverRequest batches)
            v
    SimulationEngine.run(chip, requests) ---- engine-owned caches
            |                                 (calibration results,
            |  group by (n_samples, substeps)  per-chip tank
            v                                  discretisations,
       build_plan()                            per-batch stimulus)
            |    per-key setup, exact legacy RNG draw order
            |
            +--> reference backend   (original scalar loop, ground truth)
            +--> vectorized backend  (key-axis batch -> compiled kernel)

Backends
--------

* **reference** — the original per-sample scalar recursion, verbatim.
  The semantic ground truth.
* **vectorized** — hands the whole batch, with per-key state ``(v,
  i_L)`` and constants laid out over the key axis, to a small compiled
  C kernel (built from ``_kernel.c`` on first use, cached per user).
  One call integrates every key, which makes multi-key sweeps an order
  of magnitude faster; without a C compiler it falls back to running
  the reference loop per key, so results never depend on the toolchain.
* **auto** (default) — vectorized whenever the compiled kernel is
  available, reference otherwise.

Threading
---------

The kernel's key loop is its second parallel axis: the build tries
pthreads first (falling back to the identical sequential build on
toolchains without them), and each batch call then spawns a worker
team that pulls keys off an atomic counter and joins before the call
returns.  Keys share no mutable state and per-key arithmetic is
untouched, so the thread count cannot change any result —
1-vs-N-thread runs are bit-identical (guarded in
``tests/test_engine.py``).  Per-call teams are what keeps ``fork()``
safe (the campaign worker pools fork): no threading runtime outlives a
call — the reason this is pthreads, not OpenMP.
``REPRO_ENGINE_THREADS`` pins the count (unset = one thread per core,
resolved per kernel call, clamped to the kernel's 64-helper team
bound); ``REPRO_ENGINE_DISABLE_KERNEL`` reports the kernel
unavailable, forcing the reference fallback — the CI leg that keeps
the no-compiler path green.

Within each thread the kernel has a third, SIMD axis: 2/4-wide vector
lanes advance that many uniform-mode keys per time step through a
transposed key-inner layout, with per-lane arithmetic in the exact
reference operand order and the scalar libm ``tanh`` applied per lane
— so lane width, like thread count, is pure throughput policy and
0/2/4-lane runs are bit-identical.  ``REPRO_ENGINE_SIMD`` pins the
width (unset/``auto`` = runtime detection, ``0`` forces the scalar
walk — the CI force-off leg).

The backends are *bit-exact* (same ``ModulatorResult.output``, ``bits``
and ``tank_voltage`` arrays): they read identical precomputed inputs,
keep identical operand order, and share the one in-loop transcendental
— CPython's ``math.tanh`` and the kernel's ``tanh`` are the same libm
symbol, and the kernel is built with FP contraction disabled.
``tests/test_engine.py`` holds the equivalence property over mixed
clocked / buffer-mode / oscillation batches.  The invariants live in
:mod:`repro.engine.plan` and :mod:`repro.engine.native`.

Batching model
--------------

A batch may mix configurations, stimuli, clocks, seeds — and *chips*:
:meth:`SimulationEngine.run_multi` takes ``(chip, request)`` pairs and
groups them exactly like single-chip requests (every per-key input is
baked into the :class:`~repro.engine.plan.KeyPlan` before a backend
sees it, so the key axis is indifferent to which die a request
probes); :meth:`SimulationEngine.run` is its single-chip special case.
Only the *time grid* (record length and substeps) must agree, so
requests group by ``(n_samples, substeps)`` and each group integrates
in one pass, returning results in request order.  Mixed-chip batching
is what lets fleet calibration fuse one search step of a whole lot
into one kernel submission.

Cache semantics
---------------

The engine owns two bounded LRU caches (:class:`~repro.engine.cache.
BoundedCache`), replacing the old unbounded module-global calibration
cache: calibration results keyed by ``(chip_id, standard_index)``, and
per-chip ZOH tank discretisations keyed by ``(cc, cf, h)`` (held on the
:class:`~repro.receiver.receiver.Chip`, since they are chip state like
its block set).  Two further run-scoped memos share the sampled RF
stimulus waveform and the drawn measurement records (VGLNA output and
noise/dither draws — pure functions of chip, stimulus, time grid, seed
and the two input-path config fields) across the keys of one batch; a
session driver may carry the latter across submissions via
``run_multi(..., noise_cache=)``, as the fleet calibrator does.  All
of these are deterministic value caches — hitting them cannot change
any result.
``clear_caches()`` (engine method and module-level hook for the default
engine) empties the persistent ones for tests and long-running sweeps.

Behind the in-memory LRU an engine may attach a cross-process
:class:`~repro.engine.store.CalibrationStore` — a directory of
atomically-written calibration results, keyed like the LRU (the
campaign layer keys on ``(lot_seed, chip_id, standard_index)``) —
which ``calibrated()`` reads through and writes through.  Campaign
worker pools share one per campaign (each die of a fleet calibrated
once campaign-wide instead of once per worker), and
``REPRO_CALIBRATION_STORE`` attaches one to the default engine for a
whole process tree.  ``clear_caches()`` clears an attached store too.

Batched post-processing
-----------------------

The post-integration stages batch along the key axis as well, so they
cannot become the serial tail of a sweep: ``run_receiver`` regroups
modulator outputs into ``(keys, samples)`` matrices for
:meth:`~repro.receiver.chain.DigitalChain.process_matrix` (slicer,
fs/4 mixer and decimators in one pass per batch), and the
``measure_*_batch``/oracle sweep primitives take their spectra through
:func:`~repro.dsp.spectrum.periodogram_batch` (one windowed FFT over
the whole matrix).  Both are bit-identical per key to the scalar
paths; the calibration layer's speculative batched coordinate descent
(:func:`~repro.calibration.optimizer.coordinate_descent` with
``batch_objective``) builds on the same primitives.
"""

from repro.engine.cache import BoundedCache
from repro.engine.engine import (
    BACKENDS,
    EngineStats,
    SimulationEngine,
    clear_caches,
    get_default_engine,
    set_default_backend,
)
from repro.engine.native import (
    kernel_available,
    kernel_max_threads,
    kernel_simd_lanes,
    kernel_simd_width,
    kernel_threaded,
    kernel_threads,
    usable_cpus,
)
from repro.engine.plan import KeyPlan, build_plan, discretise_tank
from repro.engine.request import ModulatorRequest, ReceiverRequest
from repro.engine.store import CalibrationStore

__all__ = [
    "BACKENDS",
    "BoundedCache",
    "CalibrationStore",
    "EngineStats",
    "KeyPlan",
    "ModulatorRequest",
    "ReceiverRequest",
    "SimulationEngine",
    "build_plan",
    "clear_caches",
    "discretise_tank",
    "get_default_engine",
    "kernel_available",
    "kernel_max_threads",
    "kernel_simd_lanes",
    "kernel_simd_width",
    "kernel_threaded",
    "kernel_threads",
    "set_default_backend",
    "usable_cpus",
]
