"""Build, load and drive the compiled batch kernel (``_kernel.c``).

The kernel is compiled on first use with the system C compiler into a
per-user cache directory keyed by a hash of the source and flags, so
editing the source or upgrading the repo transparently rebuilds it.
Machines without a compiler simply report the kernel unavailable and
the vectorized backend falls back to the (bit-identical) reference
loop — nothing is ever ``pip install``-ed.

Why C is bit-exact with the Python reference loop:

* CPython's ``math.tanh`` and the kernel's ``tanh`` resolve to the same
  libm symbol, so the single in-loop transcendental matches bitwise;
* the kernel transcribes the reference expressions with identical
  operand order, and IEEE-754 double add/mul/div are deterministic
  given order;
* the build passes ``-ffp-contract=off`` so the compiler cannot fuse
  multiply-adds into differently-rounded FMAs.

``tests/test_engine.py`` holds the equivalence property over mixed-mode
batches.

Threading model
---------------

Keys are independent, so the kernel's key loop is its second axis of
parallelism: the build first tries pthreads (``-pthread
-DREPRO_USE_PTHREADS``) and, when that works, each batch call spawns a
worker team that pulls keys off an atomic counter and joins before the
call returns.  Per-key arithmetic is untouched and no state is shared,
so the thread count cannot change any result — 1-vs-N-thread runs are
bit-identical (guarded in ``tests/test_engine.py``).  Per-call teams
are also what keeps ``fork()`` safe (campaign worker pools fork): no
threading runtime state outlives a call, where a forked child of an
OpenMP parent would deadlock in the orphaned runtime — which is why
this is pthreads and not OpenMP.  The count is resolved per call from
``REPRO_ENGINE_THREADS`` (unset means one thread per online core,
``1`` forces the sequential walk); toolchains without pthreads compile
the plain sequential kernel with the identical ABI.  The kernel's
worker team is bounded at 64 helper threads plus the calling thread
(``repro_kernel_max_threads``): larger requests are clamped once up
front inside the kernel, never silently dropped mid-spawn, so asking
for 10_000 threads is safe and merely redundant (covered in
``tests/test_engine.py``).  Setting ``REPRO_ENGINE_DISABLE_KERNEL``
reports the kernel unavailable, which forces the no-compiler reference
fallback everywhere — the CI leg that keeps that path green.

SIMD lane axis
--------------

Within one thread, the kernel can advance 2 or 4 uniform-mode keys per
time step with GNU vector extensions (the transposed key-inner layout
in ``_kernel.c``).  Per-lane arithmetic keeps the exact reference
operand order and ``tanh`` is the same scalar libm call applied per
lane, so lane width can never change a result — 0/2/4-lane runs are
bit-identical (guarded in ``tests/test_engine.py``).
``REPRO_ENGINE_SIMD`` picks the width per call: unset (or ``auto``)
lets the kernel detect the widest supported lanes (AVX-class hosts get
4, baseline x86-64 gets 2), ``0`` or ``1`` forces the scalar walk (the
CI force-off leg), ``2``/``4`` force a width.  Anything else raises.

The pinned-order batch FIR (``repro_fir_batch``) shares the cache,
clamped worker-team model and exactness contract; see
:func:`fir_batch_native` and :mod:`repro.dsp.decimate`.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.engine.plan import KeyPlan
from repro.receiver.sdm import ModulatorResult

#: Per-key parameter row; order must match the ``enum`` in _kernel.c.
PARAM_FIELDS = (
    "a11", "a12", "a21", "a22", "b1", "b2",
    "clocked", "feedback_on", "chop_en", "delay_whole", "switch_substep",
    "i_dac_unit", "chop_offset", "decision_sigma", "hysteresis",
    "gv", "vsat", "preamp_gain", "v_clip", "buf_gain",
    "buffer_gain", "buffer_clamp", "buffer_noise", "v0", "il0",
)

_KERNEL_SOURCE = Path(__file__).with_name("_kernel.c")

#: Flags chosen for speed *and* reproducibility: optimisation is fine,
#: value-changing transformations (FMA contraction, fast-math) are not.
_CFLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off")

#: Flag sets to try in order: pthreads (threaded key axis) first, then
#: the plain sequential build for toolchains without pthread support.
_CFLAG_SETS = (_CFLAGS + ("-pthread", "-DREPRO_USE_PTHREADS"), _CFLAGS)

_lib: ctypes.CDLL | None = None
_lib_checked = False

_DOUBLE_P = ctypes.POINTER(ctypes.c_double)
_DOUBLE_PP = ctypes.POINTER(_DOUBLE_P)


def _cache_dir() -> Path:
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    path = Path(base) / "repro-engine"
    try:
        path.mkdir(parents=True, exist_ok=True)
        return path
    except OSError:
        return Path(tempfile.gettempdir()) / "repro-engine"


def _compiler() -> str | None:
    for name in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if name and shutil.which(name):
            return name
    return None


def _build_one(flags: tuple[str, ...]) -> ctypes.CDLL | None:
    source = _KERNEL_SOURCE.read_bytes()
    tag = hashlib.sha256(source + " ".join(flags).encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = cache / f"kernel-{tag}.so"
    if not so_path.exists():
        cc = _compiler()
        if cc is None:
            return None
        cache.mkdir(parents=True, exist_ok=True)
        # Build to a temp name then rename, so concurrent processes
        # never load a half-written library.
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=str(cache))
        os.close(fd)
        cmd = [cc, *flags, "-o", tmp, str(_KERNEL_SOURCE), "-lm"]
        try:
            subprocess.run(
                cmd, check=True, capture_output=True, timeout=120
            )
            os.replace(tmp, so_path)
        except (subprocess.SubprocessError, OSError):
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return None
    try:
        lib = ctypes.CDLL(str(so_path))
    except OSError:
        return None
    if lib.repro_kernel_n_params() != len(PARAM_FIELDS):
        return None  # stale ABI; refuse rather than corrupt results
    lib.repro_simulate_batch.argtypes = [
        ctypes.c_int, ctypes.c_int, ctypes.c_int,
        _DOUBLE_PP, _DOUBLE_PP, _DOUBLE_PP, _DOUBLE_PP,
        _DOUBLE_P,
        _DOUBLE_PP, _DOUBLE_PP, _DOUBLE_PP,
        ctypes.c_int, ctypes.c_int,
    ]
    lib.repro_simulate_batch.restype = None
    lib.repro_fir_batch.argtypes = [
        ctypes.c_int, ctypes.c_int, _DOUBLE_PP,
        ctypes.c_int, _DOUBLE_P,
        _DOUBLE_PP, ctypes.c_int,
    ]
    lib.repro_fir_batch.restype = ctypes.c_int
    return lib


def _build_library() -> ctypes.CDLL | None:
    if not _KERNEL_SOURCE.exists():
        return None
    # Threading changes throughput only, never results, so a toolchain
    # without pthreads quietly gets the sequential build of the same ABI.
    for flags in _CFLAG_SETS:
        lib = _build_one(flags)
        if lib is not None:
            return lib
    return None


def kernel_available() -> bool:
    """Whether the compiled batch kernel can be used on this machine.

    ``REPRO_ENGINE_DISABLE_KERNEL`` (any non-empty value) reports it
    unavailable without touching the build cache — the switch the CI
    no-compiler leg uses to exercise the reference fallback.
    """
    global _lib, _lib_checked
    if os.environ.get("REPRO_ENGINE_DISABLE_KERNEL"):
        return False
    if not _lib_checked:
        _lib = _build_library()
        _lib_checked = True
    return _lib is not None


def kernel_threaded() -> bool:
    """Whether the loaded kernel was built with a threaded key axis."""
    if not kernel_available():
        return False
    try:
        return bool(_lib.repro_kernel_threaded())
    except AttributeError:  # pre-threading library (stale hash collision)
        return False


def usable_cpus() -> int:
    """CPUs this process may run on (affinity-aware where supported).

    The sizing signal for everything that scales with the kernel's
    threaded key axis: the calibrator's speculation depth, the
    benchmark gates, the BENCH report.
    """
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def kernel_threads() -> int:
    """Resolve the key-axis thread count from ``REPRO_ENGINE_THREADS``.

    Returns 0 when the variable is unset — the kernel then uses one
    thread per online core, capped at the batch size.  The value is
    read per call so a process can re-pin its thread count between
    batches.
    """
    raw = os.environ.get("REPRO_ENGINE_THREADS")
    if raw is None or raw.strip() == "":
        return 0
    try:
        n = int(raw)
    except ValueError:
        n = -1
    if n < 1:
        raise ValueError(
            f"REPRO_ENGINE_THREADS must be a positive integer "
            f"(or unset for one thread per core), got {raw!r}"
        )
    return n


def kernel_simd_lanes() -> int:
    """Resolve the SIMD lane width from ``REPRO_ENGINE_SIMD``.

    Returns -1 when the variable is unset or ``auto`` — the kernel then
    detects the widest lanes the build and host support.  ``0`` and
    ``1`` both force the scalar walk, ``2`` and ``4`` force that width.
    Any other value raises.  Width is pure throughput policy: results
    are bit-identical at every setting.  Read per call, like
    :func:`kernel_threads`.
    """
    raw = os.environ.get("REPRO_ENGINE_SIMD")
    if raw is None or raw.strip() in ("", "auto"):
        return -1
    try:
        n = int(raw)
    except ValueError:
        n = -1
    if n not in (0, 1, 2, 4):
        raise ValueError(
            f"REPRO_ENGINE_SIMD must be auto/0/1/2/4 "
            f"(or unset for auto-detection), got {raw!r}"
        )
    return 0 if n == 1 else n


def kernel_simd_width() -> int:
    """Lane width the loaded kernel auto-detects for this host.

    4 on AVX-class x86-64, 2 on baseline hosts, 0 when the build had no
    vector extensions or no kernel is available.  This is what
    ``REPRO_ENGINE_SIMD=auto`` resolves to inside the kernel.
    """
    if not kernel_available():
        return 0
    try:
        return int(_lib.repro_kernel_simd_width())
    except AttributeError:  # pragma: no cover - stale pre-SIMD library
        return 0


def kernel_max_threads() -> int:
    """Hard bound on the kernel's per-call worker team (incl. caller).

    ``n_threads`` requests above this are clamped up front inside the
    kernel — the fixed-size helper array can never overflow and no
    request is silently truncated mid-spawn.
    """
    if not kernel_available():
        return 1
    try:
        return int(_lib.repro_kernel_max_threads())
    except AttributeError:  # pragma: no cover - stale library
        return 1


def _pointer_array(arrays: Sequence[np.ndarray]) -> ctypes.Array:
    ptrs = (_DOUBLE_P * len(arrays))()
    for i, a in enumerate(arrays):
        ptrs[i] = a.ctypes.data_as(_DOUBLE_P)
    return ptrs


def simulate_plans_native(plans: Sequence[KeyPlan]) -> list[ModulatorResult]:
    """Integrate a batch of key plans through the compiled kernel."""
    if not kernel_available():
        raise RuntimeError("compiled kernel unavailable on this machine")
    n_keys = len(plans)
    n_samples = plans[0].n_samples
    substeps = plans[0].substeps
    params = np.empty((n_keys, len(PARAM_FIELDS)))
    for k, plan in enumerate(plans):
        for j, name in enumerate(PARAM_FIELDS):
            params[k, j] = float(getattr(plan, name))
    i_in = [np.ascontiguousarray(p.i_in) for p in plans]
    comp_noise = [np.ascontiguousarray(p.comp_noise) for p in plans]
    comp_noise_out = [np.ascontiguousarray(p.comp_noise_out) for p in plans]
    dither = [np.ascontiguousarray(p.dither) for p in plans]
    output = [np.empty(n_samples) for _ in plans]
    bits = [np.empty(n_samples) for _ in plans]
    tank_v = [np.empty(n_samples) for _ in plans]
    _lib.repro_simulate_batch(
        n_keys, n_samples, substeps,
        _pointer_array(i_in), _pointer_array(comp_noise),
        _pointer_array(comp_noise_out), _pointer_array(dither),
        params.ctypes.data_as(_DOUBLE_P),
        _pointer_array(output), _pointer_array(bits), _pointer_array(tank_v),
        kernel_threads(), kernel_simd_lanes(),
    )
    return [
        ModulatorResult(
            output=output[k],
            bits=bits[k],
            tank_voltage=tank_v[k],
            fs=plans[k].fs,
            is_bitstream=plans[k].clocked,
        )
        for k in range(n_keys)
    ]


def fir_batch_native(x: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Pinned-order batch FIR over a ``(rows, samples)`` matrix.

    Runs ``repro_fir_batch``: 'same'-aligned convolution of every row
    with ``taps``, accumulated in explicitly ascending tap order over
    the zero-padded row, rows threaded like the integrator's key axis
    (thread count from ``REPRO_ENGINE_THREADS``, clamped to the
    64-helper team bound).  The accumulation order is the whole point:
    it makes the result platform-pinned and bit-identical to the
    pure-NumPy transcription in :func:`repro.dsp.decimate.fir_same_pinned`,
    where ``np.convolve``'s BLAS dot ordering is build-dependent.
    Output shape is ``(rows, max(samples, taps))`` — ``np.convolve``'s
    'same' semantics when the taps outnumber the samples.
    """
    if not kernel_available():
        raise RuntimeError("compiled kernel unavailable on this machine")
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"expected a (rows, samples) matrix, got {x.shape}")
    taps = np.ascontiguousarray(taps, dtype=np.float64)
    if taps.ndim != 1 or taps.size == 0:
        raise ValueError("taps must be a non-empty 1-D array")
    n_rows, n_in = x.shape
    out_n = max(n_in, taps.size)
    if n_rows == 0:
        return np.empty((0, out_n))
    if n_in == 0:
        raise ValueError("samples cannot be empty")  # as np.convolve
    rows = [np.ascontiguousarray(x[r]) for r in range(n_rows)]
    out = np.empty((n_rows, out_n))
    out_rows = [out[r] for r in range(n_rows)]
    rc = _lib.repro_fir_batch(
        n_rows, n_in, _pointer_array(rows),
        taps.size, taps.ctypes.data_as(_DOUBLE_P),
        _pointer_array(out_rows), kernel_threads(),
    )
    if rc != 0:  # pragma: no cover - scratch allocation failure
        raise MemoryError("repro_fir_batch could not allocate scratch")
    return out
