"""Reference backend: the original per-sample scalar integrator.

This is the ground truth the vectorized backend is held bit-exact to.
The loop is a faithful transcription of the original
``repro.receiver.sdm.simulate_modulator`` recursion — same ``math.tanh``
transcendental, same operand order, same results to the last bit — it
merely reads its inputs from a precomputed
:class:`~repro.engine.plan.KeyPlan` instead of rebuilding them inline,
so both backends integrate from identical inputs (see the
:mod:`repro.engine.plan` docstring for the exactness contract).
"""

from __future__ import annotations

import math

import numpy as np

from repro.engine.plan import KeyPlan
from repro.receiver.sdm import ModulatorResult


def simulate_plan(plan: KeyPlan) -> ModulatorResult:
    """Integrate one prepared key plan with the scalar recursion."""
    tanh = math.tanh
    n_samples = plan.n_samples
    substeps = plan.substeps
    a11, a12, a21, a22 = plan.a11, plan.a12, plan.a21, plan.a22
    b1, b2 = plan.b1, plan.b2
    clocked = plan.clocked
    feedback_on = plan.feedback_on
    delay_whole = plan.delay_whole
    switch_substep = plan.switch_substep
    i_dac_unit = plan.i_dac_unit
    chop_offset = plan.chop_offset
    decision_sigma = plan.decision_sigma
    hysteresis = plan.hysteresis
    gv, vsat = plan.gv, plan.vsat
    preamp_gain, v_clip = plan.preamp_gain, plan.v_clip
    buf_gain = plan.buf_gain
    buffer_gain, buffer_clamp = plan.buffer_gain, plan.buffer_clamp
    buffer_noise = plan.buffer_noise
    comp_noise = plan.comp_noise
    comp_noise_out = plan.comp_noise_out
    dither = plan.dither

    chop_sign = 1.0
    v, il = plan.v0, plan.il0
    # Decision history d[n], d[n-1], d[n-2]: the programmable delay can
    # reach back almost two clock periods.
    d0 = d1 = d2 = -1.0
    output = np.empty(n_samples)
    bits = np.empty(n_samples)
    tank_v = np.empty(n_samples)
    i_in_list = plan.i_in.tolist()

    for n in range(n_samples):
        tank_v[n] = v
        v_pre = v_clip * tanh(preamp_gain * v / v_clip)
        if clocked:
            v_eff = (
                v_pre
                + chop_sign * chop_offset
                + comp_noise[n] * decision_sigma
                + dither[n]
                + hysteresis * d0
            )
            d2 = d1
            d1 = d0
            d0 = 1.0 if v_eff >= 0.0 else -1.0
            bits[n] = d0
            output[n] = d0 * buf_gain
        else:
            d2 = d1
            d1 = d0
            bits[n] = 0.0
            # Un-clocked comparator as an open-loop buffer stage.
            v_eff = v_pre + chop_offset + comp_noise[n] * decision_sigma
            y_buf = (
                buffer_clamp * tanh(buffer_gain * v_eff / buffer_clamp)
                + comp_noise_out[n] * buffer_noise
            )
            output[n] = y_buf * buf_gain
        if plan.chop_en:
            chop_sign = -chop_sign

        if delay_whole == 0:
            d_early, d_late = d1, d0
        else:
            d_early, d_late = d2, d1

        base = n * substeps
        for j in range(substeps):
            if clocked:
                drive_bit = d_early if j < switch_substep else d_late
                i_fb = i_dac_unit * drive_bit
            elif feedback_on:
                # Buffer mode with the loop closed: the DAC sees the
                # clipped open-loop comparator output and switches
                # partially.
                v_pre_now = v_clip * tanh(preamp_gain * v / v_clip)
                y_now = buffer_clamp * tanh(
                    buffer_gain
                    * (v_pre_now + chop_offset + 0.0 * decision_sigma)
                    / buffer_clamp
                ) + 0.0 * buffer_noise
                i_fb = i_dac_unit * tanh(y_now / 0.3) / 0.995055
            else:
                i_fb = 0.0
            i_gmq = gv * tanh(v / vsat)
            # The feedback current is injected with positive polarity:
            # around fs/4 the resonator's sampled pulse response supplies
            # the loop inversion (see module docstring of blocks.dac /
            # the z^-2 K/(1+z^-2) analysis), so +i_fb is the stable,
            # noise-shaping polarity.
            u = i_in_list[base + j] + i_gmq + i_fb
            v, il = a11 * v + a12 * il + b1 * u, a21 * v + a22 * il + b2 * u

    return ModulatorResult(
        output=output,
        bits=bits,
        tank_voltage=tank_v,
        fs=plan.fs,
        is_bitstream=clocked,
    )
