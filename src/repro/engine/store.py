"""Cross-process calibration store: share fleet provisioning work.

Calibrating a die is the engine's most expensive cached computation,
and campaign workers are separate processes — each one's in-memory LRU
starts empty, so before this store a fleet-provisioning sweep paid one
full calibration per *worker touching a die* instead of one per die.
The store closes that gap: a directory of atomically-written pickle
files, keyed exactly like the in-memory cache (the campaign layer keys
on ``(lot_seed, chip_id, standard_index)``), that every worker of a
campaign — and, when ``REPRO_CALIBRATION_STORE`` names a directory,
every process of a deployment — reads through.

Design points:

* **Deterministic values only.**  A calibration result is a pure
  function of (die, standard, calibrator settings), so a store hit is
  bitwise the result a recompute would produce (pickle round-trips
  floats exactly) — sharing cannot change any report.
* **Atomic, crash-safe writes.**  Entries are written to a temp file
  and ``os.replace``-d into place; readers never see a torn entry, and
  a corrupt or half-written file is treated as a miss.
* **Integrity-checksummed entries.**  Each entry carries a digest of
  its pickle, verified before unpickling: a complete-but-corrupted
  entry (bit rot, a partial NFS write that still renamed) degrades to
  a miss and a recompute instead of raising ``UnpicklingError`` — or
  unpickling garbage that *doesn't* raise — through ``calibrated()``.
  Entries written before the checksum existed still read (their pickle
  parse is the only check, as before).
* **Keys verified, not trusted.**  File names are key digests; the full
  key is stored inside the entry and checked on read, so a digest
  collision degrades to a miss instead of serving the wrong die.
* **Auditable computes.**  Every :meth:`put` appends one line to
  ``events.log`` (O_APPEND, so concurrent workers interleave whole
  lines).  ``benchmarks/test_bench_campaign.py`` counts those lines to
  guard the "each die calibrated once per fleet, not once per worker"
  property.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Iterable, Sequence

from repro import faults

#: Name of the per-store compute audit log.
EVENTS_FILE = "events.log"

#: Magic prefix of a checksummed entry: ``MAGIC + sha256(pickle)[:16]
#: + pickle``.  Files without it are pre-checksum entries and read the
#: legacy way.
ENTRY_MAGIC = b"RCS1"

#: Bytes of the sha256 digest stored after the magic.
DIGEST_BYTES = 16


class CalibrationStore:
    """A directory of calibration results shared across processes.

    Args:
        path: Store directory; created (parents included) when missing.
        lock_timeout: How long :meth:`get_or_set` waits on another
            process's in-flight compute of the same key before treating
            its lock as stale (crashed holder) and computing anyway.
        poll_interval: Seconds between lock polls while waiting.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        lock_timeout: float = 600.0,
        poll_interval: float = 0.05,
    ):
        self.path = Path(path)
        self.lock_timeout = lock_timeout
        self.poll_interval = poll_interval
        self.path.mkdir(parents=True, exist_ok=True)

    def _entry(self, key: tuple) -> Path:
        digest = hashlib.sha256(repr(key).encode()).hexdigest()[:24]
        return self.path / f"cal-{digest}.pkl"

    def _lock(self, key: tuple) -> Path:
        return self._entry(key).with_suffix(".lock")

    def get(self, key: tuple):
        """The stored value for ``key``, or None on any kind of miss."""
        try:
            with open(self._entry(key), "rb") as fh:
                data = fh.read()
        except OSError:
            return None  # missing
        if data.startswith(ENTRY_MAGIC):
            header = len(ENTRY_MAGIC) + DIGEST_BYTES
            digest = data[len(ENTRY_MAGIC):header]
            payload = data[header:]
            if hashlib.sha256(payload).digest()[:DIGEST_BYTES] != digest:
                return None  # corrupted in place: miss, recompute
        else:
            payload = data  # pre-checksum entry: pickle parse is the check
        try:
            stored_key, value = pickle.loads(payload)
        except Exception:
            # Torn, bit-rotten, or from an incompatible version: a bad
            # pickle can raise nearly anything, and a miss-and-recompute
            # is always safe (entries are deterministic values).
            return None
        if stored_key != key:
            return None  # digest collision: miss, never the wrong die
        return value

    def _write_entry(self, key: tuple, value) -> None:
        entry = self._entry(key)
        payload = pickle.dumps((key, value))
        data = (
            ENTRY_MAGIC
            + hashlib.sha256(payload).digest()[:DIGEST_BYTES]
            + payload
        )
        if faults.ENABLED and faults.fire("store.torn_entry"):
            data = faults.torn(data)
        fd, tmp = tempfile.mkstemp(suffix=".tmp", dir=str(self.path))
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, entry)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _event_line(self, key: tuple, event: str = "") -> bytes:
        tag = f" {event}" if event else ""
        return f"{os.getpid()} {key!r}{tag}\n".encode()

    def _append_events(self, data: bytes) -> None:
        if faults.ENABLED and faults.fire("store.torn_audit"):
            data = faults.torn(data.rstrip(b"\n"))
        log_fd = os.open(
            self.path / EVENTS_FILE, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(log_fd, data)
        finally:
            os.close(log_fd)

    def put(self, key: tuple, value, event: str = "") -> None:
        """Atomically store ``value`` under ``key`` and log the compute,
        optionally tagging the audit line (e.g. ``"fleet"`` for lockstep
        provisioning computes)."""
        self._write_entry(key, value)
        self._append_events(self._event_line(key, event))

    def get_many(self, keys: Sequence[tuple]) -> list:
        """Bulk read: the stored value per key, None per miss."""
        return [self.get(key) for key in keys]

    def put_many(self, items: Iterable[tuple[tuple, object]], event: str = "") -> None:
        """Atomically store many entries, logging one audit line each.

        All the lines of one bulk write are appended in a single
        ``O_APPEND`` write, so a fleet provisioning shows up in
        ``events.log`` as one contiguous block — tagged with ``event``
        (e.g. ``"fleet"``) so audits can tell lockstep computes from
        per-die ones.  Line count semantics are unchanged: one line per
        value computed into the store.
        """
        items = list(items)
        for key, value in items:
            self._write_entry(key, value)
        if items:
            self._append_events(
                b"".join(self._event_line(key, event) for key, _ in items)
            )

    def get_or_set(self, key: tuple, factory):
        """Read-through helper: store hit, else compute and store.

        Concurrent callers of the same key race *cleanly*: a per-key
        lock file (``O_CREAT | O_EXCL``, the portable atomic create)
        elects one process to run ``factory`` while the others poll for
        its entry — one compute in the audit log, every caller handed
        the identical pickle.  A lock file older than ``lock_timeout``
        is treated as a crashed holder's debris: the waiter unlinks it
        and contends for a fresh lock of its own (duplicate work at
        worst, never a deadlock or a wrong value — entries are atomic
        and deterministic — and staleness is the *lock's* age, so
        late-arriving waiters don't each re-wait a full timeout).  A
        ``factory`` that raises releases the lock so waiters can take
        over.
        """
        value = self.get(key)
        if value is not None:
            return value
        lock = self._lock(key)
        while True:
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    age = time.time() - os.stat(lock).st_mtime
                except OSError:
                    continue  # lock vanished under us: contend again
                if age > self.lock_timeout:
                    # Crashed holder: clear the debris and contend for
                    # a fresh lock (one unlinker wins the O_EXCL race).
                    try:
                        os.unlink(lock)
                    except OSError:
                        pass
                    continue
                time.sleep(self.poll_interval)
                value = self.get(key)
                if value is not None:
                    return value
                continue
            os.close(fd)
            try:
                # Lock won; the previous holder may have finished the
                # compute between our miss and our acquisition.
                value = self.get(key)
                if value is None:
                    value = factory()
                    self.put(key, value)
                return value
            finally:
                try:
                    os.unlink(lock)
                except OSError:
                    pass

    def clear_lock(self, key: tuple) -> None:
        """Remove ``key``'s lock file, if any — crashed-holder debris.

        A killed process (a cancelled service job's terminated worker,
        a SIGKILLed campaign driver) can leave its :meth:`get_or_set`
        lock behind, and waiters would poll it for ``lock_timeout``
        before computing.  Callers that *know* no live holder exists —
        the service scheduler dedupes each key to one task per job
        before provisioning — clear the debris up front.  Safe by the
        store's own invariants: at worst a concurrent campaign
        recomputes the deterministic value, never a wrong entry.
        """
        try:
            os.unlink(self._lock(key))
        except OSError:
            pass

    def clear_locks(self) -> int:
        """Sweep every ``get_or_set`` lock file in the store; returns
        how many were removed.

        The whole-store analogue of :meth:`clear_lock`, for callers
        that know no live holder can exist in the *entire* directory —
        the foundry daemon runs it at startup over its store root,
        before any worker of the new fleet exists, so a killed daemon's
        lock debris never stalls the next one.
        """
        removed = 0
        for lock in self.path.glob("cal-*.lock"):
            try:
                lock.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.path.glob("cal-*.pkl"))

    def compute_events(self) -> list[str]:
        """The audit log: one line per value computed into the store.

        A torn trailing line — a writer killed mid-append, before the
        terminating newline landed — is dropped rather than surfaced as
        a garbled record (whole lines always end in ``\\n``; audits must
        survive the crashes the journal survives)."""
        try:
            data = (self.path / EVENTS_FILE).read_bytes()
        except OSError:
            return []
        if data and not data.endswith(b"\n"):
            newline = data.rfind(b"\n")
            data = data[: newline + 1] if newline >= 0 else b""
        text = data.decode("utf-8", errors="replace")
        return [line for line in text.splitlines() if line]

    def clear(self) -> None:
        """Drop every entry, stray lock and the audit log
        (``clear_caches`` hook)."""
        for lock in self.path.glob("cal-*.lock"):
            try:
                lock.unlink()
            except OSError:
                pass
        for entry in self.path.glob("cal-*.pkl"):
            try:
                entry.unlink()
            except OSError:
                pass
        try:
            (self.path / EVENTS_FILE).unlink()
        except OSError:
            pass
