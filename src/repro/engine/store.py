"""Cross-process calibration store: share fleet provisioning work.

Calibrating a die is the engine's most expensive cached computation,
and campaign workers are separate processes — each one's in-memory LRU
starts empty, so before this store a fleet-provisioning sweep paid one
full calibration per *worker touching a die* instead of one per die.
The store closes that gap: a directory of atomically-written pickle
files, keyed exactly like the in-memory cache (the campaign layer keys
on ``(lot_seed, chip_id, standard_index)``), that every worker of a
campaign — and, when ``REPRO_CALIBRATION_STORE`` names a directory,
every process of a deployment — reads through.

Design points:

* **Deterministic values only.**  A calibration result is a pure
  function of (die, standard, calibrator settings), so a store hit is
  bitwise the result a recompute would produce (pickle round-trips
  floats exactly) — sharing cannot change any report.
* **Atomic, crash-safe writes.**  Entries are written to a temp file
  and ``os.replace``-d into place; readers never see a torn entry, and
  a corrupt or half-written file is treated as a miss.
* **Keys verified, not trusted.**  File names are key digests; the full
  key is stored inside the entry and checked on read, so a digest
  collision degrades to a miss instead of serving the wrong die.
* **Auditable computes.**  Every :meth:`put` appends one line to
  ``events.log`` (O_APPEND, so concurrent workers interleave whole
  lines).  ``benchmarks/test_bench_campaign.py`` counts those lines to
  guard the "each die calibrated once per fleet, not once per worker"
  property.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path

#: Name of the per-store compute audit log.
EVENTS_FILE = "events.log"


class CalibrationStore:
    """A directory of calibration results shared across processes.

    Args:
        path: Store directory; created (parents included) when missing.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)

    def _entry(self, key: tuple) -> Path:
        digest = hashlib.sha256(repr(key).encode()).hexdigest()[:24]
        return self.path / f"cal-{digest}.pkl"

    def get(self, key: tuple):
        """The stored value for ``key``, or None on any kind of miss."""
        try:
            with open(self._entry(key), "rb") as fh:
                stored_key, value = pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError, AttributeError, ImportError):
            return None  # missing, torn, or from an incompatible version
        if stored_key != key:
            return None  # digest collision: miss, never the wrong die
        return value

    def put(self, key: tuple, value) -> None:
        """Atomically store ``value`` under ``key`` and log the compute."""
        entry = self._entry(key)
        fd, tmp = tempfile.mkstemp(suffix=".tmp", dir=str(self.path))
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump((key, value), fh)
            os.replace(tmp, entry)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        line = f"{os.getpid()} {key!r}\n".encode()
        log_fd = os.open(
            self.path / EVENTS_FILE, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(log_fd, line)
        finally:
            os.close(log_fd)

    def get_or_set(self, key: tuple, factory):
        """Read-through helper: store hit, else compute and store."""
        value = self.get(key)
        if value is None:
            value = factory()
            self.put(key, value)
        return value

    def __len__(self) -> int:
        return sum(1 for _ in self.path.glob("cal-*.pkl"))

    def compute_events(self) -> list[str]:
        """The audit log: one line per value computed into the store."""
        try:
            text = (self.path / EVENTS_FILE).read_text()
        except OSError:
            return []
        return [line for line in text.splitlines() if line]

    def clear(self) -> None:
        """Drop every entry and the audit log (``clear_caches`` hook)."""
        for entry in self.path.glob("cal-*.pkl"):
            try:
                entry.unlink()
            except OSError:
                pass
        try:
            (self.path / EVENTS_FILE).unlink()
        except OSError:
            pass
