"""Request records for the batched oracle API.

A request is everything needed to reproduce one lab measurement setup:
the configuration word under test (the key), the RF stimulus, the clock
and record length, and the measurement-noise seed.  Requests are plain
frozen dataclasses so experiment drivers can build big sweeps of them
up front and hand the whole batch to the :class:`SimulationEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.receiver.config import ConfigWord, DigitalConfig
from repro.receiver.stimulus import ToneStimulus


@dataclass(frozen=True)
class ModulatorRequest:
    """One modulator transient simulation to be run by the engine.

    Attributes:
        config: The 64-bit configuration word under test.
        stimulus: RF input.
        fs: Clock frequency, Hz.
        n_samples: Number of output samples.
        seed: Measurement-noise seed.
        substeps: Sub-intervals per clock period.
        initial_state: Initial ``(v_tank, i_L)``.
    """

    config: ConfigWord
    stimulus: ToneStimulus
    fs: float
    n_samples: int
    seed: int = 0
    substeps: int = 4
    initial_state: tuple[float, float] = (0.0, 0.0)

    def __post_init__(self) -> None:
        if self.n_samples <= 0:
            raise ValueError(f"n_samples must be positive, got {self.n_samples}")
        if self.substeps < 2:
            raise ValueError(f"need at least 2 substeps, got {self.substeps}")

    @property
    def batch_key(self) -> tuple[int, int]:
        """Requests sharing this key can be integrated as one batch.

        Keys are independent along the batch axis, so only the *time
        grid* — record length and substep count — must agree; the
        configuration, stimulus, clock and seed are free per request.
        """
        return (self.n_samples, self.substeps)


@dataclass(frozen=True)
class ReceiverRequest:
    """One full-chain (modulator + digital section) simulation.

    Attributes:
        config: The 64-bit configuration word under test.
        stimulus: RF input.
        fs: Modulator clock frequency, Hz.
        n_baseband: Decimated output record length; the modulator runs
            for ``n_baseband * osr`` clock periods.
        seed: Measurement-noise seed.
        substeps: Sub-intervals per clock period.
        digital_config: The 3 digital programming bits (default profile
            when omitted).
    """

    config: ConfigWord
    stimulus: ToneStimulus
    fs: float
    n_baseband: int
    seed: int = 0
    substeps: int = 4
    digital_config: DigitalConfig | None = field(default=None)

    def __post_init__(self) -> None:
        if self.n_baseband <= 0:
            raise ValueError(f"n_baseband must be positive, got {self.n_baseband}")
        if self.substeps < 2:
            raise ValueError(f"need at least 2 substeps, got {self.substeps}")
