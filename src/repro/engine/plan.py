"""Shared per-key simulation setup for both engine backends.

Bit-exactness between the reference and vectorized backends rests on
the invariants enforced here and in :mod:`repro.engine.native`:

1. Every input the time recursion consumes — the input-current record,
   the noise/dither draws, the discretised tank matrices, all derived
   block constants — is computed once, in the exact RNG draw order of
   the original scalar simulator, and stored in a :class:`KeyPlan` that
   every backend reads.  Backends only integrate; they never draw
   randomness or evaluate chip models.
2. The recursion itself is IEEE-754 double add/mul/div (deterministic
   given operand order, which all backends keep identical) plus a
   single transcendental, ``tanh`` — and CPython's ``math.tanh`` and
   the compiled kernel's ``tanh`` are the same libm symbol.  (NumPy's
   SIMD ``np.tanh`` is *not* that function — it differs by an ULP on
   some inputs, enough to eventually flip a comparator decision in a
   feedback loop, which is why the vectorized backend is a compiled
   kernel rather than a ufunc pipeline.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import MutableMapping

import numpy as np
from scipy.linalg import expm

from repro.engine.request import ModulatorRequest
from repro.receiver.sdm import ModulatorBlocks


def discretise_tank(
    blocks: ModulatorBlocks, cc: int, cf: int, h: float
) -> tuple[np.ndarray, np.ndarray]:
    """Exact ZOH discretisation of the linear tank over step ``h``."""
    a, b = blocks.tank.state_matrices(cc, cf)
    ad = expm(a * h)
    bd = np.linalg.solve(a, (ad - np.eye(2)) @ b)
    return ad, bd


@dataclass
class KeyPlan:
    """Everything one key's transient simulation needs, precomputed.

    Attributes are grouped as: time grid, per-substep/per-sample input
    records (``i_in``, noise, dither), the discretised tank update, the
    loop-topology mode flags, and the per-key block constants.  A plan
    is backend-agnostic; backends must not draw randomness or evaluate
    chip models — only integrate.
    """

    # -- time grid --------------------------------------------------------
    fs: float
    n_samples: int
    substeps: int
    # -- input records ----------------------------------------------------
    i_in: np.ndarray  # (n_samples * substeps,) tank input current
    comp_noise: np.ndarray  # (n_samples,) unit-normal decision noise
    comp_noise_out: np.ndarray  # (n_samples,) unit-normal buffer output noise
    dither: np.ndarray  # (n_samples,) dither voltage (zeros when disabled)
    # -- discretised tank -------------------------------------------------
    a11: float
    a12: float
    a21: float
    a22: float
    b1: float
    b2: float
    # -- mode flags -------------------------------------------------------
    clocked: bool
    feedback_on: bool
    chop_en: bool
    # -- loop constants ---------------------------------------------------
    delay_whole: int
    switch_substep: float
    i_dac_unit: float
    chop_offset: float
    decision_sigma: float
    hysteresis: float
    gv: float  # gmq_gm * vsat, the -Gm current scale
    vsat: float
    preamp_gain: float
    v_clip: float
    buf_gain: float
    buffer_gain: float  # un-clocked comparator stage gain
    buffer_clamp: float  # un-clocked comparator output clamp
    buffer_noise: float  # un-clocked comparator output noise, V rms
    v0: float
    il0: float


def build_plan(
    blocks: ModulatorBlocks,
    request: ModulatorRequest,
    disc_cache: MutableMapping | None = None,
    stim_cache: MutableMapping | None = None,
    noise_cache: MutableMapping | None = None,
) -> KeyPlan:
    """Prepare one key's simulation inputs (exact legacy RNG order).

    Args:
        blocks: The chip's analog block set.
        request: The simulation request.
        disc_cache: Optional ``(cc, cf, h) -> (ad, bd)`` memo for the
            matrix-exponential discretisation, shared across a batch or
            owned by a chip.  The discretisation is deterministic, so
            caching cannot change results.
        stim_cache: Optional memo for the sampled RF stimulus waveform,
            keyed by ``(stimulus, fs, n_samples, substeps)``.  Sweeps
            measure many keys under one stimulus, so the engine shares
            the tone evaluation across a batch; sampling is
            deterministic, so caching cannot change results.
        noise_cache: Optional memo for the drawn record tuple
            ``(v_lna, i_noise, comp_noise, comp_noise_out, dither)``,
            keyed by everything those records depend on: the chip's
            block set, the stimulus/time grid, the measurement seed and
            the two configuration fields that enter the input path
            (``lna_gain``; ``dither_en`` gates a draw).  Sweeps measure
            many keys under one seed and one stimulus — a calibration
            probe set, a key sweep, a fleet round — and for all of them
            these records are *the same values*: the RNG stream is a
            pure function of the seed, and the cached entry is computed
            by this very code path on its first request, so a hit
            reuses bitwise-identical arrays (backends treat plan
            records as read-only).  Sharing cannot change results, it
            only removes redundant draws and VGLNA evaluations.
    """
    config = request.config
    n_samples = request.n_samples
    substeps = request.substeps
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive, got {n_samples}")
    if substeps < 2:
        raise ValueError(f"need at least 2 substeps, got {substeps}")
    fs = request.fs
    h = 1.0 / (fs * substeps)

    key = (config.cc_coarse, config.cf_fine, h)
    if disc_cache is not None and key in disc_cache:
        ad, bd = disc_cache[key]
    else:
        ad, bd = discretise_tank(blocks, config.cc_coarse, config.cf_fine, h)
        if disc_cache is not None:
            disc_cache[key] = (ad, bd)

    bias_scale = 1.0 + (config.bias_global - 4) * blocks.bias_global_step

    noise_key = (
        id(blocks),
        request.stimulus,
        fs,
        n_samples,
        substeps,
        request.seed,
        config.lna_gain,
        config.dither_en,
    )
    # The cached value carries the blocks object alongside the records:
    # the key leads with id(blocks), and holding the reference pins the
    # object so a session-held cache can never serve a stale entry to a
    # new die that recycled a garbage-collected blocks' id.
    cached = noise_cache.get(noise_key) if noise_cache is not None else None
    if cached is not None and cached[0] is blocks:
        _, v_lna, i_noise, comp_noise, comp_noise_out, dither = cached
    else:
        rng = np.random.default_rng(request.seed)
        # Input path, fully vectorised: RF tones -> VGLNA.
        stim_key = (request.stimulus, fs, n_samples, substeps)
        if stim_cache is not None and stim_key in stim_cache:
            v_rf = stim_cache[stim_key]
        else:
            t = np.arange(n_samples * substeps) * h
            v_rf = request.stimulus.sample(t)
            if stim_cache is not None:
                stim_cache[stim_key] = v_rf
        v_lna = blocks.vglna.process(
            v_rf, config.lna_gain, bandwidth=0.5 / h, rng=rng
        )
        # Tank current noise, piecewise constant per substep.
        sigma_i = blocks.tank_current_noise * math.sqrt(0.5 / h)
        i_noise = rng.normal(0.0, sigma_i, v_lna.shape)
        comp_noise = rng.normal(0.0, 1.0, n_samples)
        comp_noise_out = rng.normal(0.0, 1.0, n_samples)
        dither = (
            blocks.dither_amplitude * rng.uniform(-1.0, 1.0, n_samples)
            if config.dither_en
            else np.zeros(n_samples)
        )
        if noise_cache is not None:
            noise_cache[noise_key] = (
                blocks,
                v_lna,
                i_noise,
                comp_noise,
                comp_noise_out,
                dither,
            )
    i_sig = blocks.gmin.output_current(
        v_lna, config.gmin_code, enabled=bool(config.gmin_en), bias_scale=bias_scale
    )
    i_in = i_sig + i_noise

    feedback_on = bool(config.fb_en) and bool(config.dac_en)
    clocked = bool(config.comp_clk_en)
    tau = blocks.delay.delay_periods(config.delay_code)
    delay_whole = int(tau)
    switch_substep = (tau - delay_whole) * substeps
    # In normal mode the DAC drive is +/-1: precompute the switched current.
    i_dac_unit = blocks.dac.output_current(
        1.0, config.dac_code, enabled=feedback_on, bias_scale=bias_scale
    )

    gmq_gm = blocks.tank.gmq(config.gmq_code)
    vsat = blocks.tank.design.gmq_vsat
    comparator = blocks.comparator
    return KeyPlan(
        fs=fs,
        n_samples=n_samples,
        substeps=substeps,
        i_in=i_in,
        comp_noise=comp_noise,
        comp_noise_out=comp_noise_out,
        dither=dither,
        a11=float(ad[0, 0]),
        a12=float(ad[0, 1]),
        a21=float(ad[1, 0]),
        a22=float(ad[1, 1]),
        b1=float(bd[0, 0]),
        b2=float(bd[1, 0]),
        clocked=clocked,
        feedback_on=feedback_on,
        chop_en=bool(config.chop_en),
        delay_whole=delay_whole,
        switch_substep=switch_substep,
        i_dac_unit=i_dac_unit,
        chop_offset=comparator.offset(config.comp_code),
        decision_sigma=comparator.decision_noise(config.comp_code),
        hysteresis=comparator.design.comp_hysteresis,
        gv=gmq_gm * vsat,
        vsat=vsat,
        preamp_gain=blocks.preamp.gain(config.preamp_code, bias_scale),
        v_clip=blocks.preamp.design.preamp_v_clip,
        buf_gain=blocks.buffer.gain(config.buffer_code),
        buffer_gain=comparator.BUFFER_GAIN,
        buffer_clamp=comparator.BUFFER_CLAMP,
        buffer_noise=comparator.BUFFER_OUTPUT_NOISE,
        v0=request.initial_state[0],
        il0=request.initial_state[1],
    )
