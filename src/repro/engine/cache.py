"""Bounded LRU cache used for engine-owned result caches.

The previous module-global calibration cache grew without limit over
long sweeps; every engine cache is now an instance of
:class:`BoundedCache`, which evicts the least-recently-used entry once
``maxsize`` is reached and can be cleared wholesale from test hooks.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, TypeVar

V = TypeVar("V")

_MISSING = object()


class BoundedCache:
    """A small LRU mapping with explicit statistics.

    Args:
        maxsize: Maximum number of entries kept; the least recently used
            entry is evicted when a new key would exceed it.
    """

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __getitem__(self, key: Hashable) -> object:
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            raise KeyError(key)
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def __setitem__(self, key: Hashable, value: object) -> None:
        self.put(key, value)

    def get(self, key: Hashable, default: object = None) -> object:
        """Look up ``key``, refreshing its recency on a hit."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert/overwrite ``key``, evicting the LRU entry if full."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def get_or_set(self, key: Hashable, compute: Callable[[], V]) -> V:
        """Return the cached value for ``key``, computing it on a miss."""
        value = self._data.get(key, _MISSING)
        if value is not _MISSING:
            self._data.move_to_end(key)
            self.hits += 1
            return value  # type: ignore[return-value]
        self.misses += 1
        computed = compute()
        self.put(key, computed)
        return computed

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._data.clear()
