"""Unified attack-campaign API: one protocol, scenario matrices, sharding.

The paper's security claims (Sec. VI-B) are comparative — every attack
against every defense under every standard.  This package makes that
sweep a first-class operation:

* :class:`~repro.campaigns.attacks.Attack` — one protocol
  (``execute(scenario) -> AttackReport``) implemented by adapters over
  the five primitive attacks (brute force, annealing, genetic,
  transfer, removal, SAT), registered by name in :data:`ATTACKS`;
* :class:`~repro.campaigns.report.AttackReport` — the single structured
  outcome schema (success, best key, metered queries, modelled lab
  seconds, per-attack extras);
* :class:`~repro.campaigns.scenario.ThreatScenario` — a declarative,
  picklable description of the target (baseline scheme or
  ``ProgrammabilityLock``'d chip via :class:`ChipSpec`), standard, cost
  model, query budget and seeds;
* :func:`~repro.campaigns.campaign.expand_matrix` /
  :func:`~repro.campaigns.campaign.run_campaign` — grid expansion over
  attack x scheme x standard x chip-fleet axes and execution through
  the foundry service (:mod:`repro.service`), either in-process or
  pulled through the work-stealing scheduler across worker processes
  (one private engine per worker, bit-identical reports), with
  machine-readable JSON artefacts via
  :mod:`repro.campaigns.serialization`.  Sharded runs share one
  cross-process :class:`~repro.engine.store.CalibrationStore`; the
  calibrations the attack adapters declare
  (:meth:`~repro.campaigns.attacks.Attack.provisioning_triples`) run
  as first-class scheduler tasks gating exactly the cells that need
  them, so a fleet calibrates each die once campaign-wide and
  early-calibrated dies attack while stragglers calibrate.  Naming a
  ``journal`` directory makes a campaign resumable after a kill.

The experiment drivers (``security_optimization``, ``security_sat``,
``table_baselines``, ``table_attack_cost``) and the example studies all
run through this API; their quick-mode artefacts are byte-identical to
the pre-campaign output because the adapters reproduce the primitive
attacks' RNG streams and metering exactly.
"""

from repro.campaigns.attacks import (
    ATTACKS,
    Annealing,
    Attack,
    BruteForce,
    Genetic,
    Removal,
    Sat,
    Transfer,
    make_attack,
)
from repro.campaigns.campaign import (
    CampaignCell,
    CampaignResult,
    cell_triples,
    expand_matrix,
    fabric_triples,
    provision_fleet,
    run_campaign,
)
from repro.campaigns.report import AttackReport
from repro.campaigns.scenario import (
    COST_MODELS,
    DEFAULT_LOT_SEED,
    FABRIC,
    TARGETS,
    ChipSpec,
    ThreatScenario,
    provision_calibration,
)
from repro.campaigns.serialization import (
    attack_report_to_dict,
    campaign_result_to_dict,
    dump_json,
    experiment_result_to_dict,
    scenario_to_dict,
)

__all__ = [
    "ATTACKS",
    "Annealing",
    "Attack",
    "AttackReport",
    "BruteForce",
    "COST_MODELS",
    "CampaignCell",
    "CampaignResult",
    "ChipSpec",
    "DEFAULT_LOT_SEED",
    "FABRIC",
    "Genetic",
    "Removal",
    "Sat",
    "TARGETS",
    "ThreatScenario",
    "Transfer",
    "attack_report_to_dict",
    "campaign_result_to_dict",
    "cell_triples",
    "dump_json",
    "expand_matrix",
    "fabric_triples",
    "experiment_result_to_dict",
    "make_attack",
    "provision_calibration",
    "provision_fleet",
    "run_campaign",
    "scenario_to_dict",
]
