"""Machine-readable JSON artefacts for campaigns and experiments.

Everything the runner and the campaign driver print as text tables is
also available as plain JSON: attack reports, whole campaign results
(with per-cell labels and timings) and the experiments'
:class:`~repro.experiments.common.ExperimentResult` tables.  The
helpers normalise numpy scalars and tuples so ``json.dumps`` always
succeeds, and every writer is a pure function of its inputs — the
artefacts diff cleanly across runs, backends and worker counts.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.campaigns.campaign import CampaignCell, CampaignResult
from repro.campaigns.report import AttackReport
from repro.campaigns.scenario import ChipSpec, ThreatScenario

if TYPE_CHECKING:
    from repro.experiments.common import ExperimentResult


def jsonable(value):
    """Recursively convert ``value`` into plain JSON-compatible types."""
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if isinstance(value, np.ndarray):
        return [jsonable(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    return str(value)


def chip_spec_to_dict(spec: ChipSpec) -> dict:
    """Serialize a chip specification."""
    return {"lot_seed": spec.lot_seed, "chip_id": spec.chip_id}


def scenario_to_dict(scenario: ThreatScenario) -> dict:
    """Serialize a threat scenario."""
    return {
        "scheme": scenario.scheme,
        "scheme_params": jsonable(dict(scenario.scheme_params)),
        "chip": chip_spec_to_dict(scenario.chip),
        "standard_index": scenario.standard_index,
        "cost": scenario.cost,
        "budget": scenario.budget,
        "max_queries": scenario.max_queries,
        "n_fft": scenario.n_fft,
        "seed": scenario.seed,
        "measurement_seed": scenario.measurement_seed,
    }


def attack_report_to_dict(report: AttackReport) -> dict:
    """Serialize one attack report."""
    return {
        "attack": report.attack,
        "scenario": (
            scenario_to_dict(report.scenario) if report.scenario else None
        ),
        "applicable": report.applicable,
        "success": report.success,
        "best_key": jsonable(report.best_key),
        "best_metric_db": jsonable(report.best_metric_db),
        "n_queries": int(report.n_queries),
        "lab_seconds": float(report.lab_seconds),
        "extras": jsonable(dict(report.extras)),
    }


def campaign_result_to_dict(
    result: CampaignResult, cells: Iterable[CampaignCell] | None = None
) -> dict:
    """Serialize a whole campaign run (the JSON artefact payload)."""
    payload = {
        "schema": "repro.campaigns/v1",
        "n_workers": result.n_workers,
        "backend": result.backend,
        "n_cells": len(result.reports),
        "n_successes": len(result.successes()),
        "total_queries": result.total_queries(),
        "reports": [attack_report_to_dict(r) for r in result.reports],
        "cell_seconds": [round(s, 6) for s in result.cell_seconds],
    }
    if cells is not None:
        payload["cells"] = [cell.label() for cell in cells]
    return payload


def experiment_result_to_dict(result: "ExperimentResult") -> dict:
    """Serialize one experiment table (runner ``--json`` support)."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "columns": list(result.columns),
        "rows": [jsonable(row) for row in result.rows],
        "notes": list(result.notes),
    }


def dump_json(path: str, payload: dict) -> None:
    """Write ``payload`` as stable, human-diffable JSON."""
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2, sort_keys=False)
        stream.write("\n")
