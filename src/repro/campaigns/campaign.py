"""Campaign execution: grid expansion and chip-fleet process sharding.

``run_campaign`` takes a list of independent cells (attack name +
parameters + :class:`~repro.campaigns.scenario.ThreatScenario`),
executes each and returns the reports in cell order.  Cells are
independent by construction — every cell rebuilds its chip from the
scenario's :class:`ChipSpec` and seeds its own RNGs — so with
``n_workers > 1`` they shard across worker processes: each worker owns
a private simulation engine (caches and stats included) and reports
come back deterministic and identical to a sequential run.

Sharded campaigns share one cross-process
:class:`~repro.engine.store.CalibrationStore` and run in two phases:
the unique (lot, die, standard) calibrations the fabric cells need are
fleet-calibrated first — one lockstep
:meth:`~repro.calibration.fleet.FleetCalibrator.calibrate_fleet` pass
in the parent process, every bisection level batched across the whole
lot onto the engine's threaded key axis — and written to the store in
bulk, then the attack cells execute against the warm store.  Fleet
results are bit-identical to per-die calibration and calibration
results are deterministic values, so neither the store nor the phase
split can change any report — only who pays for the compute.

``expand_matrix`` is the declarative front: attack x scheme x standard
x chip-fleet grids in one call, the shape the paper's comparative
security claims need (every attack against every defense under every
standard, on a fleet of distinct dies).
"""

from __future__ import annotations

import multiprocessing
import shutil
import tempfile
import time
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from repro.campaigns.attacks import make_attack
from repro.campaigns.report import AttackReport
from repro.campaigns.scenario import (
    DEFAULT_LOT_SEED,
    ChipSpec,
    ThreatScenario,
)
from repro.engine import (
    CalibrationStore,
    clear_caches,
    get_default_engine,
    set_default_backend,
)
from repro.receiver.standards import standard_by_index


@dataclass(frozen=True)
class CampaignCell:
    """One independent unit of campaign work.

    Attributes:
        attack: Attack registry name.
        scenario: The threat scenario the attack runs against.
        attack_params: Keyword parameters of the attack adapter, as a
            tuple of pairs (picklable, hashable).
    """

    attack: str
    scenario: ThreatScenario
    attack_params: tuple[tuple[str, object], ...] = ()

    def label(self) -> str:
        """Unique-ish human-readable cell tag."""
        return f"{self.attack}@{self.scenario.describe()}"

    def execute(self) -> AttackReport:
        """Run this cell in the current process."""
        attack = make_attack(self.attack, **dict(self.attack_params))
        return attack.execute(self.scenario)


@dataclass
class CampaignResult:
    """All reports of one campaign run, in cell order.

    Attributes:
        reports: One :class:`AttackReport` per cell.
        cell_seconds: Wall-clock seconds per cell (diagnostic only —
            kept out of the reports so they stay deterministic).
        n_workers: Worker processes used.
        backend: Engine backend the cells ran on.
    """

    reports: list[AttackReport]
    cell_seconds: list[float] = field(default_factory=list)
    n_workers: int = 1
    backend: str = "auto"

    def successes(self) -> list[AttackReport]:
        """The cells where the modelled attacker won."""
        return [r for r in self.reports if r.success]

    def total_queries(self) -> int:
        """Metered oracle measurements across the whole campaign."""
        return sum(r.n_queries for r in self.reports)


def expand_matrix(
    attacks: Sequence[str | tuple[str, dict]],
    schemes: Sequence[str | tuple[str, dict]] = ("fabric",),
    standard_indices: Sequence[int] = (0,),
    chip_ids: Sequence[int] = (0,),
    base: ThreatScenario | None = None,
    lot_seed: int = DEFAULT_LOT_SEED,
) -> list[CampaignCell]:
    """Expand an attack x scheme x standard x chip grid into cells.

    ``attacks`` and ``schemes`` entries are either plain registry names
    or ``(name, params)`` pairs; ``params`` feed the attack adapter or
    the baseline scheme constructor.  Every other scenario knob (cost
    model, budget, seeds, FFT size) comes from ``base``.  Expansion
    order — attacks outermost, chips innermost — is deterministic, so
    cell lists built from the same arguments are identical everywhere.

    The chip-fleet axis only multiplies the ``fabric`` target: the
    bench-model baseline schemes carry no chip, so expanding them per
    die would just duplicate identical cells.
    """
    base = base or ThreatScenario()
    cells: list[CampaignCell] = []
    for attack_entry in attacks:
        attack_name, attack_params = _named(attack_entry)
        for scheme_entry in schemes:
            scheme_name, scheme_params = _named(scheme_entry)
            scheme_chip_ids = (
                chip_ids if scheme_name == "fabric" else tuple(chip_ids)[:1]
            )
            for standard_index in standard_indices:
                for chip_id in scheme_chip_ids:
                    scenario = replace(
                        base,
                        scheme=scheme_name,
                        scheme_params=tuple(sorted(scheme_params.items())),
                        chip=ChipSpec(lot_seed=lot_seed, chip_id=chip_id),
                        standard_index=standard_index,
                    )
                    cells.append(
                        CampaignCell(
                            attack=attack_name,
                            scenario=scenario,
                            attack_params=tuple(sorted(attack_params.items())),
                        )
                    )
    return cells


def _named(entry: str | tuple[str, dict]) -> tuple[str, dict]:
    if isinstance(entry, str):
        return entry, {}
    name, params = entry
    return name, dict(params)


def _timed_cell(payload: tuple[CampaignCell, str | None]) -> tuple[AttackReport, float]:
    cell, backend = payload
    if backend is not None:
        set_default_backend(backend)
    start = time.perf_counter()
    report = cell.execute()
    return report, time.perf_counter() - start


def _worker_init(backend: str | None, store_path: str | None = None) -> None:
    """Give each worker a pristine engine of the requested backend.

    Workers inherit (fork) or rebuild (spawn) the module state; either
    way the caches are dropped so every worker meters its own engine
    from zero — the caches are deterministic value caches, so this
    cannot change any report, only the sharing.  The campaign's shared
    calibration store is detached *before* the caches are cleared (a
    forked worker must not wipe the parent's store) and re-attached
    after, so every worker of one campaign reads through the same
    store.
    """
    engine = get_default_engine()
    engine.calibration_store = None
    if backend is not None:
        set_default_backend(backend)
    clear_caches()
    if store_path is not None:
        engine.calibration_store = CalibrationStore(store_path)


def provision_fleet(
    triples: Sequence[tuple[int, int, int]],
    store: CalibrationStore | str,
    backend: str | None = None,
) -> int:
    """Fleet-calibrate ``triples`` into ``store`` in one lockstep pass.

    Builds each missing triple's die and runs one
    :meth:`~repro.calibration.fleet.FleetCalibrator.calibrate_fleet`
    over the whole (possibly mixed-lot, mixed-standard) fleet with the
    design-house default calibrator.  Results stream into the store as
    each die's machine completes, with ``"fleet"``-tagged audit events
    — one audit line per die computed, so "each die calibrated once
    campaign-wide" stays countable, and a die that fails mid-lot does
    not discard the dies already calibrated (a retry resumes from the
    warm store).  Already-stored triples are skipped.  The lockstep
    batches run on the engine's threaded key axis, whose worker
    threads never outlive a call — forking campaign workers afterwards
    is safe.

    Returns the number of triples actually computed.
    """
    from repro.calibration.fleet import FleetCalibrator

    if not isinstance(store, CalibrationStore):
        store = CalibrationStore(store)
    triples = list(triples)
    todo = [
        triple
        for triple, hit in zip(triples, store.get_many(triples))
        if hit is None
    ]
    if not todo:
        return 0
    chips = [
        ChipSpec(lot_seed=lot_seed, chip_id=chip_id).build()
        for lot_seed, chip_id, _ in todo
    ]
    standards = [standard_by_index(index) for _, _, index in todo]
    engine = get_default_engine()
    previous = engine.backend
    if backend is not None:
        set_default_backend(backend)
    try:
        FleetCalibrator().calibrate_fleet(
            chips,
            standards,
            on_result=lambda die, result: store.put(
                todo[die], result, event="fleet"
            ),
        )
    finally:
        engine.backend = previous
    return len(todo)


def fabric_triples(cells: Sequence[CampaignCell]) -> list[tuple[int, int, int]]:
    """The unique (lot_seed, chip_id, standard_index) calibrations the
    cells of a campaign will actually perform, in deterministic order.

    Each attack adapter declares its provisioning demand
    (:meth:`~repro.campaigns.attacks.Attack.provisioning_triples`):
    oracle-only attacks declare none — pre-provisioning a die no cell
    calibrates would add work the sequential campaign never did."""
    triples: set[tuple[int, int, int]] = set()
    for cell in cells:
        attack = make_attack(cell.attack, **dict(cell.attack_params))
        triples.update(attack.provisioning_triples(cell.scenario))
    return sorted(triples)


def run_campaign(
    cells: Iterable[CampaignCell],
    n_workers: int = 1,
    backend: str | None = None,
    json_path: str | None = None,
    calibration_store: str | None = None,
) -> CampaignResult:
    """Execute every cell; reports come back in cell order.

    Args:
        cells: Independent campaign cells (see :func:`expand_matrix`).
        n_workers: 1 runs in-process; more shards cells across worker
            processes (one private engine per worker).  Reports are
            identical either way.
        backend: Optional engine backend for the cells (restored after
            an in-process run; workers die with their setting).
        json_path: When given, the machine-readable campaign artefact
            is written there (see :mod:`repro.campaigns.serialization`).
        calibration_store: Directory for the cross-process calibration
            store the workers share.  Defaults to a campaign-private
            temporary directory that is removed afterwards; name one
            explicitly to keep fleet calibrations warm across
            campaigns.  Calibration results are deterministic values,
            so the store cannot change any report.

    Sharded runs provision before they attack: the unique
    (lot, die, standard) calibrations the fabric cells need run as one
    :func:`provision_fleet` lockstep pass in the parent — each die
    calibrated exactly once campaign-wide, every search step batched
    across the lot, bulk-written to the shared store — so the attack
    phase starts from warm calibrations instead of every worker
    recalibrating every die it touches.
    """
    cells = list(cells)
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    resolved_backend = backend or get_default_engine().backend
    if n_workers == 1 or len(cells) <= 1:
        if calibration_store is not None:
            # In-process runs dedupe through the engine LRU already;
            # an explicit store additionally persists the calibrations
            # for later campaigns.
            engine = get_default_engine()
            previous_store = engine.calibration_store
            engine.calibration_store = CalibrationStore(calibration_store)
            try:
                outcomes = _run_sequential(cells, backend)
            finally:
                engine.calibration_store = previous_store
        else:
            outcomes = _run_sequential(cells, backend)
        n_workers = 1
    else:
        store_path = calibration_store or tempfile.mkdtemp(prefix="repro-calstore-")
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        try:
            triples = fabric_triples(cells)
            if triples:
                # Lockstep fleet provisioning in the parent, before the
                # pool exists: the threaded kernel absorbs the fused
                # lot-wide batches, and its per-call worker teams leave
                # nothing behind that a fork could orphan.
                provision_fleet(triples, store_path, backend=backend)
            with ctx.Pool(
                processes=n_workers,
                initializer=_worker_init,
                initargs=(backend, store_path),
            ) as pool:
                outcomes = pool.map(
                    _timed_cell, [(cell, backend) for cell in cells], chunksize=1
                )
        finally:
            if calibration_store is None:
                shutil.rmtree(store_path, ignore_errors=True)
    result = CampaignResult(
        reports=[report for report, _ in outcomes],
        cell_seconds=[seconds for _, seconds in outcomes],
        n_workers=n_workers,
        backend=resolved_backend,
    )
    if json_path is not None:
        from repro.campaigns.serialization import dump_json, campaign_result_to_dict

        dump_json(json_path, campaign_result_to_dict(result, cells=cells))
    return result


def _run_sequential(
    cells: list[CampaignCell], backend: str | None
) -> list[tuple[AttackReport, float]]:
    engine = get_default_engine()
    previous = engine.backend
    if backend is not None:
        set_default_backend(backend)
    try:
        return [_timed_cell((cell, None)) for cell in cells]
    finally:
        engine.backend = previous
