"""Campaign execution: grid expansion and the service thin client.

``run_campaign`` takes a list of independent cells (attack name +
parameters + :class:`~repro.campaigns.scenario.ThreatScenario`),
executes each and returns the reports in cell order.  Cells are
independent by construction — every cell rebuilds its chip from the
scenario's :class:`ChipSpec` and seeds its own RNGs — so with
``n_workers > 1`` they become tasks on the foundry service's
work-stealing scheduler (:mod:`repro.service`): workers pull cells off
a shared queue as they free up, die calibrations run as first-class
tasks that unblock their gated attack cells the moment they land, and
reports come back deterministic and bit-identical to a sequential run
whatever the worker count, backend or scheduler mode.

Workers share one cross-process
:class:`~repro.engine.store.CalibrationStore`; each (lot, die,
standard) triple the attack adapters declare is calibrated exactly
once campaign-wide.  Calibration results are deterministic values, so
neither the store nor the scheduling can change any report — only who
pays for the compute.  Naming a ``journal`` directory makes the
campaign resumable: finished cells persist as they complete, and
re-running the identical campaign replays them instead of
re-executing.

``expand_matrix`` is the declarative front: attack x scheme x standard
x chip-fleet grids in one call, the shape the paper's comparative
security claims need (every attack against every defense under every
standard, on a fleet of distinct dies).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from repro.campaigns.attacks import make_attack
from repro.campaigns.report import AttackReport
from repro.campaigns.scenario import (
    DEFAULT_LOT_SEED,
    ChipSpec,
    ThreatScenario,
)
from repro.engine import (
    CalibrationStore,
    clear_caches,
    get_default_engine,
    set_default_backend,
)
from repro.receiver.standards import standard_by_index


@dataclass(frozen=True)
class CampaignCell:
    """One independent unit of campaign work.

    Attributes:
        attack: Attack registry name.
        scenario: The threat scenario the attack runs against.
        attack_params: Keyword parameters of the attack adapter, as a
            tuple of pairs (picklable, hashable).
    """

    attack: str
    scenario: ThreatScenario
    attack_params: tuple[tuple[str, object], ...] = ()

    def label(self) -> str:
        """Unique-ish human-readable cell tag."""
        return f"{self.attack}@{self.scenario.describe()}"

    def execute(self) -> AttackReport:
        """Run this cell in the current process."""
        attack = make_attack(self.attack, **dict(self.attack_params))
        return attack.execute(self.scenario)

    def execute_scripted(self, script) -> AttackReport:
        """Replay this cell against a partition plan's measurement
        script (the scheduler's assembly step — see
        :meth:`~repro.campaigns.attacks.Attack.execute_scripted`)."""
        attack = make_attack(self.attack, **dict(self.attack_params))
        return attack.execute_scripted(self.scenario, script)


def cell_partition(cell: CampaignCell):
    """The cell's partition plan, or None when it runs scalar (see
    :meth:`~repro.campaigns.attacks.Attack.partition`)."""
    attack = make_attack(cell.attack, **dict(cell.attack_params))
    return attack.partition(cell.scenario)


@dataclass
class CampaignResult:
    """All reports of one campaign run, in cell order.

    Attributes:
        reports: One :class:`AttackReport` per cell.
        cell_seconds: Wall-clock seconds per cell (diagnostic only —
            kept out of the reports so they stay deterministic).
        n_workers: Worker processes the run was scheduled across — 1
            when it ran in-process, which a small (or mostly
            journal-replayed) campaign does even when more were
            requested.  Diagnostic, like the timings: reports are
            bit-identical whatever this value.
        backend: Engine backend the cells ran on.
    """

    reports: list[AttackReport]
    cell_seconds: list[float] = field(default_factory=list)
    n_workers: int = 1
    backend: str = "auto"

    def successes(self) -> list[AttackReport]:
        """The cells where the modelled attacker won."""
        return [r for r in self.reports if r.success]

    def total_queries(self) -> int:
        """Metered oracle measurements across the whole campaign."""
        return sum(r.n_queries for r in self.reports)


def expand_matrix(
    attacks: Sequence[str | tuple[str, dict]],
    schemes: Sequence[str | tuple[str, dict]] = ("fabric",),
    standard_indices: Sequence[int] = (0,),
    chip_ids: Sequence[int] = (0,),
    base: ThreatScenario | None = None,
    lot_seed: int = DEFAULT_LOT_SEED,
) -> list[CampaignCell]:
    """Expand an attack x scheme x standard x chip grid into cells.

    ``attacks`` and ``schemes`` entries are either plain registry names
    or ``(name, params)`` pairs; ``params`` feed the attack adapter or
    the baseline scheme constructor.  Every other scenario knob (cost
    model, budget, seeds, FFT size) comes from ``base``.  Expansion
    order — attacks outermost, chips innermost — is deterministic, so
    cell lists built from the same arguments are identical everywhere.

    The chip-fleet axis only multiplies the ``fabric`` target: the
    bench-model baseline schemes carry no chip, so expanding them per
    die would just duplicate identical cells.
    """
    base = base or ThreatScenario()
    cells: list[CampaignCell] = []
    for attack_entry in attacks:
        attack_name, attack_params = _named(attack_entry)
        for scheme_entry in schemes:
            scheme_name, scheme_params = _named(scheme_entry)
            scheme_chip_ids = (
                chip_ids if scheme_name == "fabric" else tuple(chip_ids)[:1]
            )
            for standard_index in standard_indices:
                for chip_id in scheme_chip_ids:
                    scenario = replace(
                        base,
                        scheme=scheme_name,
                        scheme_params=tuple(sorted(scheme_params.items())),
                        chip=ChipSpec(lot_seed=lot_seed, chip_id=chip_id),
                        standard_index=standard_index,
                    )
                    cells.append(
                        CampaignCell(
                            attack=attack_name,
                            scenario=scenario,
                            attack_params=tuple(sorted(attack_params.items())),
                        )
                    )
    return cells


def _named(entry: str | tuple[str, dict]) -> tuple[str, dict]:
    if isinstance(entry, str):
        return entry, {}
    name, params = entry
    return name, dict(params)


def _worker_init(backend: str | None, store_path: str | None = None) -> None:
    """Give each worker a pristine engine of the requested backend.

    Workers inherit (fork) or rebuild (spawn) the module state; either
    way the caches are dropped so every worker meters its own engine
    from zero — the caches are deterministic value caches, so this
    cannot change any report, only the sharing.  The campaign's shared
    calibration store is detached *before* the caches are cleared (a
    forked worker must not wipe the parent's store) and re-attached
    after, so every worker of one campaign reads through the same
    store.
    """
    engine = get_default_engine()
    engine.calibration_store = None
    if backend is not None:
        set_default_backend(backend)
    clear_caches()
    if store_path is not None:
        engine.calibration_store = CalibrationStore(store_path)


def provision_fleet(
    triples: Sequence[tuple[int, int, int]],
    store: CalibrationStore | str,
    backend: str | None = None,
) -> int:
    """Fleet-calibrate ``triples`` into ``store`` in one lockstep pass.

    Builds each missing triple's die and runs one
    :meth:`~repro.calibration.fleet.FleetCalibrator.calibrate_fleet`
    over the whole (possibly mixed-lot, mixed-standard) fleet with the
    design-house default calibrator.  Results stream into the store as
    each die's machine completes, with ``"fleet"``-tagged audit events
    — one audit line per die computed, so "each die calibrated once
    campaign-wide" stays countable, and a die that fails mid-lot does
    not discard the dies already calibrated (a retry resumes from the
    warm store).  Already-stored triples are skipped.  The lockstep
    batches run on the engine's threaded key axis, whose worker
    threads never outlive a call — forking campaign workers afterwards
    is safe.

    Returns the number of triples actually computed.
    """
    from repro.calibration.fleet import FleetCalibrator

    if not isinstance(store, CalibrationStore):
        store = CalibrationStore(store)
    triples = list(triples)
    todo = [
        triple
        for triple, hit in zip(triples, store.get_many(triples))
        if hit is None
    ]
    if not todo:
        return 0
    chips = [
        ChipSpec(lot_seed=lot_seed, chip_id=chip_id).build()
        for lot_seed, chip_id, _ in todo
    ]
    standards = [standard_by_index(index) for _, _, index in todo]
    engine = get_default_engine()
    previous = engine.backend
    if backend is not None:
        set_default_backend(backend)
    try:
        FleetCalibrator().calibrate_fleet(
            chips,
            standards,
            on_result=lambda die, result: store.put(
                todo[die], result, event="fleet"
            ),
        )
    finally:
        engine.backend = previous
    return len(todo)


def cell_triples(cell: CampaignCell) -> set[tuple[int, int, int]]:
    """The (lot_seed, chip_id, standard_index) calibrations ``cell``
    will demand when it executes.

    The attack adapter declares its provisioning demand
    (:meth:`~repro.campaigns.attacks.Attack.provisioning_triples`):
    oracle-only attacks declare none — pre-provisioning a die no cell
    calibrates would add work the sequential campaign never did.  The
    service scheduler gates each cell on exactly this set."""
    attack = make_attack(cell.attack, **dict(cell.attack_params))
    return set(attack.provisioning_triples(cell.scenario))


def fabric_triples(cells: Sequence[CampaignCell]) -> list[tuple[int, int, int]]:
    """The unique calibrations a whole campaign will perform, in
    deterministic order (the union of :func:`cell_triples`)."""
    triples: set[tuple[int, int, int]] = set()
    for cell in cells:
        triples.update(cell_triples(cell))
    return sorted(triples)


def run_campaign(
    cells: Iterable[CampaignCell],
    n_workers: int | None = None,
    backend: str | None = None,
    json_path: str | None = None,
    calibration_store: str | None = None,
    journal: str | None = None,
    scheduler: str | None = None,
) -> CampaignResult:
    """Execute every cell; reports come back in cell order.

    A thin client of the foundry service (:mod:`repro.service`): the
    cell list becomes one :class:`~repro.service.jobs.CampaignJob`,
    driven to completion through ``submit(job).result()``.  Drive the
    service directly when you want streaming results or cancellation.

    Args:
        cells: Independent campaign cells (see :func:`expand_matrix`).
        n_workers: 1 runs in-process; more pulls cells through the
            work-stealing scheduler across worker processes (one
            private engine per worker).  None resolves
            ``REPRO_SERVICE_WORKERS`` (default 1).  Reports are
            bit-identical whatever the count; non-positive counts are
            rejected up front.
        backend: Optional engine backend for the cells (restored after
            an in-process run; workers die with their setting).
        json_path: When given, the machine-readable campaign artefact
            is written there (see :mod:`repro.campaigns.serialization`).
        calibration_store: Directory for the cross-process calibration
            store the workers share.  Defaults to the journal's bundled
            store when ``journal`` is named, else a campaign-private
            temporary directory removed afterwards; name one explicitly
            to keep fleet calibrations warm across campaigns.
            Calibration results are deterministic values, so the store
            cannot change any report.
        journal: Directory of the on-disk job journal.  Completed cells
            persist there as they finish, so re-running the identical
            campaign after a kill resumes from the finished cells and
            reproduces the uninterrupted run's reports bit-identically.
        scheduler: ``"stealing"`` (default) or ``"static"`` (contiguous
            pre-assigned shards — the naive baseline the
            imbalanced-fleet benchmark guards against).

    Sharded runs schedule the unique (lot, die, standard) calibrations
    the attack adapters declare as first-class tasks ahead of the cells
    they gate — each die calibrated exactly once campaign-wide, with
    early-calibrated dies unblocking their attack cells while straggler
    dies are still calibrating on other workers.
    """
    from repro.service import CampaignJob, FoundryService

    cells = list(cells)
    handle = FoundryService().submit(
        CampaignJob(
            cells=tuple(cells),
            n_workers=n_workers,
            backend=backend,
            calibration_store=calibration_store,
            journal=journal,
            scheduler=scheduler,
        )
    )
    result = handle.result()
    if json_path is not None:
        from repro.campaigns.serialization import dump_json, campaign_result_to_dict

        dump_json(json_path, campaign_result_to_dict(result, cells=cells))
    return result
