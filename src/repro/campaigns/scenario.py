"""Declarative threat scenarios: *what* is attacked under *which* rules.

A :class:`ThreatScenario` names everything an attack needs — the target
(a baseline scheme or a :class:`~repro.locking.scheme.
ProgrammabilityLock`'d chip), the operation standard, the measurement
cost model, the query budget and the seeds — as plain picklable data,
so campaign cells can be shipped to worker processes and expanded over
scheme x standard x chip-fleet grids.  Chips are named by
:class:`ChipSpec` (lot seed + die id): process variations are a pure
function of that pair, so a fleet of distinct physical chips is just a
range of ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from repro.attacks.cost import AttackCostModel
from repro.attacks.oracle import MeasurementOracle
from repro.baselines import (
    AnalogLockScheme,
    BiasObfuscationLock,
    CalibrationLoopLock,
    CurrentMirrorLock,
    MemristorBiasLock,
    MixLock,
    NeuralBiasLock,
    ProposedFabricLock,
)
from repro.calibration.procedure import Calibrator
from repro.engine import get_default_engine
from repro.locking.scheme import ProgrammabilityLock
from repro.process.variations import ChipFactory
from repro.receiver.receiver import Chip
from repro.receiver.standards import Standard, standard_by_index

#: The shared reference manufacturing lot (matches the experiments' lot).
DEFAULT_LOT_SEED = 2020

#: Registry name of the paper's proposed scheme.
FABRIC = "fabric"

#: Named per-measurement cost models a scenario can select.
COST_MODELS: dict[str, Callable[[], AttackCostModel]] = {
    "simulation": AttackCostModel.simulation,
    "hardware": AttackCostModel.hardware,
}


@dataclass(frozen=True)
class ChipSpec:
    """A fabricated die, named by its manufacturing draw.

    Two specs with the same ``(lot_seed, chip_id)`` denote the same
    silicon in every process — the campaign sharding relies on this to
    rebuild identical chips inside worker processes.
    """

    lot_seed: int = DEFAULT_LOT_SEED
    chip_id: int = 0

    def build(self) -> Chip:
        """Fabricate the chip (deterministic variation draw)."""
        return Chip(
            variations=ChipFactory(lot_seed=self.lot_seed).draw(self.chip_id)
        )


@dataclass(frozen=True)
class ThreatScenario:
    """One attacked configuration, fully declarative.

    Attributes:
        scheme: Target registry name — :data:`FABRIC` for the paper's
            programmability-fabric lock, or a baseline name from
            :data:`TARGETS`.
        scheme_params: Keyword arguments of the baseline constructor,
            as a tuple of pairs (hashable and picklable).
        chip: The oracle die on the attacker's bench (fabric target).
        standard_index: Operation mode under attack.
        cost: Cost-model name from :data:`COST_MODELS`.
        budget: Attack effort knob — trials, oracle evaluations or
            population-generations worth of queries, depending on the
            attack.
        max_queries: Hard oracle budget; None for unlimited.
        n_fft: Measurement record length per oracle probe.
        seed: Attack RNG seed (key draws, mutations, move proposals).
        measurement_seed: Oracle measurement-noise seed.
    """

    scheme: str = FABRIC
    scheme_params: tuple[tuple[str, object], ...] = ()
    chip: ChipSpec = field(default_factory=ChipSpec)
    standard_index: int = 0
    cost: str = "hardware"
    budget: int = 150
    max_queries: int | None = None
    n_fft: int = 2048
    seed: int = 0
    measurement_seed: int = 0

    # -- resolution helpers -------------------------------------------------

    def standard(self) -> Standard:
        """The operation mode under attack."""
        return standard_by_index(self.standard_index)

    def cost_model(self) -> AttackCostModel:
        """Resolve the named per-measurement cost model."""
        if self.cost not in COST_MODELS:
            raise KeyError(
                f"unknown cost model {self.cost!r}; "
                f"known: {sorted(COST_MODELS)}"
            )
        return COST_MODELS[self.cost]()

    def build_chip(self) -> Chip:
        """Fabricate the scenario's oracle chip."""
        return self.chip.build()

    def oracle(self, chip: Chip | None = None) -> MeasurementOracle:
        """A metered measurement oracle on the scenario's chip."""
        return MeasurementOracle(
            chip=chip if chip is not None else self.build_chip(),
            standard=self.standard(),
            cost_model=self.cost_model(),
            n_fft=self.n_fft,
            max_queries=self.max_queries,
            seed=self.measurement_seed,
        )

    def resolve_scheme(self) -> AnalogLockScheme:
        """Build the target locking scheme named by this scenario."""
        if self.scheme not in TARGETS:
            raise KeyError(
                f"unknown target scheme {self.scheme!r}; "
                f"known: {sorted(TARGETS)}"
            )
        return TARGETS[self.scheme](self)

    def describe(self) -> str:
        """Compact cell label for progress lines and JSON artefacts."""
        return (
            f"{self.scheme}/chip{self.chip.chip_id}"
            f"/std{self.standard_index}/seed{self.seed}"
        )

    def with_(self, **changes) -> "ThreatScenario":
        """Functional update (``dataclasses.replace`` sugar)."""
        return replace(self, **changes)


def provision_calibration(spec: ChipSpec, standard: Standard, chip: Chip | None = None):
    """Full (design-house) calibration of ``spec``'s die, memoised.

    The result lives on the default engine's bounded cache under
    ``(lot_seed, chip_id, standard.index)`` — the lot seed is part of
    the key because campaigns make lots a scenario axis, and dies with
    equal ids from different lots are different silicon.
    """
    if chip is None:
        chip = spec.build()
    return get_default_engine().calibrated(
        chip,
        standard,
        factory=lambda: Calibrator().calibrate(chip, standard),
        key=(spec.lot_seed, spec.chip_id, standard.index),
    )


def _build_fabric(scenario: ThreatScenario) -> ProposedFabricLock:
    """The proposed scheme: a chip locked by withholding its settings.

    Provisioning calibrates the die for the scenario's standard with
    the design house's (default) calibrator; the result is memoised on
    the default engine's bounded cache, exactly as the experiment
    drivers do, so repeated cells on one die calibrate once per
    process.
    """
    chip = scenario.build_chip()
    standard = scenario.standard()
    lock = ProgrammabilityLock(chip=chip)
    lock._lut[standard.index] = provision_calibration(
        scenario.chip, standard, chip=chip
    )
    return ProposedFabricLock(lock=lock, standard=standard, n_fft=scenario.n_fft)


def _baseline(cls) -> Callable[[ThreatScenario], AnalogLockScheme]:
    return lambda scenario: cls(**dict(scenario.scheme_params))


#: Target registry: scenario scheme name -> scheme factory.
TARGETS: dict[str, Callable[[ThreatScenario], AnalogLockScheme]] = {
    FABRIC: _build_fabric,
    "memristor": _baseline(MemristorBiasLock),
    "bias-obfuscation": _baseline(BiasObfuscationLock),
    "current-mirror": _baseline(CurrentMirrorLock),
    "mixlock": _baseline(MixLock),
    "calibration-lock": _baseline(CalibrationLoopLock),
    "neural-bias": _baseline(NeuralBiasLock),
}
