"""The one attack-outcome schema every campaign cell produces.

Before this package each attack returned its own dataclass
(``BruteForceOutcome``, ``OptimizationOutcome``, ``RemovalOutcome``,
``SatAttackResult``, ``TransferOutcome``), so no driver could sweep the
paper's full attack x defense matrix.  :class:`AttackReport` is the
common denominator: success, best key, metered queries, modelled lab
time, plus a free-form ``extras`` mapping for whatever is specific to
one attack (annealing history length, SAT iterations, removal effort).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # report <-> scenario is a type-only cycle
    from repro.campaigns.scenario import ThreatScenario


@dataclass(frozen=True)
class AttackReport:
    """Structured outcome of one attack against one threat scenario.

    Attributes:
        attack: Registry name of the attack that ran.
        scenario: The scenario it ran against (None for scheme-level
            adjudications outside a campaign).
        applicable: Whether the attack can even be formulated against
            the target (the SAT attack has no formulation against the
            fabric lock; removal has nothing to cut out of it).
        success: Whether the modelled attacker wins.
        best_key: Best key found, as a plain integer in the target's
            key space (None when the attack yields no key).
        best_metric_db: The attack's best figure of merit in dB (SNR
            for the oracle attacks; None where no dB metric exists).
        n_queries: Metered oracle measurements spent.
        lab_seconds: Modelled lab/CPU time of those measurements under
            the scenario's cost model.
        extras: Per-attack details (plain JSON-able values only).
    """

    attack: str
    scenario: "ThreatScenario | None"
    applicable: bool
    success: bool
    best_key: int | None = None
    best_metric_db: float | None = None
    n_queries: int = 0
    lab_seconds: float = 0.0
    extras: Mapping[str, object] = field(default_factory=dict)

    def extra(self, key: str, default: object = None) -> object:
        """Convenience accessor into :attr:`extras`."""
        return self.extras.get(key, default)

    def summary(self) -> str:
        """One-line human-readable outcome."""
        if not self.applicable:
            status = "not applicable"
        elif self.success:
            status = "SUCCEEDED"
        else:
            status = "failed"
        metric = (
            f", best {self.best_metric_db:.1f} dB"
            if self.best_metric_db is not None
            else ""
        )
        return (
            f"{self.attack} {status} after {self.n_queries} queries"
            f"{metric} ({self.lab_seconds:.0f} lab s)"
        )
