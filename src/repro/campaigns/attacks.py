"""One protocol for every attack: ``Attack.execute(scenario) -> AttackReport``.

The adapters wrap the primitive attack implementations in
:mod:`repro.attacks` (which keep their own APIs — they are the
experiment-level building blocks) behind a single uniform call, so the
full attack x defense matrix of the paper's Sec. VI-B can be swept by
one driver.  :data:`ATTACKS` is the named registry mirroring the
experiment registry: campaign cells carry the attack *name* plus plain
parameters, which keeps cells picklable for the process-sharded runner.

Applicability is part of the result, not an exception: an attack that
has no formulation against a target (SAT vs the analog fabric, transfer
vs a bench-model baseline) returns a report with ``applicable=False``
and the structural reason in ``extras`` — that adjudication *is* the
paper's security argument.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, ClassVar

import numpy as np

from repro.attacks.brute_force import BruteForceAttack
from repro.attacks.cost import AttackCostModel
from repro.attacks.optimization import GeneticAttack, SimulatedAnnealingAttack
from repro.attacks.oracle import QueryBudgetExceeded
from repro.attacks.removal import removal_attack
from repro.attacks.sat_attack import (
    SatAttackNotApplicable,
    assert_sat_attack_applicable,
)
from repro.attacks.transfer import TransferAttack
from repro.baselines.base import AnalogLockScheme
from repro.campaigns.report import AttackReport
from repro.campaigns.scenario import (
    FABRIC,
    ChipSpec,
    ThreatScenario,
    provision_calibration,
)
from repro.receiver.config import ConfigWord


class Attack(abc.ABC):
    """Protocol every campaign attack implements."""

    #: Registry name (also the ``attack`` field of the reports).
    name: ClassVar[str]

    @abc.abstractmethod
    def execute(self, scenario: ThreatScenario) -> AttackReport:
        """Run the attack against ``scenario`` and report the outcome."""

    def provisioning_triples(
        self, scenario: ThreatScenario
    ) -> list[tuple[int, int, int]]:
        """The (lot_seed, chip_id, standard_index) calibrations this
        attack will demand when executing ``scenario``.

        The campaign layer pre-provisions exactly these over its worker
        pool (each triple once, fleet-wide) before the attack phase —
        so adapters that calibrate must declare it here, and adapters
        that only query the oracle must not, or sharded campaigns would
        pay for calibrations no cell performs.
        """
        return []

    # -- shared report builders -------------------------------------------

    def _not_applicable(
        self, scenario: ThreatScenario, reason: str, **extras
    ) -> AttackReport:
        return AttackReport(
            attack=self.name,
            scenario=scenario,
            applicable=False,
            success=False,
            extras={"reason": reason, **extras},
        )

    def _budget_exhausted(self, scenario: ThreatScenario, oracle) -> AttackReport:
        return AttackReport(
            attack=self.name,
            scenario=scenario,
            applicable=True,
            success=False,
            n_queries=oracle.n_queries,
            lab_seconds=oracle.elapsed_seconds,
            extras={"budget_exhausted": True},
        )


@dataclass
class BruteForce(Attack):
    """Random key search — against the fabric oracle or a baseline bench.

    On the fabric target this is the metered random search of paper
    Sec. VI-B.1 (batched oracle probes, spec adjudication).  On a
    baseline scheme it draws random keys in the scheme's own key space
    and queries its testbench, charging the scenario's cost model per
    trial — which is how an 8-bit bias lock falls in seconds while the
    64-bit fabric stands.
    """

    name: ClassVar[str] = "brute-force"
    batch_size: int = 16

    def execute(self, scenario: ThreatScenario) -> AttackReport:
        rng = np.random.default_rng(scenario.seed)
        if scenario.scheme == FABRIC:
            oracle = scenario.oracle()
            attack = BruteForceAttack(oracle, rng=rng, batch_size=self.batch_size)
            try:
                outcome = attack.run(scenario.budget)
            except QueryBudgetExceeded:
                return self._budget_exhausted(scenario, oracle)
            return AttackReport(
                attack=self.name,
                scenario=scenario,
                applicable=True,
                success=outcome.success,
                best_key=outcome.best_key.encode(),
                best_metric_db=outcome.best_snr_db,
                n_queries=oracle.n_queries,
                lab_seconds=oracle.elapsed_seconds,
                extras={
                    "n_trials": outcome.n_trials,
                    "extrapolated_years_full_space": (
                        outcome.extrapolated_years_full_space
                    ),
                },
            )
        return self._scheme_search(scenario, rng)

    def _scheme_search(
        self, scenario: ThreatScenario, rng: np.random.Generator
    ) -> AttackReport:
        scheme = scenario.resolve_scheme()
        cost = scenario.cost_model()
        key_space = 1 << scheme.profile.key_bits
        n_queries = 0
        success = False
        best_key: int | None = None
        exhausted = False
        for _ in range(scenario.budget):
            if (
                scenario.max_queries is not None
                and n_queries >= scenario.max_queries
            ):
                exhausted = True
                break
            key = int(rng.integers(0, key_space))
            n_queries += 1
            if scheme.unlocks(key):
                success = True
                best_key = key
                break
        return AttackReport(
            attack=self.name,
            scenario=scenario,
            applicable=True,
            success=success,
            best_key=best_key,
            best_metric_db=None,
            n_queries=n_queries,
            lab_seconds=n_queries * cost.snr_seconds,
            extras={
                "key_bits": scheme.profile.key_bits,
                "scheme_name": scheme.profile.name,
                "reference": scheme.profile.reference,
                **({"budget_exhausted": True} if exhausted else {}),
            },
        )


_NEEDS_ORACLE = (
    "needs a measurement oracle on a working chip; the target is a "
    "bench-model baseline scheme without one"
)


@dataclass
class Annealing(Attack):
    """Simulated annealing over the 64-bit key string (Sec. IV-B.3)."""

    name: ClassVar[str] = "annealing"
    initial_temperature: float = 8.0
    cooling: float = 0.97
    flips_per_move: int = 2
    sfdr_weight: float = 0.0

    def execute(self, scenario: ThreatScenario) -> AttackReport:
        if scenario.scheme != FABRIC:
            return self._not_applicable(scenario, _NEEDS_ORACLE)
        oracle = scenario.oracle()
        attack = SimulatedAnnealingAttack(
            oracle,
            rng=np.random.default_rng(scenario.seed),
            initial_temperature=self.initial_temperature,
            cooling=self.cooling,
            flips_per_move=self.flips_per_move,
            sfdr_weight=self.sfdr_weight,
        )
        try:
            outcome = attack.run(scenario.budget)
        except QueryBudgetExceeded:
            return self._budget_exhausted(scenario, oracle)
        return AttackReport(
            attack=self.name,
            scenario=scenario,
            applicable=True,
            success=outcome.success,
            best_key=outcome.best_key.encode(),
            best_metric_db=outcome.best_score,
            n_queries=oracle.n_queries,
            lab_seconds=oracle.elapsed_seconds,
            extras={"n_evaluations": scenario.budget, "history_len": len(outcome.history)},
        )


@dataclass
class Genetic(Attack):
    """Genetic algorithm with batched population scoring (Sec. IV-B.3).

    The scenario budget is spent in whole generations:
    ``max(budget // population_size - 1, 1)`` generations after the
    initial population, matching the budget accounting of the
    experiment drivers.
    """

    name: ClassVar[str] = "genetic"
    population_size: int = 16
    mutation_rate: float = 0.02
    elite: int = 2
    sfdr_weight: float = 0.0

    def execute(self, scenario: ThreatScenario) -> AttackReport:
        if scenario.scheme != FABRIC:
            return self._not_applicable(scenario, _NEEDS_ORACLE)
        oracle = scenario.oracle()
        attack = GeneticAttack(
            oracle,
            rng=np.random.default_rng(scenario.seed),
            population_size=self.population_size,
            mutation_rate=self.mutation_rate,
            elite=self.elite,
            sfdr_weight=self.sfdr_weight,
        )
        n_generations = max(scenario.budget // self.population_size - 1, 1)
        try:
            outcome = attack.run(n_generations)
        except QueryBudgetExceeded:
            return self._budget_exhausted(scenario, oracle)
        return AttackReport(
            attack=self.name,
            scenario=scenario,
            applicable=True,
            success=outcome.success,
            best_key=outcome.best_key.encode(),
            best_metric_db=outcome.best_score,
            n_queries=oracle.n_queries,
            lab_seconds=oracle.elapsed_seconds,
            extras={
                "n_generations": n_generations,
                "population_size": self.population_size,
            },
        )


@dataclass
class Transfer(Attack):
    """Leaked-key transfer across chips (Sec. IV-B.3).

    The donor key comes either from ``leaked_key`` (an encoded
    configuration word the driver obtained elsewhere) or by calibrating
    the donor die of the same lot with the default calibrator — the
    strongest position the paper grants the attacker.
    """

    name: ClassVar[str] = "transfer"
    donor_chip_id: int = 1
    leaked_key: int | None = None
    passes: int = 1

    def provisioning_triples(
        self, scenario: ThreatScenario
    ) -> list[tuple[int, int, int]]:
        if scenario.scheme != FABRIC or self.leaked_key is not None:
            return []
        return [
            (scenario.chip.lot_seed, self.donor_chip_id, scenario.standard_index)
        ]

    def execute(self, scenario: ThreatScenario) -> AttackReport:
        if scenario.scheme != FABRIC:
            return self._not_applicable(scenario, _NEEDS_ORACLE)
        standard = scenario.standard()
        if self.leaked_key is not None:
            leaked = ConfigWord.decode(self.leaked_key)
        else:
            donor = ChipSpec(scenario.chip.lot_seed, self.donor_chip_id)
            leaked = provision_calibration(donor, standard).config
        oracle = scenario.oracle()
        attack = TransferAttack(oracle, rng=np.random.default_rng(scenario.seed))
        try:
            outcome = attack.run(leaked, passes=self.passes)
        except QueryBudgetExceeded:
            return self._budget_exhausted(scenario, oracle)
        return AttackReport(
            attack=self.name,
            scenario=scenario,
            applicable=True,
            success=outcome.success,
            best_key=outcome.final_key.encode(),
            best_metric_db=outcome.final_snr_db,
            n_queries=oracle.n_queries,
            lab_seconds=oracle.elapsed_seconds,
            extras={
                "start_snr_db": outcome.start_snr_db,
                "donor_chip_id": self.donor_chip_id,
                "leaked_key": leaked.encode(),
            },
        )


def _own_fabric_triple(scenario: ThreatScenario) -> list[tuple[int, int, int]]:
    """The scenario's own die, when resolving its scheme provisions it."""
    if scenario.scheme != FABRIC:
        return []
    return [
        (scenario.chip.lot_seed, scenario.chip.chip_id, scenario.standard_index)
    ]


@dataclass
class Removal(Attack):
    """Removal-attack adjudication (Secs. II / IV-B.2)."""

    name: ClassVar[str] = "removal"

    def provisioning_triples(
        self, scenario: ThreatScenario
    ) -> list[tuple[int, int, int]]:
        return _own_fabric_triple(scenario)

    def execute(self, scenario: ThreatScenario) -> AttackReport:
        return self.adjudicate(scenario.resolve_scheme(), scenario)

    def adjudicate(
        self, scheme: AnalogLockScheme, scenario: ThreatScenario | None = None
    ) -> AttackReport:
        """Scheme-level core, usable outside a campaign (comparison tables)."""
        outcome = removal_attack(scheme)
        cost = scenario.cost_model() if scenario else AttackCostModel.hardware()
        return AttackReport(
            attack=self.name,
            scenario=scenario,
            applicable=outcome.applicable,
            success=outcome.succeeds,
            n_queries=outcome.measurements_needed,
            lab_seconds=outcome.measurements_needed * cost.snr_seconds,
            extras={
                "scheme_name": outcome.scheme_name,
                "reference": outcome.reference,
                "effort": outcome.effort,
            },
        )


@dataclass
class Sat(Attack):
    """Oracle-guided SAT attack (Sec. IV-B.1).

    Dismantles the logic-locked baselines; reports ``applicable=False``
    with the structural reason for targets without a Boolean oracle —
    the fabric lock and the pure bias locks.
    """

    name: ClassVar[str] = "sat"

    @staticmethod
    def sat_target(scheme: AnalogLockScheme) -> object:
        return scheme.locked if hasattr(scheme, "locked") else scheme

    @classmethod
    def applicable_to(cls, scheme: AnalogLockScheme) -> bool:
        """Whether a miter can be formulated against ``scheme``."""
        try:
            assert_sat_attack_applicable(cls.sat_target(scheme))
        except SatAttackNotApplicable:
            return False
        return True

    def provisioning_triples(
        self, scenario: ThreatScenario
    ) -> list[tuple[int, int, int]]:
        return _own_fabric_triple(scenario)

    def execute(self, scenario: ThreatScenario) -> AttackReport:
        return self.adjudicate(scenario.resolve_scheme(), scenario)

    def adjudicate(
        self, scheme: AnalogLockScheme, scenario: ThreatScenario | None = None
    ) -> AttackReport:
        """Scheme-level core, usable outside a campaign."""
        profile = scheme.profile
        try:
            assert_sat_attack_applicable(self.sat_target(scheme))
        except SatAttackNotApplicable as exc:
            report = self._not_applicable(
                scenario,
                str(exc),
                scheme_name=profile.name,
                reference=profile.reference,
            )
            return report
        result = scheme.run_sat_attack()
        cost = scenario.cost_model() if scenario else AttackCostModel.hardware()
        success = scheme.unlocks(result.key)
        return AttackReport(
            attack=self.name,
            scenario=scenario,
            applicable=True,
            success=success,
            best_key=result.key,
            n_queries=result.n_oracle_queries,
            lab_seconds=result.n_oracle_queries * cost.snr_seconds,
            extras={
                "n_iterations": result.n_iterations,
                "scheme_name": profile.name,
                "reference": profile.reference,
            },
        )


#: Named attack registry, mirroring the experiment registry: every
#: campaign cell carries one of these names.
ATTACKS: dict[str, Callable[..., Attack]] = {
    cls.name: cls for cls in (BruteForce, Annealing, Genetic, Transfer, Removal, Sat)
}


def make_attack(name: str, **params) -> Attack:
    """Instantiate a registered attack with plain keyword parameters."""
    if name not in ATTACKS:
        raise KeyError(f"unknown attack {name!r}; known: {sorted(ATTACKS)}")
    return ATTACKS[name](**params)
