"""One protocol for every attack: ``Attack.execute(scenario) -> AttackReport``.

The adapters wrap the primitive attack implementations in
:mod:`repro.attacks` (which keep their own APIs — they are the
experiment-level building blocks) behind a single uniform call, so the
full attack x defense matrix of the paper's Sec. VI-B can be swept by
one driver.  :data:`ATTACKS` is the named registry mirroring the
experiment registry: campaign cells carry the attack *name* plus plain
parameters, which keeps cells picklable for the process-sharded runner.

Applicability is part of the result, not an exception: an attack that
has no formulation against a target (SAT vs the analog fabric, transfer
vs a bench-model baseline) returns a report with ``applicable=False``
and the structural reason in ``extras`` — that adjudication *is* the
paper's security argument.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, ClassVar

import numpy as np

from repro.attacks.brute_force import BruteForceAttack, score_key_range
from repro.attacks.cost import AttackCostModel
from repro.attacks.optimization import (
    GeneticAttack,
    SimulatedAnnealingAttack,
    blend_fitness,
)
from repro.attacks.oracle import (
    QueryBudgetExceeded,
    ScriptedOracle,
    speculative_sfdr_batch,
    speculative_snr_batch,
)
from repro.attacks.removal import removal_attack
from repro.attacks.sat_attack import (
    SatAttackNotApplicable,
    assert_sat_attack_applicable,
)
from repro.attacks.transfer import TransferAttack
from repro.baselines.base import AnalogLockScheme
from repro.campaigns.report import AttackReport
from repro.campaigns.scenario import (
    FABRIC,
    ChipSpec,
    ThreatScenario,
    provision_calibration,
)
from repro.locking.specs import PerformanceSpec
from repro.receiver.config import ConfigWord


class Attack(abc.ABC):
    """Protocol every campaign attack implements."""

    #: Registry name (also the ``attack`` field of the reports).
    name: ClassVar[str]

    @abc.abstractmethod
    def execute(self, scenario: ThreatScenario) -> AttackReport:
        """Run the attack against ``scenario`` and report the outcome."""

    def provisioning_triples(
        self, scenario: ThreatScenario
    ) -> list[tuple[int, int, int]]:
        """The (lot_seed, chip_id, standard_index) calibrations this
        attack will demand when executing ``scenario``.

        The campaign layer pre-provisions exactly these over its worker
        pool (each triple once, fleet-wide) before the attack phase —
        so adapters that calibrate must declare it here, and adapters
        that only query the oracle must not, or sharded campaigns would
        pay for calibrations no cell performs.
        """
        return []

    def partition(self, scenario: ThreatScenario):
        """A partition plan splitting this attack's measurement work
        into speculative sub-tasks, or None when the attack runs as one
        scalar cell (the default: not every attack decomposes).

        A plan implements three methods the scheduler drives:
        ``initial_parts() -> [(part_id, part)]`` (the first fan-out;
        each part is a picklable object whose ``run(cell)`` computes
        *unmetered* measurement values), ``absorb(part_id, payload) ->
        [(part_id, part)]`` (fold one result back in, possibly fanning
        out further — e.g. the next GA generation), and ``script() ->
        dict`` (the measurement streams for the replay, once no part is
        outstanding).  The plan object lives in the scheduling parent
        only; parts and the script cross process boundaries.
        """
        return None

    def execute_scripted(
        self, scenario: ThreatScenario, script
    ) -> AttackReport:
        """Replay the attack with measurements served from a partition
        plan's ``script()`` — the sequential accept-order replay that
        commits every oracle/tenant charge in the scalar attack's
        order.  Attacks without a partition plan ignore the script."""
        return self.execute(scenario)

    # -- shared report builders -------------------------------------------

    def _not_applicable(
        self, scenario: ThreatScenario, reason: str, **extras
    ) -> AttackReport:
        return AttackReport(
            attack=self.name,
            scenario=scenario,
            applicable=False,
            success=False,
            extras={"reason": reason, **extras},
        )

    def _budget_exhausted(self, scenario: ThreatScenario, oracle) -> AttackReport:
        return AttackReport(
            attack=self.name,
            scenario=scenario,
            applicable=True,
            success=False,
            n_queries=oracle.n_queries,
            lab_seconds=oracle.elapsed_seconds,
            extras={"budget_exhausted": True},
        )


@dataclass
class BruteForce(Attack):
    """Random key search — against the fabric oracle or a baseline bench.

    On the fabric target this is the metered random search of paper
    Sec. VI-B.1 (batched oracle probes, spec adjudication).  On a
    baseline scheme it draws random keys in the scheme's own key space
    and queries its testbench, charging the scenario's cost model per
    trial — which is how an 8-bit bias lock falls in seconds while the
    64-bit fabric stands.
    """

    name: ClassVar[str] = "brute-force"
    batch_size: int = 16
    #: Keys per speculative sub-task; 0 keeps the cell scalar.
    subtask_keys: int = 0

    def execute(self, scenario: ThreatScenario) -> AttackReport:
        if scenario.scheme == FABRIC:
            return self._run_fabric(scenario, scenario.oracle())
        return self._scheme_search(scenario, np.random.default_rng(scenario.seed))

    def _run_fabric(self, scenario: ThreatScenario, oracle) -> AttackReport:
        """The metered fabric search against ``oracle`` — a live
        :class:`~repro.attacks.oracle.MeasurementOracle` or the
        scripted replay wrapper; the search cannot tell them apart."""
        rng = np.random.default_rng(scenario.seed)
        attack = BruteForceAttack(oracle, rng=rng, batch_size=self.batch_size)
        try:
            outcome = attack.run(scenario.budget)
        except QueryBudgetExceeded:
            return self._budget_exhausted(scenario, oracle)
        return AttackReport(
            attack=self.name,
            scenario=scenario,
            applicable=True,
            success=outcome.success,
            best_key=outcome.best_key.encode(),
            best_metric_db=outcome.best_snr_db,
            n_queries=oracle.n_queries,
            lab_seconds=oracle.elapsed_seconds,
            extras={
                "n_trials": outcome.n_trials,
                "extrapolated_years_full_space": (
                    outcome.extrapolated_years_full_space
                ),
            },
        )

    def partition(self, scenario: ThreatScenario):
        if (
            scenario.scheme != FABRIC
            or self.subtask_keys <= 0
            or scenario.budget <= self.subtask_keys
        ):
            return None
        return BruteForcePartition(scenario, self.subtask_keys)

    def execute_scripted(
        self, scenario: ThreatScenario, script
    ) -> AttackReport:
        if scenario.scheme != FABRIC or not script:
            return self.execute(scenario)
        oracle = ScriptedOracle(scenario.oracle(), snrs=script.get("snrs", ()))
        return self._run_fabric(scenario, oracle)

    def _scheme_search(
        self, scenario: ThreatScenario, rng: np.random.Generator
    ) -> AttackReport:
        scheme = scenario.resolve_scheme()
        cost = scenario.cost_model()
        key_space = 1 << scheme.profile.key_bits
        n_queries = 0
        success = False
        best_key: int | None = None
        exhausted = False
        for _ in range(scenario.budget):
            if (
                scenario.max_queries is not None
                and n_queries >= scenario.max_queries
            ):
                exhausted = True
                break
            key = int(rng.integers(0, key_space))
            n_queries += 1
            if scheme.unlocks(key):
                success = True
                best_key = key
                break
        return AttackReport(
            attack=self.name,
            scenario=scenario,
            applicable=True,
            success=success,
            best_key=best_key,
            best_metric_db=None,
            n_queries=n_queries,
            lab_seconds=n_queries * cost.snr_seconds,
            extras={
                "key_bits": scheme.profile.key_bits,
                "scheme_name": scheme.profile.name,
                "reference": scheme.profile.reference,
                **({"budget_exhausted": True} if exhausted else {}),
            },
        )


_NEEDS_ORACLE = (
    "needs a measurement oracle on a working chip; the target is a "
    "bench-model baseline scheme without one"
)


@dataclass
class Annealing(Attack):
    """Simulated annealing over the 64-bit key string (Sec. IV-B.3)."""

    name: ClassVar[str] = "annealing"
    initial_temperature: float = 8.0
    cooling: float = 0.97
    flips_per_move: int = 2
    sfdr_weight: float = 0.0

    def execute(self, scenario: ThreatScenario) -> AttackReport:
        if scenario.scheme != FABRIC:
            return self._not_applicable(scenario, _NEEDS_ORACLE)
        oracle = scenario.oracle()
        attack = SimulatedAnnealingAttack(
            oracle,
            rng=np.random.default_rng(scenario.seed),
            initial_temperature=self.initial_temperature,
            cooling=self.cooling,
            flips_per_move=self.flips_per_move,
            sfdr_weight=self.sfdr_weight,
        )
        try:
            outcome = attack.run(scenario.budget)
        except QueryBudgetExceeded:
            return self._budget_exhausted(scenario, oracle)
        return AttackReport(
            attack=self.name,
            scenario=scenario,
            applicable=True,
            success=outcome.success,
            best_key=outcome.best_key.encode(),
            best_metric_db=outcome.best_score,
            n_queries=oracle.n_queries,
            lab_seconds=oracle.elapsed_seconds,
            extras={"n_evaluations": scenario.budget, "history_len": len(outcome.history)},
        )


@dataclass
class Genetic(Attack):
    """Genetic algorithm with batched population scoring (Sec. IV-B.3).

    The scenario budget is spent in whole generations:
    ``max(budget // population_size - 1, 1)`` generations after the
    initial population, matching the budget accounting of the
    experiment drivers.
    """

    name: ClassVar[str] = "genetic"
    population_size: int = 16
    mutation_rate: float = 0.02
    elite: int = 2
    sfdr_weight: float = 0.0
    #: Slices each generation's population scoring is split into for
    #: speculative sub-tasks; 0 keeps the cell scalar.
    subtask_slices: int = 0

    def _make_attack(self, oracle, scenario: ThreatScenario) -> GeneticAttack:
        return GeneticAttack(
            oracle,
            rng=np.random.default_rng(scenario.seed),
            population_size=self.population_size,
            mutation_rate=self.mutation_rate,
            elite=self.elite,
            sfdr_weight=self.sfdr_weight,
        )

    def execute(self, scenario: ThreatScenario) -> AttackReport:
        if scenario.scheme != FABRIC:
            return self._not_applicable(scenario, _NEEDS_ORACLE)
        return self._run_fabric(scenario, scenario.oracle())

    def _run_fabric(self, scenario: ThreatScenario, oracle) -> AttackReport:
        attack = self._make_attack(oracle, scenario)
        n_generations = max(scenario.budget // self.population_size - 1, 1)
        try:
            outcome = attack.run(n_generations)
        except QueryBudgetExceeded:
            return self._budget_exhausted(scenario, oracle)
        return AttackReport(
            attack=self.name,
            scenario=scenario,
            applicable=True,
            success=outcome.success,
            best_key=outcome.best_key.encode(),
            best_metric_db=outcome.best_score,
            n_queries=oracle.n_queries,
            lab_seconds=oracle.elapsed_seconds,
            extras={
                "n_generations": n_generations,
                "population_size": self.population_size,
            },
        )

    def partition(self, scenario: ThreatScenario):
        if scenario.scheme != FABRIC or self.subtask_slices <= 0:
            return None
        return GeneticPartition(self, scenario)

    def execute_scripted(
        self, scenario: ThreatScenario, script
    ) -> AttackReport:
        if scenario.scheme != FABRIC or not script:
            return self.execute(scenario)
        oracle = ScriptedOracle(
            scenario.oracle(),
            snrs=script.get("snrs", ()),
            sfdrs=script.get("sfdrs", ()),
        )
        return self._run_fabric(scenario, oracle)


# ---------------------------------------------------------------------------
# Partition plans: speculative sub-tasks + sequential accept-order replay
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KeyRangeScore:
    """Speculatively score one contiguous range of the brute-force key
    stream (ships to workers inside a scheduler ``SubTask``)."""

    start: int
    count: int

    def run(self, cell):
        scenario = cell.scenario
        return score_key_range(
            scenario.oracle(), scenario.seed, self.start, self.count
        )


class BruteForcePartition:
    """Key-space chunking for :class:`BruteForce` fabric cells.

    The scalar search draws keys from one RNG stream seeded by the
    scenario, independent of measurement chunking — so the plan's parts
    score disjoint ranges of that stream (covering every key the search
    could possibly charge: ``budget``, clamped to ``max_queries`` since
    the oracle refuses anything past it), and the replay serves the
    concatenated scores positionally.  Early success simply leaves the
    scripted tail unread.
    """

    def __init__(self, scenario: ThreatScenario, chunk_keys: int):
        n_keys = scenario.budget
        if scenario.max_queries is not None:
            n_keys = min(n_keys, scenario.max_queries)
        self._ranges = []
        start = 0
        while start < n_keys:
            count = min(chunk_keys, n_keys - start)
            self._ranges.append((start, count))
            start += count
        self._snrs: list = [None] * len(self._ranges)

    def initial_parts(self):
        return [
            (("keys", i), KeyRangeScore(start, count))
            for i, (start, count) in enumerate(self._ranges)
        ]

    def absorb(self, part_id, payload):
        _, i = part_id
        self._snrs[i] = list(payload)
        return []

    def script(self) -> dict:
        return {"snrs": [snr for chunk in self._snrs for snr in chunk]}


@dataclass(frozen=True)
class PopulationScore:
    """Speculatively score one slice of a GA generation's population
    (keys ship encoded so the part stays a plain picklable record)."""

    keys: tuple
    with_sfdr: bool

    def run(self, cell):
        oracle = cell.scenario.oracle()
        keys = [ConfigWord.decode(key) for key in self.keys]
        snrs = speculative_snr_batch(oracle, keys)
        sfdrs = speculative_sfdr_batch(oracle, keys) if self.with_sfdr else None
        return (snrs, sfdrs)


class GeneticPartition:
    """Per-generation population scoring for :class:`Genetic` cells.

    Generations are sequentially dependent (breeding consumes the
    ranking of the previous generation), so the plan fans out one
    generation's slices at a time: absorbing the last slice of
    generation ``g`` reproduces the scalar ranking (identical blend,
    identical stable sort) and breeds generation ``g+1`` from a private
    :class:`~repro.attacks.optimization.GeneticAttack` whose RNG has
    consumed exactly the draws the replay's attack will re-consume.
    Speculation stops where the scalar control flow becomes
    oracle-adjudicated (a ranking crossing the SNR spec triggers a live
    ``unlocks``) or where the query budget is provably spent; the
    replay's live fallback covers anything past that horizon.
    """

    def __init__(self, adapter: "Genetic", scenario: ThreatScenario):
        self._attack = adapter._make_attack(None, scenario)
        spec = PerformanceSpec.for_standard(scenario.standard())
        self._snr_min = spec.snr_min_db
        self._sfdr_min = spec.sfdr_min_db
        self._sfdr_weight = adapter.sfdr_weight
        self._with_sfdr = adapter.sfdr_weight > 0.0
        self._n_generations = max(
            scenario.budget // adapter.population_size - 1, 1
        )
        self._max_queries = scenario.max_queries
        self._n_slices = adapter.subtask_slices
        self._generation = 0
        self._population = self._attack.initial_population()
        self._snrs: list[float] = []
        self._sfdrs: list[float] = []
        self._pending: dict[int, tuple] = {}
        self._expect = 0

    def _parts(self):
        """Fan the current generation out as population slices."""
        n = len(self._population)
        size = -(-n // self._n_slices)  # ceil: last slice may run short
        parts = []
        for i in range(self._n_slices):
            keys = self._population[i * size:(i + 1) * size]
            if not keys:
                break
            parts.append((
                ("gen", self._generation, i),
                PopulationScore(
                    tuple(key.encode() for key in keys), self._with_sfdr
                ),
            ))
        self._pending = {}
        self._expect = len(parts)
        return parts

    def initial_parts(self):
        return self._parts()

    def absorb(self, part_id, payload):
        _, _, i = part_id
        self._pending[i] = payload
        if len(self._pending) < self._expect:
            return []
        snrs: list[float] = []
        sfdrs: list[float] = []
        for i in sorted(self._pending):
            slice_snrs, slice_sfdrs = self._pending[i]
            snrs.extend(slice_snrs)
            if slice_sfdrs is not None:
                sfdrs.extend(slice_sfdrs)
        self._snrs.extend(snrs)
        if self._with_sfdr:
            self._sfdrs.extend(sfdrs)
        if self._generation >= self._n_generations:
            return []  # the scalar loop scores no generation past this
        scores = blend_fitness(
            snrs, sfdrs if self._with_sfdr else None,
            self._sfdr_weight, self._sfdr_min,
        )
        ranked = sorted(zip(scores, self._population), key=lambda t: -t[0])
        if ranked[0][0] >= self._snr_min:
            # The scalar loop now calls oracle.unlocks — a live, charged
            # adjudication the replay must perform itself.  Stop here;
            # if the key is deceptive the replay continues on the
            # scripted-oracle's live fallback, still bit-exact.
            return []
        if (
            self._max_queries is not None
            and len(self._snrs) + len(self._sfdrs) >= self._max_queries
        ):
            return []  # the replay's next charge provably raises
        self._population = self._attack.breed(ranked)
        self._generation += 1
        return self._parts()

    def script(self) -> dict:
        return {"snrs": self._snrs, "sfdrs": self._sfdrs}


@dataclass
class Transfer(Attack):
    """Leaked-key transfer across chips (Sec. IV-B.3).

    The donor key comes either from ``leaked_key`` (an encoded
    configuration word the driver obtained elsewhere) or by calibrating
    the donor die of the same lot with the default calibrator — the
    strongest position the paper grants the attacker.
    """

    name: ClassVar[str] = "transfer"
    donor_chip_id: int = 1
    leaked_key: int | None = None
    passes: int = 1

    def provisioning_triples(
        self, scenario: ThreatScenario
    ) -> list[tuple[int, int, int]]:
        if scenario.scheme != FABRIC or self.leaked_key is not None:
            return []
        return [
            (scenario.chip.lot_seed, self.donor_chip_id, scenario.standard_index)
        ]

    def execute(self, scenario: ThreatScenario) -> AttackReport:
        if scenario.scheme != FABRIC:
            return self._not_applicable(scenario, _NEEDS_ORACLE)
        standard = scenario.standard()
        if self.leaked_key is not None:
            leaked = ConfigWord.decode(self.leaked_key)
        else:
            donor = ChipSpec(scenario.chip.lot_seed, self.donor_chip_id)
            leaked = provision_calibration(donor, standard).config
        oracle = scenario.oracle()
        attack = TransferAttack(oracle, rng=np.random.default_rng(scenario.seed))
        try:
            outcome = attack.run(leaked, passes=self.passes)
        except QueryBudgetExceeded:
            return self._budget_exhausted(scenario, oracle)
        return AttackReport(
            attack=self.name,
            scenario=scenario,
            applicable=True,
            success=outcome.success,
            best_key=outcome.final_key.encode(),
            best_metric_db=outcome.final_snr_db,
            n_queries=oracle.n_queries,
            lab_seconds=oracle.elapsed_seconds,
            extras={
                "start_snr_db": outcome.start_snr_db,
                "donor_chip_id": self.donor_chip_id,
                "leaked_key": leaked.encode(),
            },
        )


def _own_fabric_triple(scenario: ThreatScenario) -> list[tuple[int, int, int]]:
    """The scenario's own die, when resolving its scheme provisions it."""
    if scenario.scheme != FABRIC:
        return []
    return [
        (scenario.chip.lot_seed, scenario.chip.chip_id, scenario.standard_index)
    ]


@dataclass
class Removal(Attack):
    """Removal-attack adjudication (Secs. II / IV-B.2)."""

    name: ClassVar[str] = "removal"

    def provisioning_triples(
        self, scenario: ThreatScenario
    ) -> list[tuple[int, int, int]]:
        return _own_fabric_triple(scenario)

    def execute(self, scenario: ThreatScenario) -> AttackReport:
        return self.adjudicate(scenario.resolve_scheme(), scenario)

    def adjudicate(
        self, scheme: AnalogLockScheme, scenario: ThreatScenario | None = None
    ) -> AttackReport:
        """Scheme-level core, usable outside a campaign (comparison tables)."""
        outcome = removal_attack(scheme)
        cost = scenario.cost_model() if scenario else AttackCostModel.hardware()
        return AttackReport(
            attack=self.name,
            scenario=scenario,
            applicable=outcome.applicable,
            success=outcome.succeeds,
            n_queries=outcome.measurements_needed,
            lab_seconds=outcome.measurements_needed * cost.snr_seconds,
            extras={
                "scheme_name": outcome.scheme_name,
                "reference": outcome.reference,
                "effort": outcome.effort,
            },
        )


@dataclass
class Sat(Attack):
    """Oracle-guided SAT attack (Sec. IV-B.1).

    Dismantles the logic-locked baselines; reports ``applicable=False``
    with the structural reason for targets without a Boolean oracle —
    the fabric lock and the pure bias locks.
    """

    name: ClassVar[str] = "sat"

    @staticmethod
    def sat_target(scheme: AnalogLockScheme) -> object:
        return scheme.locked if hasattr(scheme, "locked") else scheme

    @classmethod
    def applicable_to(cls, scheme: AnalogLockScheme) -> bool:
        """Whether a miter can be formulated against ``scheme``."""
        try:
            assert_sat_attack_applicable(cls.sat_target(scheme))
        except SatAttackNotApplicable:
            return False
        return True

    def provisioning_triples(
        self, scenario: ThreatScenario
    ) -> list[tuple[int, int, int]]:
        return _own_fabric_triple(scenario)

    def execute(self, scenario: ThreatScenario) -> AttackReport:
        return self.adjudicate(scenario.resolve_scheme(), scenario)

    def adjudicate(
        self, scheme: AnalogLockScheme, scenario: ThreatScenario | None = None
    ) -> AttackReport:
        """Scheme-level core, usable outside a campaign."""
        profile = scheme.profile
        try:
            assert_sat_attack_applicable(self.sat_target(scheme))
        except SatAttackNotApplicable as exc:
            report = self._not_applicable(
                scenario,
                str(exc),
                scheme_name=profile.name,
                reference=profile.reference,
            )
            return report
        result = scheme.run_sat_attack()
        cost = scenario.cost_model() if scenario else AttackCostModel.hardware()
        success = scheme.unlocks(result.key)
        return AttackReport(
            attack=self.name,
            scenario=scenario,
            applicable=True,
            success=success,
            best_key=result.key,
            n_queries=result.n_oracle_queries,
            lab_seconds=result.n_oracle_queries * cost.snr_seconds,
            extras={
                "n_iterations": result.n_iterations,
                "scheme_name": profile.name,
                "reference": profile.reference,
            },
        )


#: Named attack registry, mirroring the experiment registry: every
#: campaign cell carries one of these names.
ATTACKS: dict[str, Callable[..., Attack]] = {
    cls.name: cls for cls in (BruteForce, Annealing, Genetic, Transfer, Removal, Sat)
}


def make_attack(name: str, **params) -> Attack:
    """Instantiate a registered attack with plain keyword parameters."""
    if name not in ATTACKS:
        raise KeyError(f"unknown attack {name!r}; known: {sorted(ATTACKS)}")
    return ATTACKS[name](**params)
