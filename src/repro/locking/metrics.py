"""Locking-efficiency metrics (paper Sec. VI-A quantified).

These studies generate the statistical evidence behind Figs. 7 and 9:
how invalid keys distribute, how many are "deceptive", how quickly
performance collapses with key-bit distance (avalanche), and how large
the *effective* key space is once near-miss keys are accounted for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.receiver.config import KEY_BITS, ConfigWord
from repro.receiver.performance import (
    measure_modulator_snr_batch,
    measure_receiver_snr_batch,
)
from repro.receiver.receiver import Chip
from repro.receiver.standards import Standard


@dataclass
class KeyPopulationStudy:
    """SNR statistics over a random invalid-key population.

    Attributes:
        correct_snr_db: SNR of the correct key.
        invalid_snrs_db: SNR of every random key, in draw order.
        keys: The corresponding keys.
    """

    correct_snr_db: float
    invalid_snrs_db: np.ndarray
    keys: list[ConfigWord]

    @property
    def max_invalid_db(self) -> float:
        """Best invalid-key SNR (the paper's deceptive key)."""
        return float(np.max(self.invalid_snrs_db))

    @property
    def deceptive_index(self) -> int:
        """Index of the best invalid key (the paper's 'index 7')."""
        return int(np.argmax(self.invalid_snrs_db))

    @property
    def deceptive_key(self) -> ConfigWord:
        """The best-scoring invalid key."""
        return self.keys[self.deceptive_index]

    def count_above(self, threshold_db: float) -> int:
        """Number of invalid keys whose SNR exceeds ``threshold_db``."""
        return int(np.sum(self.invalid_snrs_db > threshold_db))

    def fraction_unlocking(self, spec_db: float) -> float:
        """Fraction of invalid keys that would pass the SNR spec."""
        return float(np.mean(self.invalid_snrs_db >= spec_db))

    @property
    def margin_db(self) -> float:
        """Gap between the correct key and the best invalid key."""
        return self.correct_snr_db - self.max_invalid_db


def key_population_study(
    chip: Chip,
    correct_key: ConfigWord,
    standard: Standard,
    n_keys: int = 100,
    rng: np.random.Generator | None = None,
    n_fft: int | None = None,
    at_receiver: bool = False,
    n_baseband: int = 512,
    seed: int = 0,
) -> KeyPopulationStudy:
    """Measure the correct key and ``n_keys`` random keys (Figs. 7/9).

    The whole population — correct key plus every random key — is
    submitted to the simulation engine as one batch, so the sweep costs
    one amortised integration pass instead of ``n_keys + 1`` scalar
    loops.
    """
    rng = rng or np.random.default_rng(7)
    keys = [ConfigWord.random(rng) for _ in range(n_keys)]
    population = [correct_key, *keys]
    if at_receiver:
        measurements = measure_receiver_snr_batch(
            chip, population, standard, n_baseband=n_baseband, seed=seed
        )
    else:
        measurements = measure_modulator_snr_batch(
            chip, population, standard, n_fft=n_fft, seed=seed
        )
    snrs = np.array([m.snr_db for m in measurements[1:]])
    return KeyPopulationStudy(
        correct_snr_db=measurements[0].snr_db, invalid_snrs_db=snrs, keys=keys
    )


@dataclass
class AvalanchePoint:
    """SNR statistics at one Hamming distance from the correct key."""

    hamming_distance: int
    mean_snr_db: float
    min_snr_db: float
    max_snr_db: float


def avalanche_study(
    chip: Chip,
    correct_key: ConfigWord,
    standard: Standard,
    distances: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    trials_per_distance: int = 8,
    rng: np.random.Generator | None = None,
    n_fft: int | None = None,
    seed: int = 0,
) -> list[AvalanchePoint]:
    """Performance collapse versus key-bit distance from the correct key.

    Flipping even a single configuration bit can break the circuit (a
    wrong enable) or barely dent it (a fine-cap LSB): the study maps the
    average behaviour, the analog analogue of digital locking's
    avalanche criterion.
    """
    rng = rng or np.random.default_rng(11)
    points = []
    for distance in distances:
        keys = []
        for _ in range(trials_per_distance):
            positions = rng.choice(KEY_BITS, size=distance, replace=False)
            keys.append(correct_key.flip_bits(list(positions)))
        snrs = [
            m.snr_db
            for m in measure_modulator_snr_batch(
                chip, keys, standard, n_fft=n_fft, seed=seed
            )
        ]
        points.append(
            AvalanchePoint(
                hamming_distance=distance,
                mean_snr_db=float(np.mean(snrs)),
                min_snr_db=float(np.min(snrs)),
                max_snr_db=float(np.max(snrs)),
            )
        )
    return points


@dataclass(frozen=True)
class KeySpaceAnalysis:
    """Brute-force search-space accounting (paper Sec. VI-B.1).

    Attributes:
        total_keys: Size of the raw key space (2^64).
        unlocking_fraction_estimate: Estimated fraction of random keys
            that meet the spec (from a population study; usually 0 —
            then the upper bound 1/n_samples is carried instead).
        upper_bound_fraction: Upper 95% bound on the unlocking fraction
            given the sample size (rule of three).
        expected_trials: Expected brute-force trials to find an
            unlocking key, using the upper-bound fraction (an attacker's
            *best* case).
    """

    total_keys: int
    unlocking_fraction_estimate: float
    upper_bound_fraction: float
    expected_trials: float


def key_space_analysis(study: KeyPopulationStudy, spec_db: float) -> KeySpaceAnalysis:
    """Brute-force accounting from an invalid-key population study."""
    n = study.invalid_snrs_db.size
    fraction = study.fraction_unlocking(spec_db)
    upper = max(fraction, 3.0 / n)  # rule of three when no successes seen
    return KeySpaceAnalysis(
        total_keys=1 << KEY_BITS,
        unlocking_fraction_estimate=fraction,
        upper_bound_fraction=upper,
        expected_trials=1.0 / upper,
    )


def structural_unlocking_bound(chip: Chip, correct_key: ConfigWord) -> float:
    """Structural upper bound on the fraction of unlocking random keys.

    Multiplies the probabilities of the *independently necessary*
    conditions a random key must satisfy before fine performance even
    enters the picture — each window is generous (an over-estimate of
    the tolerable range), so the product upper-bounds the true fraction:

    * the four topology enables must all be 1 (2^-4),
    * the loop delay must fall in the stable phasing region (~6/16),
    * the capacitor pair must land within +/-8 fine LSBs of the tuned
      value (counted exactly over the chip's own arrays),
    * the -Gm code must sit below oscillation but within 8 codes of the
      calibrated Q (~8/64), and
    * each of the four bias codes must land in a half-scale window
      (1/2 each).
    """
    tank = chip.blocks.tank
    target_c = tank.capacitance(correct_key.cc_coarse, correct_key.cf_fine)
    window = 8.5 * tank.design.c_fine_lsb
    n_pairs = 0
    n_fine = 1 << tank.design.c_fine_bits
    for cc in range(1 << tank.design.c_coarse_bits):
        lo = tank.capacitance(cc, 0)
        hi = tank.capacitance(cc, n_fine - 1)
        if hi < target_c - window or lo > target_c + window:
            continue
        for cf in range(n_fine):
            if abs(tank.capacitance(cc, cf) - target_c) <= window:
                n_pairs += 1
    p_caps = n_pairs / float(1 << (tank.design.c_coarse_bits + tank.design.c_fine_bits))
    p_enables = 2.0**-4
    p_delay = 6.0 / 16.0
    p_gmq = 8.0 / 64.0
    p_biases = 0.5**4
    return p_enables * p_delay * p_caps * p_gmq * p_biases


def capacitor_subkey_uniqueness(chip: Chip, target_capacitance: float) -> int:
    """Count coarse/fine code pairs realising a capacitance within 0.5 LSB.

    "Capacitor arrays are binary-weighted, thus for a desired capacitor
    value there is a unique sub-key" — verified constructively: for a
    given target the number of (Cc, Cf) pairs within half a fine LSB is
    counted (1 for targets on the code lattice, up to a handful at
    coarse/fine overlap points).
    """
    tank = chip.blocks.tank
    half_lsb = tank.design.c_fine_lsb / 2.0
    count = 0
    for cc in range(1 << tank.design.c_coarse_bits):
        base = tank.capacitance(cc, 0)
        span = tank.capacitance(cc, (1 << tank.design.c_fine_bits) - 1) - base
        if not base - half_lsb <= target_capacitance <= base + span + half_lsb:
            continue
        for cf in range(1 << tank.design.c_fine_bits):
            if abs(tank.capacitance(cc, cf) - target_capacitance) <= half_lsb:
                count += 1
    return count
