"""Performance specifications used to decide locked vs unlocked.

"Locking succeeds when at least one performance violates its
specification" (paper Sec. VI-A).  A specification bundles the minimum
acceptable figures for a standard; a key unlocks the chip only if every
measured figure meets it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.receiver.standards import Standard


@dataclass(frozen=True)
class PerformanceSpec:
    """Minimum performance for functional operation in one mode.

    Attributes:
        snr_min_db: Minimum in-band SNR at the modulator output.
        snr_rx_min_db: Minimum in-band SNR at the receiver output.
        sfdr_min_db: Minimum two-tone SFDR.
    """

    snr_min_db: float
    snr_rx_min_db: float
    sfdr_min_db: float

    @classmethod
    def for_standard(cls, standard: Standard, margin_db: float = 0.0) -> "PerformanceSpec":
        """Specification derived from a standard's table entry.

        The receiver-output SNR spec is slightly relaxed against the
        modulator-output one (the digital chain costs a little SNR), and
        the SFDR spec is taken with a 10 dB allowance as in the
        calibration acceptance.
        """
        return cls(
            snr_min_db=standard.snr_spec_db - margin_db,
            snr_rx_min_db=standard.snr_spec_db - 3.0 - margin_db,
            sfdr_min_db=standard.sfdr_spec_db - 10.0 - margin_db,
        )

    def meets(
        self,
        snr_db: float | None = None,
        snr_rx_db: float | None = None,
        sfdr_db: float | None = None,
    ) -> bool:
        """True when every *provided* figure satisfies the spec."""
        if snr_db is not None and snr_db < self.snr_min_db:
            return False
        if snr_rx_db is not None and snr_rx_db < self.snr_rx_min_db:
            return False
        if sfdr_db is not None and sfdr_db < self.sfdr_min_db:
            return False
        return True
