"""The paper's core contribution: locking via the programmability fabric."""

from repro.locking.metrics import (
    AvalanchePoint,
    KeyPopulationStudy,
    KeySpaceAnalysis,
    avalanche_study,
    capacitor_subkey_uniqueness,
    key_population_study,
    key_space_analysis,
)
from repro.locking.scheme import KeyEvaluation, ProgrammabilityLock
from repro.locking.specs import PerformanceSpec

__all__ = [
    "AvalanchePoint",
    "KeyEvaluation",
    "KeyPopulationStudy",
    "KeySpaceAnalysis",
    "PerformanceSpec",
    "ProgrammabilityLock",
    "avalanche_study",
    "capacitor_subkey_uniqueness",
    "key_population_study",
    "key_space_analysis",
]
