"""Locking through the programmability fabric — the paper's contribution.

The scheme inserts *no* circuitry: the 64-bit configuration word that the
calibration produces per chip and per standard simply *is* the secret
key (paper Sec. IV-A, Fig. 2).  This module packages that idea:

* :class:`ProgrammabilityLock` binds a chip to its calibrated
  configuration LUT and answers "does this key unlock this chip?",
* :class:`KeyEvaluation` is one adjudicated key trial,
* the overhead accounting is trivially zero by construction — the point
  the paper makes against prior schemes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.calibration.procedure import CalibrationResult, Calibrator
from repro.locking.specs import PerformanceSpec
from repro.receiver.config import ConfigWord
from repro.receiver.performance import (
    measure_modulator_snr,
    measure_modulator_snr_batch,
    measure_receiver_snr,
    measure_sfdr,
)
from repro.receiver.receiver import Chip
from repro.receiver.standards import STANDARDS, Standard


@dataclass(frozen=True)
class KeyEvaluation:
    """Adjudicated trial of one key against one standard's spec.

    Attributes:
        key: The configuration word tried.
        snr_db: Measured modulator-output SNR.
        snr_rx_db: Measured receiver-output SNR (None if not measured).
        sfdr_db: Measured SFDR (None if not measured).
        unlocked: True when every measured figure meets the spec.
    """

    key: ConfigWord
    snr_db: float
    snr_rx_db: float | None
    sfdr_db: float | None
    unlocked: bool


@dataclass
class ProgrammabilityLock:
    """A chip locked by withholding its configuration settings.

    Args:
        chip: The fabricated chip.
        calibrator: Calibration engine used during provisioning (the
            design house's secret algorithm).
    """

    chip: Chip
    calibrator: Calibrator = field(default_factory=Calibrator)
    _lut: dict[int, CalibrationResult] = field(default_factory=dict, init=False)

    # -- provisioning (design house side) ---------------------------------

    def provision(self, standards: tuple[Standard, ...] = STANDARDS) -> dict[int, CalibrationResult]:
        """Calibrate the chip for each standard, filling the secret LUT.

        This is what the design house (or its secured test flow) does
        before shipping; the resulting configuration words never leave
        the trusted domain in the clear.
        """
        for std in standards:
            self._lut[std.index] = self.calibrator.calibrate(self.chip, std)
        return dict(self._lut)

    def provisioned_standards(self) -> list[int]:
        """Indices of the standards provisioned so far."""
        return sorted(self._lut)

    def key_for(self, standard: Standard) -> ConfigWord:
        """The secret key (configuration word) for ``standard``."""
        if standard.index not in self._lut:
            raise KeyError(f"chip not provisioned for {standard.name}")
        return self._lut[standard.index].config

    def calibration_result(self, standard: Standard) -> CalibrationResult:
        """Full calibration record for ``standard``."""
        if standard.index not in self._lut:
            raise KeyError(f"chip not provisioned for {standard.name}")
        return self._lut[standard.index]

    # -- adjudication (works for any party holding the chip) ---------------

    def evaluate_key(
        self,
        key: ConfigWord,
        standard: Standard,
        include_receiver: bool = False,
        include_sfdr: bool = False,
        n_fft: int | None = None,
        seed: int = 0,
    ) -> KeyEvaluation:
        """Measure the chip under ``key`` and judge it against the spec."""
        spec = PerformanceSpec.for_standard(standard)
        snr = measure_modulator_snr(
            self.chip, key, standard, n_fft=n_fft, seed=seed
        ).snr_db
        snr_rx = None
        if include_receiver:
            snr_rx = measure_receiver_snr(
                self.chip, key, standard, n_baseband=512, seed=seed
            ).snr_db
        sfdr = None
        if include_sfdr:
            sfdr = measure_sfdr(
                self.chip, key, standard, n_fft=n_fft, seed=seed
            ).sfdr_db
        return KeyEvaluation(
            key=key,
            snr_db=snr,
            snr_rx_db=snr_rx,
            sfdr_db=sfdr,
            unlocked=spec.meets(snr_db=snr, snr_rx_db=snr_rx, sfdr_db=sfdr),
        )

    def evaluate_keys(
        self,
        keys: Sequence[ConfigWord],
        standard: Standard,
        n_fft: int | None = None,
        seed: int = 0,
    ) -> list[KeyEvaluation]:
        """Batched modulator-output adjudication of many keys.

        Equivalent to calling :meth:`evaluate_key` per key (the engine
        backends are bit-exact), but the whole population is measured in
        one batched engine submission.
        """
        spec = PerformanceSpec.for_standard(standard)
        measurements = measure_modulator_snr_batch(
            self.chip, keys, standard, n_fft=n_fft, seed=seed
        )
        return [
            KeyEvaluation(
                key=key,
                snr_db=m.snr_db,
                snr_rx_db=None,
                sfdr_db=None,
                unlocked=spec.meets(snr_db=m.snr_db),
            )
            for key, m in zip(keys, measurements)
        ]

    def is_unlocked_by(self, key: ConfigWord, standard: Standard, seed: int = 0) -> bool:
        """Quick adjudication on modulator-output SNR alone."""
        return self.evaluate_key(key, standard, seed=seed).unlocked

    # -- the paper's overhead argument ---------------------------------------

    @staticmethod
    def overhead_summary() -> dict[str, float]:
        """Area/power/performance overhead of the scheme itself.

        All zero by construction: no circuitry is added, the design is
        untouched (paper Sec. IV-A).  Key-management overhead lives in
        :mod:`repro.keymgmt` and is shared at the SoC level.
        """
        return {
            "area_pct": 0.0,
            "power_pct": 0.0,
            "performance_penalty_db": 0.0,
            "redesign_iterations": 0.0,
        }
