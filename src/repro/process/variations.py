"""Per-chip process variations.

"Typically process variations are taken into consideration during
calibration, thus the configuration settings end up being unique for
each chip" (paper Sec. III).  This module draws a deterministic,
seeded set of parameter perturbations for every fabricated chip:
global (inter-die) scale factors on passives and transconductances,
local (intra-die) mismatch on the unit capacitors of the binary-weighted
arrays, comparator offset, DAC gain error and delay skew.

The draw is a pure function of ``(lot_seed, chip_id)`` so chips are
reproducible across runs — the behavioural equivalent of labelled dies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class ProcessModel:
    """Standard deviations of the variation sources (1-sigma, relative
    unless stated otherwise)."""

    inductor_sigma: float = 0.03
    c_fixed_sigma: float = 0.05
    unit_cap_sigma: float = 0.015
    q_factor_sigma: float = 0.08
    gm_sigma: float = 0.06
    lna_stage_gain_sigma_db: float = 0.4
    comp_offset_sigma: float = 5e-3
    dac_gain_sigma: float = 0.05
    delay_skew_sigma: float = 0.04
    noise_scale_sigma: float = 0.10


@dataclass(frozen=True)
class ChipVariations:
    """Concrete variation draw for one chip.

    All ``*_scale`` entries multiply the nominal value; offsets are in
    volts; ``coarse_unit_scales``/``fine_unit_scales`` multiply each
    binary-weighted bit of the capacitor arrays individually.
    """

    chip_id: int
    inductor_scale: float
    c_fixed_scale: float
    coarse_unit_scales: np.ndarray
    fine_unit_scales: np.ndarray
    q_factor_scale: float
    gmin_scale: float
    gmq_scale: float
    preamp_scale: float
    dac_gain_scale: float
    comp_offset: float
    delay_skew: float
    lna_stage_gain_err_db: np.ndarray
    noise_scale: float

    def summary(self) -> dict[str, float]:
        """Scalar overview used in reports and tests."""
        return {
            "chip_id": float(self.chip_id),
            "inductor_scale": self.inductor_scale,
            "c_fixed_scale": self.c_fixed_scale,
            "q_factor_scale": self.q_factor_scale,
            "gmin_scale": self.gmin_scale,
            "gmq_scale": self.gmq_scale,
            "dac_gain_scale": self.dac_gain_scale,
            "comp_offset": self.comp_offset,
            "delay_skew": self.delay_skew,
        }


@dataclass
class ChipFactory:
    """Deterministic 'fab' producing chips with unique variations.

    Args:
        lot_seed: Seed of the manufacturing lot; two factories with the
            same seed produce identical chips.
        model: The 1-sigma process model.
    """

    lot_seed: int = 2020
    model: ProcessModel = field(default_factory=ProcessModel)

    def draw(self, chip_id: int, n_coarse_bits: int = 8, n_fine_bits: int = 8) -> ChipVariations:
        """Draw the variation set of chip ``chip_id``."""
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self.lot_seed, spawn_key=(chip_id,))
        )
        m = self.model

        def scale(sigma: float) -> float:
            # Clip at 3 sigma: catastrophic outliers are screened at test.
            return float(1.0 + np.clip(rng.normal(0.0, sigma), -3 * sigma, 3 * sigma))

        return ChipVariations(
            chip_id=chip_id,
            inductor_scale=scale(m.inductor_sigma),
            c_fixed_scale=scale(m.c_fixed_sigma),
            coarse_unit_scales=1.0
            + np.clip(
                rng.normal(0.0, m.unit_cap_sigma, n_coarse_bits),
                -3 * m.unit_cap_sigma,
                3 * m.unit_cap_sigma,
            ),
            fine_unit_scales=1.0
            + np.clip(
                rng.normal(0.0, m.unit_cap_sigma, n_fine_bits),
                -3 * m.unit_cap_sigma,
                3 * m.unit_cap_sigma,
            ),
            q_factor_scale=scale(m.q_factor_sigma),
            gmin_scale=scale(m.gm_sigma),
            gmq_scale=scale(m.gm_sigma),
            preamp_scale=scale(m.gm_sigma),
            dac_gain_scale=scale(m.dac_gain_sigma),
            comp_offset=float(rng.normal(0.0, m.comp_offset_sigma)),
            delay_skew=float(
                np.clip(rng.normal(0.0, m.delay_skew_sigma), -0.12, 0.12)
            ),
            lna_stage_gain_err_db=rng.normal(0.0, m.lna_stage_gain_sigma_db, 5),
            noise_scale=scale(m.noise_scale_sigma),
        )

    def batch(self, n_chips: int) -> list[ChipVariations]:
        """Variation draws for chips ``0..n_chips-1`` (a wafer lot)."""
        return [self.draw(i) for i in range(n_chips)]


#: A typical (zero-variation) chip, used for nominal design checks.
def typical_chip(chip_id: int = -1) -> ChipVariations:
    """A chip with every parameter exactly nominal."""
    return ChipVariations(
        chip_id=chip_id,
        inductor_scale=1.0,
        c_fixed_scale=1.0,
        coarse_unit_scales=np.ones(8),
        fine_unit_scales=np.ones(8),
        q_factor_scale=1.0,
        gmin_scale=1.0,
        gmq_scale=1.0,
        preamp_scale=1.0,
        dac_gain_scale=1.0,
        comp_offset=0.0,
        delay_skew=0.0,
        lna_stage_gain_err_db=np.zeros(5),
        noise_scale=1.0,
    )
