"""Process-variation modelling: per-chip parameter draws."""

from repro.process.variations import (
    ChipFactory,
    ChipVariations,
    ProcessModel,
    typical_chip,
)

__all__ = ["ChipFactory", "ChipVariations", "ProcessModel", "typical_chip"]
