"""Fig. 12 — two-tone SFDR: correct key vs deceptive key.

Paper shape: two equal-power tones 10 MHz apart; SFDR is the difference
between the fundamental and the third-order product; the locked
(deceptive-key) circuit has much lower SFDR.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, calibrated, hero_chip
from repro.experiments.fig08_transient import deceptive_key_from_population
from repro.receiver.performance import measure_sfdr
from repro.receiver.standards import STANDARDS


def run(n_fft: int = 8192, seed: int = 7) -> ExperimentResult:
    """Regenerate the Fig. 12 comparison."""
    chip = hero_chip()
    standard = STANDARDS[0]
    correct = calibrated(chip, standard).config
    deceptive = deceptive_key_from_population(seed=seed)

    s_ok = measure_sfdr(chip, correct, standard, n_fft=n_fft)
    s_bad = measure_sfdr(chip, deceptive, standard, n_fft=n_fft)

    result = ExperimentResult(
        experiment_id="fig12",
        title="Two-tone SFDR (delta f = 10 MHz), correct vs deceptive key",
        columns=["key", "sfdr_db", "im3_db"],
    )
    result.rows.append(("correct", round(s_ok.sfdr_db, 2), round(s_ok.im3_db, 2)))
    result.rows.append(("deceptive", round(s_bad.sfdr_db, 2), round(s_bad.im3_db, 2)))
    result.notes.append(
        f"SFDR gap {s_ok.sfdr_db - s_bad.sfdr_db:.1f} dB "
        "(paper: 'the locked circuit has a much lower SFDR')"
    )
    return result
