"""Engine-aware experiment registry and report runner.

``python -m repro.experiments.runner`` regenerates all paper artefacts
(quick mode by default; ``--full`` uses paper-size parameters).  Every
artefact is an :class:`ExperimentSpec` in a named registry, so runs can
be filtered (``--only fig7 --only fig9``), listed (``--list``) and
timed per experiment; ``--backend`` selects the simulation-engine
backend (the backends are bit-exact, so the numbers are identical —
only the wall clock changes) and ``--json PATH`` additionally writes
every result as a machine-readable artefact through the campaign
serialization helpers.

Execution is a thin client of the foundry service
(:mod:`repro.service`): the selected registry entries become one
:class:`~repro.service.jobs.ExperimentJob`, and the tables print as
the handle streams each completed experiment.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.engine import BACKENDS, get_default_engine
from repro.experiments import (
    fig07_invalid_keys,
    fig08_transient,
    fig09_receiver_snr,
    fig10_psd,
    fig11_dynamic_range,
    fig12_sfdr,
    security_optimization,
    security_sat,
    sweep_standards,
    table_attack_cost,
    table_baselines,
    table_keyspace,
)
from repro.experiments.common import ExperimentResult


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment.

    Attributes:
        name: Registry key (the artefact id, e.g. ``fig7``).
        title: Human-readable summary for ``--list``.
        run: Driver callable returning an :class:`ExperimentResult`.
        quick: Keyword arguments for quick mode.
        full: Keyword arguments for paper-size mode.
    """

    name: str
    title: str
    run: Callable[..., ExperimentResult]
    quick: Mapping[str, object] = field(default_factory=dict)
    full: Mapping[str, object] = field(default_factory=dict)

    def execute(self, full: bool = False) -> ExperimentResult:
        """Run the driver with the mode's parameters."""
        kwargs = dict(self.full if full else self.quick)
        return self.run(**kwargs)


#: Registration order is report order.
REGISTRY: dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add an experiment to the registry (name must be unique)."""
    if spec.name in REGISTRY:
        raise ValueError(f"experiment {spec.name!r} already registered")
    REGISTRY[spec.name] = spec
    return spec


for _spec in (
    ExperimentSpec(
        "fig7", "SNR at modulator output, correct vs invalid keys",
        fig07_invalid_keys.run,
        quick={"n_keys": 30, "n_fft": 2048},
        full={"n_keys": 100, "n_fft": 8192},
    ),
    ExperimentSpec(
        "fig8", "transient bitstream vs analog passthrough",
        fig08_transient.run,
        quick={"n_samples": 256}, full={"n_samples": 512},
    ),
    ExperimentSpec(
        "fig9", "SNR at receiver output, same key population",
        fig09_receiver_snr.run,
        quick={"n_keys": 20, "n_baseband": 256},
        full={"n_keys": 100, "n_baseband": 512},
    ),
    ExperimentSpec(
        "fig10", "output PSD, noise shaping vs none",
        fig10_psd.run,
        quick={"n_fft": 4096}, full={"n_fft": 8192},
    ),
    ExperimentSpec(
        "fig11", "SNR vs input power over three VGLNA segments",
        fig11_dynamic_range.run,
        quick={"power_step_dbm": 10.0, "n_fft": 2048},
        full={"power_step_dbm": 5.0, "n_fft": 4096},
    ),
    ExperimentSpec(
        "fig12", "two-tone SFDR",
        fig12_sfdr.run,
        quick={"n_fft": 4096}, full={"n_fft": 8192},
    ),
    ExperimentSpec(
        "tab-attack", "Sec. VI-B.1 brute-force cost accounting",
        table_attack_cost.run,
        quick={"n_keys": 30, "n_fft": 2048},
        full={"n_keys": 100, "n_fft": 2048},
    ),
    ExperimentSpec(
        "tab-keys", "Sec. VI-B key-space structure",
        table_keyspace.run,
        quick={"trials_per_distance": 4}, full={"trials_per_distance": 8},
    ),
    ExperimentSpec(
        "tab-ovr", "Secs. II/IV-A comparison vs prior schemes",
        table_baselines.run,
        quick={"n_random_keys": 8}, full={"n_random_keys": 16},
    ),
    ExperimentSpec(
        "sweep-std", "lock efficiency across centre frequencies",
        sweep_standards.run,
        quick={"standard_indices": (0, 7), "n_keys": 10},
        full={"standard_indices": (0, 2, 5, 7), "n_keys": 20},
    ),
    ExperimentSpec(
        "sat-na", "Sec. IV-B.1 SAT-attack applicability",
        security_sat.run,
        quick={"n_key_bits": 6}, full={"n_key_bits": 8},
    ),
    ExperimentSpec(
        "opt-attack", "Sec. IV-B.3 uninformed attacks vs calibration",
        security_optimization.run,
        quick={"budget": 60}, full={"budget": 150},
    ),
):
    register(_spec)


def run_all(
    full: bool = False,
    stream=None,
    backend: str | None = None,
    names: list[str] | None = None,
    json_path: str | None = None,
) -> list[ExperimentResult]:
    """Run the selected experiments; returns the result list.

    Args:
        full: Paper-size parameters instead of quick mode.
        stream: Output stream (stdout by default).
        backend: Optional engine backend override for the whole run.
        names: Optional registry-name filter (report order preserved).
        json_path: When given, every result plus the timing/engine
            summary is also written there as JSON.
    """
    from repro.service import ExperimentJob, FoundryService

    stream = stream or sys.stdout
    handle = FoundryService().submit(
        ExperimentJob(
            names=tuple(names) if names else None, full=full, backend=backend
        )
    )
    results = []
    timings: list[tuple[str, float]] = []
    for event in handle.stream():
        result = event.payload
        results.append(result)
        timings.append((event.label, event.seconds))
        print(result.format_table(), file=stream)
        print(f"# completed in {event.seconds:.1f} s\n", file=stream)
    engine = get_default_engine()
    print("== timing summary ==", file=stream)
    for name, elapsed in timings:
        print(f"{name:12s} {elapsed:8.1f} s", file=stream)
    print(
        f"# engine backend={engine.backend}: {engine.stats.n_requests} "
        f"simulations in {engine.stats.n_batches} batches "
        f"({engine.stats.n_vectorized_runs} vectorized, "
        f"{engine.stats.n_reference_runs} reference), "
        f"{engine.stats.integrate_seconds:.1f} s integrating",
        file=stream,
    )
    if json_path is not None:
        from repro.campaigns.serialization import (
            dump_json,
            experiment_result_to_dict,
            jsonable,
        )

        dump_json(
            json_path,
            {
                "schema": "repro.experiments/v1",
                "mode": "full" if full else "quick",
                "backend": engine.backend,
                "experiments": [
                    {
                        **experiment_result_to_dict(result),
                        "elapsed_seconds": round(elapsed, 3),
                    }
                    for result, (_, elapsed) in zip(results, timings)
                ],
                "engine": jsonable(vars(engine.stats)),
            },
        )
    return results


def main(argv: list[str] | None = None) -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="paper-size parameters (slower)"
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="simulation engine backend (bit-exact; affects speed only)",
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="NAME",
        help="run only the named experiment (repeatable)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered experiments"
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also dump every result as a machine-readable JSON artefact",
    )
    args = parser.parse_args(argv)
    if args.list:
        for spec in REGISTRY.values():
            print(f"{spec.name:12s} {spec.title}")
        return
    run_all(
        full=args.full, backend=args.backend, names=args.only, json_path=args.json
    )


if __name__ == "__main__":
    main()
