"""Run every experiment and render the full report.

``python -m repro.experiments.runner`` regenerates all paper artefacts
(quick mode by default; ``--full`` uses paper-size parameters).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    fig07_invalid_keys,
    fig08_transient,
    fig09_receiver_snr,
    fig10_psd,
    fig11_dynamic_range,
    fig12_sfdr,
    security_optimization,
    security_sat,
    sweep_standards,
    table_attack_cost,
    table_baselines,
    table_keyspace,
)

#: (module, quick-mode kwargs, full-mode kwargs)
EXPERIMENTS = (
    (fig07_invalid_keys, {"n_keys": 30, "n_fft": 2048}, {"n_keys": 100, "n_fft": 8192}),
    (fig08_transient, {"n_samples": 256}, {"n_samples": 512}),
    (fig09_receiver_snr, {"n_keys": 20, "n_baseband": 256}, {"n_keys": 100, "n_baseband": 512}),
    (fig10_psd, {"n_fft": 4096}, {"n_fft": 8192}),
    (fig11_dynamic_range, {"power_step_dbm": 10.0, "n_fft": 2048}, {"power_step_dbm": 5.0, "n_fft": 4096}),
    (fig12_sfdr, {"n_fft": 4096}, {"n_fft": 8192}),
    (table_attack_cost, {"n_keys": 30, "n_fft": 2048}, {"n_keys": 100, "n_fft": 2048}),
    (table_keyspace, {"trials_per_distance": 4}, {"trials_per_distance": 8}),
    (table_baselines, {"n_random_keys": 8}, {"n_random_keys": 16}),
    (sweep_standards, {"standard_indices": (0, 7), "n_keys": 10}, {"standard_indices": (0, 2, 5, 7), "n_keys": 20}),
    (security_sat, {"n_key_bits": 6}, {"n_key_bits": 8}),
    (security_optimization, {"budget": 60}, {"budget": 150}),
)


def run_all(full: bool = False, stream=None) -> list:
    """Run every experiment; returns the result list."""
    stream = stream or sys.stdout
    results = []
    for module, quick_kwargs, full_kwargs in EXPERIMENTS:
        kwargs = full_kwargs if full else quick_kwargs
        start = time.time()
        result = module.run(**kwargs)
        elapsed = time.time() - start
        results.append(result)
        print(result.format_table(), file=stream)
        print(f"# completed in {elapsed:.1f} s\n", file=stream)
    return results


def main() -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="paper-size parameters (slower)"
    )
    args = parser.parse_args()
    run_all(full=args.full)


if __name__ == "__main__":
    main()
