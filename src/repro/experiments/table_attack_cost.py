"""Sec. VI-B.1 — the attack-cost table.

Combines the paper's per-measurement simulation times (20 min per SNR
point, 3 h per dynamic-range sweep, 30 min per SFDR), an optimistic
hardware-bench cost after re-fabbing, the 2^64 key space and the
empirical unlocking-key density into brute-force time estimates —
contrasted with the legitimate calibration's measurement count.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.cost import format_years
from repro.campaigns import ThreatScenario
from repro.experiments.common import ExperimentResult, calibrated, hero_chip
from repro.locking.metrics import (
    key_population_study,
    key_space_analysis,
    structural_unlocking_bound,
)
from repro.locking.specs import PerformanceSpec
from repro.receiver.standards import STANDARDS


def run(n_keys: int = 100, n_fft: int = 2048, seed: int = 7) -> ExperimentResult:
    """Build the attack-cost table."""
    chip = hero_chip()
    standard = STANDARDS[0]
    calibration = calibrated(chip, standard)
    correct = calibration.config
    spec = PerformanceSpec.for_standard(standard)
    study = key_population_study(
        chip,
        correct,
        standard,
        n_keys=n_keys,
        rng=np.random.default_rng(seed),
        n_fft=n_fft,
    )
    analysis = key_space_analysis(study, spec.snr_min_db)
    structural = structural_unlocking_bound(chip, correct)
    expected = 1.0 / structural

    # Per-measurement costs come from the campaign scenario vocabulary,
    # so this table and the attack campaigns cite the same numbers.
    sim = ThreatScenario(cost="simulation").cost_model()
    hw = ThreatScenario(cost="hardware").cost_model()
    result = ExperimentResult(
        experiment_id="tab-attack",
        title="Brute-force / measurement cost accounting (Sec. VI-B.1)",
        columns=["quantity", "value"],
    )
    result.rows.extend(
        [
            ("key space", f"2^64 = {analysis.total_keys:.3e}"),
            (
                "unlocking keys seen in random sample",
                f"{analysis.unlocking_fraction_estimate * study.invalid_snrs_db.size:.0f}"
                f" of {study.invalid_snrs_db.size}",
            ),
            (
                "unlocking fraction (structural upper bound)",
                f"<= {structural:.2e}",
            ),
            ("expected trials to unlock", f">= {expected:.2e}"),
            ("sim time per SNR point", f"{sim.snr_seconds/60:.0f} min (paper: 20 min)"),
            ("sim time per DR sweep", f"{sim.dr_sweep_seconds/3600:.0f} h (paper: 3 h)"),
            ("sim time per SFDR", f"{sim.sfdr_seconds/60:.0f} min (paper: 30 min)"),
            (
                "brute force by simulation",
                format_years(expected * sim.snr_seconds / (365.25 * 86400)),
            ),
            (
                "brute force on re-fabbed hardware (1 s/point)",
                format_years(expected * hw.snr_seconds / (365.25 * 86400)),
            ),
            (
                "legitimate calibration (guided)",
                f"{calibration.n_measurements} measurements",
            ),
        ]
    )
    result.notes.append(
        "the guided calibration needs ~10^2 measurements; an uninformed "
        "search needs orders of magnitude more — the gap *is* the "
        "security margin, and it grows linearly with per-trial cost"
    )
    return result
