"""Sec. IV-B.1 — SAT attack: breaks digital baselines, no formulation
against the fabric lock.

Runs the oracle-guided SAT attack as one campaign through the unified
attack API: one cell per target (the MixLock'd decimation controller,
the locked calibration optimiser, the provisioned fabric lock), one
:class:`~repro.campaigns.report.AttackReport` out per cell — with
``applicable=False`` carrying the structural reason why the attack
cannot even be *formulated* against the proposed scheme.
"""

from __future__ import annotations

from repro.campaigns import CampaignCell, ThreatScenario, run_campaign
from repro.experiments.common import ExperimentResult


def run(n_key_bits: int = 8) -> ExperimentResult:
    """Build the SAT-attack comparison."""
    result = ExperimentResult(
        experiment_id="sat-na",
        title="SAT attack: digital baselines vs the fabric lock",
        columns=["target", "outcome", "oracle_queries", "iterations"],
    )
    params = (("n_key_bits", n_key_bits),)
    cells = [
        CampaignCell("sat", ThreatScenario(scheme="mixlock", scheme_params=params)),
        CampaignCell(
            "sat", ThreatScenario(scheme="calibration-lock", scheme_params=params)
        ),
        CampaignCell("sat", ThreatScenario(scheme="fabric")),
    ]
    campaign = run_campaign(cells)
    for report in campaign.reports[:2]:
        result.rows.append(
            (
                f"{report.extra('reference')} {report.extra('scheme_name')}",
                "key recovered" if report.success else "wrong key",
                report.n_queries,
                report.extra("n_iterations"),
            )
        )
    fabric = campaign.reports[2]
    outcome = (
        "UNEXPECTEDLY applicable"
        if fabric.applicable
        else "not applicable (no Boolean oracle)"
    )
    result.rows.append(("this work: programmability-fabric lock", outcome, 0, 0))
    result.notes.append(
        "paper: 'Known attacks in digital domain, such as the lethal SAT "
        "attack, are not applicable' — while the same attack dismantles "
        "the logic-locked baselines within a handful of queries"
    )
    return result
