"""Sec. IV-B.1 — SAT attack: breaks digital baselines, no formulation
against the fabric lock.

Runs the oracle-guided SAT attack on the MixLock'd decimation controller
and the locked calibration optimiser, then demonstrates that the attack
cannot even be *formulated* against the proposed scheme.
"""

from __future__ import annotations

from repro.attacks.sat_attack import SatAttackNotApplicable, assert_sat_attack_applicable
from repro.baselines import CalibrationLoopLock, MixLock
from repro.experiments.common import ExperimentResult, calibrated, hero_chip
from repro.locking.scheme import ProgrammabilityLock
from repro.receiver.standards import STANDARDS


def run(n_key_bits: int = 8) -> ExperimentResult:
    """Build the SAT-attack comparison."""
    result = ExperimentResult(
        experiment_id="sat-na",
        title="SAT attack: digital baselines vs the fabric lock",
        columns=["target", "outcome", "oracle_queries", "iterations"],
    )
    for scheme in (MixLock(n_key_bits=n_key_bits), CalibrationLoopLock(n_key_bits=n_key_bits)):
        sat = scheme.run_sat_attack()
        recovered_ok = scheme.unlocks(sat.key)
        result.rows.append(
            (
                f"{scheme.profile.reference} {scheme.profile.name}",
                "key recovered" if recovered_ok else "wrong key",
                sat.n_oracle_queries,
                sat.n_iterations,
            )
        )
    chip = hero_chip()
    standard = STANDARDS[0]
    lock = ProgrammabilityLock(chip=chip)
    lock._lut[standard.index] = calibrated(chip, standard)
    try:
        assert_sat_attack_applicable(lock)
        outcome = "UNEXPECTEDLY applicable"
    except SatAttackNotApplicable:
        outcome = "not applicable (no Boolean oracle)"
    result.rows.append(("this work: programmability-fabric lock", outcome, 0, 0))
    result.notes.append(
        "paper: 'Known attacks in digital domain, such as the lethal SAT "
        "attack, are not applicable' — while the same attack dismantles "
        "the logic-locked baselines within a handful of queries"
    )
    return result
