"""Shared scaffolding for the per-figure experiment drivers.

Every experiment produces an :class:`ExperimentResult` — named columns,
rows of plain numbers/strings, and a free-form notes block — so the
benchmark harness and EXPERIMENTS.md generation share one format.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.calibration.procedure import CalibrationResult, Calibrator
from repro.process.variations import ChipFactory
from repro.receiver.receiver import Chip
from repro.receiver.standards import STANDARDS, Standard

#: Lot seed shared by every experiment, so they all see the same silicon.
EXPERIMENT_LOT_SEED = 2020

#: The chip the headline experiments run on (the paper's single device).
HERO_CHIP_ID = 0


@dataclass
class ExperimentResult:
    """Uniform result container.

    Attributes:
        experiment_id: Table/figure tag (e.g. ``fig7``).
        title: What the experiment reproduces.
        columns: Column headers.
        rows: Data rows (same arity as ``columns``).
        notes: Free-form remarks (paper-vs-measured commentary).
    """

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def format_table(self) -> str:
        """Render an aligned plain-text table."""
        widths = [len(c) for c in self.columns]
        rendered_rows = []
        for row in self.rows:
            rendered = [
                f"{v:.2f}" if isinstance(v, float) else str(v) for v in row
            ]
            rendered_rows.append(rendered)
            for i, cell in enumerate(rendered):
                widths[i] = max(widths[i], len(cell))
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            "  ".join(c.ljust(w) for c, w in zip(self.columns, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for rendered in rendered_rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(rendered, widths)))
        for note in self.notes:
            lines.append(f"# {note}")
        return "\n".join(lines)


_CALIBRATION_CACHE: dict[tuple[int, int], CalibrationResult] = {}


def hero_chip() -> Chip:
    """The experiment chip (die 0 of the reference lot)."""
    return Chip(variations=ChipFactory(lot_seed=EXPERIMENT_LOT_SEED).draw(HERO_CHIP_ID))


def chip_by_id(chip_id: int) -> Chip:
    """Any die of the reference lot."""
    return Chip(variations=ChipFactory(lot_seed=EXPERIMENT_LOT_SEED).draw(chip_id))


def calibrated(chip: Chip, standard: Standard | None = None) -> CalibrationResult:
    """Calibration result for a lot chip, cached across experiments."""
    standard = standard or STANDARDS[0]
    cache_key = (chip.variations.chip_id, standard.index)
    if cache_key not in _CALIBRATION_CACHE:
        _CALIBRATION_CACHE[cache_key] = Calibrator().calibrate(chip, standard)
    return _CALIBRATION_CACHE[cache_key]
