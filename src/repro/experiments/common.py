"""Shared scaffolding for the per-figure experiment drivers.

Every experiment produces an :class:`ExperimentResult` — named columns,
rows of plain numbers/strings, and a free-form notes block — so the
benchmark harness and EXPERIMENTS.md generation share one format.

Chip access goes through the batched simulation engine:
:func:`calibrated` memoises full calibrations on the engine's bounded
cache (shared across experiments in one process), and
:func:`measure_keys` is the batched SNR sweep primitive the per-figure
drivers build on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.calibration.procedure import CalibrationResult, Calibrator
from repro.engine import get_default_engine
from repro.engine.engine import clear_caches  # re-exported test hook
from repro.process.variations import ChipFactory
from repro.receiver.config import ConfigWord
from repro.receiver.performance import (
    measure_modulator_snr_batch,
    measure_receiver_snr_batch,
)
from repro.receiver.receiver import Chip
from repro.receiver.standards import STANDARDS, Standard

#: Lot seed shared by every experiment, so they all see the same silicon.
EXPERIMENT_LOT_SEED = 2020

#: The chip the headline experiments run on (the paper's single device).
HERO_CHIP_ID = 0


@dataclass
class ExperimentResult:
    """Uniform result container.

    Attributes:
        experiment_id: Table/figure tag (e.g. ``fig7``).
        title: What the experiment reproduces.
        columns: Column headers.
        rows: Data rows (same arity as ``columns``).
        notes: Free-form remarks (paper-vs-measured commentary).
    """

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def format_table(self) -> str:
        """Render an aligned plain-text table."""
        widths = [len(c) for c in self.columns]
        rendered_rows = []
        for row in self.rows:
            rendered = [
                f"{v:.2f}" if isinstance(v, float) else str(v) for v in row
            ]
            rendered_rows.append(rendered)
            for i, cell in enumerate(rendered):
                widths[i] = max(widths[i], len(cell))
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            "  ".join(c.ljust(w) for c, w in zip(self.columns, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for rendered in rendered_rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(rendered, widths)))
        for note in self.notes:
            lines.append(f"# {note}")
        return "\n".join(lines)


def hero_chip() -> Chip:
    """The experiment chip (die 0 of the reference lot)."""
    return Chip(variations=ChipFactory(lot_seed=EXPERIMENT_LOT_SEED).draw(HERO_CHIP_ID))


def chip_by_id(chip_id: int) -> Chip:
    """Any die of the reference lot."""
    return Chip(variations=ChipFactory(lot_seed=EXPERIMENT_LOT_SEED).draw(chip_id))


def calibrated(chip: Chip, standard: Standard | None = None) -> CalibrationResult:
    """Calibration result for a lot chip, cached across experiments.

    The result lives on the default engine's bounded LRU cache (the
    old module-global grew without limit over long sweeps); clear it
    with :func:`clear_caches`.
    """
    standard = standard or STANDARDS[0]
    return get_default_engine().calibrated(
        chip,
        standard,
        factory=lambda: Calibrator().calibrate(chip, standard),
        # Lot-qualified key, shared with the campaign layer's
        # provision_calibration (every experiment chip is a reference-lot
        # die, so the two layers hit the same entries).
        key=(EXPERIMENT_LOT_SEED, chip.variations.chip_id, standard.index),
    )


def measure_keys(
    chip: Chip,
    keys: Sequence[ConfigWord],
    standard: Standard | None = None,
    at_receiver: bool = False,
    n_fft: int | None = None,
    n_baseband: int = 512,
    seed: int = 0,
) -> np.ndarray:
    """Batched SNR sweep over ``keys`` — the experiments' workhorse.

    One engine submission measures every key under the standard's
    stimulus, at the modulator output by default or after the digital
    section with ``at_receiver=True``.  Returns the SNRs in dB, in key
    order.
    """
    standard = standard or STANDARDS[0]
    if not keys:
        return np.empty(0)
    if at_receiver:
        measurements = measure_receiver_snr_batch(
            chip, keys, standard, n_baseband=n_baseband, seed=seed
        )
    else:
        measurements = measure_modulator_snr_batch(
            chip, keys, standard, n_fft=n_fft, seed=seed
        )
    return np.array([m.snr_db for m in measurements])
