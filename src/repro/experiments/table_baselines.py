"""Secs. II / IV-A — comparison against prior locking schemes [6]-[11].

Computes, per scheme: whether the correct key unlocks its testbench,
lock effectiveness against random keys, overheads, and the removal- and
SAT-attack adjudications — the latter through the unified campaign
attack adapters (:class:`~repro.campaigns.attacks.Removal`,
:class:`~repro.campaigns.attacks.Sat`), so each cell of the table is
backed by an :class:`~repro.campaigns.report.AttackReport`.  The
proposed scheme appears as the last row with zero overhead and no
removal/SAT surface.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import (
    BiasObfuscationLock,
    CalibrationLoopLock,
    CurrentMirrorLock,
    MemristorBiasLock,
    MixLock,
    NeuralBiasLock,
    ProposedFabricLock,
)
from repro.campaigns import Removal, Sat
from repro.experiments.common import ExperimentResult, calibrated, hero_chip
from repro.locking.scheme import ProgrammabilityLock
from repro.receiver.standards import STANDARDS


def build_schemes(n_random_keys: int = 16, seed: int = 3):
    """All six baselines plus the provisioned proposed scheme."""
    chip = hero_chip()
    standard = STANDARDS[0]
    lock = ProgrammabilityLock(chip=chip)
    lock._lut[standard.index] = calibrated(chip, standard)
    schemes = [
        MemristorBiasLock(),
        BiasObfuscationLock(),
        CurrentMirrorLock(),
        MixLock(),
        CalibrationLoopLock(),
        NeuralBiasLock(),
        ProposedFabricLock(lock=lock, standard=standard),
    ]
    return schemes


def run(n_random_keys: int = 16, seed: int = 3) -> ExperimentResult:
    """Build the comparison table."""
    rng = np.random.default_rng(seed)
    schemes = build_schemes(n_random_keys, seed)
    result = ExperimentResult(
        experiment_id="tab-overhead",
        title="Comparison vs prior analog locking schemes (Fig. 1 set)",
        columns=[
            "ref",
            "key_bits",
            "added_hw",
            "area_pct",
            "power_pct",
            "lock_eff",
            "removal",
            "sat_attack",
        ],
    )
    for scheme in schemes:
        profile = scheme.profile
        effectiveness = scheme.lock_effectiveness(n_random_keys, rng)
        removal = Removal().adjudicate(scheme)
        if removal.applicable:
            removal_cell = "succeeds" if removal.success else "resisted"
        else:
            removal_cell = "n/a (no added hw)"
        sat_cell = "applicable" if Sat.applicable_to(scheme) else "no Boolean oracle"
        result.rows.append(
            (
                profile.reference,
                profile.key_bits,
                "yes" if profile.added_circuitry else "no",
                profile.area_overhead_pct,
                profile.power_overhead_pct,
                round(effectiveness, 2),
                removal_cell,
                sat_cell,
            )
        )
    result.notes.append(
        "paper Sec. IV-A: the proposed approach leaves the design intact "
        "— zero area/power overhead, no redesign, no removal surface"
    )
    return result
